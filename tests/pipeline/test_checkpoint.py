"""Unit tests for the checkpoint store."""

import pytest

from repro.pipeline import CheckpointStore


class TestInMemory:
    def test_commit_and_read_back(self):
        cp = CheckpointStore()
        cp.commit("q", 0, {0: 10, 1: 5}, {"wm": 99.0})
        assert cp.last_batch_id("q") == 0
        assert cp.offsets("q") == {0: 10, 1: 5}
        assert cp.state("q") == {"wm": 99.0}

    def test_unknown_query(self):
        cp = CheckpointStore()
        assert cp.last_batch_id("q") is None
        assert cp.offsets("q") == {}
        assert cp.state("q") == {}

    def test_contiguity_enforced(self):
        cp = CheckpointStore()
        cp.commit("q", 0, {0: 1})
        with pytest.raises(ValueError):
            cp.commit("q", 2, {0: 2})  # skipped batch 1
        with pytest.raises(ValueError):
            cp.commit("q", 0, {0: 2})  # duplicate
        cp.commit("q", 1, {0: 2})

    def test_first_commit_must_be_zero(self):
        cp = CheckpointStore()
        with pytest.raises(ValueError):
            cp.commit("q", 5, {0: 1})

    def test_reset_forgets_progress(self):
        cp = CheckpointStore()
        cp.commit("q", 0, {0: 1})
        cp.reset("q")
        assert cp.last_batch_id("q") is None
        cp.commit("q", 0, {0: 1})  # can start over

    def test_queries_listed(self):
        cp = CheckpointStore()
        cp.commit("b", 0, {})
        cp.commit("a", 0, {})
        assert cp.queries() == ["a", "b"]


class TestDurable:
    def test_survives_restart(self, tmp_path):
        path = str(tmp_path / "cp")
        cp1 = CheckpointStore(path)
        cp1.commit("q", 0, {0: 42}, {"x": 1})
        # Simulated crash: new store instance reads the same directory.
        cp2 = CheckpointStore(path)
        assert cp2.last_batch_id("q") == 0
        assert cp2.offsets("q") == {0: 42}
        assert cp2.state("q") == {"x": 1}

    def test_contiguity_across_restart(self, tmp_path):
        path = str(tmp_path / "cp")
        CheckpointStore(path).commit("q", 0, {0: 1})
        cp2 = CheckpointStore(path)
        with pytest.raises(ValueError):
            cp2.commit("q", 0, {0: 1})
        cp2.commit("q", 1, {0: 2})

    def test_empty_dir_fresh_state(self, tmp_path):
        cp = CheckpointStore(str(tmp_path / "new"))
        assert cp.queries() == []
