"""Unit tests for the checkpoint store."""

import os

import pytest

from repro.perf import PERF
from repro.pipeline import (
    CheckpointCorruptError,
    CheckpointCorruptWarning,
    CheckpointStore,
)


class TestInMemory:
    def test_commit_and_read_back(self):
        cp = CheckpointStore()
        cp.commit("q", 0, {0: 10, 1: 5}, {"wm": 99.0})
        assert cp.last_batch_id("q") == 0
        assert cp.offsets("q") == {0: 10, 1: 5}
        assert cp.state("q") == {"wm": 99.0}

    def test_unknown_query(self):
        cp = CheckpointStore()
        assert cp.last_batch_id("q") is None
        assert cp.offsets("q") == {}
        assert cp.state("q") == {}

    def test_contiguity_enforced(self):
        cp = CheckpointStore()
        cp.commit("q", 0, {0: 1})
        with pytest.raises(ValueError):
            cp.commit("q", 2, {0: 2})  # skipped batch 1
        with pytest.raises(ValueError):
            cp.commit("q", 0, {0: 2})  # duplicate
        cp.commit("q", 1, {0: 2})

    def test_first_commit_must_be_zero(self):
        cp = CheckpointStore()
        with pytest.raises(ValueError):
            cp.commit("q", 5, {0: 1})

    def test_reset_forgets_progress(self):
        cp = CheckpointStore()
        cp.commit("q", 0, {0: 1})
        cp.reset("q")
        assert cp.last_batch_id("q") is None
        cp.commit("q", 0, {0: 1})  # can start over

    def test_queries_listed(self):
        cp = CheckpointStore()
        cp.commit("b", 0, {})
        cp.commit("a", 0, {})
        assert cp.queries() == ["a", "b"]


class TestDurable:
    def test_survives_restart(self, tmp_path):
        path = str(tmp_path / "cp")
        cp1 = CheckpointStore(path)
        cp1.commit("q", 0, {0: 42}, {"x": 1})
        # Simulated crash: new store instance reads the same directory.
        cp2 = CheckpointStore(path)
        assert cp2.last_batch_id("q") == 0
        assert cp2.offsets("q") == {0: 42}
        assert cp2.state("q") == {"x": 1}

    def test_contiguity_across_restart(self, tmp_path):
        path = str(tmp_path / "cp")
        CheckpointStore(path).commit("q", 0, {0: 1})
        cp2 = CheckpointStore(path)
        with pytest.raises(ValueError):
            cp2.commit("q", 0, {0: 1})
        cp2.commit("q", 1, {0: 2})

    def test_empty_dir_fresh_state(self, tmp_path):
        cp = CheckpointStore(str(tmp_path / "new"))
        assert cp.queries() == []


class TestCorruptQuarantine:
    """Regression: a torn ``checkpoints.json`` used to brick restart
    with an unhandled ``JSONDecodeError``.  Now it is quarantined and
    the query replays from scratch."""

    @staticmethod
    def _tear(path: str) -> str:
        """Truncate the checkpoint file mid-payload, like a torn write."""
        file = os.path.join(path, "checkpoints.json")
        with open(file, "r", encoding="utf-8") as fh:
            whole = fh.read()
        with open(file, "w", encoding="utf-8") as fh:
            fh.write(whole[: len(whole) // 2])
        return file

    def test_truncated_json_quarantined(self, tmp_path):
        path = str(tmp_path / "cp")
        CheckpointStore(path).commit("q", 0, {0: 42}, {"wm": 9.0})
        file = self._tear(path)

        before = PERF.counter("checkpoint.corrupt_quarantined")
        with pytest.warns(CheckpointCorruptWarning):
            cp = CheckpointStore(path)

        # Fresh state, not a crash.
        assert cp.queries() == []
        assert cp.last_batch_id("q") is None
        # Forensic evidence preserved, live file gone.
        assert not os.path.exists(file)
        quarantined = file + ".corrupt-0"
        assert os.path.exists(quarantined)
        assert cp.last_corruption is not None
        assert isinstance(cp.last_corruption, CheckpointCorruptError)
        assert cp.last_corruption.quarantined_to == quarantined
        assert PERF.counter("checkpoint.corrupt_quarantined") - before == 1
        # The query can start over from batch 0.
        cp.commit("q", 0, {0: 0})

    def test_non_dict_payload_quarantined(self, tmp_path):
        path = str(tmp_path / "cp")
        os.makedirs(path)
        file = os.path.join(path, "checkpoints.json")
        with open(file, "w", encoding="utf-8") as fh:
            fh.write("[1, 2, 3]")  # valid JSON, wrong shape
        with pytest.warns(CheckpointCorruptWarning):
            cp = CheckpointStore(path)
        assert cp.queries() == []
        assert os.path.exists(file + ".corrupt-0")
        assert "expected a JSON object" in cp.last_corruption.reason

    def test_repeated_corruption_numbers_files(self, tmp_path):
        path = str(tmp_path / "cp")
        CheckpointStore(path).commit("q", 0, {0: 1})
        self._tear(path)
        with pytest.warns(CheckpointCorruptWarning):
            CheckpointStore(path).commit("q", 0, {0: 1})
        self._tear(path)
        with pytest.warns(CheckpointCorruptWarning):
            cp = CheckpointStore(path)
        file = os.path.join(path, "checkpoints.json")
        assert os.path.exists(file + ".corrupt-0")
        assert os.path.exists(file + ".corrupt-1")
        assert cp.last_corruption.quarantined_to == file + ".corrupt-1"

    def test_clean_load_leaves_no_corruption_record(self, tmp_path):
        path = str(tmp_path / "cp")
        CheckpointStore(path).commit("q", 0, {0: 1})
        cp = CheckpointStore(path)
        assert cp.last_corruption is None
        assert cp.last_batch_id("q") == 0
