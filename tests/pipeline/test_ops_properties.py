"""Property-based tests for relational-operator algebraic laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import Col, ColumnTable
from repro.pipeline import group_by_agg, hash_join, pivot, where


@st.composite
def small_table(draw):
    n = draw(st.integers(1, 60))
    keys = draw(
        st.lists(st.integers(0, 4), min_size=n, max_size=n)
    )
    labels = draw(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=n, max_size=n)
    )
    values = draw(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=n, max_size=n
        )
    )
    return ColumnTable(
        {
            "k": np.array(keys),
            "label": labels,
            "v": np.array(values),
        }
    )


class TestGroupByLaws:
    @given(table=small_table())
    @settings(max_examples=60, deadline=None)
    def test_groups_partition_rows(self, table):
        out = group_by_agg(table, ["k", "label"], {"n": ("v", "count")})
        assert out["n"].sum() == table.num_rows

    @given(table=small_table())
    @settings(max_examples=60, deadline=None)
    def test_min_le_mean_le_max(self, table):
        out = group_by_agg(
            table,
            ["k"],
            {"lo": ("v", "min"), "m": ("v", "mean"), "hi": ("v", "max")},
        )
        assert ((out["lo"] <= out["m"] + 1e-6)
                & (out["m"] <= out["hi"] + 1e-6)).all()

    @given(table=small_table())
    @settings(max_examples=60, deadline=None)
    def test_filter_then_group_subset_of_group(self, table):
        """WHERE before GROUP BY never creates new groups."""
        filtered = where(table, Col("v") > 0.0)
        if filtered.num_rows == 0:
            return
        groups_all = set(
            group_by_agg(table, ["k"], {"n": ("v", "count")})["k"].tolist()
        )
        groups_filtered = set(
            group_by_agg(filtered, ["k"], {"n": ("v", "count")})["k"].tolist()
        )
        assert groups_filtered <= groups_all


class TestPivotLaws:
    @given(table=small_table())
    @settings(max_examples=60, deadline=None)
    def test_pivot_preserves_sum(self, table):
        """Total mass survives the long->wide reshape (agg='sum')."""
        wide = pivot(table, ["k"], "label", "v", agg="sum", fill=0.0)
        wide_total = sum(
            wide[c].sum() for c in wide.column_names if c != "k"
        )
        assert wide_total == pytest.approx(table["v"].sum(), rel=1e-9, abs=1e-6)

    @given(table=small_table())
    @settings(max_examples=60, deadline=None)
    def test_pivot_row_per_index(self, table):
        wide = pivot(table, ["k"], "label", "v")
        assert wide.num_rows == np.unique(table["k"]).size


class TestJoinLaws:
    @given(table=small_table())
    @settings(max_examples=60, deadline=None)
    def test_left_join_preserves_left_rows(self, table):
        right = ColumnTable(
            {"k": np.arange(3), "meta": ["x", "y", "z"]}
        )
        out = hash_join(table, right, on=["k"], how="left")
        assert out.num_rows == table.num_rows
        np.testing.assert_array_equal(out["v"], table["v"])

    @given(table=small_table())
    @settings(max_examples=60, deadline=None)
    def test_inner_join_subset_of_left(self, table):
        right = ColumnTable({"k": np.arange(2), "meta": ["x", "y"]})
        out = hash_join(table, right, on=["k"], how="inner")
        assert out.num_rows == int(np.isin(table["k"], [0, 1]).sum())

    @given(table=small_table())
    @settings(max_examples=40, deadline=None)
    def test_join_with_universal_right_is_identity_plus_column(self, table):
        right = ColumnTable({"k": np.arange(5), "extra": np.arange(5) * 1.0})
        out = hash_join(table, right, on=["k"], how="inner")
        assert out.num_rows == table.num_rows
        np.testing.assert_array_equal(out["extra"], table["k"].astype(float))
