"""Unit tests for event-time watermarks."""

import numpy as np
import pytest

from repro.columnar import ColumnTable
from repro.pipeline import Watermark


def batch(times):
    times = np.asarray(times, dtype=float)
    return ColumnTable({"timestamp": times, "v": np.zeros(times.size)})


class TestWatermark:
    def test_initial_batch_within_delay_accepted(self):
        wm = Watermark(delay_s=10.0)
        on_time, late = wm.split(batch([95.0, 100.0]))
        assert on_time.num_rows == 2 and late.num_rows == 0

    def test_rows_behind_watermark_marked_late(self):
        wm = Watermark(delay_s=10.0)
        wm.split(batch([100.0]))
        on_time, late = wm.split(batch([85.0, 95.0]))
        assert late.num_rows == 1  # 85 < 100-10
        assert on_time.num_rows == 1

    def test_watermark_advances_monotonically(self):
        wm = Watermark(delay_s=5.0)
        wm.observe(np.array([50.0]))
        wm.observe(np.array([20.0]))  # regression does not move it back
        assert wm.current == 45.0

    def test_batch_own_max_marks_its_stragglers_late(self):
        """Regression: the watermark advances *before* the split (the
        documented contract), so a batch whose own max moves the
        watermark past some of its rows drops those rows as late.  The
        old code captured the threshold before observing the batch and
        silently admitted them."""
        wm = Watermark(delay_s=1.0)
        on_time, late = wm.split(batch([0.0, 1000.0]))
        assert wm.current == 999.0  # advanced by this very batch
        assert late.num_rows == 1  # 0.0 < 999.0
        assert on_time.num_rows == 1
        assert wm.stats.rows_late == 1

    def test_stats_accumulate(self):
        wm = Watermark(delay_s=0.0)
        wm.split(batch([100.0]))
        wm.split(batch([50.0, 150.0]))
        assert wm.stats.rows_seen == 3
        assert wm.stats.rows_late == 1
        assert wm.stats.late_fraction == pytest.approx(1 / 3)

    def test_zero_seen_late_fraction(self):
        assert Watermark().stats.late_fraction == 0.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Watermark(delay_s=-1.0)

    def test_empty_observe_noop(self):
        wm = Watermark(delay_s=1.0)
        wm.observe(np.array([]))
        assert wm.max_event_time == float("-inf")
