"""Unit + integration tests for the Bronze/Silver/Gold medallion stages."""

import numpy as np
import pytest

from repro.pipeline import (
    MedallionPipeline,
    bronze_standardize,
    gold_job_profiles,
    silver_aggregate,
)
from repro.pipeline.medallion import gold_job_summary
from repro.telemetry import MINI, PowerThermalSource, synthetic_job_mix


@pytest.fixture(scope="module")
def setting():
    allocation = synthetic_job_mix(MINI, 0.0, 3600.0, np.random.default_rng(5))
    source = PowerThermalSource(MINI, allocation, seed=0, loss_rate=0.02)
    batches = [source.emit(t, t + 60.0) for t in (0.0, 60.0, 120.0)]
    return allocation, source, batches


class TestBronze:
    def test_long_format_columns(self, setting):
        _, _, batches = setting
        bronze = bronze_standardize(batches)
        assert bronze.column_names == [
            "timestamp", "component_id", "sensor_id", "value"
        ]
        assert bronze.num_rows == sum(len(b) for b in batches)

    def test_empty_input(self):
        assert bronze_standardize([]).num_rows == 0


class TestSilver:
    def test_wide_format_with_sensor_columns(self, setting):
        allocation, source, batches = setting
        bronze = bronze_standardize(batches)
        silver = silver_aggregate(bronze, source.catalog, 15.0, allocation)
        assert "input_power" in silver
        assert "gpu0_power" in silver
        assert "job_id" in silver
        # One row per (bucket, node): 12 buckets x 16 nodes.
        assert silver.num_rows == 12 * MINI.n_nodes

    def test_timestamps_snapped_to_buckets(self, setting):
        allocation, source, batches = setting
        silver = silver_aggregate(
            bronze_standardize(batches), source.catalog, 15.0, allocation
        )
        assert (np.mod(silver["timestamp"], 15.0) == 0).all()

    def test_silver_much_smaller_than_bronze(self, setting):
        """The paper's headline compaction: Silver is a 'more compact and
        computationally efficient' artifact."""
        allocation, source, batches = setting
        bronze = bronze_standardize(batches)
        silver = silver_aggregate(bronze, source.catalog, 15.0, allocation)
        assert silver.num_rows < bronze.num_rows / 5

    def test_aggregation_preserves_mean_power_scale(self, setting):
        allocation, source, batches = setting
        bronze = bronze_standardize(batches)
        silver = silver_aggregate(bronze, source.catalog, 15.0, allocation)
        sid = source.catalog.id_of("input_power")
        raw = bronze.filter(bronze["sensor_id"] == sid)["value"]
        assert silver["input_power"][
            ~np.isnan(silver["input_power"])
        ].mean() == pytest.approx(raw.mean(), rel=0.05)

    def test_without_allocation_no_job_column(self, setting):
        _, source, batches = setting
        silver = silver_aggregate(bronze_standardize(batches), source.catalog)
        assert "job_id" not in silver

    def test_empty_bronze(self, setting):
        _, source, _ = setting
        assert silver_aggregate(
            bronze_standardize([]), source.catalog
        ).num_rows == 0


class TestGold:
    def test_profiles_per_job_and_bucket(self, setting):
        allocation, source, batches = setting
        silver = silver_aggregate(
            bronze_standardize(batches), source.catalog, 15.0, allocation
        )
        gold = gold_job_profiles(silver)
        assert set(gold.column_names) == {
            "job_id", "timestamp", "power_w", "n_nodes"
        }
        assert (gold["job_id"] >= 0).all()

    def test_job_power_sums_node_power(self, setting):
        allocation, source, batches = setting
        silver = silver_aggregate(
            bronze_standardize(batches), source.catalog, 15.0, allocation
        )
        gold = gold_job_profiles(silver)
        # Node-level silver power for one (job, bucket) must sum to gold.
        jid = int(gold["job_id"][0])
        ts = gold["timestamp"][0]
        rows = silver.filter(
            (silver["job_id"] == jid) & (silver["timestamp"] == ts)
        )
        assert gold["power_w"][0] == pytest.approx(
            np.nansum(rows["input_power"]), rel=1e-9
        )

    def test_summary_energy_positive(self, setting):
        allocation, source, batches = setting
        silver = silver_aggregate(
            bronze_standardize(batches), source.catalog, 15.0, allocation
        )
        summary = gold_job_summary(gold_job_profiles(silver))
        assert (summary["energy_j"] > 0).all()
        assert (summary["max_power_w"] >= summary["mean_power_w"] - 1e-9).all()

    def test_empty_inputs(self):
        from repro.columnar import ColumnTable

        assert gold_job_profiles(ColumnTable({})).num_rows == 0
        assert gold_job_summary(ColumnTable({})).num_rows == 0


class TestMedallionPipeline:
    def test_funnel_accounting(self, setting):
        allocation, source, batches = setting
        pipe = MedallionPipeline(source.catalog, allocation, 15.0)
        out = pipe.process(batches)
        assert set(out) == {"bronze", "silver", "gold"}
        funnel = pipe.funnel()
        names = [s.name for s in funnel]
        assert names == ["bronze", "silver", "gold"]
        silver_stats = funnel[1]
        assert silver_stats.rows_in > silver_stats.rows_out
        assert silver_stats.row_reduction > 5
        assert silver_stats.wall_s > 0

    def test_stats_accumulate_across_batches(self, setting):
        allocation, source, batches = setting
        pipe = MedallionPipeline(source.catalog, allocation, 15.0)
        pipe.process(batches[:1])
        pipe.process(batches[1:])
        assert pipe.stats["bronze"].invocations == 2

    def test_byte_reduction_raw_to_silver(self, setting):
        """Raw -> Silver shrinks byte volume (the paper's motivation for
        precomputing Silver upstream)."""
        allocation, source, batches = setting
        pipe = MedallionPipeline(source.catalog, allocation, 15.0)
        pipe.process(batches)
        bronze_bytes_in = pipe.stats["bronze"].bytes_in
        silver_bytes_out = pipe.stats["silver"].bytes_out
        assert silver_bytes_out < bronze_bytes_in
