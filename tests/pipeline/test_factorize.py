"""The cached factorizer must be indistinguishable from the reference.

``factorize`` is the hot inner loop of pivot/group-by; its fast path
hashes object columns and memoizes codes by content digest.  Every
result — codes and first-appearance vocabulary — must match the
reference dict-walk implementation exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import factorize as fz


def assert_same(result, reference, float_ok=False):
    codes, uniq = result
    ref_codes, ref_uniq = reference
    assert codes.dtype == ref_codes.dtype
    assert list(codes) == list(ref_codes)
    if float_ok and getattr(ref_uniq, "dtype", None) is not None and (
        ref_uniq.dtype.kind == "f"
    ):
        assert np.array_equal(uniq, ref_uniq, equal_nan=True)
    else:
        assert list(uniq) == list(ref_uniq)


strings = st.text(
    alphabet=st.characters(codec="utf-8"), max_size=8
)


@settings(max_examples=150, deadline=None)
@given(st.lists(st.one_of(strings, st.none()), max_size=40))
def test_object_matches_reference(values):
    col = np.array(values, dtype=object)
    with fz.cache_disabled():
        assert_same(fz.factorize(col), fz.factorize_reference(col))


@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        st.floats(allow_nan=True, allow_infinity=True, width=64), max_size=40
    )
)
def test_float_matches_reference(values):
    col = np.array(values, dtype=np.float64)
    with fz.cache_disabled():
        assert_same(
            fz.factorize(col), fz.factorize_reference(col), float_ok=True
        )


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(-(2**40), 2**40), max_size=40))
def test_int_matches_reference(values):
    col = np.array(values, dtype=np.int64)
    with fz.cache_disabled():
        assert_same(fz.factorize(col), fz.factorize_reference(col))


@settings(max_examples=100, deadline=None)
@given(st.lists(st.one_of(strings, st.none()), min_size=1, max_size=30))
def test_cache_hit_equals_cold(values):
    col = np.array(values, dtype=object)
    fz.clear_cache()
    cold = fz.factorize(col)
    hot = fz.factorize(np.array(values, dtype=object))
    assert_same(hot, cold)
    assert_same(hot, fz.factorize_reference(col))


def test_roundtrip_reconstruction():
    col = np.array(["b", None, "a", "b", "", "a\x00b", None], dtype=object)
    codes, uniq = fz.factorize(col)
    rebuilt = uniq[codes]
    expected = np.array(["b", "", "a", "b", "", "a\x00b", ""], dtype=object)
    assert list(rebuilt) == list(expected)


def test_tricky_strings():
    cases = [
        ["", None],
        ["a\x00", "a"],
        ["ñ", "n", "ñ"],
        ["0", 0.0, "0.0"],  # mixed types, hash(0.0) == 0 vs salted str hashes
    ]
    with fz.cache_disabled():
        for values in cases:
            col = np.array(values, dtype=object)
            assert_same(fz.factorize(col), fz.factorize_reference(col))


def test_hashable_non_string_contents():
    col = np.empty(4, dtype=object)
    col[0], col[1], col[2], col[3] = (1, 2), (1, 2), (3,), (1, 2)
    with fz.cache_disabled():
        assert_same(fz.factorize(col), fz.factorize_reference(col))


def test_cached_arrays_are_readonly():
    fz.clear_cache()
    col = np.array(["r", "s", "r"], dtype=object)
    fz.factorize(col)
    codes, uniq = fz.factorize(np.array(["r", "s", "r"], dtype=object))
    with pytest.raises(ValueError):
        codes[0] = 9


def test_cache_stats_and_clear():
    fz.clear_cache()
    col = np.arange(4096)  # above the numeric memo's size floor
    fz.factorize(col)
    fz.factorize(np.arange(4096))
    stats = fz.cache_stats()
    assert stats["hits"] >= 1 and stats["misses"] >= 1
    fz.clear_cache()
    assert fz.cache_stats()["entries"] == 0


def test_small_numeric_columns_skip_memo():
    """Below the size floor the memo would cost more than it saves."""
    fz.clear_cache()
    fz.factorize(np.arange(16))
    fz.factorize(np.arange(16))
    assert fz.cache_stats()["entries"] == 0


def test_reference_mode_routes_everything():
    col = np.array(["x", "y", "x"], dtype=object)
    with fz.factorize_reference_mode():
        fz.clear_cache()
        codes, uniq = fz.factorize(col)
        assert fz.cache_stats()["misses"] == 0  # memo fully bypassed
    assert list(codes) == [0, 1, 0]
    assert list(uniq) == ["x", "y"]
