"""Property-based tests for recovery equivalence and group coverage.

The recovery property is the heart of the §V-B claim: *no matter where
a crash lands*, a restarted checkpointed pipeline with an idempotent
sink produces exactly the output of a crash-free run.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import ColumnTable
from repro.pipeline import CheckpointStore, StreamingQuery
from repro.stream import Broker, Consumer, TopicConfig


def transform(records):
    return ColumnTable(
        {"timestamp": np.array([r.value for r in records], dtype=float)}
    )


class RecordingSink:
    def __init__(self, crash_on: set[int]):
        self.crash_on = set(crash_on)
        self.batches: dict[int, list[float]] = {}

    def __call__(self, batch_id, table):
        if batch_id in self.crash_on:
            self.crash_on.discard(batch_id)  # transient fault
            raise RuntimeError("crash")
        self.batches[batch_id] = table["timestamp"].tolist()

    def all_rows(self):
        return sorted(v for rows in self.batches.values() for v in rows)


class TestRecoveryEquivalence:
    @given(
        n_records=st.integers(1, 120),
        batch_size=st.integers(1, 40),
        crash_batches=st.sets(st.integers(0, 12), max_size=4),
        n_partitions=st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_crash_pattern_yields_same_output(
        self, n_records, batch_size, crash_batches, n_partitions
    ):
        broker = Broker()
        broker.create_topic(TopicConfig("t", n_partitions))
        for i in range(n_records):
            broker.produce("t", float(i), key=f"k{i % 5}")

        sink = RecordingSink(crash_batches)
        store = CheckpointStore()
        for _ in range(40):  # restart loop
            query = StreamingQuery(
                "q", broker, "t", transform, sink, store,
                max_records_per_batch=batch_size,
            )
            try:
                query.run_until_caught_up()
                if query.lag() == 0:
                    break
            except RuntimeError:
                continue
        assert sink.all_rows() == [float(i) for i in range(n_records)]


class TestConsumerGroupCoverage:
    @given(
        n_records=st.integers(0, 100),
        n_partitions=st.integers(1, 8),
        group_size=st.integers(1, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_group_members_partition_the_log(
        self, n_records, n_partitions, group_size
    ):
        """Every record is consumed by exactly one group member."""
        broker = Broker()
        broker.create_topic(TopicConfig("t", n_partitions))
        for i in range(n_records):
            broker.produce("t", i, key=f"key-{i % 7}")
        consumed: list[int] = []
        for member in range(group_size):
            consumer = Consumer(
                broker, "t", "g", member=member, group_size=group_size
            )
            consumed.extend(r.value for r in consumer.poll(10_000))
        assert sorted(consumed) == list(range(n_records))
