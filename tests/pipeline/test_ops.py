"""Unit + property tests for the relational operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import Col, ColumnTable
from repro.pipeline import group_by_agg, hash_join, pivot, resample, select, where


def make_table():
    return ColumnTable(
        {
            "t": np.array([0.0, 5.0, 10.0, 15.0, 20.0, 25.0]),
            "node": np.array([0, 1, 0, 1, 0, 1]),
            "sensor": ["p", "p", "q", "q", "p", "q"],
            "value": np.array([10.0, 20.0, 30.0, 40.0, 50.0, 60.0]),
        }
    )


class TestSelectWhere:
    def test_select(self):
        out = select(make_table(), ["value", "node"])
        assert out.column_names == ["value", "node"]

    def test_where(self):
        out = where(make_table(), Col("node") == 0)
        assert out.num_rows == 3
        assert (out["node"] == 0).all()


class TestGroupByAgg:
    def test_single_key_multiple_aggs(self):
        out = group_by_agg(
            make_table(),
            ["node"],
            {"total": ("value", "sum"), "n": ("value", "count")},
        )
        assert out.num_rows == 2
        np.testing.assert_allclose(out["total"], [90.0, 120.0])
        np.testing.assert_allclose(out["n"], [3, 3])

    def test_multi_key_with_string(self):
        out = group_by_agg(
            make_table(), ["node", "sensor"], {"m": ("value", "mean")}
        )
        assert out.num_rows == 4
        # Group (0, "p") -> mean(10, 50) = 30.
        mask = (out["node"] == 0) & np.array(
            [s == "p" for s in out["sensor"].tolist()]
        )
        assert out["m"][mask][0] == 30.0

    def test_empty_table(self):
        empty = make_table().filter(np.zeros(6, dtype=bool))
        out = group_by_agg(empty, ["node"], {"m": ("value", "mean")})
        assert out.num_rows == 0
        assert "m" in out and "node" in out

    def test_requires_keys(self):
        with pytest.raises(ValueError):
            group_by_agg(make_table(), [], {"m": ("value", "mean")})

    @given(
        values=st.lists(st.floats(-100, 100), min_size=1, max_size=80),
        n_groups=st.integers(1, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_sum_conserved(self, values, n_groups):
        """Sum of group sums equals total sum (mass conservation)."""
        v = np.array(values)
        table = ColumnTable(
            {"k": np.arange(v.size) % n_groups, "v": v}
        )
        out = group_by_agg(table, ["k"], {"s": ("v", "sum")})
        assert out["s"].sum() == pytest.approx(v.sum(), rel=1e-9, abs=1e-6)

    @given(
        n=st.integers(1, 60),
        n_groups=st.integers(1, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_counts_partition_rows(self, n, n_groups):
        table = ColumnTable({"k": np.arange(n) % n_groups, "v": np.ones(n)})
        out = group_by_agg(table, ["k"], {"c": ("v", "count")})
        assert out["c"].sum() == n


class TestPivot:
    def test_long_to_wide(self):
        out = pivot(
            make_table(),
            index=["t"],
            column_key="sensor",
            value="value",
        )
        assert set(out.column_names) == {"t", "p", "q"}
        assert out.num_rows == 6
        row0 = out.filter(out["t"] == 0.0)
        assert row0["p"][0] == 10.0
        assert np.isnan(row0["q"][0])

    def test_multi_index_pivot(self):
        out = pivot(
            make_table(),
            index=["node", "t"],
            column_key="sensor",
            value="value",
        )
        assert {"node", "t", "p", "q"} == set(out.column_names)

    def test_duplicate_cells_aggregated(self):
        t = ColumnTable(
            {
                "g": [0, 0, 1],
                "k": ["x", "x", "x"],
                "v": [1.0, 3.0, 5.0],
            }
        )
        out = pivot(t, ["g"], "k", "v", agg="mean")
        np.testing.assert_allclose(out["x"], [2.0, 5.0])

    def test_custom_fill_and_names(self):
        out = pivot(
            make_table(),
            ["t"],
            "sensor",
            "value",
            name_fn=lambda k: f"sensor_{k}",
            fill=0.0,
        )
        assert "sensor_p" in out
        assert not np.isnan(out["sensor_q"]).any()


class TestHashJoin:
    def left(self):
        return ColumnTable(
            {"node": np.array([0, 1, 2, 0]), "v": np.array([1.0, 2.0, 3.0, 4.0])}
        )

    def right(self):
        return ColumnTable(
            {"node": np.array([0, 1]), "rack": ["r0", "r1"],
             "slots": np.array([4, 8])}
        )

    def test_inner_join(self):
        out = hash_join(self.left(), self.right(), on=["node"], how="inner")
        assert out.num_rows == 3  # node 2 unmatched
        assert set(out.column_names) == {"node", "v", "rack", "slots"}

    def test_left_join_fills_unmatched(self):
        out = hash_join(self.left(), self.right(), on=["node"], how="left")
        assert out.num_rows == 4
        unmatched = out.filter(out["node"] == 2)
        assert np.isnan(unmatched["slots"][0])
        assert unmatched["rack"][0] is None

    def test_duplicate_right_keys_rejected(self):
        dup = ColumnTable({"node": [0, 0], "x": [1.0, 2.0]})
        with pytest.raises(ValueError, match="duplicate"):
            hash_join(self.left(), dup, on=["node"])

    def test_multi_key_join(self):
        left = ColumnTable(
            {"a": [0, 0, 1], "b": ["x", "y", "x"], "v": [1.0, 2.0, 3.0]}
        )
        right = ColumnTable({"a": [0, 1], "b": ["x", "x"], "w": [10.0, 30.0]})
        out = hash_join(left, right, on=["a", "b"], how="inner")
        assert out.num_rows == 2
        np.testing.assert_allclose(out["w"], [10.0, 30.0])

    def test_name_collision_suffixed(self):
        left = ColumnTable({"k": [0], "v": [1.0]})
        right = ColumnTable({"k": [0], "v": [9.0]})
        out = hash_join(left, right, on=["k"])
        assert "v_r" in out and out["v_r"][0] == 9.0

    def test_invalid_how(self):
        with pytest.raises(ValueError):
            hash_join(self.left(), self.right(), on=["node"], how="outer")

    def test_empty_right(self):
        right = ColumnTable({"node": np.empty(0, dtype=int),
                             "rack": np.empty(0, dtype=object)})
        out = hash_join(self.left(), right, on=["node"], how="left")
        assert out.num_rows == 4
        assert all(x is None for x in out["rack"].tolist())


class TestResample:
    def test_time_bucketing(self):
        out = resample(
            make_table(),
            time_column="t",
            interval=10.0,
            keys=["node"],
            aggs={"m": ("value", "mean")},
        )
        # Buckets: [0,10), [10,20), [20,30) x nodes present in each.
        assert "bucket" in out
        b0n0 = out.filter((out["bucket"] == 0.0) & (out["node"] == 0))
        assert b0n0["m"][0] == 10.0

    def test_aggs_required(self):
        with pytest.raises(ValueError):
            resample(make_table(), "t", 10.0)
