"""Unit tests for the micro-batch streaming driver, including the
crash-recovery and effectively-once contracts."""

import numpy as np
import pytest

from repro.columnar import ColumnTable
from repro.pipeline import CheckpointStore, StreamingQuery, Watermark
from repro.stream import Broker, TopicConfig


def make_broker(n_partitions=2):
    broker = Broker()
    broker.create_topic(TopicConfig("obs", n_partitions))
    return broker


def records_to_table(records):
    values = np.array([r.value for r in records], dtype=float)
    return ColumnTable({"timestamp": values, "v": values * 2})


class CollectingSink:
    """Idempotent sink: last write per batch_id wins."""

    def __init__(self, fail_on_batch=None):
        self.batches = {}
        self.calls = 0
        self.fail_on_batch = fail_on_batch

    def __call__(self, batch_id, table):
        self.calls += 1
        if batch_id == self.fail_on_batch:
            self.fail_on_batch = None  # fail once
            raise RuntimeError("sink crashed")
        self.batches[batch_id] = table

    def total_rows(self):
        return sum(t.num_rows for t in self.batches.values())


def make_query(broker, sink, checkpoint=None, watermark=None, **kw):
    return StreamingQuery(
        "q1",
        broker,
        "obs",
        records_to_table,
        sink,
        checkpoint or CheckpointStore(),
        watermark=watermark,
        **kw,
    )


class TestBasicDriver:
    def test_processes_available_records(self):
        broker = make_broker()
        for i in range(10):
            broker.produce("obs", float(i))
        sink = CollectingSink()
        query = make_query(broker, sink)
        result = query.run_once()
        assert result.records_in == 10
        assert result.rows_out == 10
        assert sink.total_rows() == 10

    def test_empty_trigger(self):
        query = make_query(make_broker(), CollectingSink())
        result = query.run_once()
        assert result.empty
        assert result.batch_id == 0

    def test_batch_ids_increment(self):
        broker = make_broker()
        sink = CollectingSink()
        query = make_query(broker, sink)
        broker.produce("obs", 1.0)
        r0 = query.run_once()
        broker.produce("obs", 2.0)
        r1 = query.run_once()
        assert (r0.batch_id, r1.batch_id) == (0, 1)

    def test_no_duplicate_processing(self):
        broker = make_broker()
        for i in range(5):
            broker.produce("obs", float(i))
        sink = CollectingSink()
        query = make_query(broker, sink)
        query.run_once()
        result = query.run_once()  # nothing new
        assert result.records_in == 0
        assert sink.total_rows() == 5

    def test_backpressure_bound(self):
        broker = make_broker(1)
        for i in range(25):
            broker.produce("obs", float(i))
        query = make_query(broker, CollectingSink(), max_records_per_batch=10)
        assert query.run_once().records_in == 10
        assert query.lag() == 15

    def test_run_until_caught_up(self):
        broker = make_broker(1)
        for i in range(25):
            broker.produce("obs", float(i))
        sink = CollectingSink()
        query = make_query(broker, sink, max_records_per_batch=10)
        results = query.run_until_caught_up()
        assert len(results) == 3
        assert query.lag() == 0
        assert sink.total_rows() == 25

    def test_invalid_batch_bound(self):
        with pytest.raises(ValueError):
            make_query(make_broker(), CollectingSink(), max_records_per_batch=0)


class TestRecovery:
    def test_restart_resumes_from_checkpoint(self):
        broker = make_broker()
        checkpoint = CheckpointStore()
        sink = CollectingSink()
        for i in range(5):
            broker.produce("obs", float(i))
        make_query(broker, sink, checkpoint).run_once()
        # "Crash" and restart with the same checkpoint store.
        for i in range(5, 8):
            broker.produce("obs", float(i))
        query2 = make_query(broker, sink, checkpoint)
        result = query2.run_once()
        assert result.batch_id == 1
        assert result.records_in == 3  # only the new records
        assert sink.total_rows() == 8

    def test_sink_failure_replays_same_batch_id(self):
        broker = make_broker()
        checkpoint = CheckpointStore()
        for i in range(5):
            broker.produce("obs", float(i))
        sink = CollectingSink(fail_on_batch=0)
        query = make_query(broker, sink, checkpoint)
        with pytest.raises(RuntimeError):
            query.run_once()
        # No checkpoint was written; a restarted query replays batch 0.
        query2 = make_query(broker, sink, checkpoint)
        result = query2.run_once()
        assert result.batch_id == 0
        assert result.records_in == 5
        assert sink.total_rows() == 5  # idempotent sink: exactly once

    def test_effectively_once_row_totals_after_crash(self):
        """At-least-once delivery + idempotent sink = no lost or extra rows."""
        broker = make_broker()
        checkpoint = CheckpointStore()
        sink = CollectingSink(fail_on_batch=1)
        for i in range(4):
            broker.produce("obs", float(i))
        query = make_query(broker, sink, checkpoint, max_records_per_batch=2)
        query.run_once()  # batch 0 ok
        with pytest.raises(RuntimeError):
            query.run_once()  # batch 1 crashes mid-sink
        query2 = make_query(broker, sink, checkpoint, max_records_per_batch=2)
        query2.run_until_caught_up()
        assert sink.total_rows() == 4

    def test_watermark_state_restored(self):
        broker = make_broker()
        checkpoint = CheckpointStore()
        sink = CollectingSink()
        broker.produce("obs", 100.0)
        wm1 = Watermark(delay_s=10.0)
        make_query(broker, sink, checkpoint, watermark=wm1).run_once()
        # Restart: the new watermark object resumes at max_event_time=100.
        wm2 = Watermark(delay_s=10.0)
        query2 = make_query(broker, sink, checkpoint, watermark=wm2)
        assert wm2.max_event_time == 100.0
        broker.produce("obs", 50.0)  # behind 100-10=90 -> late
        result = query2.run_once()
        assert result.rows_late == 1


class TestWatermarkIntegration:
    def test_late_rows_filtered_from_sink(self):
        broker = make_broker()
        sink = CollectingSink()
        wm = Watermark(delay_s=5.0)
        query = make_query(broker, sink, watermark=wm)
        broker.produce("obs", 100.0)
        query.run_once()
        broker.produce("obs", 10.0)  # very late
        result = query.run_once()
        assert result.rows_late == 1
        assert result.rows_out == 0
