"""Unit tests for the OCEAN object store."""

import pytest

from repro.storage import ObjectStore


@pytest.fixture
def store():
    s = ObjectStore()
    s.create_bucket("b")
    return s


class TestBuckets:
    def test_create_idempotent(self, store):
        store.create_bucket("b")
        assert store.buckets() == ["b"]

    def test_unknown_bucket(self, store):
        with pytest.raises(KeyError):
            store.get("nope", "k")


class TestObjects:
    def test_put_get_roundtrip(self, store):
        store.put("b", "k", b"data")
        assert store.get("b", "k") == b"data"

    def test_objects_immutable_by_default(self, store):
        store.put("b", "k", b"v1")
        with pytest.raises(ValueError):
            store.put("b", "k", b"v2")
        assert store.get("b", "k") == b"v1"

    def test_overwrite_flag(self, store):
        store.put("b", "k", b"v1")
        store.put("b", "k", b"v2", overwrite=True)
        assert store.get("b", "k") == b"v2"

    def test_head_returns_metadata(self, store):
        store.put("b", "k", b"12345", created_at=9.0, user_meta={"cls": "bronze"})
        meta = store.head("b", "k")
        assert meta.size == 5
        assert meta.created_at == 9.0
        assert meta.user_meta["cls"] == "bronze"

    def test_head_does_not_count_read(self, store):
        store.put("b", "k", b"x")
        store.head("b", "k")
        assert store.gets == 0

    def test_missing_object(self, store):
        with pytest.raises(KeyError):
            store.get("b", "nope")
        with pytest.raises(KeyError):
            store.head("b", "nope")

    def test_exists(self, store):
        assert not store.exists("b", "k")
        store.put("b", "k", b"x")
        assert store.exists("b", "k")

    def test_list_prefix_sorted(self, store):
        for key in ("a/2", "a/1", "z/1"):
            store.put("b", key, b"x")
        keys = [m.key for m in store.list("b", prefix="a/")]
        assert keys == ["a/1", "a/2"]

    def test_delete(self, store):
        store.put("b", "k", b"x")
        store.delete("b", "k")
        assert not store.exists("b", "k")
        with pytest.raises(KeyError):
            store.delete("b", "k")


class TestAccounting:
    def test_byte_and_op_counters(self, store):
        store.put("b", "k1", b"abc")
        store.put("b", "k2", b"defg")
        store.get("b", "k1")
        assert store.total_bytes() == 7
        assert store.bucket_bytes("b") == 7
        assert store.total_objects() == 2
        assert store.puts == 2 and store.gets == 1
        assert store.bytes_written == 7 and store.bytes_read == 3
