"""Unit tests for the GLACIER tape archive."""

import pytest

from repro.storage import TapeArchive
from repro.storage.glacier import (  # noqa: F401
    MOUNT_TIME_S,
    TAPE_BANDWIDTH_BPS,
    TAPE_CAPACITY_BYTES,
)


class TestArchive:
    def test_roundtrip(self):
        tape = TapeArchive()
        tape.archive("k", b"frozen")
        data, est = tape.retrieve("k")
        assert data == b"frozen"
        assert est.total_s > 0

    def test_frozen_keys_immutable(self):
        tape = TapeArchive()
        tape.archive("k", b"v1")
        with pytest.raises(ValueError):
            tape.archive("k", b"v2")

    def test_missing_key(self):
        with pytest.raises(KeyError):
            TapeArchive().retrieve("nope")

    def test_keys_sorted(self):
        tape = TapeArchive()
        tape.archive("b", b"x")
        tape.archive("a", b"y")
        assert tape.keys() == ["a", "b"]
        assert tape.exists("a") and not tape.exists("c")


class TestLatencyModel:
    def test_first_retrieval_pays_mount(self):
        tape = TapeArchive()
        tape.archive("k", b"x")
        est = tape.estimate_retrieval("k")
        assert est.mount_s == MOUNT_TIME_S

    def test_same_tape_second_read_skips_mount(self):
        tape = TapeArchive()
        tape.archive("a", b"x")
        tape.archive("b", b"y")
        tape.retrieve("a")
        assert tape.estimate_retrieval("b").mount_s == 0.0

    def test_transfer_scales_with_size(self):
        tape = TapeArchive()
        tape.archive("big", b"x" * 10_000_000)
        est = tape.estimate_retrieval("big")
        assert est.transfer_s == pytest.approx(1e7 / TAPE_BANDWIDTH_BPS)

    def test_deeper_position_seeks_longer(self):
        tape = TapeArchive()
        tape.archive("first", b"x" * 1_000_000)
        tape.archive("second", b"y")
        assert (
            tape.estimate_retrieval("second").seek_s
            > tape.estimate_retrieval("first").seek_s
        )

    def test_retrieval_orders_of_magnitude_slower_than_disk(self):
        """The asymmetry behind the 'freeze Bronze' policy."""
        tape = TapeArchive()
        tape.archive("k", b"x" * 1_000_000)
        _, est = tape.retrieve("k")
        assert est.total_s > 10.0  # seconds-to-minutes, never milliseconds

    def test_stats_accumulate(self):
        tape = TapeArchive()
        tape.archive("k", b"x")
        tape.retrieve("k")
        tape.retrieve("k")
        assert tape.retrievals == 2
        assert tape.total_retrieval_s > 0


class TestCapacity:
    def test_spills_to_new_tape(self):
        tape = TapeArchive(tape_capacity_bytes=1000)
        big = b"x" * 600
        tape.archive("a", big)
        tape.archive("b", big)
        assert tape.n_tapes() == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TapeArchive(tape_capacity_bytes=0)

    def test_cost_cheaper_than_disk(self):
        tape = TapeArchive()
        tape.archive("k", b"x" * 1000)
        assert tape.monthly_cost_units() < 1000  # disk units would be 1000
