"""Unit tests for OCEAN compaction."""

import numpy as np
import pytest

from repro.columnar import ColumnTable
from repro.storage import DataClass, TieredStore


def batch(t_start, n=50):
    rng = np.random.default_rng(int(t_start))
    return ColumnTable(
        {
            "timestamp": t_start + np.arange(n, dtype=float),
            "node": rng.integers(0, 8, n),
            "value": rng.normal(100.0, 10.0, n),
        }
    )


@pytest.fixture
def store():
    ts = TieredStore()
    ts.register("power.silver", DataClass.SILVER)
    for i in range(6):
        ts.ingest("power.silver", batch(i * 100.0), now=float(i))
    return ts


class TestCompaction:
    def test_merges_parts_into_one(self, store):
        before = store.scan_ocean("power.silver")
        result = store.compact("power.silver")
        assert result["merged"] == 6
        parts = store.ocean.list(store.OCEAN_BUCKET, prefix="power.silver/")
        assert len(parts) == 1
        assert store.scan_ocean("power.silver") == before

    def test_compaction_shrinks_or_holds_bytes(self, store):
        result = store.compact("power.silver")
        assert result["bytes_after"] <= result["bytes_before"] * 1.1

    def test_min_objects_threshold(self, store):
        store.compact("power.silver")
        again = store.compact("power.silver", min_objects=4)
        assert again["merged"] == 0  # only one object left

    def test_compacted_object_keeps_newest_timestamp(self, store):
        store.compact("power.silver")
        meta = store.ocean.list(store.OCEAN_BUCKET, prefix="power.silver/")[0]
        assert meta.created_at == 5.0
        assert meta.user_meta["compacted_from"] == "6"

    def test_unregistered_dataset_rejected(self, store):
        with pytest.raises(KeyError):
            store.compact("nope")

    def test_retention_applies_to_compacted_object(self, store):
        from repro.storage.tiers import DAY_S

        store.compact("power.silver")
        report = store.enforce(now=6 * 365 * DAY_S)
        # Silver OCEAN retention is 5 years: the compacted object ages out.
        assert report["ocean_archived"] == 1

    def test_queries_after_compaction(self, store):
        from repro.columnar import Col

        store.compact("power.silver")
        out = store.scan_ocean("power.silver", predicate=Col("node") == 3)
        assert (out["node"] == 3).all()


class TestAtomicPartAllocation:
    def test_concurrent_allocation_yields_unique_parts(self):
        # Regression: ``meta.next_part += 1`` used to run outside the
        # registry lock in both ingest and compact, so pipelined ingest
        # racing the compactor could mint the same part key and the
        # second put silently shadowed the first part's rows.
        import threading

        ts = TieredStore()
        ts.register("d", DataClass.SILVER)
        meta = ts._meta("d")
        claimed: list[int] = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(250):
                claimed.append(ts._allocate_part(meta))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(claimed) == list(range(8 * 250))
        assert meta.next_part == 8 * 250

    def test_concurrent_ingest_and_compact_lose_no_rows(self):
        import threading

        ts = TieredStore()
        ts.register("d", DataClass.SILVER)
        for i in range(6):
            ts.ingest("d", batch(i * 100.0), now=float(i))
        errors: list[BaseException] = []

        def ingest_more():
            try:
                for i in range(6, 12):
                    ts.ingest("d", batch(i * 100.0), now=float(i))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        t = threading.Thread(target=ingest_more)
        t.start()
        ts.compact("d", min_objects=2)
        t.join()
        assert not errors
        out = ts.scan_ocean("d")
        assert out.num_rows == 12 * 50  # every ingested row, exactly once


class TestCacheInvalidationOnDelete:
    def test_pre_manifest_part_releases_cache_on_delete(self):
        # Regression: the delete path of enforce() computed the cache
        # token without the blob in hand, so parts written before the
        # manifest existed (no persisted digest) invalidated nothing
        # and their decoded row groups lingered in the cache.
        from repro.columnar.file_format import write_table
        from repro.query import clear_row_group_cache, invalidate_token
        from repro.storage import manifest

        ts = TieredStore()
        ts.register("g", DataClass.GOLD)  # glacier=False: pure delete
        table = batch(0.0)
        blob = write_table(table)
        ts.ocean.put(
            ts.OCEAN_BUCKET,
            "g/part-00000000.rcf",
            blob,
            created_at=0.0,
            user_meta={"dataset": "g", "class": "gold"},  # no digest
        )
        clear_row_group_cache()
        ts.query_archive("g")  # populate the cache under the blob digest
        token = manifest.blob_token(blob)
        assert invalidate_token(token) > 0  # entries exist...
        ts.query_archive("g")  # ...repopulate
        from repro.storage.tiers import DAY_S

        report = ts.enforce(now=6 * 365 * DAY_S)
        assert report["ocean_deleted"] == 1
        assert invalidate_token(token) == 0  # nothing left to release


class TestSortedRewrite:
    def test_compacted_rows_sorted_by_epoch_then_time(self):
        from repro.columnar.file_format import read_table
        from repro.storage import TierPolicy, manifest

        # OCEAN-only policy so late-arriving (out-of-time-order) batches
        # are accepted: concatenation alone would be unsorted.
        policies = {
            DataClass.SILVER: TierPolicy(
                lake_retention_s=None, ocean_retention_s=5e8, glacier=True
            )
        }
        store = TieredStore(policies=policies)
        store.register("power.silver", DataClass.SILVER)
        for i in range(6):
            store.ingest("power.silver", batch(i * 100.0), now=float(i))
        store.ingest("power.silver", batch(50.0), now=6.0)
        store.compact("power.silver")
        meta = store.ocean.list(store.OCEAN_BUCKET, prefix="power.silver/")[0]
        spans = manifest.spans_from_meta(
            meta.user_meta[manifest.SPANS_META_KEY]
        )
        assert [c for c, _ in spans] == sorted(c for c, _ in spans)
        table = read_table(store.ocean.get(store.OCEAN_BUCKET, meta.key))
        assert sum(n for _, n in spans) == table.num_rows
        ts_col = table["timestamp"]
        row = 0
        for _, n in spans:
            chunk = ts_col[row:row + n]
            assert (chunk[1:] >= chunk[:-1]).all()  # time-sorted per epoch
            row += n

    def test_retention_after_compaction_matches_uncompacted(self):
        # Regression: compact() used to stamp the merged object with the
        # newest input's created_at, resurrecting rows already past the
        # retention horizon.  Span-aware retention must expire exactly
        # the rows the uncompacted store would have expired.
        from repro.storage import TierPolicy

        policies = {
            DataClass.SILVER: TierPolicy(
                lake_retention_s=None, ocean_retention_s=2.5, glacier=True
            )
        }

        def build():
            ts = TieredStore(policies=policies)
            ts.register("d", DataClass.SILVER)
            for i in range(6):
                ts.ingest("d", batch(i * 100.0), now=float(i))
            return ts

        plain, compacted = build(), build()
        compacted.compact("d")
        plain.enforce(now=5.0)      # horizon 2.5: epochs 0..2 expire
        compacted.enforce(now=5.0)
        assert plain.scan_ocean("d") == compacted.scan_ocean("d")
        assert compacted.scan_ocean("d").num_rows == 3 * 50

    def test_split_rewrite_archives_expired_prefix(self):
        from repro.columnar.file_format import read_table
        from repro.storage import TierPolicy

        policies = {
            DataClass.SILVER: TierPolicy(
                lake_retention_s=None, ocean_retention_s=2.5, glacier=True
            )
        }
        ts = TieredStore(policies=policies)
        ts.register("d", DataClass.SILVER)
        for i in range(6):
            ts.ingest("d", batch(i * 100.0), now=float(i))
        ts.compact("d")
        report = ts.enforce(now=5.0)
        assert report["ocean_rewritten"] == 1
        keys = [k for k in ts.glacier.keys() if k.endswith("@expired")]
        assert len(keys) == 1
        frozen = read_table(ts.glacier.retrieve(keys[0])[0])
        assert frozen.num_rows == 3 * 50
        assert float(frozen["timestamp"].max()) < 300.0  # epochs 0..2 only


class TestCrashSafeCommit:
    def _store_with_faults(self, specs):
        from repro.faults.injector import FaultInjector, FaultyObjectStore
        from repro.faults.plan import FaultPlan

        ts = TieredStore()
        ts.ocean = FaultyObjectStore(ts.ocean, FaultInjector(FaultPlan(specs)))
        ts.register("d", DataClass.SILVER)
        for i in range(6):
            ts.ingest("d", batch(i * 100.0), now=float(i))
        return ts

    def test_crash_between_put_and_deletes_hides_superseded_parts(self):
        from repro.faults.errors import SimulatedCrash
        from repro.faults.plan import FaultKind, FaultSpec

        ts = self._store_with_faults(
            [FaultSpec("tier.delete", FaultKind.CRASH, at_call=1)]
        )
        oracle = ts.scan_ocean("d")
        with pytest.raises(SimulatedCrash):
            ts.compact("d")
        # Combined part committed, all six inputs still present — but
        # readers must see each row exactly once.
        assert len(ts.ocean.list(ts.OCEAN_BUCKET, prefix="d/")) == 7
        assert ts.scan_ocean("d") == oracle

    def test_sweep_collects_tombstoned_parts(self):
        from repro.faults.errors import SimulatedCrash
        from repro.faults.plan import FaultKind, FaultSpec

        ts = self._store_with_faults(
            [FaultSpec("tier.delete", FaultKind.CRASH, at_call=3)]
        )
        oracle = ts.scan_ocean("d")
        with pytest.raises(SimulatedCrash):
            ts.compact("d")
        assert ts.sweep_superseded("d") == 4  # the four survivors
        parts = ts.ocean.list(ts.OCEAN_BUCKET, prefix="d/")
        assert len(parts) == 1
        assert ts.scan_ocean("d") == oracle

    def test_crash_before_put_leaves_store_untouched(self):
        from repro.faults.errors import SimulatedCrash
        from repro.faults.plan import FaultKind, FaultSpec

        # Ingest takes puts 1..6; the compaction commit is put 7.
        ts = self._store_with_faults(
            [FaultSpec("tier.put", FaultKind.CRASH, at_call=7)]
        )
        oracle = ts.scan_ocean("d")
        with pytest.raises(SimulatedCrash):
            ts.compact("d")
        assert len(ts.ocean.list(ts.OCEAN_BUCKET, prefix="d/")) == 6
        assert ts.sweep_superseded("d") == 0  # nothing committed
        assert ts.scan_ocean("d") == oracle
        result = ts.compact("d")  # clean retry completes
        assert result["merged"] == 6
        assert ts.scan_ocean("d") == oracle
