"""Unit tests for OCEAN compaction."""

import numpy as np
import pytest

from repro.columnar import ColumnTable
from repro.storage import DataClass, TieredStore


def batch(t_start, n=50):
    rng = np.random.default_rng(int(t_start))
    return ColumnTable(
        {
            "timestamp": t_start + np.arange(n, dtype=float),
            "node": rng.integers(0, 8, n),
            "value": rng.normal(100.0, 10.0, n),
        }
    )


@pytest.fixture
def store():
    ts = TieredStore()
    ts.register("power.silver", DataClass.SILVER)
    for i in range(6):
        ts.ingest("power.silver", batch(i * 100.0), now=float(i))
    return ts


class TestCompaction:
    def test_merges_parts_into_one(self, store):
        before = store.scan_ocean("power.silver")
        result = store.compact("power.silver")
        assert result["merged"] == 6
        parts = store.ocean.list(store.OCEAN_BUCKET, prefix="power.silver/")
        assert len(parts) == 1
        assert store.scan_ocean("power.silver") == before

    def test_compaction_shrinks_or_holds_bytes(self, store):
        result = store.compact("power.silver")
        assert result["bytes_after"] <= result["bytes_before"] * 1.1

    def test_min_objects_threshold(self, store):
        store.compact("power.silver")
        again = store.compact("power.silver", min_objects=4)
        assert again["merged"] == 0  # only one object left

    def test_compacted_object_keeps_newest_timestamp(self, store):
        store.compact("power.silver")
        meta = store.ocean.list(store.OCEAN_BUCKET, prefix="power.silver/")[0]
        assert meta.created_at == 5.0
        assert meta.user_meta["compacted_from"] == "6"

    def test_unregistered_dataset_rejected(self, store):
        with pytest.raises(KeyError):
            store.compact("nope")

    def test_retention_applies_to_compacted_object(self, store):
        from repro.storage.tiers import DAY_S

        store.compact("power.silver")
        report = store.enforce(now=6 * 365 * DAY_S)
        # Silver OCEAN retention is 5 years: the compacted object ages out.
        assert report["ocean_archived"] == 1

    def test_queries_after_compaction(self, store):
        from repro.columnar import Col

        store.compact("power.silver")
        out = store.scan_ocean("power.silver", predicate=Col("node") == 3)
        assert (out["node"] == 3).all()
