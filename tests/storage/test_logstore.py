"""Unit tests for the inverted-index log store."""

import numpy as np
import pytest

from repro.storage import LogStore
from repro.telemetry import MINI, SyslogSource


@pytest.fixture(scope="module")
def store():
    source = SyslogSource(MINI, seed=19, burst_prob=0.1)
    log_store = LogStore(source.templates)
    for t in np.arange(0.0, 3600.0, 600.0):
        log_store.ingest(source.emit(t, t + 600.0))
    return log_store


class TestIngest:
    def test_documents_indexed(self, store):
        assert len(store) > 100

    def test_severity_counts_sum(self, store):
        counts = store.count_by_severity()
        assert sum(counts.values()) == len(store)
        assert counts["info"] + counts["debug"] > counts["critical"]

    def test_top_terms(self, store):
        top = store.top_terms(5)
        assert len(top) == 5
        assert top[0][1] >= top[-1][1]


class TestSearch:
    def test_term_search_matches_grep(self, store):
        hits = store.search("lustre", limit=10_000)
        assert hits
        assert all("lustre" in d.message.lower() for d in hits)

    def test_multi_term_conjunction(self, store):
        hits = store.search("gpu bus", limit=10_000)
        for doc in hits:
            assert "gpu" in doc.message.lower()
            assert "bus" in doc.message.lower()

    def test_unknown_term_empty(self, store):
        assert store.search("quantumflux") == []

    def test_node_filter(self, store):
        any_doc = store.search(limit=1)[0]
        hits = store.search(node=any_doc.node, limit=10_000)
        assert hits
        assert all(d.node == any_doc.node for d in hits)

    def test_severity_floor(self, store):
        hits = store.search(min_severity="error", limit=10_000)
        assert all(d.severity >= 3 for d in hits)

    def test_time_window(self, store):
        hits = store.search(t0=600.0, t1=1200.0, limit=10_000)
        assert hits
        assert all(600.0 <= d.timestamp < 1200.0 for d in hits)

    def test_combined_filters(self, store):
        hits = store.search(
            "kernel", min_severity="warning", t0=0.0, t1=3600.0, limit=10_000
        )
        for doc in hits:
            assert "kernel" in doc.message.lower()
            assert doc.severity >= 2

    def test_limit_respected(self, store):
        assert len(store.search(limit=5)) <= 5

    def test_index_avoids_full_scans(self, store):
        """A selective term query touches far fewer docs than the corpus
        (the point of the inverted index)."""
        before = store.scanned_docs
        store.search("voltage regulator", limit=10_000)
        touched = store.scanned_docs - before
        assert touched < len(store) / 2
