"""Unit tests for the LAKE time-series store."""

import numpy as np
import pytest

from repro.columnar import Col, ColumnTable
from repro.storage import TimeSeriesLake


def segment(t_start, n=10, node=0):
    return ColumnTable(
        {
            "timestamp": t_start + np.arange(n, dtype=float),
            "node": np.full(n, node),
            "value": np.arange(n, dtype=float),
        }
    )


@pytest.fixture
def lake():
    lk = TimeSeriesLake()
    for t in (0.0, 10.0, 20.0, 30.0):
        lk.ingest("power", segment(t))
    return lk


class TestIngest:
    def test_segments_accumulate(self, lake):
        assert lake.segment_count("power") == 4
        assert lake.row_count("power") == 40

    def test_empty_table_ignored(self, lake):
        lake.ingest("power", ColumnTable({}))
        assert lake.segment_count("power") == 4

    def test_missing_time_column_rejected(self, lake):
        with pytest.raises(ValueError):
            lake.ingest("power", ColumnTable({"x": [1.0]}))

    def test_out_of_order_segment_rejected(self, lake):
        with pytest.raises(ValueError):
            lake.ingest("power", segment(5.0))

    def test_time_bounds(self, lake):
        assert lake.time_bounds("power") == (0.0, 39.0)
        assert lake.time_bounds("nope") is None


class TestQuery:
    def test_time_range_query(self, lake):
        out = lake.query("power", 5.0, 15.0)
        assert out.num_rows == 10
        assert out["timestamp"].min() == 5.0
        assert out["timestamp"].max() == 14.0

    def test_half_open_interval(self, lake):
        out = lake.query("power", 0.0, 10.0)
        assert out.num_rows == 10
        assert 10.0 not in out["timestamp"]

    def test_unbounded_query_returns_all(self, lake):
        assert lake.query("power").num_rows == 40

    def test_predicate_and_projection(self, lake):
        out = lake.query(
            "power", predicate=Col("value") >= 8.0, columns=["value"]
        )
        assert out.column_names == ["value"]
        assert out.num_rows == 8  # two rows per segment

    def test_unknown_table_empty(self, lake):
        assert lake.query("nope").num_rows == 0

    def test_empty_result_keeps_schema(self, lake):
        out = lake.query("power", 1e9, 2e9)
        assert out.num_rows == 0

    def test_segment_pruning_counted(self, lake):
        before = lake.segments_pruned
        lake.query("power", 35.0, 36.0)
        assert lake.segments_pruned > before


class TestRetention:
    def test_drop_before_whole_segments_only(self, lake):
        dropped = lake.drop_before("power", 15.0)
        assert dropped == 1  # only segment [0,9] is entirely older
        assert lake.segment_count("power") == 3

    def test_drop_before_keeps_recent(self, lake):
        lake.drop_before("power", 100.0)
        assert lake.segment_count("power") == 0

    def test_drop_table(self, lake):
        lake.drop_table("power")
        assert lake.tables() == []
        lake.drop_table("nope")  # no-op

    def test_nbytes_shrinks_after_drop(self, lake):
        before = lake.nbytes("power")
        lake.drop_before("power", 25.0)
        assert lake.nbytes("power") < before
