"""Unit tests for the tiered store (Fig. 5 placement + retention)."""

import numpy as np
import pytest

from repro.columnar import Col, ColumnTable
from repro.storage import DataClass, TierPolicy, TieredStore
from repro.storage.tiers import DAY_S


def batch(t_start, n=20):
    return ColumnTable(
        {
            "timestamp": t_start + np.arange(n, dtype=float),
            "node": np.arange(n) % 4,
            "value": np.linspace(0, 1, n),
        }
    )


@pytest.fixture
def store():
    ts = TieredStore()
    ts.register("power.bronze", DataClass.BRONZE)
    ts.register("power.silver", DataClass.SILVER)
    ts.register("profiles.gold", DataClass.GOLD)
    return ts


class TestRegistry:
    def test_register_and_list(self, store):
        assert store.datasets()["power.bronze"] is DataClass.BRONZE

    def test_duplicate_rejected(self, store):
        with pytest.raises(ValueError):
            store.register("power.bronze", DataClass.SILVER)

    def test_unregistered_ingest_rejected(self, store):
        with pytest.raises(KeyError):
            store.ingest("nope", batch(0.0), now=0.0)


class TestPlacement:
    def test_bronze_skips_lake(self, store):
        placed = store.ingest("power.bronze", batch(0.0), now=0.0)
        assert placed == {"lake": False, "ocean": True}
        assert store.lake.row_count("power.bronze") == 0
        assert store.ocean.total_objects() == 1

    def test_silver_goes_hot_and_cold(self, store):
        placed = store.ingest("power.silver", batch(0.0), now=0.0)
        assert placed == {"lake": True, "ocean": True}
        assert store.lake.row_count("power.silver") == 20

    def test_empty_batch_noop(self, store):
        placed = store.ingest("power.silver", ColumnTable({}), now=0.0)
        assert placed == {"lake": False, "ocean": False}

    def test_ocean_keys_sequential(self, store):
        store.ingest("power.silver", batch(0.0), now=0.0)
        store.ingest("power.silver", batch(100.0), now=0.0)
        keys = [m.key for m in store.ocean.list(store.OCEAN_BUCKET)]
        assert keys == [
            "power.silver/part-00000000.rcf",
            "power.silver/part-00000001.rcf",
        ]


class TestQuery:
    def test_online_query_hits_lake(self, store):
        store.ingest("power.silver", batch(0.0), now=0.0)
        out = store.query_online("power.silver", 5.0, 10.0)
        assert out.num_rows == 5

    def test_ocean_scan_roundtrips(self, store):
        t = batch(0.0)
        store.ingest("power.silver", t, now=0.0)
        out = store.scan_ocean("power.silver")
        assert out == t

    def test_ocean_scan_with_predicate(self, store):
        store.ingest("power.silver", batch(0.0), now=0.0)
        out = store.scan_ocean("power.silver", predicate=Col("node") == 0)
        assert (out["node"] == 0).all()
        assert out.num_rows == 5


class TestRetention:
    def test_bronze_frozen_to_glacier(self, store):
        store.ingest("power.bronze", batch(0.0), now=0.0)
        report = store.enforce(now=8 * DAY_S)
        assert report["ocean_archived"] == 1
        assert store.ocean.total_objects() == 0
        assert store.glacier.total_bytes() > 0

    def test_recent_bronze_stays_in_ocean(self, store):
        store.ingest("power.bronze", batch(0.0), now=0.0)
        report = store.enforce(now=1 * DAY_S)
        assert report["ocean_archived"] == 0
        assert store.ocean.total_objects() == 1

    def test_silver_lake_ages_out(self, store):
        store.ingest("power.silver", batch(0.0), now=0.0)
        report = store.enforce(now=31 * DAY_S)
        assert report["lake_segments_dropped"] == 1
        assert store.lake.row_count("power.silver") == 0
        # Still in OCEAN (5-year retention).
        assert store.ocean.total_objects() == 1

    def test_gold_never_archived_to_tape(self, store):
        policies = dict(store.policies)
        policies[DataClass.GOLD] = TierPolicy(
            lake_retention_s=1.0, ocean_retention_s=2.0, glacier=False
        )
        store.policies = policies
        store.ingest("profiles.gold", batch(0.0), now=0.0)
        report = store.enforce(now=10.0)
        assert report["ocean_deleted"] == 1
        assert store.glacier.total_bytes() == 0

    def test_glacier_retrieval_roundtrip(self, store):
        t = batch(0.0)
        store.ingest("power.bronze", t, now=0.0)
        store.enforce(now=8 * DAY_S)
        from repro.columnar import read_table

        key = store.glacier.keys()[0]
        blob, est = store.glacier.retrieve(key)
        assert read_table(blob) == t
        assert est.total_s > 0

    def test_footprint_reports_all_tiers(self, store):
        store.ingest("power.silver", batch(0.0), now=0.0)
        fp = store.footprint()
        assert fp["lake"] > 0 and fp["ocean"] > 0 and fp["glacier"] == 0

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            TierPolicy(lake_retention_s=-1.0, ocean_retention_s=None, glacier=False)
