"""The planned OCEAN read path: manifest pruning, counters, invalidation.

Satellite focus: ``query_archive`` must not fetch blobs whose persisted
manifest stats exclude the query — proven with ``ObjectStore.gets``
deltas, not just counters — and the decoded-row-group cache must drop a
part's entries when compaction or retention removes it.
"""

import numpy as np
import pytest

from repro.columnar import Col, ColumnTable
from repro.perf import PERF
from repro.perf.baseline import baseline_mode
from repro.query import ScanOptions, clear_row_group_cache, row_group_cache_stats
from repro.storage import DataClass, TierPolicy, TieredStore
from repro.storage.manifest import COLUMNS_META_KEY, STATS_META_KEY
from repro.storage.tiers import DAY_S


def batch(t_start, n=20):
    return ColumnTable(
        {
            "timestamp": t_start + np.arange(n, dtype=float),
            "node": (np.arange(n) % 4).astype(float),
            "value": np.linspace(0, 1, n),
        }
    )


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_row_group_cache()
    yield
    clear_row_group_cache()


@pytest.fixture
def store():
    ts = TieredStore()
    ts.register("power.silver", DataClass.SILVER)
    for i in range(4):
        ts.ingest("power.silver", batch(i * 100.0), now=0.0)
    return ts


class TestManifestPersistence:
    def test_parts_carry_stats_and_columns(self, store):
        for m in store.ocean.list(store.OCEAN_BUCKET):
            assert STATS_META_KEY in m.user_meta
            assert COLUMNS_META_KEY in m.user_meta


class TestManifestPruning:
    def test_excluded_parts_never_fetched(self, store):
        gets0 = store.ocean.gets
        pruned0 = PERF.counter("ocean.parts_pruned")
        out = store.query_archive("power.silver", 100.0, 120.0)
        assert out.num_rows == 20
        # Three of four parts lie outside the window: one fetch only.
        assert store.ocean.gets - gets0 == 1
        assert PERF.counter("ocean.parts_pruned") - pruned0 == 3

    def test_predicate_pruning_without_window(self, store):
        gets0 = store.ocean.gets
        out = store.query_archive(
            "power.silver", predicate=Col("timestamp") >= 310.0
        )
        assert out.num_rows == 10
        assert store.ocean.gets - gets0 == 1

    def test_fully_pruned_result_keeps_schema(self, store):
        gets0 = store.ocean.gets
        out = store.query_archive("power.silver", 5000.0, 6000.0)
        assert out.num_rows == 0
        assert list(out.column_names) == ["timestamp", "node", "value"]
        assert store.ocean.gets == gets0  # zero fetches

    def test_projection_pushed_through(self, store):
        out = store.query_archive(
            "power.silver", 0.0, 50.0, columns=["timestamp", "value"]
        )
        assert list(out.column_names) == ["timestamp", "value"]

    def test_baseline_fetches_everything_and_agrees(self, store):
        fast = store.query_archive("power.silver", 100.0, 120.0)
        gets0 = store.ocean.gets
        with baseline_mode():
            ref = store.query_archive("power.silver", 100.0, 120.0)
        assert store.ocean.gets - gets0 == 4  # no pruning in baseline
        assert fast == ref

    def test_threaded_options_identical(self, store):
        serial = store.query_archive(
            "power.silver",
            predicate=Col("node") == 2.0,
            options=ScanOptions(executor="serial"),
        )
        threaded = store.query_archive(
            "power.silver",
            predicate=Col("node") == 2.0,
            options=ScanOptions(executor="threads", max_workers=4),
        )
        assert serial == threaded
        assert (serial["node"] == 2.0).all()

    def test_unlisted_dataset_empty(self, store):
        assert store.query_archive("nope").num_rows == 0


class TestCacheInvalidation:
    def _warm(self, store):
        store.query_archive("power.silver")
        return row_group_cache_stats()["entries"]

    def test_compaction_invalidates_old_parts(self, store):
        entries = self._warm(store)
        assert entries > 0
        store.compact("power.silver", min_objects=2)
        assert row_group_cache_stats()["entries"] == 0
        # Post-compaction reads are correct (and re-cache).
        out = store.query_archive("power.silver", 100.0, 120.0)
        assert out.num_rows == 20

    def test_retention_invalidates_deleted_parts(self, store):
        policies = dict(store.policies)
        policies[DataClass.SILVER] = TierPolicy(
            lake_retention_s=1.0, ocean_retention_s=2.0, glacier=False
        )
        store.policies = policies
        assert self._warm(store) > 0
        store.enforce(now=10 * DAY_S)
        assert row_group_cache_stats()["entries"] == 0


class TestRowGroupSizePolicy:
    def test_multi_group_parts_prune_groups(self):
        ts = TieredStore(
            policies={
                DataClass.SILVER: TierPolicy(
                    lake_retention_s=DAY_S,
                    ocean_retention_s=DAY_S,
                    glacier=False,
                    row_group_size=8,
                )
            }
        )
        ts.register("d", DataClass.SILVER)
        ts.ingest("d", batch(0.0, n=64), now=0.0)
        pruned0 = PERF.counter("query.groups_pruned")
        out = ts.query_archive("d", 0.0, 8.0)
        assert out.num_rows == 8
        # 64 rows / 8 per group = 8 groups; only the first survives.
        assert PERF.counter("query.groups_pruned") - pruned0 == 7

    def test_bad_row_group_size_rejected(self):
        with pytest.raises(ValueError):
            TierPolicy(
                lake_retention_s=None,
                ocean_retention_s=DAY_S,
                glacier=False,
                row_group_size=0,
            )
