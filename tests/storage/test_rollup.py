"""Materialized Gold rollups: exactness, incrementality, reconciliation."""

import numpy as np
import pytest

from repro.columnar import ColumnTable
from repro.pipeline.ops import group_by_agg
from repro.storage import DataClass, RollupSpec, TieredStore

AGGS = ["sum", "count", "min", "max", "mean"]


def batch(t_start, n=60, with_nan=False):
    rng = np.random.default_rng(int(t_start) + 1)
    values = rng.integers(50, 150, n).astype(float)  # exactly summable
    if with_nan:
        values[rng.integers(0, n, 3)] = np.nan
    return ColumnTable(
        {
            "timestamp": t_start + np.arange(n, dtype=float),
            "node": rng.integers(0, 5, n),
            "input_power": values,
        }
    )


def make_store(n_parts=5, with_nan=False):
    ts = TieredStore()
    ts.register("d", DataClass.SILVER)
    for i in range(n_parts):
        ts.ingest("d", batch(i * 100.0, with_nan=with_nan), now=float(i))
    return ts


NODE_SPEC = RollupSpec(
    name="d.node_power", source="d", keys=("node",), value="input_power"
)


def oracle(ts, keys=("node",), bucket_s=None):
    scan = ts.scan_ocean("d")
    if bucket_s is not None:
        from repro.util.timeseries import bucket_indices

        scan = scan.with_column(
            "bucket", bucket_indices(scan["timestamp"], bucket_s) * bucket_s
        )
        keys = ("bucket",) + tuple(keys)
    return group_by_agg(
        scan,
        list(keys),
        {
            "sum": ("input_power", "sum"),
            "count": ("input_power", "count"),
            "min": ("input_power", "min"),
            "max": ("input_power", "max"),
            "mean": ("input_power", "mean"),
        },
    )


def assert_matches(got, want):
    assert got.column_names == want.column_names
    assert got.num_rows == want.num_rows
    for name in got.column_names:
        assert np.array_equal(got[name], want[name], equal_nan=True), name


class TestRollupExactness:
    def test_matches_scan_oracle(self):
        ts = make_store()
        ts.add_rollup(NODE_SPEC)
        assert_matches(ts.query_rollup("d.node_power"), oracle(ts))

    def test_nan_semantics_match_group_by_agg(self):
        ts = make_store(with_nan=True)
        ts.add_rollup(NODE_SPEC)
        assert_matches(ts.query_rollup("d.node_power"), oracle(ts))

    def test_bucketed_rollup_matches_oracle(self):
        ts = make_store()
        ts.add_rollup(
            RollupSpec(
                name="d.bucketed",
                source="d",
                keys=("node",),
                value="input_power",
                bucket_s=100.0,
            )
        )
        assert_matches(
            ts.query_rollup("d.bucketed"), oracle(ts, bucket_s=100.0)
        )

    def test_empty_store_yields_empty_schema(self):
        ts = TieredStore()
        ts.register("d", DataClass.SILVER)
        ts.add_rollup(NODE_SPEC)
        out = ts.query_rollup("d.node_power")
        assert out.column_names == ["node"] + AGGS
        assert out.num_rows == 0


class TestRollupMaintenance:
    def test_ingest_maintains_incrementally(self):
        ts = make_store(n_parts=2)
        ts.add_rollup(NODE_SPEC)
        ts.query_rollup("d.node_power")  # absorb existing parts
        ts.ingest("d", batch(900.0), now=9.0)
        assert_matches(ts.query_rollup("d.node_power"), oracle(ts))

    def test_compaction_preserves_answer_without_backfill(self):
        from repro.perf import PERF

        ts = make_store()
        ts.add_rollup(NODE_SPEC)
        before = ts.query_rollup("d.node_power")
        ts.compact("d")
        backfills = PERF.counter("rollup.parts_backfilled")
        after = ts.query_rollup("d.node_power")
        assert PERF.counter("rollup.parts_backfilled") == backfills
        assert_matches(after, before)

    def test_retention_expiry_drops_rows(self):
        from repro.storage import TierPolicy

        policies = {
            DataClass.SILVER: TierPolicy(
                lake_retention_s=None, ocean_retention_s=2.5, glacier=True
            )
        }
        ts = TieredStore(policies=policies)
        ts.register("d", DataClass.SILVER)
        for i in range(5):
            ts.ingest("d", batch(i * 100.0), now=float(i))
        ts.add_rollup(NODE_SPEC)
        ts.query_rollup("d.node_power")
        ts.enforce(now=4.0)  # epochs 0 and 1 expire
        assert_matches(ts.query_rollup("d.node_power"), oracle(ts))

    def test_serves_from_partials_without_fetching(self):
        ts = make_store()
        ts.add_rollup(NODE_SPEC)
        ts.query_rollup("d.node_power")  # warm (backfills existing parts)
        gets = ts.ocean.gets
        out = ts.query_rollup("d.node_power")
        assert ts.ocean.gets == gets  # no blob fetched, no part decoded
        assert out.num_rows > 0

    def test_merged_result_is_memoized(self):
        ts = make_store()
        ts.add_rollup(NODE_SPEC)
        first = ts.query_rollup("d.node_power")
        assert ts.query_rollup("d.node_power") is first


class TestRollupReconciliation:
    def test_late_registration_backfills_lazily(self):
        ts = make_store()
        ts.add_rollup(NODE_SPEC)  # after all ingests
        assert_matches(ts.query_rollup("d.node_power"), oracle(ts))

    def test_crash_interrupted_compaction_stays_consistent(self):
        from repro.faults.errors import SimulatedCrash
        from repro.faults.injector import FaultInjector, FaultyObjectStore
        from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

        ts = TieredStore()
        ts.ocean = FaultyObjectStore(
            ts.ocean,
            FaultInjector(
                FaultPlan(
                    [FaultSpec("tier.delete", FaultKind.CRASH, at_call=2)]
                )
            ),
        )
        ts.register("d", DataClass.SILVER)
        for i in range(5):
            ts.ingest("d", batch(i * 100.0), now=float(i))
        ts.add_rollup(NODE_SPEC)
        want = ts.query_rollup("d.node_power")
        with pytest.raises(SimulatedCrash):
            ts.compact("d")
        # Superseded parts still on disk; reconcile must not double count.
        assert_matches(ts.query_rollup("d.node_power"), want)
        ts.sweep_superseded("d")
        assert_matches(ts.query_rollup("d.node_power"), want)

    def test_duplicate_name_and_unknown_source_rejected(self):
        ts = make_store()
        ts.add_rollup(NODE_SPEC)
        with pytest.raises(ValueError):
            ts.add_rollup(NODE_SPEC)
        with pytest.raises(KeyError):
            ts.add_rollup(
                RollupSpec(
                    name="x", source="nope", keys=("node",), value="input_power"
                )
            )
        with pytest.raises(KeyError):
            ts.query_rollup("unregistered")


class TestAppWiring:
    def test_rats_rollup_report_matches_scan_report(self):
        from repro.apps.rats import RatsReport
        from repro.scheduler.accounting import AccountingLedger

        ts = make_store()
        ts.add_rollup(NODE_SPEC)
        rats = RatsReport(AccountingLedger(), [])
        scan = rats.archived_power_usage(ts, "d")
        rolled = rats.archived_power_usage(ts, "d", rollup="d.node_power")
        assert scan.column_names == rolled.column_names
        for name in scan.column_names:
            assert np.array_equal(scan[name], rolled[name]), name
        with pytest.raises(ValueError):
            rats.archived_power_usage(ts, "d", t0=0.0, rollup="d.node_power")

    def test_dashboard_fleet_summary_columns(self):
        from repro.apps.ua_dashboard import UserAssistanceDashboard
        from repro.telemetry import MINI, synthetic_job_mix

        ts = make_store()
        ts.add_rollup(NODE_SPEC)
        rng = np.random.default_rng(0)
        dash = UserAssistanceDashboard(
            ts.lake, synthetic_job_mix(MINI, 0.0, 60.0, rng)
        )
        panel = dash.fleet_power_summary(ts, rollup="d.node_power")
        assert panel.column_names == [
            "node", "mean_power_w", "peak_power_w", "samples",
        ]
        assert panel.num_rows == 5
