"""LifecycleManager: tick phases, policies, scheduling, determinism."""

import numpy as np
import pytest

from repro.columnar import ColumnTable
from repro.storage import DataClass, LifecycleManager, TieredStore, TierPolicy
from repro.storage.tiers import DAY_S


def batch(t_start, n=50):
    rng = np.random.default_rng(int(t_start))
    return ColumnTable(
        {
            "timestamp": t_start + np.arange(n, dtype=float),
            "node": rng.integers(0, 8, n),
            "value": rng.normal(100.0, 10.0, n),
        }
    )


def make_store(policy=None, n_parts=6):
    policies = {DataClass.SILVER: policy} if policy else None
    ts = TieredStore(policies=policies)
    ts.register("d", DataClass.SILVER)
    for i in range(n_parts):
        ts.ingest("d", batch(i * 100.0), now=float(i))
    return ts


class TestTick:
    def test_tick_compacts_and_reports(self):
        ts = make_store()
        mgr = LifecycleManager(ts)
        report = mgr.tick(now=6.0)
        assert report["compactions"] == 1
        assert report["compacted_parts"] == 6
        assert len(ts.ocean.list(ts.OCEAN_BUCKET, prefix="d/")) == 1
        assert mgr.ticks == 1
        assert mgr.last_report is report

    def test_tick_respects_compact_min_parts(self):
        policy = TierPolicy(
            lake_retention_s=None,
            ocean_retention_s=5 * 365 * DAY_S,
            glacier=True,
            compact_min_parts=8,
        )
        ts = make_store(policy, n_parts=6)
        report = LifecycleManager(ts).tick(now=6.0)
        assert report["compactions"] == 0
        assert len(ts.ocean.list(ts.OCEAN_BUCKET, prefix="d/")) == 6

    def test_tick_applies_retention_before_compaction(self):
        policy = TierPolicy(
            lake_retention_s=None,
            ocean_retention_s=2.5,
            glacier=True,
            compact_min_parts=2,
        )
        ts = make_store(policy)
        report = LifecycleManager(ts).tick(now=5.0)
        # Epoch parts 0..2 age out whole before the compactor runs, so
        # only the three survivors merge.
        assert report["ocean_archived"] == 3
        assert report["compacted_parts"] == 3
        out = ts.scan_ocean("d")
        assert out.num_rows == 3 * 50

    def test_tick_sweeps_crash_leftovers_first(self):
        from repro.faults.errors import SimulatedCrash
        from repro.faults.injector import FaultInjector, FaultyObjectStore
        from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

        ts = make_store()
        ts.ocean = FaultyObjectStore(
            ts.ocean,
            FaultInjector(
                FaultPlan([FaultSpec("tier.delete", FaultKind.CRASH, at_call=1)])
            ),
        )
        oracle = ts.scan_ocean("d")
        mgr = LifecycleManager(ts)
        with pytest.raises(SimulatedCrash):
            mgr.tick(now=6.0)
        report = mgr.tick(now=6.0)
        assert report["swept"] == 6
        assert len(ts.ocean.list(ts.OCEAN_BUCKET, prefix="d/")) == 1
        assert ts.scan_ocean("d") == oracle

    def test_run_with_restarts_survives_crash_loop(self):
        from repro.faults.injector import FaultInjector, FaultyObjectStore
        from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

        ts = make_store()
        ts.ocean = FaultyObjectStore(
            ts.ocean,
            FaultInjector(
                FaultPlan(
                    [
                        FaultSpec("tier.delete", FaultKind.CRASH, at_call=2),
                        FaultSpec("tier.delete", FaultKind.CRASH, at_call=5),
                    ]
                )
            ),
        )
        oracle = ts.scan_ocean("d")
        report, restarts = LifecycleManager(ts).run_with_restarts(now=6.0)
        assert restarts == 2
        assert len(ts.ocean.list(ts.OCEAN_BUCKET, prefix="d/")) == 1
        assert ts.scan_ocean("d") == oracle

    def test_ticks_are_deterministic(self):
        listings = []
        for _ in range(2):
            ts = make_store()
            LifecycleManager(ts).tick(now=6.0)
            listings.append(
                [
                    (m.key, m.created_at, sorted(m.user_meta.items()))
                    for m in ts.ocean.list(ts.OCEAN_BUCKET, prefix="d/")
                ]
            )
        assert listings[0] == listings[1]


class TestFreezePolicy:
    def test_bronze_freeze_archives_before_retention(self):
        policy = TierPolicy(
            lake_retention_s=None,
            ocean_retention_s=7 * DAY_S,
            glacier=True,
            freeze_after_s=2.0,
        )
        ts = make_store(policy, n_parts=1)
        report = ts.enforce(now=3.0)  # freeze horizon 1.0 > created 0.0
        assert report["ocean_archived"] == 1
        assert ts.glacier.exists("d/part-00000000.rcf")

    def test_freeze_ignored_for_non_glacier_classes(self):
        policy = TierPolicy(
            lake_retention_s=None,
            ocean_retention_s=7 * DAY_S,
            glacier=False,
            freeze_after_s=2.0,
        )
        ts = make_store(policy, n_parts=1)
        report = ts.enforce(now=3.0)
        assert report["ocean_deleted"] == 0
        assert len(ts.ocean.list(ts.OCEAN_BUCKET, prefix="d/")) == 1

    def test_invalid_policy_fields_rejected(self):
        with pytest.raises(ValueError):
            TierPolicy(
                lake_retention_s=None,
                ocean_retention_s=1.0,
                glacier=True,
                compact_min_parts=1,
            )
        with pytest.raises(ValueError):
            TierPolicy(
                lake_retention_s=None,
                ocean_retention_s=1.0,
                glacier=True,
                freeze_after_s=0.0,
            )


class TestFrameworkScheduling:
    WINDOW_S = 30.0

    def _run(self, n_windows, **opt_kwargs):
        from repro.core import DataPlaneOptions, ODAFramework
        from repro.perf import reset_fast_path_caches
        from repro.telemetry import MINI, synthetic_job_mix

        rng = np.random.default_rng(11)
        allocation = synthetic_job_mix(MINI, 0.0, n_windows * self.WINDOW_S, rng)
        fw = ODAFramework(
            MINI,
            allocation,
            seed=3,
            options=DataPlaneOptions(lifecycle=True, **opt_kwargs),
        )
        reset_fast_path_caches()
        try:
            fw.run(0.0, n_windows * self.WINDOW_S, self.WINDOW_S)
        finally:
            fw.close()
        return fw

    def test_options_validation(self):
        from repro.core import DataPlaneOptions

        with pytest.raises(ValueError):
            DataPlaneOptions(lifecycle_every_s=60.0)  # needs lifecycle
        with pytest.raises(ValueError):
            DataPlaneOptions(lifecycle=True, lifecycle_every_s=0.0)

    def test_ticks_every_window_by_default(self):
        fw = self._run(4, pipeline="off")
        assert fw.lifecycle.ticks == 4

    def test_tick_interval_uses_simulated_time(self):
        fw = self._run(4, pipeline="off", lifecycle_every_s=60.0)
        assert fw.lifecycle.ticks == 2  # due at t=60 and t=120

    def test_lifecycle_compacts_the_archive(self):
        fw = self._run(6, pipeline="off")
        parts = fw.tiers.ocean.list(
            fw.tiers.OCEAN_BUCKET, prefix="power.silver/"
        )
        # Six windows of small parts collapse under the default
        # compact_min_parts=4 policy instead of accumulating.
        assert len(parts) < 6

    def test_default_rollup_serves_dashboard(self):
        fw = self._run(4, pipeline="off")
        panel = fw.tiers.query_rollup("power.silver.node_power")
        assert panel.num_rows > 0
        assert "mean" in panel.column_names

    def test_pipelined_run_matches_serial(self):
        serial = self._run(6, pipeline="off")
        piped = self._run(6, pipeline="on")

        def listing(fw):
            return [
                (m.key, m.created_at, sorted(m.user_meta.items()), m.size)
                for m in fw.tiers.ocean.list(fw.tiers.OCEAN_BUCKET)
            ]

        assert listing(serial) == listing(piped)
        assert serial.lifecycle.ticks == piped.lifecycle.ticks
        assert (
            serial.tiers.query_archive("power.silver")
            == piped.tiers.query_archive("power.silver")
        )
