"""Repo-wide test hooks.

``REPRO_DYNRACE=1`` turns every test into a dynamic race-validation
run: the containers the static RACE pass flags (and the tree suppresses
with phase-barrier pragmas) are wrapped in the Eraser-style lockset
monitor from :mod:`repro.analysis.dynrace`, and any observed race —
i.e. any suppression whose stated invariant failed to hold on the live
schedule — fails the test.  ``make race`` runs the chaos and
parallel-equivalence suites under this hook.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(autouse=True)
def _dynrace_validation():
    if not os.environ.get("REPRO_DYNRACE"):
        yield
        return
    from repro.analysis import dynrace

    with dynrace.validating() as monitor:
        yield
    races = monitor.races
    assert races == [], (
        "dynamic races (a RACE suppression's invariant did not hold):\n"
        + "\n".join(r.render() for r in races)
    )
