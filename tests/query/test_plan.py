"""Planner unit tests: what gets planned in, pruned, or cut."""

import numpy as np
import pytest

from repro.columnar import Col, ColumnTable, write_table
from repro.query import (
    PartUnit,
    SegmentUnit,
    plan_parts,
    plan_segments,
)
from repro.query.scan import fold_time_predicate
from repro.storage.manifest import stats_from_meta, stats_to_meta, table_stats


def seg(t_start, n=10):
    t = ColumnTable(
        {
            "timestamp": t_start + np.arange(n, dtype=float),
            "v": np.arange(n, dtype=float),
        }
    )
    return (t_start, t_start + n - 1.0, t)


class TestSegmentPlanning:
    def test_window_prunes_old_and_cuts_future(self):
        segments = [seg(0.0), seg(10.0), seg(20.0), seg(30.0)]
        plan = plan_segments("t", segments, 25.0, 26.0)
        # seg(30) starts after the window's upper edge: cut entirely.
        assert len(plan.units) == 3
        assert [u.pruned for u in plan.units] == [True, True, False]
        assert plan.pruned_units == 2 and plan.live_units == 1
        assert all(isinstance(u, SegmentUnit) for u in plan.units)
        assert plan.units[0].reason == "time"

    def test_unbounded_keeps_everything(self):
        segments = [seg(0.0), seg(10.0)]
        plan = plan_segments("t", segments)
        assert len(plan.units) == 2
        assert plan.pruned_units == 0

    def test_summary_shape(self):
        plan = plan_segments("t", [seg(0.0)], 100.0, 200.0)
        s = plan.summary()
        assert s["source"] == "lake"
        assert s["units"] == 1 and s["pruned"] == 1 and s["live"] == 0


class TestPartPlanning:
    def _stats(self, t):
        # Round-trip through the manifest encoding, as production does.
        return stats_from_meta(stats_to_meta(table_stats(t)))

    def test_manifest_excludes_part(self):
        _, _, t = seg(0.0)
        plan = plan_parts(
            "d",
            [("p0", 1, self._stats(t))],
            t0=100.0,
            t1=200.0,
        )
        assert plan.units[0].pruned and plan.units[0].reason == "stats"

    def test_predicate_excludes_part(self):
        _, _, t = seg(0.0)
        plan = plan_parts(
            "d", [("p0", 1, self._stats(t))], predicate=Col("v") > 50.0
        )
        assert plan.units[0].pruned

    def test_missing_manifest_is_never_pruned(self):
        plan = plan_parts("d", [("p0", 1, None)], t0=1e9, t1=2e9)
        assert not plan.units[0].pruned

    def test_overlapping_part_stays(self):
        _, _, t = seg(0.0)
        plan = plan_parts(
            "d", [("p0", 1, self._stats(t))], t0=5.0, t1=6.0
        )
        assert not plan.units[0].pruned
        assert isinstance(plan.units[0], PartUnit)

    def test_no_predicate_keeps_all(self):
        _, _, t = seg(0.0)
        plan = plan_parts("d", [("p0", 1, self._stats(t))])
        assert plan.live_units == 1


class TestFoldTime:
    def test_fold_equivalent_to_interval_mask(self):
        _, _, t = seg(0.0)
        pred = fold_time_predicate(None, "timestamp", 3.0, 7.0)
        ts = t["timestamp"]
        expected = (ts >= 3.0) & (ts < 7.0)
        assert np.array_equal(pred.mask(t), expected)

    def test_fold_composes_with_predicate(self):
        _, _, t = seg(0.0)
        pred = fold_time_predicate(Col("v") > 4.0, "timestamp", 3.0, 9.0)
        ts, v = t["timestamp"], t["v"]
        expected = (ts >= 3.0) & (ts < 9.0) & (v > 4.0)
        assert np.array_equal(pred.mask(t), expected)

    def test_none_window_is_identity(self):
        p = Col("v") > 1.0
        assert fold_time_predicate(p, "timestamp", None, None) is p
        assert fold_time_predicate(None, "timestamp", None, None) is None
