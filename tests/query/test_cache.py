"""The decoded-row-group cache: bounds, counters, invalidation."""

import numpy as np
import pytest

from repro.perf import PERF
from repro.query import cache as qcache


@pytest.fixture(autouse=True)
def fresh_cache():
    qcache.clear_row_group_cache()
    yield
    qcache.clear_row_group_cache()
    qcache.set_row_group_cache_limit(64 << 20)


def counter(name):
    return PERF.counter(name)


class TestHitMiss:
    def test_miss_then_hit(self):
        calls = []

        def loader():
            calls.append(1)
            return np.arange(8.0)

        misses0 = counter("query.cache_misses")
        hits0 = counter("query.cache_hits")
        a = qcache.cached_column("tok", 0, "x", loader)
        b = qcache.cached_column("tok", 0, "x", loader)
        assert len(calls) == 1
        assert a is b
        assert counter("query.cache_misses") - misses0 == 1
        assert counter("query.cache_hits") - hits0 == 1

    def test_distinct_keys_decode_separately(self):
        calls = []
        loader = lambda: (calls.append(1), np.arange(4.0))[1]
        qcache.cached_column("tok", 0, "x", loader)
        qcache.cached_column("tok", 1, "x", loader)
        qcache.cached_column("tok2", 0, "x", loader)
        assert len(calls) == 3

    def test_cached_arrays_are_read_only(self):
        arr = qcache.cached_column("tok", 0, "x", lambda: np.arange(4.0))
        with pytest.raises(ValueError):
            arr[0] = 99.0


class TestBounds:
    def test_lru_eviction_under_byte_budget(self):
        qcache.set_row_group_cache_limit(3 * 8 * 10)  # three 10-float arrays
        ev0 = counter("query.cache_evictions")
        for g in range(5):
            qcache.cached_column("tok", g, "x", lambda: np.arange(10.0))
        stats = qcache.row_group_cache_stats()
        assert stats["bytes"] <= stats["max_bytes"]
        assert stats["entries"] <= 3
        assert counter("query.cache_evictions") - ev0 >= 2
        # Oldest group evicted, newest retained.
        calls = []
        qcache.cached_column(
            "tok", 4, "x", lambda: (calls.append(1), np.arange(10.0))[1]
        )
        assert not calls

    def test_shrinking_limit_evicts(self):
        for g in range(4):
            qcache.cached_column("tok", g, "x", lambda: np.arange(10.0))
        qcache.set_row_group_cache_limit(8 * 10)
        assert qcache.row_group_cache_stats()["entries"] <= 1

    def test_bad_limit_rejected(self):
        with pytest.raises(ValueError):
            qcache.set_row_group_cache_limit(0)


class TestInvalidation:
    def test_invalidate_token_drops_only_that_part(self):
        qcache.cached_column("a", 0, "x", lambda: np.arange(4.0))
        qcache.cached_column("a", 1, "x", lambda: np.arange(4.0))
        qcache.cached_column("b", 0, "x", lambda: np.arange(4.0))
        assert qcache.invalidate_token("a") == 2
        stats = qcache.row_group_cache_stats()
        assert stats["entries"] == 1
        assert stats["bytes"] == 4 * 8

    def test_invalidate_unknown_token_noop(self):
        assert qcache.invalidate_token("nope") == 0


class TestDisabled:
    def test_disabled_bypasses_and_decodes_every_time(self):
        calls = []
        loader = lambda: (calls.append(1), np.arange(4.0))[1]
        with qcache.row_group_cache_disabled():
            qcache.cached_column("tok", 0, "x", loader)
            qcache.cached_column("tok", 0, "x", loader)
        assert len(calls) == 2
        assert qcache.row_group_cache_stats()["entries"] == 0
