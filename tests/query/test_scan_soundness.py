"""Property-style soundness: planner output == brute-force mask path.

Random tables (NaN floats, null strings, dict-friendly low-cardinality
columns) and random predicate trees, executed four ways — fast serial,
fast threaded, cache-disabled, and the decode-everything reference —
must all agree with the plain ``predicate.mask`` filter over the
concatenated data.  This is the one assertion that covers row-group
pruning, dictionary-code pushdown, late materialization, and the cache
at once.
"""

import numpy as np
import pytest

from repro.columnar import Col, ColumnTable, write_table
from repro.columnar.predicate import Compare, IsIn, Not, Or
from repro.query import (
    ScanOptions,
    clear_row_group_cache,
    execute_plan,
    execute_plan_reference,
    plan_parts,
    row_group_cache_disabled,
)
from repro.query.scan import fold_time_predicate
from repro.storage.manifest import stats_from_meta, stats_to_meta, table_stats

PROJECTS = ["PRJA", "PRJB", "PRJC", "PRJD"]


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_row_group_cache()
    yield
    clear_row_group_cache()


def random_table(rng, n):
    power = rng.normal(200.0, 40.0, n)
    power[rng.random(n) < 0.1] = np.nan  # NaN-bearing telemetry column
    project = np.array(
        [PROJECTS[i] for i in rng.integers(0, len(PROJECTS), n)],
        dtype=object,
    )
    project[rng.random(n) < 0.1] = None  # null strings
    return ColumnTable(
        {
            "timestamp": np.sort(rng.uniform(0.0, 1000.0, n)),
            "node": rng.integers(0, 8, n).astype(float),
            "power": power,
            "project": project,
        }
    )


def random_predicate(rng, depth=2):
    if depth > 0 and rng.random() < 0.5:
        kind = rng.integers(0, 3)
        if kind == 0:
            return random_predicate(rng, depth - 1) & random_predicate(
                rng, depth - 1
            )
        if kind == 1:
            return Or(
                random_predicate(rng, depth - 1),
                random_predicate(rng, depth - 1),
            )
        return Not(random_predicate(rng, depth - 1))
    leaf = rng.integers(0, 4)
    if leaf == 0:
        op = ["==", "!=", "<", "<=", ">", ">="][rng.integers(0, 6)]
        return Compare("power", op, float(rng.uniform(120.0, 280.0)))
    if leaf == 1:
        op = ["==", "!=", "<", ">="][rng.integers(0, 4)]
        return Compare("project", op, PROJECTS[rng.integers(0, 4)])
    if leaf == 2:
        return IsIn(
            "project",
            tuple(
                PROJECTS[i]
                for i in rng.choice(4, size=rng.integers(1, 3), replace=False)
            ),
        )
    return Compare("node", "==", float(rng.integers(0, 8)))


def brute_force(tables, t0, t1, predicate, columns):
    whole = ColumnTable.concat(tables)
    pred = fold_time_predicate(predicate, "timestamp", t0, t1)
    if pred is not None:
        whole = whole.filter(pred.mask(whole))
    if columns is not None:
        whole = whole.select(columns)
    return whole


def build_plan(tables, blobs, t0, t1, predicate, columns, with_stats=True):
    parts = []
    for i, (t, b) in enumerate(zip(tables, blobs)):
        stats = (
            stats_from_meta(stats_to_meta(table_stats(t)))
            if with_stats
            else None
        )
        parts.append((f"p{i}", len(b), stats))
    plan = plan_parts(
        "d", parts, t0, t1, predicate, columns, time_column="timestamp"
    )
    for unit, b in zip(plan.units, blobs):
        unit.blob = b  # all blobs attached so the reference can scan
    return plan


@pytest.mark.parametrize("seed", range(12))
def test_random_queries_match_brute_force(seed):
    rng = np.random.default_rng(seed)
    tables = [random_table(rng, int(rng.integers(50, 200))) for _ in range(3)]
    blobs = [write_table(t, row_group_size=32) for t in tables]
    predicate = random_predicate(rng)
    t0, t1 = (
        (None, None)
        if rng.random() < 0.3
        else tuple(sorted(rng.uniform(0.0, 1000.0, 2)))
    )
    columns = (
        None
        if rng.random() < 0.5
        else ["timestamp", "power", "project"]
    )
    expected = brute_force(tables, t0, t1, predicate, columns)
    plan = build_plan(tables, blobs, t0, t1, predicate, columns)

    serial = execute_plan(plan, ScanOptions(executor="serial"))
    threaded = execute_plan(plan, ScanOptions(executor="threads", max_workers=4))
    reference = execute_plan_reference(plan)
    with row_group_cache_disabled():
        uncached = execute_plan(plan, ScanOptions(executor="serial"))
    # A second run exercises warm-cache hits.
    warm = execute_plan(plan, ScanOptions(executor="serial"))

    for out in (serial, threaded, reference, uncached, warm):
        assert out.num_rows == expected.num_rows
        assert list(out.column_names) == list(expected.column_names)
        for c in expected.column_names:
            a, b = out[c], expected[c]
            if a.dtype == object or b.dtype == object:
                assert [x for x in a.tolist()] == [x for x in b.tolist()]
            else:
                assert np.array_equal(a, b, equal_nan=True)


def test_nan_chunk_not_equal_stays_conservative():
    # One chunk is constant-plus-NaN: `!=` and `NOT(==)` are satisfied
    # by the NaN row even though min == max == value, so the inexact
    # stats must block the constant-chunk prune.
    t = ColumnTable(
        {
            "timestamp": np.arange(4, dtype=float),
            "power": np.array([5.0, 5.0, np.nan, 5.0]),
        }
    )
    blob = write_table(t, row_group_size=4)
    for predicate in (Col("power") != 5.0, Not(Compare("power", "==", 5.0))):
        plan = build_plan([t], [blob], None, None, predicate, None)
        fast = execute_plan(plan, ScanOptions(executor="serial"))
        ref = execute_plan_reference(plan)
        assert fast.num_rows == ref.num_rows == 1
        assert np.isnan(fast["power"]).all()


def test_or_keeps_group_either_side_might_match():
    # Group stats exclude the left branch but not the right: Or must
    # keep the group (conservative), and the final rows must match.
    t = ColumnTable(
        {
            "timestamp": np.arange(10, dtype=float),
            "power": np.linspace(100.0, 109.0, 10),
        }
    )
    blob = write_table(t, row_group_size=10)
    predicate = Or(Col("power") > 1000.0, Col("power") <= 101.0)
    plan = build_plan([t], [blob], None, None, predicate, None)
    fast = execute_plan(plan, ScanOptions(executor="serial"))
    assert fast.num_rows == 2
    assert fast == execute_plan_reference(plan)


def test_null_string_rows_follow_mask_semantics():
    # Compare treats None as "" (so `< "B"` matches); IsIn matches None
    # only when None is listed.  Pushdown on dict codes must agree.
    t = ColumnTable(
        {
            "timestamp": np.arange(6, dtype=float),
            "project": np.array(
                ["PRJA", None, "PRJB", None, "PRJC", "PRJA"], dtype=object
            ),
        }
    )
    blob = write_table(t, row_group_size=3)
    cases = [
        (Col("project") < "PRJB", 4),        # "" sorts first: 2 None + 2 PRJA
        (Col("project") == "PRJA", 2),
        (IsIn("project", ("PRJB",)), 1),
        (IsIn("project", (None, "PRJB")), 3),
        (Not(Compare("project", "==", "PRJA")), 4),
    ]
    for predicate, expected_rows in cases:
        plan = build_plan([t], [blob], None, None, predicate, None)
        fast = execute_plan(plan, ScanOptions(executor="serial"))
        ref = execute_plan_reference(plan)
        assert fast.num_rows == expected_rows, predicate
        assert fast == ref


def test_unknown_projection_column_raises():
    t = random_table(np.random.default_rng(0), 20)
    blob = write_table(t)
    plan = build_plan([t], [blob], None, None, None, ["nope"])
    with pytest.raises(KeyError):
        execute_plan(plan, ScanOptions(executor="serial"))


def test_pruned_parts_counted_and_skipped():
    from repro.perf import PERF

    rng = np.random.default_rng(1)
    tables = [random_table(rng, 64) for _ in range(4)]
    blobs = [write_table(t) for t in tables]
    # Window beyond all data: every part prunes via manifest stats.
    plan = build_plan(tables, blobs, 5000.0, 6000.0, None, None)
    assert plan.pruned_units == 4
    before = PERF.counter("query.parts_scanned")
    out = execute_plan(plan, ScanOptions(executor="serial"))
    assert out.num_rows == 0
    assert PERF.counter("query.parts_scanned") == before
    # The reference scans everything and still agrees.
    assert out.num_rows == execute_plan_reference(plan).num_rows
