"""Token buckets, tenant policies, and the admission controller."""

import pytest

from repro.serve import (
    AdmissionController,
    AdmissionRejected,
    TenantPolicy,
    TokenBucket,
)


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        assert [bucket.try_take(0.0) for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=1.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert bucket.try_take(0.5)  # 0.5s * 2/s = 1 token back

    def test_refill_clamps_to_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        bucket.try_take(0.0)
        # A long idle period cannot bank more than `burst` tokens.
        assert bucket.try_take(100.0)
        assert bucket.try_take(100.0)
        assert not bucket.try_take(100.0)

    def test_time_going_backwards_is_clamped(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.try_take(10.0)
        assert not bucket.try_take(5.0)  # no negative refill, no crash
        assert bucket.try_take(11.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)
        with pytest.raises(ValueError):
            TenantPolicy(queue_limit=0)


class TestAdmissionController:
    def test_quota_shed_is_deterministic(self):
        ctl = AdmissionController(TenantPolicy(rate_qps=1.0, burst=2.0))
        verdicts = []
        for _ in range(4):
            try:
                ctl.admit("t", now=0.0)
                verdicts.append("ok")
            except AdmissionRejected as exc:
                verdicts.append(exc.reason)
        assert verdicts == ["ok", "ok", "quota", "quota"]
        assert ctl.rejected == {"t": 2}

    def test_queue_full_shed(self):
        ctl = AdmissionController(
            TenantPolicy(rate_qps=100.0, burst=10.0, queue_limit=2)
        )
        ctl.admit("t", now=0.0)
        ctl.admit("t", now=0.0)
        with pytest.raises(AdmissionRejected) as exc:
            ctl.admit("t", now=0.0)
        assert exc.value.reason == "queue_full"
        assert exc.value.tenant == "t"
        ctl.release("t")
        ctl.admit("t", now=0.0)  # slot freed, admitted again
        assert ctl.inflight("t") == 2

    def test_tenants_are_isolated(self):
        ctl = AdmissionController(TenantPolicy(rate_qps=1.0, burst=1.0))
        ctl.admit("a", now=0.0)
        # a's dry bucket must not starve b.
        ctl.admit("b", now=0.0)
        with pytest.raises(AdmissionRejected):
            ctl.admit("a", now=0.0)

    def test_per_tenant_policy_override(self):
        ctl = AdmissionController(
            default_policy=TenantPolicy(rate_qps=1.0, burst=1.0),
            policies={"vip": TenantPolicy(rate_qps=100.0, burst=50.0)},
        )
        assert ctl.policy_for("vip").burst == 50.0
        assert ctl.policy_for("anyone").burst == 1.0
        for _ in range(10):
            ctl.admit("vip", now=0.0)
        assert ctl.inflight("vip") == 10

    def test_unmatched_release_raises(self):
        ctl = AdmissionController()
        with pytest.raises(ValueError):
            ctl.release("nobody")
