"""Generation-keyed LRU result cache."""

import pytest

from repro.serve import ResultCache


class TestResultCache:
    def test_get_put_roundtrip(self):
        cache = ResultCache()
        assert cache.get("fp", 1) is None
        cache.put("fp", 1, {"x": 1}, "digest-a")
        assert cache.get("fp", 1) == ({"x": 1}, "digest-a")
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_generation_is_part_of_the_key(self):
        cache = ResultCache()
        cache.put("fp", 1, "old", "d1")
        assert cache.get("fp", 2) is None  # newer generation: miss
        cache.put("fp", 2, "new", "d2")
        assert cache.get("fp", 1) == ("old", "d1")
        assert cache.get("fp", 2) == ("new", "d2")

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 0, 1, "da")
        cache.put("b", 0, 2, "db")
        cache.get("a", 0)  # touch a; b is now least-recent
        cache.put("c", 0, 3, "dc")
        assert cache.get("b", 0) is None
        assert cache.get("a", 0) is not None
        assert cache.get("c", 0) is not None
        assert cache.evicted == 1

    def test_prune_stale_drops_only_other_generations(self):
        cache = ResultCache()
        cache.put("a", 1, 1, "d")
        cache.put("b", 1, 2, "d")
        cache.put("c", 2, 3, "d")
        assert cache.prune_stale(2) == 2
        assert len(cache) == 1
        assert cache.get("c", 2) is not None
        assert cache.invalidated == 2
        assert cache.prune_stale(2) == 0  # idempotent

    def test_put_is_idempotent_per_key(self):
        cache = ResultCache(capacity=4)
        for _ in range(10):
            cache.put("fp", 1, "v", "d")
        assert len(cache) == 1
        assert cache.evicted == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestOverInvalidationAudit:
    """Pins the wholesale invalidation behavior and its measurement.

    ``prune_stale`` drops *every* stale-generation entry even when the
    bumped datasets are disjoint from what the entry read — that is the
    current (correct but coarse) policy, and these tests pin it.  The
    ``over_invalidated`` counter measures the gap a lineage-driven
    precise policy would close (DESIGN.md §17 follow-up).
    """

    def test_disjoint_mutation_still_evicts_but_is_counted(self):
        cache = ResultCache()
        cache.put("a", 1, "v", "d", reads=frozenset({"power.silver"}))
        pruned = cache.prune_stale(2, mutated=frozenset({"facility.silver"}))
        # Pinned: the entry is gone despite reading nothing that moved.
        assert pruned == 1
        assert cache.get("a", 2) is None
        assert cache.over_invalidated == 1
        assert cache.stats()["over_invalidated"] == 1

    def test_overlapping_mutation_is_a_justified_eviction(self):
        cache = ResultCache()
        cache.put("a", 1, "v", "d", reads=frozenset({"power.silver"}))
        assert cache.prune_stale(2, mutated=frozenset({"power.silver"})) == 1
        assert cache.over_invalidated == 0

    def test_untracked_reads_are_never_counted(self):
        # reads=None means the endpoint bypassed the tier read-set hook
        # (e.g. it walks tiers.lake directly): no evidence, no count.
        cache = ResultCache()
        cache.put("a", 1, "v", "d")
        assert cache.prune_stale(2, mutated=frozenset({"power.silver"})) == 1
        assert cache.over_invalidated == 0

    def test_no_mutation_ledger_no_count(self):
        # Callers without a mutated_since source pass mutated=None and
        # the audit stays silent.
        cache = ResultCache()
        cache.put("a", 1, "v", "d", reads=frozenset({"power.silver"}))
        assert cache.prune_stale(2) == 1
        assert cache.over_invalidated == 0
