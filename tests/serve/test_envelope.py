"""Request fingerprints and payload digests: the determinism contract."""

import numpy as np
import pytest

from repro.serve import Request, ResultEnvelope, payload_digest


class TestRequest:
    def test_kwarg_order_does_not_change_fingerprint(self):
        a = Request.make("t", "job_overview", job_id="j1", detail=2)
        b = Request.make("t", "job_overview", detail=2, job_id="j1")
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_tenant_excluded_from_fingerprint(self):
        # Tenancy is an admission concern; two tenants asking the same
        # question share one cache entry.
        a = Request.make("alice", "job_overview", job_id="j1")
        b = Request.make("bob", "job_overview", job_id="j1")
        assert a.fingerprint() == b.fingerprint()

    def test_params_and_endpoint_distinguish(self):
        base = Request.make("t", "e", x=1)
        assert base.fingerprint() != Request.make("t", "e", x=2).fingerprint()
        assert base.fingerprint() != Request.make("t", "f", x=1).fingerprint()

    def test_value_types_distinguish(self):
        # "1" vs 1 must not collide (type-tagged canonical form).
        a = Request.make("t", "e", x=1)
        b = Request.make("t", "e", x="1")
        assert a.fingerprint() != b.fingerprint()

    def test_kwargs_roundtrip(self):
        request = Request.make("t", "e", t0=0.0, t1=60.0)
        assert request.kwargs() == {"t0": 0.0, "t1": 60.0}

    def test_non_scalar_params_rejected(self):
        with pytest.raises(ValueError):
            Request.make("t", "e", bad=[1, 2])
        with pytest.raises(ValueError):
            Request.make("t", "e", bad={"k": 1})


class TestResultEnvelope:
    def test_ok_covers_fresh_and_cached(self):
        request = Request.make("t", "e")
        assert ResultEnvelope(request, "ok", payload=1).ok
        assert ResultEnvelope(request, "cached", payload=1).ok
        assert not ResultEnvelope(request, "rejected", error="quota").ok
        assert not ResultEnvelope(request, "error", error="boom").ok


class _DuckTable:
    """Minimal column-table duck type (column_names + __getitem__)."""

    def __init__(self, cols):
        self._cols = dict(cols)

    @property
    def column_names(self):
        return list(self._cols)

    def __getitem__(self, name):
        return self._cols[name]


class TestPayloadDigest:
    def test_scalars_and_containers(self):
        assert payload_digest(None) == payload_digest(None)
        assert payload_digest(1) != payload_digest(1.0)
        assert payload_digest(True) != payload_digest(1)
        assert payload_digest([1, 2]) == payload_digest((1, 2))
        assert payload_digest({"a": 1, "b": 2}) == payload_digest(
            {"b": 2, "a": 1}
        )
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})

    def test_arrays_by_content(self):
        a = np.arange(5, dtype=np.float64)
        assert payload_digest(a) == payload_digest(a.copy())
        assert payload_digest(a) != payload_digest(a.astype(np.float32))
        assert payload_digest(a) != payload_digest(a[::-1].copy())

    def test_object_arrays_digest_values_not_pointers(self):
        # Two distinct str objects with equal values must digest equal
        # (.tobytes() on object arrays hashes pointers).
        a = np.array(["job-" + "1", "job-2"], dtype=object)
        b = np.array(["job" + "-1", "job-2"], dtype=object)
        assert payload_digest(a) == payload_digest(b)

    def test_duck_table_column_order_matters(self):
        t1 = _DuckTable({"x": np.arange(3), "y": np.ones(3)})
        t2 = _DuckTable({"x": np.arange(3), "y": np.ones(3)})
        t3 = _DuckTable({"y": np.ones(3), "x": np.arange(3)})
        assert payload_digest(t1) == payload_digest(t2)
        assert payload_digest(t1) != payload_digest(t3)

    def test_nested_payload(self):
        payload = {
            "job_id": "j1",
            "power": np.linspace(0, 1, 4),
            "events": {"codes": np.array([1, 2])},
            "findings": ((("code", "E1"),),),
        }
        assert payload_digest(payload) == payload_digest(dict(payload))

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            payload_digest(object())
