"""ServingGateway: scheduling equivalence, caching, shedding, generations."""

import numpy as np
import pytest

from repro.obs import METRICS
from repro.serve import (
    AdmissionController,
    Request,
    ResultCache,
    ServingGateway,
    TenantPolicy,
)


class FakeTiers:
    """Stand-in store exposing only data_version()."""

    def __init__(self):
        self.version = 1

    def data_version(self):
        return self.version


def square(x):
    return {"x": x, "sq": np.array([x * x], dtype=np.float64)}


def boom():
    raise RuntimeError("endpoint exploded")


def make_gateway(executor="serial", **kwargs):
    tiers = FakeTiers()
    gateway = ServingGateway(
        tiers, {"square": square, "boom": boom}, executor=executor, **kwargs
    )
    return gateway, tiers


class TestServing:
    def test_basic_ok_envelope(self):
        gateway, _ = make_gateway()
        env = gateway.submit(Request.make("t", "square", x=3))
        assert env.status == "ok" and env.ok
        assert env.payload["sq"][0] == 9.0
        assert env.generation == 1
        assert env.digest is not None

    def test_unknown_endpoint_is_typed_error(self):
        gateway, _ = make_gateway()
        env = gateway.submit(Request.make("t", "nope"))
        assert env.status == "error"
        assert "unknown endpoint" in env.error
        assert not env.ok

    def test_endpoint_exception_becomes_error_envelope(self):
        gateway, _ = make_gateway()
        env = gateway.submit(Request.make("t", "boom"))
        assert env.status == "error"
        assert env.error == "RuntimeError: endpoint exploded"

    def test_envelopes_keep_submission_order(self):
        gateway, _ = make_gateway()
        requests = [Request.make("t", "square", x=i) for i in range(6)]
        envelopes = gateway.submit_many(requests)
        assert [e.request for e in envelopes] == requests
        assert [e.payload["x"] for e in envelopes] == list(range(6))
        assert len(gateway.last_service_times) == 6

    def test_serial_and_threads_produce_identical_digests(self):
        requests = [Request.make("t", "square", x=i % 4) for i in range(12)]
        digests = {}
        for executor in ("serial", "threads"):
            gateway, _ = make_gateway(executor=executor)
            with gateway:
                envelopes = gateway.submit_many(requests)
            digests[executor] = [
                (e.status, e.digest, e.generation) for e in envelopes
            ]
        assert digests["serial"] == digests["threads"]

    def test_executor_validation(self):
        with pytest.raises(ValueError):
            make_gateway(executor="processes")
        with pytest.raises(ValueError):
            make_gateway(max_workers=0)


class TestCaching:
    def test_cross_batch_hit_with_identical_digest(self):
        gateway, _ = make_gateway()
        request = Request.make("t", "square", x=5)
        first = gateway.submit(request)
        second = gateway.submit(request)
        assert first.status == "ok"
        assert second.status == "cached"
        assert second.digest == first.digest
        assert gateway.last_service_times == [0.0]  # cached: no service

    def test_within_batch_duplicates_both_execute(self):
        # The cache is probed only at arrival (before any execution), so
        # a within-batch twin misses — the price of scheduler-identical
        # envelopes.  Hits begin on the next batch.
        gateway, _ = make_gateway()
        request = Request.make("t", "square", x=1)
        statuses = [e.status for e in gateway.submit_many([request, request])]
        assert statuses == ["ok", "ok"]
        assert gateway.submit(request).status == "cached"

    def test_tenants_share_cache_entries(self):
        gateway, _ = make_gateway()
        gateway.submit(Request.make("alice", "square", x=7))
        env = gateway.submit(Request.make("bob", "square", x=7))
        assert env.status == "cached"

    def test_cache_disabled_never_serves_cached(self):
        gateway, _ = make_gateway(cache_enabled=False)
        request = Request.make("t", "square", x=5)
        assert gateway.submit(request).status == "ok"
        assert gateway.submit(request).status == "ok"
        assert len(gateway.cache) == 0

    def test_generation_move_invalidates(self):
        gateway, tiers = make_gateway()
        request = Request.make("t", "square", x=2)
        gateway.submit(request)
        assert gateway.submit(request).status == "cached"
        tiers.version = 2  # a committed mutation elsewhere
        env = gateway.submit(request)
        assert env.status == "ok"  # recomputed against the new generation
        assert env.generation == 2
        assert gateway.cache.invalidated >= 1
        assert (
            METRICS.gauge_value("serve.generation") == 2
        )

    def test_error_results_are_not_cached(self):
        gateway, _ = make_gateway()
        assert gateway.submit(Request.make("t", "boom")).status == "error"
        assert gateway.submit(Request.make("t", "boom")).status == "error"
        assert len(gateway.cache) == 0


class TestAdmission:
    def test_shed_sequence_is_deterministic(self):
        admission = AdmissionController(
            TenantPolicy(rate_qps=5.0, burst=3.0, queue_limit=2)
        )
        gateway, _ = make_gateway(admission=admission)
        requests = [Request.make("t", "square", x=i) for i in range(6)]
        envelopes = gateway.submit_many(requests, now=0.0)
        # burst=3 tokens, queue_limit=2: two admitted, third has a token
        # but no queue slot, rest are out of tokens.
        assert [e.status for e in envelopes] == [
            "ok",
            "ok",
            "rejected",
            "rejected",
            "rejected",
            "rejected",
        ]
        assert [e.error for e in envelopes[2:]] == [
            "queue_full",
            "quota",
            "quota",
            "quota",
        ]

    def test_slots_release_between_batches(self):
        admission = AdmissionController(
            TenantPolicy(rate_qps=1000.0, burst=100.0, queue_limit=2)
        )
        gateway, _ = make_gateway(admission=admission)
        for batch in range(3):
            requests = [
                Request.make("t", "square", x=100 * batch + i)
                for i in range(2)
            ]
            statuses = [
                e.status for e in gateway.submit_many(requests, now=batch)
            ]
            assert statuses == ["ok", "ok"]
        assert admission.inflight("t") == 0

    def test_cached_hits_do_not_hold_queue_slots(self):
        admission = AdmissionController(
            TenantPolicy(rate_qps=1000.0, burst=100.0, queue_limit=1)
        )
        gateway, _ = make_gateway(admission=admission)
        request = Request.make("t", "square", x=1)
        gateway.submit(request, now=0.0)
        for i in range(5):  # hits release immediately; never queue_full
            assert gateway.submit(request, now=float(i)).status == "cached"

    def test_shed_metric_labeled_by_reason(self):
        admission = AdmissionController(
            TenantPolicy(rate_qps=1.0, burst=1.0)
        )
        gateway, _ = make_gateway(admission=admission)
        before = METRICS.counter_value(
            "serve.shed", tenant="shed-tenant", reason="quota"
        )
        requests = [
            Request.make("shed-tenant", "square", x=i) for i in range(3)
        ]
        gateway.submit_many(requests, now=0.0)
        after = METRICS.counter_value(
            "serve.shed", tenant="shed-tenant", reason="quota"
        )
        assert after - before == 2
