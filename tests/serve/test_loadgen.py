"""Seeded multi-tenant load generation: replayability and shape."""

from collections import Counter

import pytest

from repro.serve import EndpointMix, LoadProfile, generate_load, replay_digest

MIX = (
    EndpointMix("job_overview", 3.0, (("job_id", ("j1", "j2", "j3")),)),
    EndpointMix("system_power_view", 1.0, (("t0", (0.0,)), ("t1", (60.0,)))),
)
PROFILE = LoadProfile(mix=MIX, n_tenants=20, zipf_a=1.2, repeat_p=0.5)


class TestDeterminism:
    def test_same_seed_replays_byte_identically(self):
        a = generate_load(PROFILE, 300, seed=7)
        b = generate_load(PROFILE, 300, seed=7)
        assert a == b
        assert replay_digest(a) == replay_digest(b)

    def test_different_seeds_differ(self):
        a = generate_load(PROFILE, 300, seed=1)
        b = generate_load(PROFILE, 300, seed=2)
        assert replay_digest(a) != replay_digest(b)

    def test_replay_digest_is_order_sensitive(self):
        requests = generate_load(PROFILE, 50, seed=3)
        assert replay_digest(requests) != replay_digest(requests[::-1])


class TestShape:
    def test_zipf_skews_toward_low_ranks(self):
        requests = generate_load(PROFILE, 2000, seed=11)
        counts = Counter(r.tenant for r in requests)
        top = counts.most_common(1)[0][1]
        assert counts["tenant-0000"] == top  # rank 1 dominates
        assert top > 2000 / PROFILE.n_tenants * 2

    def test_endpoint_mix_respects_weights(self):
        requests = generate_load(PROFILE, 2000, seed=5)
        counts = Counter(r.endpoint for r in requests)
        # 3:1 weights; allow slack for stickiness and sampling noise.
        assert counts["job_overview"] > counts["system_power_view"]

    def test_stickiness_creates_exact_repeats(self):
        sticky = LoadProfile(mix=MIX, n_tenants=5, repeat_p=0.8)
        requests = generate_load(sticky, 500, seed=9)
        last = {}
        repeats = 0
        for r in requests:
            if last.get(r.tenant) == (r.endpoint, r.params):
                repeats += 1
            last[r.tenant] = (r.endpoint, r.params)
        assert repeats > 200  # p=0.8 over 500 arrivals

    def test_params_drawn_from_candidates(self):
        requests = generate_load(PROFILE, 200, seed=13)
        for r in requests:
            if r.endpoint == "job_overview":
                assert dict(r.params)["job_id"] in ("j1", "j2", "j3")
            else:
                assert dict(r.params) == {"t0": 0.0, "t1": 60.0}


class TestValidation:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            LoadProfile(mix=())
        with pytest.raises(ValueError):
            LoadProfile(mix=MIX, n_tenants=0)
        with pytest.raises(ValueError):
            LoadProfile(mix=MIX, repeat_p=1.0)
        with pytest.raises(ValueError):
            EndpointMix("e", 0.0)
        with pytest.raises(ValueError):
            EndpointMix("e", 1.0, (("p", ()),))
        with pytest.raises(ValueError):
            generate_load(PROFILE, -1)
