"""Exporters: span trees, JSONL round-trips, the self-telemetry loop."""

import json

import pytest

from repro.obs import (
    METRICS,
    TRACER,
    Tracer,
    health_batch,
    health_catalog,
    read_jsonl,
    span_tree,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry


def _small_trace(tracer):
    with tracer.trace(seed=1, name="window", index=0):
        with tracer.span("refine:power"):
            with tracer.span("refine.bronze"):
                pass
        with tracer.span("stream.produce"):
            pass


class TestSpanTree:
    def test_tree_shape(self):
        t = Tracer()
        _small_trace(t)
        (root,) = span_tree(t.finished())
        assert root["name"] == "window"
        child_names = [c["name"] for c in root["children"]]
        assert child_names == ["refine:power", "stream.produce"]
        refine = root["children"][0]
        assert [c["name"] for c in refine["children"]] == ["refine.bronze"]

    def test_orphans_surface_as_roots(self):
        t = Tracer(max_spans=1)
        with t.trace(seed=0, name="w"):
            with t.span("kept"):
                pass
            with t.span("dropped-sibling"):
                pass
        # Only "kept" fits the buffer; its parent was dropped, so it
        # must still appear (as a root), not vanish.
        roots = span_tree(t.finished())
        assert [r["name"] for r in roots] == ["kept"]

    def test_uses_global_tracer_by_default(self):
        _small_trace(TRACER)
        assert span_tree()[0]["name"] == "window"


class TestJsonl:
    def test_round_trip(self, tmp_path):
        t = Tracer()
        _small_trace(t)
        m = MetricsRegistry()
        m.inc("records", 3, topic="power")
        m.observe("lat", 0.5)
        path = tmp_path / "trace.jsonl"
        n = write_jsonl(path, tracer=t, metrics=m)
        lines = read_jsonl(path)
        assert len(lines) == n
        kinds = [l["kind"] for l in lines]
        assert kinds.count("span") == 4
        assert "counter" in kinds and "histogram" in kinds and "perf" in kinds

    def test_spans_dump_in_deterministic_tree_order(self, tmp_path):
        paths = []
        for i in range(2):
            t = Tracer()
            _small_trace(t)
            p = tmp_path / f"t{i}.jsonl"
            write_jsonl(p, tracer=t, metrics=MetricsRegistry(),
                        include_metrics=False)
            paths.append(p)

        def stripped(path):
            return [
                {k: v for k, v in l.items() if k != "duration_s"}
                for l in read_jsonl(path)
            ]

        assert stripped(paths[0]) == stripped(paths[1])

    def test_dropped_spans_line(self, tmp_path):
        t = Tracer(max_spans=1)
        with t.trace(seed=0, name="w"):
            with t.span("a"):
                pass
        path = tmp_path / "t.jsonl"
        write_jsonl(path, tracer=t, metrics=MetricsRegistry(),
                    include_metrics=False)
        (drop_line,) = [
            l for l in read_jsonl(path) if l["kind"] == "dropped_spans"
        ]
        assert drop_line["count"] == 1

    def test_lines_are_valid_json_objects(self, tmp_path):
        t = Tracer()
        _small_trace(t)
        path = tmp_path / "t.jsonl"
        write_jsonl(path, tracer=t, metrics=MetricsRegistry())
        for raw in path.read_text().splitlines():
            assert isinstance(json.loads(raw), dict)


class TestOrphanMarking:
    def test_severed_children_are_marked_not_silent(self):
        # "kept" survives the one-slot buffer but its parent does not:
        # it surfaces as a root carrying orphaned=True, so a reader can
        # tell a severed subtree from a true root.
        t = Tracer(max_spans=1)
        with t.trace(seed=0, name="w"):
            with t.span("kept"):
                pass
            with t.span("dropped-sibling"):
                pass
        (root,) = span_tree(t.finished())
        assert root["name"] == "kept"
        assert root["orphaned"] is True

    def test_true_roots_are_not_marked(self):
        t = Tracer()
        _small_trace(t)
        (root,) = span_tree(t.finished())
        assert "orphaned" not in root
        assert all("orphaned" not in c for c in root["children"])

    def test_dropped_spans_line_counts_orphans(self, tmp_path):
        t = Tracer(max_spans=1)
        with t.trace(seed=0, name="w"):
            with t.span("kept"):
                pass
            with t.span("dropped-sibling"):
                pass
        path = tmp_path / "t.jsonl"
        write_jsonl(path, tracer=t, metrics=MetricsRegistry(),
                    include_metrics=False)
        (drop_line,) = [
            l for l in read_jsonl(path) if l["kind"] == "dropped_spans"
        ]
        assert drop_line["count"] == t.dropped
        assert drop_line["orphaned"] == 1


class TestTornLines:
    def make_dump(self, tmp_path):
        t = Tracer()
        _small_trace(t)
        path = tmp_path / "t.jsonl"
        write_jsonl(path, tracer=t, metrics=MetricsRegistry(),
                    include_metrics=False)
        return path

    def test_torn_tail_is_skipped_with_warning(self, tmp_path):
        path = self.make_dump(tmp_path)
        whole = read_jsonl(path)
        # Tear the last line mid-object, the crash-mid-write shape.
        text = path.read_text()
        path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        from repro.obs import TraceCorruptWarning

        with pytest.warns(TraceCorruptWarning, match="unparseable line"):
            lines = read_jsonl(path)
        # One bad line costs one line, never the dump.
        assert len(lines) == len(whole) - 1
        assert lines == whole[:-1]

    def test_mid_dump_garbage_is_skipped_and_counted(self, tmp_path):
        from repro.perf import PERF

        path = self.make_dump(tmp_path)
        whole = read_jsonl(path)
        lines = path.read_text().splitlines()
        lines.insert(1, '{"kind": "span", "name": truncated')
        path.write_text("\n".join(lines) + "\n")
        from repro.obs import TraceCorruptWarning

        before = PERF.snapshot()["counters"].get("obs.trace_lines_skipped", 0)
        with pytest.warns(TraceCorruptWarning):
            assert read_jsonl(path) == whole
        after = PERF.snapshot()["counters"].get("obs.trace_lines_skipped", 0)
        assert after == before + 1

    def test_clean_dump_round_trips_without_warning(self, tmp_path):
        import warnings

        path = self.make_dump(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert read_jsonl(path)


class TestSelfTelemetry:
    def test_health_catalog_assigns_stable_ids(self):
        names = ["oda.bronze_rows", "oda.silver_rows"]
        cat = health_catalog(names, sample_period_s=15.0)
        assert cat.names() == names
        assert cat.id_of("oda.bronze_rows") == 0
        assert cat.spec(1).unit == "obs"

    def test_health_batch_exports_only_deterministic_meters(self):
        cat = health_catalog(["oda.bronze_rows"])
        METRICS.set_gauge("oda.bronze_rows", 128.0, deterministic=True)
        METRICS.set_gauge("wall.seconds", 0.37)  # non-deterministic
        METRICS.set_gauge("oda.unknown", 1.0, deterministic=True)  # not in cat
        batch = health_batch(METRICS, 60.0, cat)
        assert len(batch) == 1
        assert batch.values[0] == 128.0
        assert batch.timestamps[0] == 60.0
        assert batch.sensor_ids[0] == cat.id_of("oda.bronze_rows")

    def test_health_batch_empty_when_nothing_matches(self):
        cat = health_catalog(["oda.bronze_rows"])
        batch = health_batch(METRICS, 0.0, cat)
        assert len(batch) == 0

    def test_health_batch_refines_through_medallion(self):
        """The loop's core claim: a health batch is a normal observation
        batch — Bronze/Silver accept it unchanged."""
        from repro.pipeline.medallion import bronze_standardize, silver_aggregate

        cat = health_catalog(["oda.bronze_rows", "oda.gold_rows"])
        METRICS.set_gauge("oda.bronze_rows", 100.0, deterministic=True)
        METRICS.set_gauge("oda.gold_rows", 8.0, deterministic=True)
        batch = health_batch(METRICS, 30.0, cat)
        silver = silver_aggregate(bronze_standardize([batch]), cat, 15.0)
        assert silver.num_rows == 1
        assert silver["oda.bronze_rows"][0] == 100.0
        assert silver["oda.gold_rows"][0] == 8.0


def test_catalog_rejects_unknown_name_lookup():
    cat = health_catalog(["oda.bronze_rows"])
    with pytest.raises(KeyError):
        cat.id_of("oda.nope")
