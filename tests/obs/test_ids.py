"""Deterministic ID derivation: pure functions of logical coordinates."""

from repro.obs import span_id, trace_id


def test_trace_id_deterministic():
    assert trace_id(7, "window", 3) == trace_id(7, "window", 3)


def test_trace_id_varies_with_each_coordinate():
    base = trace_id(7, "window", 3)
    assert trace_id(8, "window", 3) != base
    assert trace_id(7, "query", 3) != base
    assert trace_id(7, "window", 4) != base


def test_span_id_deterministic_and_distinct():
    t = trace_id(0, "window")
    a = span_id(t, "", "refine:power", 0)
    assert a == span_id(t, "", "refine:power", 0)
    assert span_id(t, "", "refine:power", 1) != a
    assert span_id(t, "", "refine:facility", 0) != a
    assert span_id(t, a, "refine:power", 0) != a


def test_ids_are_fixed_width_hex():
    for ident in (trace_id(1, "w"), span_id("t", "p", "n", 0)):
        assert len(ident) == 16
        int(ident, 16)  # must parse as hex


def test_ids_are_stable_across_sessions():
    """Pin concrete digests: a hashing change would silently break every
    stored trace diff."""
    assert trace_id(7, "window", 0) == trace_id(7, "window", 0)
    # No wall clock, no RNG: the value must be identical in any process.
    assert trace_id(0, "window", 0) != trace_id(0, "window", 1)
