"""The operator CLI: python -m repro.obs report."""

import io
import json
from pathlib import Path

import pytest

from repro.obs import Tracer, write_jsonl
from repro.obs.__main__ import main, report
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def dump(tmp_path):
    t = Tracer()
    with t.trace(seed=4, name="window", index=0):
        with t.span("refine:power", topic="power"):
            with t.span("refine.bronze"):
                pass
        with t.span("stream.produce"):
            pass
    m = MetricsRegistry()
    m.inc("records", 12, topic="power")
    m.observe("lat", 0.25)
    path = tmp_path / "trace.jsonl"
    write_jsonl(path, tracer=t, metrics=m)
    return path


def test_missing_file_exits_2(tmp_path, capsys):
    rc = main(["report", str(tmp_path / "nope.jsonl")])
    assert rc == 2
    assert "no trace dump" in capsys.readouterr().err


def test_text_report(dump):
    out = io.StringIO()
    rc = report(Path(dump), "text", depth=6, out=out)
    text = out.getvalue()
    assert rc == 0
    assert "4 spans in 1 trace(s)" in text
    assert "refine:power" in text
    assert "refine.bronze" in text  # nested under depth 6
    assert "records{topic=power}" in text


def test_depth_limits_tree(dump):
    out = io.StringIO()
    report(Path(dump), "text", depth=2, out=out)
    text = out.getvalue()
    assert "refine:power" in text
    assert "refine.bronze" not in text.split("per-span totals")[0]


def test_json_report(dump):
    out = io.StringIO()
    rc = report(Path(dump), "json", depth=6, out=out)
    assert rc == 0
    payload = json.loads(out.getvalue())
    assert set(payload) >= {"traces", "span_totals", "meters", "dropped_spans"}
    (root,) = payload["traces"]
    assert root["name"] == "window"
    assert {c["name"] for c in root["children"]} == {
        "refine:power", "stream.produce",
    }
    totals = {row["name"]: row["calls"] for row in payload["span_totals"]}
    assert totals["refine.bronze"] == 1


def test_main_runs_report(dump, capsys):
    rc = main(["report", str(dump)])
    assert rc == 0
    assert "window" in capsys.readouterr().out


def test_depth_must_be_positive(dump):
    with pytest.raises(SystemExit):
        main(["report", str(dump), "--depth", "0"])
