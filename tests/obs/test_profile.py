"""Profiling hooks: off by default, spans + histograms when enabled."""

from repro.obs import (
    METRICS,
    TRACER,
    profile,
    profile_block,
    profiling_active,
    profiling_enabled,
)


@profile()
def _hot(x):
    return x * 2


@profile("custom.site")
def _named(x):
    return x + 1


def test_disabled_by_default():
    assert not profiling_active()
    assert _hot(21) == 42
    assert TRACER.finished() == []
    assert METRICS.snapshot()["histograms"] == {}


def test_enabled_records_span_and_histogram():
    with profiling_enabled():
        assert profiling_active()
        with TRACER.trace(seed=0, name="w"):
            assert _hot(1) == 2
            assert _named(1) == 2
    names = {s.name for s in TRACER.finished()}
    assert "profile:tests.obs.test_profile._hot" in names
    assert "profile:custom.site" in names
    hists = METRICS.snapshot()["histograms"]
    assert "profile.latency_s{site=custom.site}" in hists


def test_enabled_is_reentrant():
    with profiling_enabled():
        with profiling_enabled():
            assert profiling_active()
        assert profiling_active()
    assert not profiling_active()


def test_profile_block_form():
    with profiling_enabled():
        with TRACER.trace(seed=0, name="w"):
            with profile_block("hot.loop"):
                pass
    assert "profile:hot.loop" in {s.name for s in TRACER.finished()}


def test_profiled_spans_join_active_trace():
    with profiling_enabled():
        with TRACER.trace(seed=0, name="w") as root:
            _hot(1)
    spans = {s.name: s for s in TRACER.finished()}
    prof = spans["profile:tests.obs.test_profile._hot"]
    assert prof.parent_id == root.span_id


def test_wrapped_function_metadata_preserved():
    assert _hot.__name__ == "_hot"
    assert _hot.__wrapped__(3) == 6
