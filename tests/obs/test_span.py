"""Tracer semantics: nesting, thread propagation, determinism, bounds."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import TRACER, Tracer


@pytest.fixture()
def tracer():
    return Tracer()


def test_span_outside_trace_is_noop(tracer):
    with tracer.span("orphan") as s:
        assert s is None
    assert tracer.finished() == []


def test_trace_roots_and_nests(tracer):
    with tracer.trace(seed=1, name="window") as root:
        assert tracer.current() is root
        with tracer.span("child", topic="power") as child:
            assert child.parent_id == root.span_id
            assert child.trace_id == root.trace_id
            assert tracer.current() is child
        assert tracer.current() is root
    assert tracer.current() is None
    names = [s.name for s in tracer.finished()]
    assert names == ["child", "window"]  # completion order


def test_span_ids_deterministic_across_runs(tracer):
    def run(t):
        with t.trace(seed=9, name="window", index=2):
            with t.span("refine:power"):
                with t.span("refine.bronze"):
                    pass
            with t.span("refine:power"):
                pass
        return [(s.name, s.span_id, s.parent_id, s.seq) for s in t.finished()]

    first = run(tracer)
    again = run(Tracer())
    assert first == again


def test_sibling_seq_disambiguates(tracer):
    with tracer.trace(seed=0, name="w"):
        with tracer.span("produce"):
            pass
        with tracer.span("produce"):
            pass
    a, b = [s for s in tracer.finished() if s.name == "produce"]
    assert (a.seq, b.seq) == (0, 1)
    assert a.span_id != b.span_id


def test_error_marks_status(tracer):
    with pytest.raises(RuntimeError):
        with tracer.trace(seed=0, name="w"):
            with tracer.span("boom"):
                raise RuntimeError("x")
    by_name = {s.name: s for s in tracer.finished()}
    assert by_name["boom"].status == "error"
    assert by_name["w"].status == "error"


def test_attrs_and_set(tracer):
    with tracer.trace(seed=0, name="w", machine="mini") as root:
        root.set(rows=5)
    (span,) = tracer.finished()
    assert span.attrs == {"machine": "mini", "rows": 5}
    d = span.to_dict()
    assert d["kind"] == "span"
    assert list(d["attrs"]) == ["machine", "rows"]  # sorted


def test_wrap_carries_context_across_threads(tracer):
    with ThreadPoolExecutor(max_workers=2) as pool:
        with tracer.trace(seed=3, name="w") as root:
            def task(name):
                def run():
                    assert tracer.current() is root
                    with tracer.span(name) as s:
                        return s.span_id
                return run

            futs = [
                pool.submit(tracer.wrap(task(n)))
                for n in ("refine:a", "refine:b")
            ]
            ids = [f.result() for f in futs]
    children = {s.name: s for s in tracer.finished() if s.parent_id}
    assert set(children) == {"refine:a", "refine:b"}
    for s in children.values():
        assert s.parent_id == root.span_id
        assert s.span_id in ids


def test_wrap_without_trace_returns_fn_unchanged(tracer):
    fn = lambda: 42  # noqa: E731
    assert tracer.wrap(fn) is fn


def test_distinct_names_make_concurrent_ids_order_free(tracer):
    """The determinism contract for the thread pool: concurrently created
    siblings carry distinct names, so their IDs cannot depend on which
    thread reached the sequence counter first."""
    barrier = threading.Barrier(4)

    def run_once(t):
        with ThreadPoolExecutor(max_workers=4) as pool:
            with t.trace(seed=5, name="w"):
                def task(name):
                    def run():
                        barrier.wait()
                        with t.span(name):
                            pass
                    return run

                futs = [
                    pool.submit(t.wrap(task(f"refine:{i}"))) for i in range(4)
                ]
                for f in futs:
                    f.result()
        return sorted((s.name, s.span_id) for s in t.finished())

    assert run_once(tracer) == run_once(Tracer())


def test_span_or_trace_roots_or_joins(tracer):
    with tracer.span_or_trace("window", seed=1, index=0) as root:
        assert root.parent_id == ""
        with tracer.span_or_trace("window", seed=1, index=0) as inner:
            assert inner.parent_id == root.span_id


def test_disabled_tracer_is_silent(tracer):
    tracer.enabled = False
    with tracer.trace(seed=0, name="w") as s:
        assert s is None
        with tracer.span("child") as c:
            assert c is None
    assert tracer.finished() == []


def test_buffer_bound_counts_drops():
    t = Tracer(max_spans=2)
    with t.trace(seed=0, name="w"):
        for i in range(4):
            with t.span(f"s{i}"):
                pass
    assert len(t.finished()) == 2
    assert t.dropped == 3  # two extra children + the root
    t.reset()
    assert t.dropped == 0 and t.finished() == []


def test_reset_clears_sequence_counters(tracer):
    with tracer.trace(seed=0, name="w"):
        with tracer.span("s"):
            pass
    first = [s.span_id for s in tracer.finished()]
    tracer.reset()
    with tracer.trace(seed=0, name="w"):
        with tracer.span("s"):
            pass
    assert [s.span_id for s in tracer.finished()] == first


def test_global_tracer_exists():
    assert isinstance(TRACER, Tracer)
    assert TRACER.enabled
