"""Shared obs fixtures: every test starts from clean global registries."""

import pytest

from repro.obs import METRICS, TRACER, reset_all


@pytest.fixture(autouse=True)
def clean_obs():
    """Reset the global tracer/metrics around every test in this package
    (they are process-wide, and other suites record into them too)."""
    reset_all()
    yield
    TRACER.enabled = True
    METRICS.enabled = True
    reset_all()
