"""MetricsRegistry: labeled meters, histograms, suspension, determinism."""

import threading

import pytest

from repro.obs import METRICS, Histogram, MetricsRegistry
from repro.obs.metrics import DEFAULT_BUCKETS, SIZE_BUCKETS


@pytest.fixture()
def reg():
    return MetricsRegistry()


class TestCountersAndGauges:
    def test_counters_accumulate_per_label_set(self, reg):
        reg.inc("records", topic="power")
        reg.inc("records", 4, topic="power")
        reg.inc("records", topic="syslog")
        assert reg.counter_value("records", topic="power") == 5
        assert reg.counter_value("records", topic="syslog") == 1
        assert reg.counter_value("records") == 0  # unlabeled is distinct

    def test_gauges_overwrite(self, reg):
        reg.set_gauge("lag", 10.0, topic="power")
        reg.set_gauge("lag", 3.0, topic="power")
        assert reg.gauge_value("lag", topic="power") == 3.0

    def test_label_order_is_irrelevant(self, reg):
        reg.inc("x", a=1, b=2)
        reg.inc("x", b=2, a=1)
        assert reg.counter_value("x", a=1, b=2) == 2

    def test_snapshot_renders_labels(self, reg):
        reg.inc("records", topic="power")
        reg.set_gauge("depth", 2.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"records{topic=power}": 1.0}
        assert snap["gauges"] == {"depth": 2.0}

    def test_snapshot_can_merge_perf(self, reg):
        snap = reg.snapshot(include_perf=True)
        assert set(snap["perf"]) == {"timers", "counters"}


class TestHistograms:
    def test_histogram_buckets(self):
        h = Histogram((1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        d = h.to_dict()
        assert d["buckets"] == {"le_1": 1, "le_10": 1, "overflow": 1}
        assert d["count"] == 3
        assert d["max"] == 50.0
        assert d["mean"] == pytest.approx(55.5 / 3)

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))

    def test_observe_uses_registered_buckets(self, reg):
        reg.register_buckets("rows", SIZE_BUCKETS)
        reg.observe("rows", 500.0, stage="silver")
        hist = reg.snapshot()["histograms"]["rows{stage=silver}"]
        assert hist["buckets"]["le_1000"] == 1

    def test_register_conflicting_buckets_raises(self, reg):
        reg.register_buckets("rows", SIZE_BUCKETS)
        reg.register_buckets("rows", SIZE_BUCKETS)  # idempotent
        with pytest.raises(ValueError):
            reg.register_buckets("rows", DEFAULT_BUCKETS)

    def test_register_after_observe_checks_existing(self, reg):
        reg.observe("lat", 0.5)  # lands in DEFAULT_BUCKETS
        with pytest.raises(ValueError):
            reg.register_buckets("lat", SIZE_BUCKETS)

    def test_timer_observes_duration(self, reg):
        with reg.timer("lat", site="x"):
            pass
        hist = reg.snapshot()["histograms"]["lat{site=x}"]
        assert hist["count"] == 1
        assert hist["max"] >= 0.0

    def test_reset_keeps_bucket_registrations(self, reg):
        reg.register_buckets("rows", SIZE_BUCKETS)
        reg.observe("rows", 5.0)
        reg.reset()
        assert reg.snapshot()["histograms"] == {}
        reg.observe("rows", 5.0)
        hist = reg.snapshot()["histograms"]["rows"]
        assert "le_1e+07" in hist["buckets"]


class TestSuspension:
    def test_disabled_flag(self, reg):
        reg.enabled = False
        reg.inc("x")
        reg.observe("h", 1.0)
        reg.set_gauge("g", 1.0)
        assert not reg.enabled
        reg.enabled = True
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_suspended_is_reentrant(self, reg):
        with reg.suspended():
            with reg.suspended():
                reg.inc("x")
            reg.inc("x")  # still suspended: outer level active
            assert not reg.enabled
        assert reg.enabled
        assert reg.counter_value("x") == 0

    def test_suspended_overlapping_threads(self, reg):
        """Concurrent suspension regions must not strand the registry
        off — the bug the depth counter exists to prevent."""
        entered = threading.Barrier(2)
        release = threading.Event()

        def hold():
            with reg.suspended():
                entered.wait()
                release.wait()

        threads = [threading.Thread(target=hold) for _ in range(2)]
        for t in threads:
            t.start()
        release.set()
        for t in threads:
            t.join()
        assert reg.enabled
        reg.inc("after")
        assert reg.counter_value("after") == 1


class TestDeterministicMeters:
    def test_deterministic_values_filters_and_sorts(self, reg):
        reg.inc("wall.time", 1.23)  # not deterministic: excluded
        reg.set_gauge("oda.rows", 42.0, deterministic=True)
        reg.inc("oda.windows", deterministic=True)
        assert reg.deterministic_values() == [
            ("oda.rows", 42.0),
            ("oda.windows", 1.0),
        ]

    def test_thread_safety(self, reg):
        def work():
            for _ in range(300):
                reg.inc("n")
                reg.observe("h", 1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("n") == 1200
        assert reg.snapshot()["histograms"]["h"]["count"] == 1200


def test_global_registry_preregisters_size_buckets():
    """The process-wide registry fixes count-scaled buckets for the
    count-valued histograms before any instrumented module observes."""
    METRICS.register_buckets("stream.batch_size", SIZE_BUCKETS)
    METRICS.register_buckets("refine.rows_per_window", SIZE_BUCKETS)
    with pytest.raises(ValueError):
        METRICS.register_buckets("stream.batch_size", DEFAULT_BUCKETS)
