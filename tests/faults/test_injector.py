"""Unit tests for the fault injector and its data-path wrappers."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    FaultyBroker,
    FaultyObjectStore,
    RetryPolicy,
    SimulatedCrash,
    TornCheckpointStore,
    TransientTierError,
)
from repro.perf import PERF
from repro.pipeline import CheckpointCorruptWarning, CheckpointStore
from repro.storage.object_store import ObjectStore
from repro.stream import (
    Broker,
    Consumer,
    FetchTimeoutError,
    ProduceUnavailableError,
    RetentionPolicy,
    TopicConfig,
)


def make_broker(n_partitions=1, retention=None):
    broker = Broker()
    broker.create_topic(
        TopicConfig("t", n_partitions, retention or RetentionPolicy())
    )
    return broker


class TestFaultInjector:
    def test_counts_and_logs_injections(self):
        plan = FaultPlan([FaultSpec("s", FaultKind.FETCH_ERROR, 2)])
        inj = FaultInjector(plan)
        assert inj.fire("s") is None  # call 1: clean
        with pytest.raises(FetchTimeoutError):
            inj.fire("s")  # call 2: faults
        assert inj.fire("s") is None  # call 3: clean again
        assert inj.calls("s") == 3
        assert inj.injected == [("s", 2, FaultKind.FETCH_ERROR)]

    def test_error_kinds_raise_their_types(self):
        cases = [
            (FaultKind.FETCH_ERROR, FetchTimeoutError),
            (FaultKind.PRODUCE_ERROR, ProduceUnavailableError),
            (FaultKind.TIER_ERROR, TransientTierError),
            (FaultKind.CRASH, SimulatedCrash),
        ]
        for kind, exc_type in cases:
            inj = FaultInjector(FaultPlan([FaultSpec("s", kind, 1)]))
            with pytest.raises(exc_type):
                inj.fire("s")

    def test_crash_is_not_an_exception(self):
        """`except Exception` must not survive a simulated kill."""
        inj = FaultInjector(FaultPlan([FaultSpec("s", FaultKind.CRASH, 1)]))
        with pytest.raises(BaseException) as info:
            try:
                inj.fire("s")
            except Exception:  # what sloppy data-path code would write
                pytest.fail("SimulatedCrash caught by `except Exception`")
        assert isinstance(info.value, SimulatedCrash)
        assert info.value.site == "s" and info.value.call_index == 1

    def test_slow_read_accumulates_virtual_delay(self):
        inj = FaultInjector(
            FaultPlan([FaultSpec("s", FaultKind.SLOW_READ, 1, arg=0.75)])
        )
        spec = inj.fire("s")  # returns the spec rather than raising
        assert spec.kind is FaultKind.SLOW_READ
        assert inj.virtual_delay_s == 0.75

    def test_injection_counter_in_perf(self):
        before = PERF.counter("faults.injected.fetch_error")
        inj = FaultInjector(
            FaultPlan([FaultSpec("s", FaultKind.FETCH_ERROR, 1)])
        )
        with pytest.raises(FetchTimeoutError):
            inj.fire("s")
        assert PERF.counter("faults.injected.fetch_error") - before == 1


class TestFaultyBroker:
    def test_empty_plan_is_transparent(self):
        plain, wrapped_inner = make_broker(2), make_broker(2)
        faulty = FaultyBroker(wrapped_inner, FaultInjector(FaultPlan()))
        for i in range(10):
            plain.produce("t", i)
            faulty.produce("t", i)
        for p in range(2):
            a = plain.fetch("t", p, 0, None)
            b = faulty.fetch("t", p, 0, None)
            assert [(r.offset, r.value) for r in a] == [
                (r.offset, r.value) for r in b
            ]
        # Non-intercepted methods delegate.
        assert faulty.latest_offset("t", 0) == wrapped_inner.latest_offset(
            "t", 0
        )

    def test_fetch_fault_then_recovery(self):
        broker = make_broker()
        broker.produce("t", 1)
        plan = FaultPlan(
            [FaultSpec(FaultyBroker.SITE_FETCH, FaultKind.FETCH_ERROR, 1)]
        )
        faulty = FaultyBroker(broker, FaultInjector(plan))
        with pytest.raises(FetchTimeoutError):
            faulty.fetch("t", 0, 0, None)
        assert [r.value for r in faulty.fetch("t", 0, 0, None)] == [1]

    def test_produce_sites_shared_between_single_and_batch(self):
        plan = FaultPlan(
            [FaultSpec(FaultyBroker.SITE_PRODUCE, FaultKind.PRODUCE_ERROR, 2)]
        )
        faulty = FaultyBroker(make_broker(), FaultInjector(plan))
        faulty.produce("t", 1)  # call 1: clean
        with pytest.raises(ProduceUnavailableError):
            faulty.produce_many("t", [2, 3])  # call 2: faults
        assert faulty.latest_offset("t", 0) == 1  # nothing appended

    def test_retention_race_trims_before_fetch(self):
        broker = make_broker(retention=RetentionPolicy(max_age_s=10.0))
        for i in range(6):
            broker.produce("t", i, timestamp=float(i))
        plan = FaultPlan(
            [
                FaultSpec(
                    FaultyBroker.SITE_FETCH,
                    FaultKind.RETENTION_RACE,
                    1,
                    arg=13.0,  # trims ts < 3
                )
            ]
        )
        faulty = FaultyBroker(broker, FaultInjector(plan))
        records = faulty.fetch("t", 0, 3, None)
        assert [r.value for r in records] == [3, 4, 5]
        assert broker.earliest_offset("t", 0) == 3

    def test_consumer_rides_through_faults(self):
        """End-to-end: Consumer + FaultyBroker + retry = same records."""
        broker = make_broker()
        for i in range(5):
            broker.produce("t", i)
        plan = FaultPlan(
            [
                FaultSpec(
                    FaultyBroker.SITE_FETCH,
                    FaultKind.FETCH_ERROR,
                    1,
                    repeat=2,
                )
            ]
        )
        faulty = FaultyBroker(broker, FaultInjector(plan))
        consumer = Consumer(faulty, "t", group="g")
        records = consumer.poll(None)
        assert [r.value for r in records] == [0, 1, 2, 3, 4]

    def test_consumer_gives_up_on_persistent_fault(self):
        broker = make_broker()
        broker.produce("t", 0)
        plan = FaultPlan(
            [
                FaultSpec(
                    FaultyBroker.SITE_FETCH,
                    FaultKind.FETCH_ERROR,
                    1,
                    repeat=10,
                )
            ]
        )
        faulty = FaultyBroker(broker, FaultInjector(plan))
        consumer = Consumer(
            faulty, "t", group="g", retry_policy=RetryPolicy(max_attempts=3)
        )
        from repro.faults import RetryExhaustedError

        with pytest.raises(RetryExhaustedError):
            consumer.poll(None)


class TestTornCheckpointStore:
    def test_requires_disk_backing(self):
        with pytest.raises(ValueError):
            TornCheckpointStore(CheckpointStore(), FaultInjector(FaultPlan()))

    def test_empty_plan_is_transparent(self, tmp_path):
        store = TornCheckpointStore(
            CheckpointStore(str(tmp_path / "cp")), FaultInjector(FaultPlan())
        )
        store.commit("q", 0, {0: 5}, {"wm": 1.0})
        assert store.last_batch_id("q") == 0
        assert CheckpointStore(str(tmp_path / "cp")).offsets("q") == {0: 5}

    def test_crash_before_write_leaves_old_state(self, tmp_path):
        path = str(tmp_path / "cp")
        plan = FaultPlan(
            [FaultSpec(TornCheckpointStore.SITE_COMMIT, FaultKind.CRASH, 2)]
        )
        store = TornCheckpointStore(CheckpointStore(path), FaultInjector(plan))
        store.commit("q", 0, {0: 5})
        with pytest.raises(SimulatedCrash):
            store.commit("q", 1, {0: 9})
        # Restart sees the last durable commit, no corruption.
        reloaded = CheckpointStore(path)
        assert reloaded.last_batch_id("q") == 0
        assert reloaded.offsets("q") == {0: 5}
        assert reloaded.last_corruption is None

    def test_torn_write_quarantined_on_reload(self, tmp_path):
        path = str(tmp_path / "cp")
        plan = FaultPlan(
            [
                FaultSpec(
                    TornCheckpointStore.SITE_COMMIT,
                    FaultKind.TORN_CHECKPOINT,
                    2,
                )
            ]
        )
        store = TornCheckpointStore(CheckpointStore(path), FaultInjector(plan))
        store.commit("q", 0, {0: 5})
        with pytest.raises(SimulatedCrash):
            store.commit("q", 1, {0: 9})
        # The torn file is on disk; a restarted store quarantines it and
        # replays from scratch instead of bricking.
        with pytest.warns(CheckpointCorruptWarning):
            reloaded = CheckpointStore(path)
        assert reloaded.queries() == []
        assert reloaded.last_corruption is not None


class TestFaultyObjectStore:
    def test_put_fault_then_delegate(self):
        inner = ObjectStore()
        inner.create_bucket("b")
        plan = FaultPlan(
            [FaultSpec(FaultyObjectStore.SITE_PUT, FaultKind.TIER_ERROR, 1)]
        )
        faulty = FaultyObjectStore(inner, FaultInjector(plan))
        with pytest.raises(TransientTierError):
            faulty.put("b", "k", b"data")
        faulty.put("b", "k", b"data")  # retry lands
        assert faulty.get("b", "k") == b"data"  # delegated read
