"""Unit tests for deterministic fault plans."""

import pytest

from repro.faults import FaultKind, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("", FaultKind.CRASH, 1)
        with pytest.raises(ValueError):
            FaultSpec("s", FaultKind.CRASH, 0)  # at_call is 1-based
        with pytest.raises(ValueError):
            FaultSpec("s", FaultKind.CRASH, 1, repeat=0)

    def test_defaults(self):
        spec = FaultSpec("s", FaultKind.SLOW_READ, 3)
        assert spec.repeat == 1 and spec.arg == 0.0


class TestFaultPlan:
    def test_lookup_by_site_and_call(self):
        plan = FaultPlan(
            [
                FaultSpec("a", FaultKind.FETCH_ERROR, 2),
                FaultSpec("b", FaultKind.CRASH, 1),
            ]
        )
        assert plan.lookup("a", 2).kind is FaultKind.FETCH_ERROR
        assert plan.lookup("a", 1) is None
        assert plan.lookup("b", 1).kind is FaultKind.CRASH
        assert plan.lookup("unknown", 1) is None
        assert plan.sites() == ["a", "b"]
        assert plan.fault_points() == 2
        assert len(plan) == 2

    def test_repeat_expands_consecutive_calls(self):
        plan = FaultPlan([FaultSpec("a", FaultKind.FETCH_ERROR, 3, repeat=2)])
        assert plan.lookup("a", 2) is None
        assert plan.lookup("a", 3) is not None
        assert plan.lookup("a", 4) is not None
        assert plan.lookup("a", 5) is None
        assert plan.fault_points() == 2

    def test_overlapping_specs_rejected(self):
        with pytest.raises(ValueError, match="overlapping"):
            FaultPlan(
                [
                    FaultSpec("a", FaultKind.FETCH_ERROR, 1, repeat=3),
                    FaultSpec("a", FaultKind.CRASH, 3),
                ]
            )

    def test_same_call_different_sites_ok(self):
        plan = FaultPlan(
            [
                FaultSpec("a", FaultKind.CRASH, 1),
                FaultSpec("b", FaultKind.CRASH, 1),
            ]
        )
        assert plan.fault_points() == 2

    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.sites() == []
        assert plan.lookup("a", 1) is None
        assert len(plan) == 0


class TestSeededPlan:
    SITES = {
        "broker.fetch": FaultKind.FETCH_ERROR,
        "tier.put": FaultKind.TIER_ERROR,
    }

    def test_same_seed_same_plan(self):
        a = FaultPlan.seeded(7, self.SITES, rate=0.1, horizon=100)
        b = FaultPlan.seeded(7, self.SITES, rate=0.1, horizon=100)
        assert a.specs == b.specs

    def test_different_seed_different_plan(self):
        a = FaultPlan.seeded(7, self.SITES, rate=0.1, horizon=500)
        b = FaultPlan.seeded(8, self.SITES, rate=0.1, horizon=500)
        assert a.specs != b.specs

    def test_site_stream_independent_of_other_sites(self):
        """Adding a site to a plan must not move another site's faults."""
        alone = FaultPlan.seeded(
            7, {"broker.fetch": FaultKind.FETCH_ERROR}, rate=0.1
        )
        both = FaultPlan.seeded(7, self.SITES, rate=0.1)
        fetch_alone = [s for s in alone.specs if s.site == "broker.fetch"]
        fetch_both = [s for s in both.specs if s.site == "broker.fetch"]
        assert fetch_alone == fetch_both

    def test_rate_bounds(self):
        assert FaultPlan.seeded(1, self.SITES, rate=0.0).fault_points() == 0
        dense = FaultPlan.seeded(1, self.SITES, rate=1.0, horizon=10)
        assert dense.fault_points() == 20  # every call of both sites
        with pytest.raises(ValueError):
            FaultPlan.seeded(1, self.SITES, rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan.seeded(1, self.SITES, horizon=-1)

    def test_arg_propagates(self):
        plan = FaultPlan.seeded(
            3,
            {"broker.fetch": FaultKind.SLOW_READ},
            rate=1.0,
            horizon=2,
            arg=0.25,
        )
        assert all(s.arg == 0.25 for s in plan.specs)
