"""Unit tests for the retry/backoff policy — fully deterministic, no
real sleeping anywhere."""

import pytest

from repro.faults import (
    DEFAULT_RETRY_POLICY,
    RetryExhaustedError,
    RetryPolicy,
    call_with_retry,
)
from repro.perf import PERF
from repro.stream.errors import FetchTimeoutError


class Flaky:
    """Callable failing the first ``n_failures`` invocations."""

    def __init__(self, n_failures, exc=None):
        self.n_failures = n_failures
        self.calls = 0
        self.exc = exc or FetchTimeoutError("test.site", "flaky")

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n_failures:
            raise self.exc
        return "ok"


class TestRetryPolicy:
    def test_backoff_sequence_capped(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5
        )
        assert policy.delays() == (0.1, 0.2, 0.4, 0.5, 0.5)

    def test_default_policy(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 4
        assert DEFAULT_RETRY_POLICY.delays() == (0.05, 0.1, 0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestCallWithRetry:
    def test_transient_then_success(self):
        flaky = Flaky(2)
        before = PERF.counter("faults.retry.test.site")
        assert call_with_retry(flaky, site="test.site") == "ok"
        assert flaky.calls == 3
        assert PERF.counter("faults.retry.test.site") - before == 2

    def test_exhaustion_raises_with_cause_and_counts_giveup(self):
        flaky = Flaky(99)
        before = PERF.counter("faults.giveup.test.site")
        with pytest.raises(RetryExhaustedError) as info:
            call_with_retry(
                flaky, policy=RetryPolicy(max_attempts=3), site="test.site"
            )
        assert flaky.calls == 3
        assert info.value.attempts == 3
        assert info.value.site == "test.site"
        assert isinstance(info.value.__cause__, FetchTimeoutError)
        assert PERF.counter("faults.giveup.test.site") - before == 1

    def test_permanent_error_fails_fast(self):
        flaky = Flaky(99, exc=KeyError("not transient"))
        with pytest.raises(KeyError):
            call_with_retry(flaky, site="test.site")
        assert flaky.calls == 1  # no retry on permanent errors

    def test_injected_sleep_sees_deterministic_delays(self):
        slept = []
        flaky = Flaky(3)
        policy = RetryPolicy(
            max_attempts=4, base_delay_s=0.1, multiplier=2.0, max_delay_s=10.0
        )
        call_with_retry(flaky, policy=policy, site="s", sleep=slept.append)
        assert slept == [0.1, 0.2, 0.4]

    def test_virtual_backoff_accounted_not_slept(self):
        flaky = Flaky(2)
        policy = RetryPolicy(
            max_attempts=4, base_delay_s=0.5, multiplier=2.0, max_delay_s=10.0
        )
        before = PERF.counter("faults.backoff_virtual_s")
        call_with_retry(flaky, policy=policy, site="s")
        assert PERF.counter("faults.backoff_virtual_s") - before == pytest.approx(
            0.5 + 1.0
        )

    def test_site_defaults_to_error_site(self):
        flaky = Flaky(1, exc=FetchTimeoutError("from.error", "x"))
        before = PERF.counter("faults.retry.from.error")
        call_with_retry(flaky)  # no site= given
        assert PERF.counter("faults.retry.from.error") - before == 1

    def test_single_attempt_policy_never_retries(self):
        flaky = Flaky(1)
        with pytest.raises(RetryExhaustedError):
            call_with_retry(
                flaky, policy=RetryPolicy(max_attempts=1), site="s"
            )
        assert flaky.calls == 1
