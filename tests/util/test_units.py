"""Unit tests for byte/rate units and formatting."""

import pytest

from repro.util import GB, KB, MB, PB, TB, bytes_per_day, format_bytes, format_rate


class TestConstants:
    def test_decimal_progression(self):
        assert MB == 1000 * KB
        assert GB == 1000 * MB
        assert TB == 1000 * GB
        assert PB == 1000 * TB


class TestBytesPerDay:
    def test_extrapolates_one_hour(self):
        # 1 GB in one hour -> 24 GB/day.
        assert bytes_per_day(GB, 3600.0) == pytest.approx(24 * GB)

    def test_identity_for_full_day(self):
        assert bytes_per_day(4.4 * TB, 86_400.0) == pytest.approx(4.4 * TB)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            bytes_per_day(1.0, 0.0)


class TestFormatting:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (1500, "1.50 KB"),
            (4.42 * TB, "4.42 TB"),
            (2.5 * PB, "2.50 PB"),
        ],
    )
    def test_format_bytes(self, n, expected):
        assert format_bytes(n) == expected

    def test_negative_bytes(self):
        assert format_bytes(-1500) == "-1.50 KB"

    def test_format_rate_suffix(self):
        assert format_rate(51.2 * MB).endswith("/s")
        assert format_rate(51.2 * MB) == "51.20 MB/s"
