"""Unit + statistical tests for counter-based deterministic noise."""

import numpy as np
import pytest

from repro.util.noise import hash_u64, normal_from_index, uniform_from_index


class TestHashU64:
    def test_deterministic(self):
        x = np.arange(100, dtype=np.uint64)
        np.testing.assert_array_equal(hash_u64(x), hash_u64(x))

    def test_avalanche(self):
        """Adjacent inputs produce unrelated outputs (bit independence)."""
        x = np.arange(10_000, dtype=np.uint64)
        h = hash_u64(x)
        diffs = h[1:] ^ h[:-1]
        popcount = np.array([bin(int(d)).count("1") for d in diffs[:500]])
        assert 20 < popcount.mean() < 44  # ~32 of 64 bits flip

    def test_no_collisions_in_small_range(self):
        x = np.arange(100_000, dtype=np.uint64)
        assert np.unique(hash_u64(x)).size == x.size


class TestUniformFromIndex:
    def test_range(self):
        u = uniform_from_index(0, 1, np.arange(10_000, dtype=np.uint64))
        assert (u >= 0).all() and (u < 1).all()

    def test_mean_and_variance(self):
        u = uniform_from_index(7, 3, np.arange(50_000, dtype=np.uint64))
        assert u.mean() == pytest.approx(0.5, abs=0.01)
        assert u.var() == pytest.approx(1 / 12, abs=0.01)

    def test_split_invariance(self):
        """The property every telemetry source relies on: values depend
        only on (seed, tag, index), never on call batching."""
        idx = np.arange(1000, dtype=np.uint64)
        whole = uniform_from_index(1, 2, idx)
        parts = np.concatenate(
            [uniform_from_index(1, 2, idx[i : i + 100]) for i in range(0, 1000, 100)]
        )
        np.testing.assert_array_equal(whole, parts)

    def test_seed_and_tag_decorrelate(self):
        idx = np.arange(1000, dtype=np.uint64)
        a = uniform_from_index(1, 1, idx)
        b = uniform_from_index(2, 1, idx)
        c = uniform_from_index(1, 2, idx)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1
        assert abs(np.corrcoef(a, c)[0, 1]) < 0.1


class TestNormalFromIndex:
    def test_moments(self):
        z = normal_from_index(3, 5, np.arange(50_000, dtype=np.uint64))
        assert z.mean() == pytest.approx(0.0, abs=0.02)
        assert z.std() == pytest.approx(1.0, abs=0.02)

    def test_tail_mass(self):
        z = normal_from_index(3, 5, np.arange(50_000, dtype=np.uint64))
        frac_2sigma = (np.abs(z) > 2.0).mean()
        assert frac_2sigma == pytest.approx(0.0455, abs=0.01)

    def test_finite(self):
        z = normal_from_index(0, 0, np.arange(10_000, dtype=np.uint64))
        assert np.isfinite(z).all()

    def test_deterministic(self):
        idx = np.arange(100, dtype=np.uint64)
        np.testing.assert_array_equal(
            normal_from_index(9, 9, idx), normal_from_index(9, 9, idx)
        )
