"""Unit tests for the virtual simulation clock."""

import pytest

from repro.util import SimClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(start=100.0).now == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance(15.0) == 15.0
        assert clock.advance(5.0) == 20.0

    def test_advance_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_zero_advance_allowed(self):
        clock = SimClock(start=3.0)
        assert clock.advance(0.0) == 3.0

    def test_advance_to_absolute(self):
        clock = SimClock()
        clock.advance_to(42.0)
        assert clock.now == 42.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_observers_fire_on_advance(self):
        clock = SimClock()
        seen = []
        clock.on_tick(seen.append)
        clock.advance(1.0)
        clock.advance(2.0)
        assert seen == [1.0, 3.0]

    def test_ticks_yields_successive_times(self):
        clock = SimClock()
        times = list(clock.ticks(interval=15.0, count=4))
        assert times == [15.0, 30.0, 45.0, 60.0]
        assert clock.now == 60.0

    def test_ticks_validates_arguments(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            list(clock.ticks(interval=0.0, count=1))
        with pytest.raises(ValueError):
            list(clock.ticks(interval=1.0, count=-1))
