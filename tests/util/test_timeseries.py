"""Unit + property tests for vectorized time-series primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.util import (
    bucket_indices,
    bucket_mean,
    bucket_reduce,
    ema,
    fill_forward,
    resample_mean,
    rolling_mean,
)


class TestBucketIndices:
    def test_basic_binning(self):
        ts = np.array([0.0, 14.9, 15.0, 29.9, 30.0])
        np.testing.assert_array_equal(
            bucket_indices(ts, 15.0), [0, 0, 1, 1, 2]
        )

    def test_origin_shift(self):
        ts = np.array([10.0, 20.0])
        np.testing.assert_array_equal(bucket_indices(ts, 15.0, origin=10.0), [0, 0])

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            bucket_indices(np.array([1.0]), 0.0)


class TestBucketReduce:
    def setup_method(self):
        self.keys = np.array([2, 0, 1, 0, 2, 2])
        self.vals = np.array([10.0, 1.0, 5.0, 3.0, 20.0, 30.0])

    def test_mean(self):
        uniq, out = bucket_reduce(self.keys, self.vals, "mean")
        np.testing.assert_array_equal(uniq, [0, 1, 2])
        np.testing.assert_allclose(out, [2.0, 5.0, 20.0])

    def test_sum(self):
        _, out = bucket_reduce(self.keys, self.vals, "sum")
        np.testing.assert_allclose(out, [4.0, 5.0, 60.0])

    def test_min_max(self):
        _, mn = bucket_reduce(self.keys, self.vals, "min")
        _, mx = bucket_reduce(self.keys, self.vals, "max")
        np.testing.assert_allclose(mn, [1.0, 5.0, 10.0])
        np.testing.assert_allclose(mx, [3.0, 5.0, 30.0])

    def test_count(self):
        _, out = bucket_reduce(self.keys, self.vals, "count")
        np.testing.assert_allclose(out, [2, 1, 3])

    def test_first_last_respect_input_order(self):
        _, first = bucket_reduce(self.keys, self.vals, "first")
        _, last = bucket_reduce(self.keys, self.vals, "last")
        np.testing.assert_allclose(first, [1.0, 5.0, 10.0])
        np.testing.assert_allclose(last, [3.0, 5.0, 30.0])

    def test_std_single_element_group_is_zero(self):
        _, out = bucket_reduce(np.array([7]), np.array([3.0]), "std")
        np.testing.assert_allclose(out, [0.0])

    def test_empty_input(self):
        uniq, out = bucket_reduce(np.array([], dtype=int), np.array([]))
        assert uniq.size == 0 and out.size == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bucket_reduce(np.array([1, 2]), np.array([1.0]))

    def test_unknown_reducer_rejected(self):
        with pytest.raises(ValueError):
            bucket_reduce(self.keys, self.vals, "median")

    @given(
        keys=hnp.arrays(np.int64, st.integers(1, 200), elements=st.integers(-5, 5)),
    )
    @settings(max_examples=50, deadline=None)
    def test_sum_matches_python_groupby(self, keys):
        vals = np.arange(keys.size, dtype=np.float64)
        uniq, out = bucket_reduce(keys, vals, "sum")
        expected = {}
        for k, v in zip(keys.tolist(), vals.tolist()):
            expected[k] = expected.get(k, 0.0) + v
        assert list(uniq) == sorted(expected)
        for k, s in zip(uniq.tolist(), out.tolist()):
            assert s == pytest.approx(expected[k])


class TestBucketMean:
    def test_returns_bucket_start_times(self):
        ts = np.array([0.0, 5.0, 15.0])
        vals = np.array([1.0, 3.0, 10.0])
        times, means = bucket_mean(ts, vals, 15.0)
        np.testing.assert_allclose(times, [0.0, 15.0])
        np.testing.assert_allclose(means, [2.0, 10.0])


class TestResampleMean:
    def test_dense_grid_with_gaps(self):
        ts = np.array([0.0, 30.0])
        vals = np.array([1.0, 2.0])
        grid, out = resample_mean(ts, vals, 15.0, 0.0, 45.0)
        np.testing.assert_allclose(grid, [0.0, 15.0, 30.0])
        assert out[0] == 1.0 and np.isnan(out[1]) and out[2] == 2.0

    def test_excludes_out_of_range_samples(self):
        ts = np.array([-1.0, 100.0])
        vals = np.array([5.0, 5.0])
        _, out = resample_mean(ts, vals, 10.0, 0.0, 20.0)
        assert np.isnan(out).all()


class TestRollingMean:
    def test_ramp_up_then_window(self):
        out = rolling_mean(np.array([1.0, 2.0, 3.0, 4.0]), window=2)
        np.testing.assert_allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_window_one_is_identity(self):
        v = np.array([3.0, 1.0, 4.0])
        np.testing.assert_allclose(rolling_mean(v, 1), v)

    def test_empty_input(self):
        assert rolling_mean(np.array([]), 3).size == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            rolling_mean(np.array([1.0]), 0)

    @given(
        v=hnp.arrays(
            np.float64,
            st.integers(1, 100),
            elements=st.floats(-1e6, 1e6),
        ),
        window=st.integers(1, 10),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_naive_implementation(self, v, window):
        out = rolling_mean(v, window)
        for i in range(v.size):
            lo = max(0, i - window + 1)
            assert out[i] == pytest.approx(v[lo : i + 1].mean(), rel=1e-9, abs=1e-6)


class TestEma:
    def test_alpha_one_is_identity(self):
        v = np.array([1.0, 5.0, 2.0])
        np.testing.assert_allclose(ema(v, 1.0), v)

    def test_first_value_preserved(self):
        assert ema(np.array([7.0, 0.0]), 0.5)[0] == 7.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ema(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            ema(np.array([1.0]), 1.5)

    @given(
        v=hnp.arrays(np.float64, st.integers(1, 300), elements=st.floats(-100, 100)),
        alpha=st.floats(0.01, 0.99),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_iterative_recurrence(self, v, alpha):
        out = ema(v, alpha)
        acc = v[0]
        assert out[0] == pytest.approx(acc)
        for i in range(1, v.size):
            acc = (1 - alpha) * acc + alpha * v[i]
            assert out[i] == pytest.approx(acc, rel=1e-7, abs=1e-7)

    def test_long_series_no_overflow(self):
        v = np.ones(100_000)
        out = ema(v, 0.001)
        assert np.isfinite(out).all()
        assert out[-1] == pytest.approx(1.0, rel=1e-6)


class TestFillForward:
    def test_fills_interior_gaps(self):
        v = np.array([1.0, np.nan, np.nan, 4.0, np.nan])
        np.testing.assert_allclose(fill_forward(v), [1.0, 1.0, 1.0, 4.0, 4.0])

    def test_leading_nans_preserved(self):
        out = fill_forward(np.array([np.nan, 2.0]))
        assert np.isnan(out[0]) and out[1] == 2.0

    def test_does_not_mutate_input(self):
        v = np.array([1.0, np.nan])
        fill_forward(v)
        assert np.isnan(v[1])
