"""Unit tests for deterministic named RNG streams."""

from repro.util import RngStreams, derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_root_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(0, "x") < 2**64


class TestRngStreams:
    def test_same_name_returns_same_generator(self):
        streams = RngStreams(seed=1)
        assert streams.get("s") is streams.get("s")

    def test_streams_are_order_independent(self):
        a = RngStreams(seed=9)
        b = RngStreams(seed=9)
        # Touch other streams first on one side only.
        b.get("noise")
        b.get("other")
        assert a.get("target").random() == b.get("target").random()

    def test_fresh_restarts_stream(self):
        streams = RngStreams(seed=3)
        first = streams.fresh("s").random()
        gen = streams.fresh("s")
        assert gen.random() == first

    def test_distinct_names_give_distinct_sequences(self):
        streams = RngStreams(seed=5)
        xs = streams.get("a").random(10)
        ys = streams.get("b").random(10)
        assert not (xs == ys).all()

    def test_child_namespace_isolated(self):
        root = RngStreams(seed=11)
        child = root.child("telemetry")
        assert root.get("x").random() != child.get("x").random()

    def test_child_deterministic(self):
        a = RngStreams(seed=11).child("ns").get("x").random()
        b = RngStreams(seed=11).child("ns").get("x").random()
        assert a == b

    def test_seed_property(self):
        assert RngStreams(seed=17).seed == 17
