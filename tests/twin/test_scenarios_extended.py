"""Unit tests for future-system virtual prototyping."""

import numpy as np
import pytest

from repro.telemetry import AllocationTable, JobSpec, MINI
from repro.twin import prototype_future_system


def busy_allocation():
    return AllocationTable(
        [
            JobSpec(
                job_id=1, user="u", project="P", archetype="climate",
                nodes=np.arange(MINI.n_nodes), start=0.0, end=3600.0,
            )
        ]
    )


class TestPrototypeFutureSystem:
    def test_hotter_gpus_draw_more_power(self):
        result = prototype_future_system(
            MINI, busy_allocation(), 0.0, 3600.0, gpu_tdp_scale=1.5
        )
        assert result["power_growth"] > 1.2
        assert result["future_energy_j"] > result["current_energy_j"]

    def test_efficiency_gain_can_beat_power_growth(self):
        """The procurement question: more science per joule despite a
        bigger power envelope."""
        result = prototype_future_system(
            MINI, busy_allocation(), 0.0, 3600.0,
            gpu_tdp_scale=1.5, efficiency_gain=2.0,
        )
        assert result["science_per_joule_ratio"] > 1.0

    def test_pue_reported_for_both(self):
        result = prototype_future_system(MINI, busy_allocation(), 0.0, 3600.0)
        assert result["current_pue"] > 1.0
        assert result["future_pue"] > 1.0

    def test_invalid_scales(self):
        with pytest.raises(ValueError):
            prototype_future_system(
                MINI, busy_allocation(), 0.0, 100.0, gpu_tdp_scale=0.0
            )

    def test_identity_prototype_changes_nothing(self):
        result = prototype_future_system(
            MINI, busy_allocation(), 0.0, 3600.0,
            gpu_tdp_scale=1.0, efficiency_gain=1.0,
        )
        assert result["power_growth"] == pytest.approx(1.0, rel=1e-9)
        assert result["science_per_joule_ratio"] == pytest.approx(1.0, rel=1e-9)
