"""Unit tests for the twin's power simulator and loss models."""

import numpy as np
import pytest

from repro.telemetry import AllocationTable, JobSpec, MINI
from repro.twin import LossModel, PowerSimulator


def hpl_allocation(n_nodes=16, start=300.0, end=3900.0):
    return AllocationTable(
        [
            JobSpec(
                job_id=1,
                user="user001",
                project="HPL",
                archetype="hpl",
                nodes=np.arange(n_nodes),
                start=start,
                end=end,
            )
        ]
    )


class TestPowerSimulator:
    def test_idle_fleet_at_idle_power(self):
        sim = PowerSimulator(MINI, AllocationTable([]))
        times = np.array([0.0, 100.0])
        fleet = sim.fleet_power(times)
        expected = MINI.n_nodes * MINI.node_idle_w / 0.92
        np.testing.assert_allclose(fleet, expected, rtol=0.05)

    def test_hpl_plateau_near_peak(self):
        sim = PowerSimulator(MINI, hpl_allocation())
        times = np.linspace(1000.0, 3000.0, 20)
        fleet = sim.fleet_power(times)
        # HPL at ~95% utilization: fleet power far above idle.
        assert fleet.mean() > 2.5 * MINI.n_nodes * MINI.node_idle_w

    def test_power_cap_clips(self):
        capped = PowerSimulator(MINI, hpl_allocation(), power_cap_w=2000.0)
        times = np.linspace(1000.0, 3000.0, 10)
        node_power = capped.node_power(np.arange(MINI.n_nodes), times)
        assert node_power.max() <= 2000.0

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            PowerSimulator(MINI, AllocationTable([]), power_cap_w=0.0)

    def test_job_power_zero_outside_lifetime(self):
        sim = PowerSimulator(MINI, hpl_allocation(start=300.0, end=3900.0))
        times = np.array([0.0, 2000.0, 5000.0])
        jp = sim.job_power(1, times)
        assert jp[0] == 0.0 and jp[2] == 0.0 and jp[1] > 0.0

    def test_energy_positive_and_window_checked(self):
        sim = PowerSimulator(MINI, hpl_allocation())
        assert sim.energy_j(0.0, 3600.0) > 0
        with pytest.raises(ValueError):
            sim.energy_j(10.0, 10.0)

    def test_subset_extrapolation(self):
        sim = PowerSimulator(MINI, AllocationTable([]))
        times = np.array([0.0])
        full = sim.fleet_power(times)
        subset = sim.fleet_power(times, nodes=np.arange(4))
        np.testing.assert_allclose(full, subset, rtol=1e-9)


class TestLossModel:
    def make(self):
        return LossModel(rated_power_w=MINI.peak_it_power_w)

    def test_efficiency_curve_monotone_then_plateau(self):
        model = self.make()
        loads = np.array([0.05, 0.1, 0.3, 0.6, 1.0])
        eta = model.rectifier_efficiency(loads)
        assert (np.diff(eta) >= -1e-12).all()
        assert eta[-1] <= model.peak_efficiency

    def test_light_load_less_efficient(self):
        model = self.make()
        assert model.rectifier_efficiency(0.1) < model.rectifier_efficiency(0.8)

    def test_breakdown_conserves_power(self):
        model = self.make()
        b = model.breakdown(it_power_w=30_000.0)
        assert b.utility_power_w == pytest.approx(
            b.it_power_w + b.conversion_loss_w + b.rectification_loss_w
        )
        assert 0.0 < b.loss_fraction < 0.25

    def test_loss_fraction_few_percent_at_high_load(self):
        """Fig. 11's loss magnitude: several percent of utility power."""
        model = self.make()
        b = model.breakdown(it_power_w=0.8 * MINI.peak_it_power_w)
        assert 0.05 < b.loss_fraction < 0.15

    def test_zero_power(self):
        b = self.make().breakdown(0.0)
        assert b.total_loss_w == 0.0

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            self.make().breakdown(-1.0)
        with pytest.raises(ValueError):
            self.make().loss_series(np.array([-1.0]))

    def test_energy_loss_integration(self):
        model = self.make()
        times = np.linspace(0, 3600, 100)
        power = np.full(100, 30_000.0)
        loss = model.energy_loss_j(times, power)
        assert loss["utility_j"] == pytest.approx(
            loss["it_j"] + loss["conversion_j"] + loss["rectification_j"],
            rel=1e-9,
        )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LossModel(rated_power_w=0.0)
        with pytest.raises(ValueError):
            LossModel(1.0, peak_efficiency=0.9, light_load_efficiency=0.95)
