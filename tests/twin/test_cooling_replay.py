"""Unit + integration tests for the cooling model, replay, and scenarios."""

import numpy as np
import pytest

from repro.telemetry import AllocationTable, JobSpec, MINI, synthetic_job_mix
from repro.twin import (
    CoolingModel,
    TelemetryReplay,
    what_if_coolant_temp,
    what_if_power_cap,
)


def hpl_allocation(start=600.0, end=3000.0):
    return AllocationTable(
        [
            JobSpec(
                job_id=1, user="u", project="HPL", archetype="hpl",
                nodes=np.arange(MINI.n_nodes), start=start, end=end,
            )
        ]
    )


class TestCoolingModel:
    def test_steady_state_rises_with_load(self):
        model = CoolingModel(MINI)
        times = np.linspace(0, 7200, 200)
        low = model.simulate(times, lambda t: 0.1 * MINI.peak_it_power_w)
        high = model.simulate(times, lambda t: 0.9 * MINI.peak_it_power_w)
        assert (
            high.steady_state_return_c() > low.steady_state_return_c() + 1.0
        )

    def test_transient_response_to_step(self):
        """An HPL-style load step produces a lagged thermal response —
        the 'complex transient dynamics' of Fig. 11 (right)."""
        model = CoolingModel(MINI)
        times = np.linspace(0, 3600, 300)
        step = lambda t: MINI.peak_it_power_w if t > 600 else 0.1 * MINI.peak_it_power_w  # noqa: E731
        state = model.simulate(times, step)
        at_step = np.searchsorted(times, 600.0)
        shortly_after = np.searchsorted(times, 700.0)
        much_later = np.searchsorted(times, 3000.0)
        # Response continues rising well after the step (thermal lag).
        assert state.secondary_return_c[shortly_after] < state.secondary_return_c[much_later]
        assert (
            state.secondary_return_c[much_later]
            > state.secondary_return_c[at_step] + 1.0
        )

    def test_array_power_trace_accepted(self):
        model = CoolingModel(MINI)
        times = np.linspace(0, 1800, 100)
        trace = np.full(100, 0.5 * MINI.peak_it_power_w)
        state = model.simulate(times, trace)
        assert state.times.size == 100

    def test_trace_length_checked(self):
        model = CoolingModel(MINI)
        with pytest.raises(ValueError):
            model.simulate(np.linspace(0, 10, 5), np.zeros(4))

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            CoolingModel(MINI).simulate(np.array([0.0]), lambda t: 1.0)

    def test_pue_above_one(self):
        model = CoolingModel(MINI)
        times = np.linspace(0, 3600, 100)
        power = np.full(100, 0.7 * MINI.peak_it_power_w)
        state = model.simulate(times, power)
        pue = model.pue(state, power)
        assert 1.0 < pue < 1.5

    def test_pue_requires_positive_energy(self):
        model = CoolingModel(MINI)
        times = np.linspace(0, 10, 10)
        state = model.simulate(times, np.zeros(10))
        with pytest.raises(ValueError):
            model.pue(state, np.zeros(10))


class TestTelemetryReplay:
    @pytest.fixture(scope="class")
    def replay_result(self):
        replay = TelemetryReplay(MINI, hpl_allocation(), seed=0)
        return replay.run(0.0, 3600.0, dt=15.0)

    def test_power_tracks_measurement(self, replay_result):
        """The Fig. 11 V&V claim: white-box power within a few percent."""
        report, _ = replay_result
        assert report.power_mape < 0.05
        assert report.passes()

    def test_bias_small(self, replay_result):
        report, _ = replay_result
        assert abs(report.power_bias) < 0.05

    def test_cooling_rmse_bounded(self, replay_result):
        report, _ = replay_result
        assert report.return_temp_rmse_c < 10.0

    def test_pue_and_losses_physical(self, replay_result):
        report, _ = replay_result
        assert 1.0 < report.pue < 1.5
        assert 0.03 < report.loss_fraction < 0.20

    def test_traces_aligned(self, replay_result):
        _, traces = replay_result
        n = traces["times"].size
        assert traces["measured_power_w"].size == n
        assert traces["predicted_power_w"].size == n
        assert traces["cooling"].times.size == n

    def test_window_validation(self):
        replay = TelemetryReplay(MINI, hpl_allocation(), seed=0)
        with pytest.raises(ValueError):
            replay.run(0.0, 10.0, dt=15.0)

    def test_replay_on_mixed_workload(self):
        allocation = synthetic_job_mix(
            MINI, 0.0, 3600.0, np.random.default_rng(3)
        )
        report, _ = TelemetryReplay(MINI, allocation, seed=1).run(
            0.0, 1800.0, dt=15.0
        )
        assert report.power_mape < 0.08


class TestScenarios:
    def test_power_cap_saves_energy(self):
        result = what_if_power_cap(
            MINI, hpl_allocation(), 0.0, 3600.0, cap_fraction=0.7
        )
        assert result.energy_saving_fraction > 0.02
        assert result.scenario_energy_j < result.baseline_energy_j

    def test_cap_fraction_validated(self):
        with pytest.raises(ValueError):
            what_if_power_cap(MINI, hpl_allocation(), 0.0, 100.0, cap_fraction=0.0)

    def test_idle_fleet_cap_changes_nothing(self):
        result = what_if_power_cap(
            MINI, AllocationTable([]), 0.0, 1800.0, cap_fraction=0.9
        )
        assert result.energy_saving_fraction == pytest.approx(0.0, abs=1e-6)

    def test_warm_water_scenario_runs(self):
        result = what_if_coolant_temp(
            MINI, hpl_allocation(), 0.0, 3600.0, supply_c=37.0
        )
        # IT energy unchanged (no cap); PUE reported for both.
        assert result.scenario_energy_j == pytest.approx(
            result.baseline_energy_j, rel=1e-9
        )
        assert result.baseline_pue > 1.0 and result.scenario_pue > 1.0
