"""Unit tests for anomaly detection and power forecasting."""

import numpy as np
import pytest

from repro.ml import (
    PersistenceForecaster,
    PowerAnomalyDetector,
    RidgeForecaster,
    backtest,
    windowize,
)


def normal_power(n=2000, seed=0):
    """A plausible diurnal-ish node power series."""
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    base = 2000 + 600 * np.sin(2 * np.pi * t / 288)
    return base + rng.normal(0, 30, n)


class TestWindowize:
    def test_shapes_and_normalization(self):
        out = windowize(np.arange(100, dtype=float), window=20, stride=10)
        assert out.shape == (9, 20)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_flat_window_is_half(self):
        out = windowize(np.full(40, 7.0), window=20, stride=20)
        np.testing.assert_allclose(out, 0.5)

    def test_short_series_empty(self):
        assert windowize(np.arange(5, dtype=float), window=10).shape == (0, 10)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            windowize(np.arange(10.0), window=1)
        with pytest.raises(ValueError):
            windowize(np.arange(10.0), window=4, stride=0)


class TestPowerAnomalyDetector:
    @pytest.fixture(scope="class")
    def detector(self):
        return PowerAnomalyDetector(window=32, seed=0).fit(
            normal_power(), epochs=60
        )

    def test_normal_data_mostly_clean(self, detector):
        report = detector.score(normal_power(seed=1))
        assert report.anomaly_fraction < 0.1

    def test_stuck_sensor_detected(self, detector):
        series = normal_power(seed=2)
        series[800:900] = series[800]  # flatline fault
        assert detector.is_anomalous(series)

    def test_power_spike_detected(self, detector):
        series = normal_power(seed=3)
        series[500:540] += np.linspace(0, 4000, 40) * (np.arange(40) % 3 == 0)
        report = detector.score(series)
        assert report.n_anomalous > 0

    def test_scores_align_with_fault_location(self, detector):
        series = normal_power(seed=4)
        series[960:1060] = series[960]
        report = detector.score(series)
        worst = int(np.argmax(report.scores)) * 16  # stride = window//2
        assert 850 <= worst <= 1150

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PowerAnomalyDetector().score(normal_power())

    def test_too_little_training_data(self):
        with pytest.raises(ValueError):
            PowerAnomalyDetector(window=32).fit(np.arange(50, dtype=float))

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            PowerAnomalyDetector(quantile=0.4)


class TestForecasters:
    def test_persistence_baseline(self):
        pred = PersistenceForecaster().fit(normal_power()).predict(
            np.array([1.0, 2.0, 3.0]), horizon=4
        )
        np.testing.assert_allclose(pred, 3.0)

    def test_persistence_empty_history(self):
        with pytest.raises(ValueError):
            PersistenceForecaster().predict(np.array([]), 3)

    def test_ridge_fits_and_predicts(self):
        series = normal_power()
        model = RidgeForecaster(order=24).fit(series[:1200])
        pred = model.predict(series[:1200], horizon=10)
        assert pred.shape == (10,)
        assert np.isfinite(pred).all()
        # Prediction in a plausible power range.
        assert 800 < pred.mean() < 3500

    def test_ridge_requires_fit(self):
        with pytest.raises(RuntimeError):
            RidgeForecaster().predict(normal_power()[:50], 5)

    def test_ridge_validates(self):
        with pytest.raises(ValueError):
            RidgeForecaster(order=0)
        with pytest.raises(ValueError):
            RidgeForecaster(alpha=-1.0)
        with pytest.raises(ValueError):
            RidgeForecaster(order=50).fit(np.arange(20, dtype=float))
        model = RidgeForecaster(order=10).fit(normal_power()[:200])
        with pytest.raises(ValueError):
            model.predict(np.arange(5, dtype=float), 3)

    def test_ridge_beats_persistence_on_periodic_load(self):
        """The claim any forecasting pipeline must make good on."""
        series = normal_power(seed=7)
        ridge = backtest(RidgeForecaster(order=48), series, horizon=12)
        persist = backtest(PersistenceForecaster(), series, horizon=12)
        assert ridge.mape < persist.mape
        assert ridge.n_forecasts == persist.n_forecasts > 10

    def test_backtest_validates_length(self):
        with pytest.raises(ValueError):
            backtest(PersistenceForecaster(), np.arange(10.0), horizon=20)
