"""Unit tests for the NumPy MLP."""

import numpy as np
import pytest

from repro.ml import MLP


class TestConstruction:
    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            MLP([4])
        with pytest.raises(ValueError):
            MLP([4, 0, 2])

    def test_invalid_activation_loss(self):
        with pytest.raises(ValueError):
            MLP([2, 2], activation="gelu")
        with pytest.raises(ValueError):
            MLP([2, 2], loss="hinge")

    def test_deterministic_init(self):
        a, b = MLP([4, 8, 2], seed=3), MLP([4, 8, 2], seed=3)
        for wa, wb in zip(a.weights, b.weights):
            np.testing.assert_array_equal(wa, wb)


class TestRegression:
    def test_learns_linear_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, (200, 3))
        y = x @ np.array([[1.0], [-2.0], [0.5]])
        model = MLP([3, 16, 1], loss="mse", seed=0)
        history = model.fit(x, y, epochs=150, lr=2e-2)
        assert history[-1] < history[0] / 10
        assert history[-1] < 0.01

    def test_loss_decreases(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(100, 4))
        y = np.sin(x.sum(axis=1, keepdims=True))
        model = MLP([4, 32, 1], activation="tanh", seed=1)
        history = model.fit(x, y, epochs=50)
        assert history[-1] < history[0]


class TestClassification:
    def make_blobs(self):
        rng = np.random.default_rng(2)
        x0 = rng.normal([-2, -2], 0.5, (100, 2))
        x1 = rng.normal([2, 2], 0.5, (100, 2))
        x = np.vstack([x0, x1])
        y = np.array([0] * 100 + [1] * 100)
        return x, y

    def test_separable_blobs_classified(self):
        x, y = self.make_blobs()
        model = MLP([2, 16, 2], loss="softmax", seed=0)
        model.fit(x, y, epochs=60, lr=5e-2)
        acc = (model.predict_classes(x) == y).mean()
        assert acc > 0.95

    def test_probabilities_sum_to_one(self):
        x, y = self.make_blobs()
        model = MLP([2, 8, 2], loss="softmax", seed=0)
        probs = model.predict(x)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-9)

    def test_predict_classes_requires_softmax(self):
        with pytest.raises(ValueError):
            MLP([2, 2], loss="mse").predict_classes(np.zeros((1, 2)))

    def test_shape_mismatch_rejected(self):
        model = MLP([2, 2], loss="softmax")
        with pytest.raises(ValueError):
            model.fit(np.zeros((5, 2)), np.zeros(4))


class TestReproducibility:
    """The Fig. 9 contract: same seed + data => bit-identical model."""

    def train(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(50, 4))
        y = (x[:, 0] > 0).astype(int)
        model = MLP([4, 8, 2], loss="softmax", seed=42)
        model.fit(x, y, epochs=10)
        return model

    def test_retrain_bit_identical(self):
        assert self.train().to_bytes() == self.train().to_bytes()

    def test_serialization_roundtrip(self):
        model = self.train()
        clone = MLP.from_bytes(model.to_bytes())
        x = np.random.default_rng(0).normal(size=(10, 4))
        np.testing.assert_array_equal(model.predict(x), clone.predict(x))

    def test_different_seed_different_model(self):
        a = MLP([4, 8, 2], seed=1).to_bytes()
        b = MLP([4, 8, 2], seed=2).to_bytes()
        assert a != b
