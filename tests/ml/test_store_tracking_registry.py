"""Unit tests for feature store, experiment tracking, model registry
(the Fig. 9 reproducibility pipeline)."""

import numpy as np
import pytest

from repro.columnar import ColumnTable
from repro.ml import (
    ExperimentTracker,
    FeatureStore,
    ModelRegistry,
    ModelStage,
)


def table(seed=0, n=50):
    rng = np.random.default_rng(seed)
    return ColumnTable({"x": rng.random(n), "y": rng.random(n)})


class TestFeatureStore:
    def test_put_get_roundtrip(self):
        store = FeatureStore()
        t = table()
        meta = store.put("profiles", t, params={"interval": "15"})
        assert store.get("profiles") == t
        assert store.get("profiles", meta.version) == t

    def test_content_addressing_dedupes(self):
        store = FeatureStore()
        a = store.put("f", table(seed=1))
        b = store.put("f", table(seed=1))
        assert a.version == b.version
        assert len(store.versions("f")) == 1

    def test_different_content_new_version(self):
        store = FeatureStore()
        v1 = store.put("f", table(seed=1))
        v2 = store.put("f", table(seed=2), parent=v1.version)
        assert v1.version != v2.version
        assert store.versions("f") == [v1.version, v2.version]

    def test_latest_by_default(self):
        store = FeatureStore()
        store.put("f", table(seed=1))
        t2 = table(seed=2)
        store.put("f", t2)
        assert store.get("f") == t2

    def test_lineage_chain(self):
        store = FeatureStore()
        v1 = store.put("f", table(seed=1))
        v2 = store.put("f", table(seed=2), parent=v1.version)
        v3 = store.put("f", table(seed=3), parent=v2.version)
        assert store.lineage("f", v3.version) == [
            v3.version, v2.version, v1.version
        ]

    def test_unknown_parent_rejected(self):
        store = FeatureStore()
        with pytest.raises(KeyError):
            store.put("f", table(), parent="deadbeef")

    def test_unknown_lookups(self):
        store = FeatureStore()
        with pytest.raises(KeyError):
            store.get("nope")
        store.put("f", table())
        with pytest.raises(KeyError):
            store.get("f", "badversion")


class TestExperimentTracker:
    def test_run_lifecycle(self):
        tracker = ExperimentTracker()
        run = tracker.start_run("clf", params={"lr": 0.01})
        run.log_metric("loss", 1.0, step=0)
        run.log_metric("loss", 0.5, step=1)
        run.log_artifact("model", b"bytes")
        tracker.end_run(run.run_id)
        back = tracker.get_run(run.run_id)
        assert back.params["lr"] == "0.01"
        assert back.latest_metric("loss") == 0.5
        assert back.artifacts["model"] == b"bytes"

    def test_finished_run_immutable(self):
        tracker = ExperimentTracker()
        run = tracker.start_run("clf")
        tracker.end_run(run.run_id)
        with pytest.raises(RuntimeError):
            run.log_metric("loss", 1.0)

    def test_best_run_selection(self):
        tracker = ExperimentTracker()
        for loss in (0.9, 0.3, 0.6):
            run = tracker.start_run("clf")
            run.log_metric("loss", loss)
            tracker.end_run(run.run_id)
        best = tracker.best_run("clf", "loss", mode="min")
        assert best.latest_metric("loss") == 0.3

    def test_best_run_ignores_unfinished(self):
        tracker = ExperimentTracker()
        run = tracker.start_run("clf")
        run.log_metric("loss", 0.0)  # never ended
        assert tracker.best_run("clf", "loss") is None

    def test_best_run_mode_validation(self):
        with pytest.raises(ValueError):
            ExperimentTracker().best_run("e", "m", mode="avg")

    def test_unknown_run(self):
        with pytest.raises(KeyError):
            ExperimentTracker().get_run("nope")


class TestModelRegistry:
    def test_register_and_fetch_version(self):
        registry = ModelRegistry()
        v = registry.register("clf", b"model-v1", metrics={"purity": 0.8})
        assert v == 1
        assert registry.get_version("clf", 1) == b"model-v1"
        assert registry.metrics("clf", 1)["purity"] == 0.8

    def test_stage_lifecycle(self):
        registry = ModelRegistry()
        registry.register("clf", b"v1")
        registry.promote("clf", 1, ModelStage.STAGING)
        registry.promote("clf", 1, ModelStage.PRODUCTION)
        assert registry.get("clf") == b"v1"

    def test_illegal_transition(self):
        registry = ModelRegistry()
        registry.register("clf", b"v1")
        with pytest.raises(ValueError):
            registry.promote("clf", 1, ModelStage.PRODUCTION)  # skip staging

    def test_single_production_version(self):
        registry = ModelRegistry()
        registry.register("clf", b"v1")
        registry.register("clf", b"v2")
        for v in (1, 2):
            registry.promote("clf", v, ModelStage.STAGING)
        registry.promote("clf", 1, ModelStage.PRODUCTION)
        registry.promote("clf", 2, ModelStage.PRODUCTION)
        assert registry.get("clf") == b"v2"
        assert registry.stage_of("clf", 1) is ModelStage.ARCHIVED

    def test_no_production_version(self):
        registry = ModelRegistry()
        registry.register("clf", b"v1")
        with pytest.raises(KeyError):
            registry.get("clf")

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            ModelRegistry().get_version("nope", 1)
