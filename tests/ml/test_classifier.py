"""Integration tests for the job power-profile classifier (Fig. 10)."""

import numpy as np
import pytest

from repro.columnar import ColumnTable
from repro.ml import JobProfileClassifier, cluster_purity, kmeans
from repro.ml.features import profile_matrix, profile_statistics
from repro.telemetry import get_archetype


def synthetic_profiles(n_jobs_per_archetype=8, samples=48, seed=0):
    """Gold-format profile rows with known archetype ground truth."""
    rng = np.random.default_rng(seed)
    archetypes = ["hpl", "ml_training", "io_heavy", "idle"]
    rows_jid, rows_ts, rows_p, rows_n = [], [], [], []
    truth = {}
    job_id = 1
    for name in archetypes:
        arch = get_archetype(name)
        for _ in range(n_jobs_per_archetype):
            duration = float(rng.uniform(3600, 14400))
            t_rel = np.linspace(0, duration, samples, endpoint=False)
            util = arch.gpu_utilization(t_rel, duration)
            n_nodes = int(rng.integers(2, 8))
            power = n_nodes * (650 + util * 2500) * (
                1 + rng.normal(0, 0.02, samples)
            )
            rows_jid.append(np.full(samples, job_id))
            rows_ts.append(t_rel)
            rows_p.append(power)
            rows_n.append(np.full(samples, n_nodes, dtype=float))
            truth[job_id] = name
            job_id += 1
    table = ColumnTable(
        {
            "job_id": np.concatenate(rows_jid).astype(float),
            "timestamp": np.concatenate(rows_ts),
            "power_w": np.concatenate(rows_p),
            "n_nodes": np.concatenate(rows_n),
        }
    )
    return table, truth


class TestFeatures:
    def test_profile_matrix_shape(self):
        profiles, _ = synthetic_profiles()
        job_ids, x = profile_matrix(profiles, length=32)
        assert x.shape == (32, 32)  # 4 archetypes x 8 jobs
        assert job_ids.size == 32
        assert ((x >= 0) & (x <= 1)).all()

    def test_short_jobs_skipped(self):
        table = ColumnTable(
            {
                "job_id": [1.0, 1.0, 2.0, 2.0, 2.0, 2.0, 2.0],
                "timestamp": [0.0, 1.0, 0.0, 1.0, 2.0, 3.0, 4.0],
                "power_w": [1.0, 2.0, 1.0, 2.0, 3.0, 4.0, 5.0],
            }
        )
        job_ids, x = profile_matrix(table, length=8, min_samples=4)
        assert job_ids.tolist() == [2]

    def test_empty_profiles(self):
        job_ids, x = profile_matrix(ColumnTable({}), length=16)
        assert job_ids.size == 0 and x.shape == (0, 16)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            profile_matrix(ColumnTable({}), length=1)

    def test_profile_statistics(self):
        profiles, _ = synthetic_profiles()
        stats = profile_statistics(profiles)
        assert stats.num_rows == 32
        assert (stats["burstiness"] >= 0).all()
        assert ((stats["dynamic_range"] >= 0)
                & (stats["dynamic_range"] <= 1)).all()


class TestKmeansAndPurity:
    def test_kmeans_separates_obvious_clusters(self):
        rng = np.random.default_rng(0)
        x = np.vstack([rng.normal(0, 0.1, (20, 2)), rng.normal(5, 0.1, (20, 2))])
        labels, centroids = kmeans(x, k=2, seed=0)
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1
        assert labels[0] != labels[-1]

    def test_kmeans_invalid_k(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), k=0)
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), k=4)

    def test_purity_perfect_and_mixed(self):
        assert cluster_purity([0, 0, 1, 1], ["a", "a", "b", "b"]) == 1.0
        assert cluster_purity([0, 0, 0, 0], ["a", "a", "b", "b"]) == 0.5

    def test_purity_length_mismatch(self):
        with pytest.raises(ValueError):
            cluster_purity([0], ["a", "b"])


class TestClassifier:
    @pytest.fixture(scope="class")
    def fitted(self):
        profiles, truth = synthetic_profiles()
        clf = JobProfileClassifier(
            profile_length=32, latent_dim=6, grid=(5, 5), seed=0
        )
        clf.fit(profiles, ae_epochs=80, som_epochs=15)
        return clf, profiles, truth

    def test_requires_enough_jobs(self):
        table = ColumnTable(
            {
                "job_id": [1.0] * 8,
                "timestamp": np.arange(8, dtype=float),
                "power_w": np.arange(8, dtype=float),
            }
        )
        with pytest.raises(ValueError):
            JobProfileClassifier().fit(table)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            JobProfileClassifier().grid_populations()

    def test_grid_populations(self, fitted):
        clf, _, _ = fitted
        pops = clf.grid_populations()
        assert pops.shape == (5, 5)
        assert pops.sum() == 32

    def test_purity_beats_chance_and_matches_baseline(self, fitted):
        """The Fig. 10 claim in measurable form: shape clustering groups
        archetypes far better than chance, competitive with k-means."""
        clf, _, truth = fitted
        report = clf.evaluate(truth)
        assert report.purity > 0.6  # chance would be 0.25
        assert report.purity >= report.baseline_purity - 0.25
        assert 0 < report.occupied_cells <= report.total_cells

    def test_assign_new_profiles(self, fitted):
        clf, _, _ = fitted
        new_profiles, _ = synthetic_profiles(n_jobs_per_archetype=2, seed=99)
        job_ids, cells = clf.assign(new_profiles)
        assert job_ids.size == 8
        assert ((cells >= 0) & (cells < 25)).all()

    def test_same_archetype_jobs_land_near_each_other(self, fitted):
        clf, profiles, truth = fitted
        job_ids, cells = clf.assign(profiles)
        coords = np.column_stack([cells // 5, cells % 5]).astype(float)
        by_arch = {}
        for jid, c in zip(job_ids, coords):
            by_arch.setdefault(truth[int(jid)], []).append(c)
        # Mean within-archetype pairwise distance < global pairwise distance.
        def mean_dist(points):
            pts = np.array(points)
            if len(pts) < 2:
                return 0.0
            d = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)
            return d[np.triu_indices(len(pts), 1)].mean()

        within = np.mean([mean_dist(v) for v in by_arch.values()])
        overall = mean_dist(list(coords))
        assert within < overall

    def test_cell_shape_has_profile_length(self, fitted):
        clf, _, _ = fitted
        pops = clf.grid_populations()
        r, c = np.argwhere(pops > 0)[0]
        shape = clf.cell_shape(int(r), int(c))
        assert shape.shape == (32,)
        assert np.isfinite(shape).all()
