"""Unit tests for the autoencoder and self-organizing map."""

import numpy as np
import pytest

from repro.ml import Autoencoder, SelfOrganizingMap


def shape_dataset(n_per=40, length=32, seed=0):
    """Three distinct waveform families (ramp, square, flat)."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 1, length)
    families = [
        t.copy(),                                # ramp
        (t % 0.25 < 0.125).astype(float),        # square wave
        np.full(length, 0.5),                    # flat
    ]
    x, labels = [], []
    for i, base in enumerate(families):
        for _ in range(n_per):
            x.append(np.clip(base + rng.normal(0, 0.05, length), 0, 1))
            labels.append(i)
    return np.vstack(x), np.array(labels)


class TestAutoencoder:
    def test_compression_required(self):
        with pytest.raises(ValueError):
            Autoencoder(input_dim=8, latent_dim=8)

    def test_reconstruction_improves_with_training(self):
        x, _ = shape_dataset()
        ae = Autoencoder(x.shape[1], latent_dim=4, seed=0)
        before = ae.reconstruction_error(x)
        ae.fit(x, epochs=80)
        after = ae.reconstruction_error(x)
        assert after < before / 2

    def test_embedding_shape(self):
        x, _ = shape_dataset()
        ae = Autoencoder(x.shape[1], latent_dim=4, seed=0)
        z = ae.embed(x)
        assert z.shape == (x.shape[0], 4)
        assert np.isfinite(z).all()

    def test_embedding_separates_families(self):
        x, labels = shape_dataset()
        ae = Autoencoder(x.shape[1], latent_dim=4, seed=0)
        ae.fit(x, epochs=120)
        z = ae.embed(x)
        centroids = np.array([z[labels == i].mean(axis=0) for i in range(3)])
        within = np.mean(
            [np.linalg.norm(z[labels == i] - centroids[i], axis=1).mean()
             for i in range(3)]
        )
        between = np.mean(
            [np.linalg.norm(centroids[i] - centroids[j])
             for i in range(3) for j in range(i + 1, 3)]
        )
        assert between > within

    def test_dimension_mismatch(self):
        ae = Autoencoder(16, latent_dim=4)
        with pytest.raises(ValueError):
            ae.fit(np.zeros((5, 8)))


class TestSelfOrganizingMap:
    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SelfOrganizingMap(0, 3, 4)

    def test_fit_empty_rejected(self):
        with pytest.raises(ValueError):
            SelfOrganizingMap(3, 3, 4).fit(np.empty((0, 4)))

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            SelfOrganizingMap(3, 3, 4).fit(np.zeros((10, 5)))

    def test_populations_sum_to_samples(self):
        x, _ = shape_dataset(length=8)
        som = SelfOrganizingMap(4, 4, 8, seed=0).fit(x, epochs=10)
        pops = som.populations(x)
        assert pops.shape == (4, 4)
        assert pops.sum() == x.shape[0]

    def test_distinct_families_map_to_distinct_cells(self):
        x, labels = shape_dataset(length=8)
        som = SelfOrganizingMap(4, 4, 8, seed=0).fit(x, epochs=20)
        cells = som.bmu(x)
        majority = [
            np.bincount(cells[labels == i]).argmax() for i in range(3)
        ]
        assert len(set(majority)) == 3

    def test_training_reduces_quantization_error(self):
        x, _ = shape_dataset(length=8)
        som = SelfOrganizingMap(4, 4, 8, seed=0)
        before = som.quantization_error(x)
        som.fit(x, epochs=20)
        assert som.quantization_error(x) < before

    def test_cell_prototype_bounds(self):
        som = SelfOrganizingMap(3, 3, 4, seed=0)
        assert som.cell_prototype(2, 2).shape == (4,)
        with pytest.raises(ValueError):
            som.cell_prototype(3, 0)

    def test_topographic_error_bounded(self):
        x, _ = shape_dataset(length=8)
        som = SelfOrganizingMap(4, 4, 8, seed=0).fit(x, epochs=20)
        te = som.topographic_error(x)
        assert 0.0 <= te <= 1.0

    def test_deterministic(self):
        x, _ = shape_dataset(length=8)
        a = SelfOrganizingMap(3, 3, 8, seed=1).fit(x, epochs=5)
        b = SelfOrganizingMap(3, 3, 8, seed=1).fit(x, epochs=5)
        np.testing.assert_array_equal(a.codebook, b.codebook)
