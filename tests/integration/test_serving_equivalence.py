"""The PR's acceptance proofs: sharding and serving change no byte.

Three contracts:

* **Sharded == unsharded.**  The same seeded deployment run over a
  3-shard broker produces byte-identical Gold/Silver tables *and* span
  structure to the single-broker run.  The framework keys each window's
  records ``machine:topic``, so every (topic, window) batch lands wholly
  on one (shard, partition) and per-partition order — the only order the
  pipeline consumes — is untouched.
* **Gateway == direct call.**  Every gateway-served payload digests
  identically to calling the endpoint as a library function — across
  serial and threaded scheduling and across cache hits, including after
  a lifecycle tick moves the store generation.
* **Shard outage is absorbed.**  A fetch fault injected on one shard is
  retried through the standard policy; consumption completes with no
  loss and the other shards never see the outage.
"""

import numpy as np
import pytest

from repro.core import DataPlaneOptions, ODAFramework
from repro.faults import FaultInjector, FaultyBroker
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.obs import TRACER, reset_all
from repro.serve import Request, payload_digest
from repro.stream import Consumer, GroupCoordinator, ShardedBroker, TopicConfig
from repro.telemetry import MINI, synthetic_job_mix


def _structure(spans):
    """Span projection with durations excluded (IDs, links, attrs)."""
    return sorted(
        (s.trace_id, s.span_id, s.parent_id, s.name, s.seq,
         tuple(sorted(s.attrs.items())))
        for s in spans
    )


def assert_tables_equal(a, b):
    assert a.column_names == b.column_names
    assert a.num_rows == b.num_rows
    for name in a.column_names:
        ca, cb = a[name], b[name]
        assert ca.dtype == cb.dtype
        if ca.dtype == object:
            assert list(ca) == list(cb)
        else:
            assert ca.tobytes() == cb.tobytes()


def run_deployment(options, n_windows=2, window_s=30.0):
    reset_all()
    allocation = synthetic_job_mix(
        MINI, 0.0, 600.0, np.random.default_rng(11)
    )
    fw = ODAFramework(MINI, allocation, seed=5, options=options)
    fw.run(0.0, n_windows * window_s, window_s)
    return fw, TRACER.finished()


class TestShardedEqualsUnsharded:
    @pytest.fixture(scope="class")
    def both_runs(self):
        single, single_spans = run_deployment(DataPlaneOptions())
        with single:
            single_tables = {
                name: single.tiers.query_online(name)
                for name in ("power.gold_profiles", "power.silver")
            }
        sharded, sharded_spans = run_deployment(DataPlaneOptions(shards=3))
        return single_tables, single_spans, sharded, sharded_spans

    def test_broker_is_actually_sharded(self, both_runs):
        *_, sharded, _ = both_runs
        assert isinstance(sharded.broker, ShardedBroker)
        assert sharded.broker.n_shards == 3
        populated = [
            s for s, shard in enumerate(sharded.broker.shards)
            if any(shard.topic_records(t) for t in shard.topics())
        ]
        assert len(populated) > 1, "all topics landed on one shard"

    def test_gold_and_silver_tables_byte_identical(self, both_runs):
        single_tables, _, sharded, _ = both_runs
        with sharded:
            for name, single_table in single_tables.items():
                sharded_table = sharded.tiers.query_online(name)
                assert sharded_table.num_rows > 0
                assert_tables_equal(single_table, sharded_table)

    def test_span_structure_byte_identical(self, both_runs):
        _, single_spans, _, sharded_spans = both_runs
        assert _structure(single_spans) == _structure(sharded_spans)


class TestGatewayEqualsDirect:
    @pytest.fixture(scope="class")
    def deployment(self):
        # 5 windows so every OCEAN dataset crosses compact_min_parts;
        # lifecycle scheduling stays off during the run so the manual
        # tick below is the first maintenance pass and has real
        # rewrites to commit.
        fw, _ = run_deployment(DataPlaneOptions(), n_windows=5)
        with fw:
            job_id = fw.allocation.jobs[0].job_id
            requests = [
                Request.make("t0", "system_power_view", t0=0.0, t1=60.0),
                Request.make("t1", "job_overview", job_id=job_id),
                Request.make("t2", "top_jobs_by_energy", n=5),
                Request.make("t0", "job_power_profile", job_id=job_id),
                Request.make("t3", "cooling_plant_view", t0=0.0, t1=60.0),
            ]
            yield fw, requests

    def direct_digests(self, gateway, requests):
        return [
            payload_digest(
                gateway.endpoints[r.endpoint](**r.kwargs())
            )
            for r in requests
        ]

    def test_serial_threaded_cached_all_match_direct(self, deployment):
        fw, requests = deployment
        with fw.serving_gateway(executor="serial") as serial_gw:
            direct = self.direct_digests(serial_gw, requests)
            serial = serial_gw.submit_many(requests)
            cached = serial_gw.submit_many(requests)
        with fw.serving_gateway(executor="threads") as threaded_gw:
            threaded = threaded_gw.submit_many(requests)

        assert [e.status for e in serial] == ["ok"] * len(requests)
        assert [e.status for e in cached] == ["cached"] * len(requests)
        assert [e.status for e in threaded] == ["ok"] * len(requests)
        assert [e.digest for e in serial] == direct
        assert [e.digest for e in cached] == direct
        assert [e.digest for e in threaded] == direct
        # Digest equality is byte equality of canonical payloads; spot
        # check one table payload end to end as well.
        view = serial[0].payload
        again = serial_gw.endpoints["system_power_view"](t0=0.0, t1=60.0)
        assert_tables_equal(view, again)

    def test_equivalence_survives_lifecycle_invalidation(self, deployment):
        fw, requests = deployment
        with fw.serving_gateway(executor="serial") as gateway:
            warm = gateway.submit_many(requests)
            assert [e.status for e in gateway.submit_many(requests)] == (
                ["cached"] * len(requests)
            )
            before = gateway.generation()
            fw.lifecycle.tick(300.0)
            assert fw.tiers.data_version() > before

            after = gateway.submit_many(requests)
            # Cache entries for the old generation are stale: recomputed.
            assert [e.status for e in after] == ["ok"] * len(requests)
            assert all(e.generation > before for e in after)
            # And every recomputed answer still equals the direct call
            # against the post-tick store.
            assert [e.digest for e in after] == self.direct_digests(
                gateway, requests
            )
            assert gateway.cache.invalidated > 0
            del warm


class TestShardOutageAbsorbed:
    def _filled_broker(self, n=30):
        broker = ShardedBroker(3)
        broker.create_topic(TopicConfig("t", n_partitions=2))
        for i in range(n):
            broker.produce("t", i, key=f"k{i % 7}", nbytes=1)
        return broker

    def test_transient_shard_fetch_fault_is_retried(self):
        broker = self._filled_broker()
        injector = FaultInjector(
            FaultPlan(
                [
                    FaultSpec(
                        "broker.shard1.fetch",
                        FaultKind.FETCH_ERROR,
                        at_call=1,
                    )
                ]
            )
        )
        broker.shards[1] = FaultyBroker(
            broker.shards[1], injector, site_prefix="broker.shard1"
        )
        consumer = Consumer(broker, "t", "g")
        values = sorted(r.value for r in consumer.poll(max_records=None))
        assert values == list(range(30))  # outage absorbed, nothing lost
        assert injector.injected == [
            ("broker.shard1.fetch", 1, FaultKind.FETCH_ERROR)
        ]

    def test_other_shards_never_see_the_outage(self):
        broker = self._filled_broker()
        injector = FaultInjector(
            FaultPlan(
                [
                    FaultSpec(
                        "broker.shard2.fetch",
                        FaultKind.FETCH_ERROR,
                        at_call=1,
                        repeat=2,
                    )
                ]
            )
        )
        for s in range(3):
            broker.shards[s] = FaultyBroker(
                broker.shards[s], injector, site_prefix=f"broker.shard{s}"
            )
        consumer = Consumer(broker, "t", "g")
        assert len(consumer.poll(max_records=None)) == 30
        assert {site for site, _, _ in injector.injected} == {
            "broker.shard2.fetch"
        }

    def test_group_consumption_through_shard_outage(self):
        broker = self._filled_broker()
        injector = FaultInjector(
            FaultPlan(
                [
                    FaultSpec(
                        "broker.shard0.fetch",
                        FaultKind.FETCH_ERROR,
                        at_call=1,
                    )
                ]
            )
        )
        broker.shards[0] = FaultyBroker(
            broker.shards[0], injector, site_prefix="broker.shard0"
        )
        coord = GroupCoordinator(broker, "t", "g", seed=2)
        a = coord.join("a")
        b = coord.join("b")
        seen = [r.value for r in a.poll(max_records=None)]
        seen += [r.value for r in b.poll(max_records=None)]
        coord.leave("a")  # rebalance mid-outage-recovery
        seen += [r.value for r in b.poll(max_records=None)]
        assert sorted(seen) == list(range(30))
        assert injector.injected
