"""Cross-package integration: the paper's whole loop in one sitting.

Scheduler -> telemetry -> broker -> medallion -> tiers -> applications
-> ML -> twin -> governance, all from one simulated facility day, with
the consistency checks that only hold if the packages agree end to end.
"""

import numpy as np
import pytest

from repro import ODAFramework
from repro.apps import LiveVisualAnalytics, RatsReport, UserAssistanceDashboard
from repro.columnar import read_table, write_table
from repro.core import DataDictionary, ExplorationCampaign
from repro.governance import (
    DataRUC,
    ReleaseCatalog,
    RequestType,
    Sanitizer,
)
from repro.scheduler import (
    AccountingLedger,
    BackfillPolicy,
    ProjectAllocation,
    SchedulerSimulator,
    submission_stream,
)
from repro.telemetry import MINI
from repro.twin import TelemetryReplay

DAY = 86_400.0


@pytest.fixture(scope="module")
def facility():
    """One scheduled facility morning, fully ingested and refined."""
    requests = submission_stream(
        MINI, 6 * 3600.0, np.random.default_rng(31),
        arrival_rate_per_hour=18.0, projects=3,
    )
    sim = SchedulerSimulator(MINI, BackfillPolicy(), failure_rate=0.05, seed=3)
    sim.run(requests)
    allocation = sim.allocation_table()

    framework = ODAFramework(MINI, allocation, seed=3)
    framework.run(0.0, 3600.0, window_s=300.0)

    ledger = AccountingLedger(gpus_per_node=MINI.gpus_per_node)
    for i in range(3):
        ledger.grant(ProjectAllocation(f"PRJ{i:03d}", 50_000.0, 0.0, 30 * DAY))
    ledger.ingest(sim.completed_records())
    return {
        "sim": sim,
        "allocation": allocation,
        "framework": framework,
        "ledger": ledger,
    }


class TestSchedulerDrivesTelemetry:
    def test_scheduled_jobs_appear_in_gold_profiles(self, facility):
        gold = facility["framework"].tiers.query_online("power.gold_profiles")
        profiled = set(gold["job_id"].astype(int).tolist())
        scheduled_early = {
            j.job_id
            for j in facility["allocation"].jobs
            if j.start < 3000.0
        }
        assert profiled
        assert profiled <= {j.job_id for j in facility["allocation"].jobs}
        assert profiled & scheduled_early

    def test_gold_power_consistent_with_twin_prediction(self, facility):
        """The refined pipeline's job power agrees with the white-box
        simulator to within sensor noise — two independent code paths."""
        from repro.twin import PowerSimulator

        framework = facility["framework"]
        gold = framework.tiers.query_online("power.gold_profiles")
        jid = int(gold["job_id"][0])
        rows = gold.filter(gold["job_id"] == float(jid)).sort_by("timestamp")
        simulator = PowerSimulator(MINI, facility["allocation"])
        predicted = simulator.job_power(jid, rows["timestamp"])
        mask = predicted > 0
        assert mask.any()
        rel = np.abs(rows["power_w"][mask] - predicted[mask]) / predicted[mask]
        assert rel.mean() < 0.05


class TestAppsOverSharedState:
    def test_ua_dashboard_over_framework_lake(self, facility):
        dashboard = UserAssistanceDashboard(
            facility["framework"].tiers.lake, facility["allocation"]
        )
        job = next(
            j for j in facility["allocation"].jobs if j.start < 2400.0
        )
        overview = dashboard.job_overview(job.job_id)
        assert overview.power.num_rows > 0
        assert overview.io.num_rows > 0
        assert overview.fabric.num_rows > 0

    def test_lva_consistency_between_paths(self, facility):
        framework = facility["framework"]
        lva = LiveVisualAnalytics(
            framework.tiers, framework.fleet.power.catalog,
            facility["allocation"],
        )
        gold = framework.tiers.query_online("power.gold_profiles")
        jid = int(gold["job_id"][0])
        fast = lva.job_power_profile(jid)
        slow = lva.job_power_profile_from_raw(jid)
        np.testing.assert_allclose(fast["power_w"], slow["power_w"], rtol=1e-9)

    def test_rats_accounts_every_finished_job(self, facility):
        rats = RatsReport(
            facility["ledger"], facility["sim"].completed_records()
        )
        usage = rats.project_usage()
        assert usage["jobs"].sum() == len(facility["sim"].completed_records())


class TestExplorationCampaign:
    def test_campaign_documents_framework_sources(self, facility):
        framework = facility["framework"]
        dictionary = DataDictionary()
        for src in (framework.fleet.power, framework.fleet.storage_io):
            dictionary.register_catalog(src.name, src.catalog)
        campaign = ExplorationCampaign(dictionary)
        campaign.profile(framework.fleet.power, 0.0, 300.0)
        campaign.profile(framework.fleet.storage_io, 0.0, 300.0)
        assert dictionary.coverage() == 1.0


class TestTwinValidatesAgainstSameTelemetry:
    def test_replay_of_scheduled_workload(self, facility):
        replay = TelemetryReplay(MINI, facility["allocation"], seed=3)
        report, _ = replay.run(0.0, 1800.0, dt=15.0)
        assert report.power_mape < 0.08


class TestGovernedRelease:
    def test_release_refined_usage_data(self, facility):
        """Refined Gold data flows through DataRUC to a public DOI and
        round-trips intact for the downstream consumer."""
        framework = facility["framework"]
        gold = framework.tiers.query_online("power.gold_profiles")
        # Attach synthetic identities, then sanitize for release.
        users = [f"user{int(j) % 5:03d}" for j in gold["job_id"]]
        table = gold.with_column("user", users)
        sanitizer = Sanitizer(key=b"integration-key")
        clean = sanitizer.sanitize_table(table)
        assert sanitizer.verify_sanitized(table, clean)

        ruc = DataRUC()
        request = ruc.submit(
            "pi", RequestType.DATASET_RELEASE, ["power.gold_profiles"],
            "public release", now=0.0,
        )
        ruc.run_reviews(request.request_id, now=0.0)
        ruc.mark_sanitized(request.request_id, now=15 * DAY)
        ruc.release(request.request_id, now=16 * DAY)

        catalog = ReleaseCatalog()
        record = catalog.publish(
            request, "job power profiles", write_table(clean), 16 * DAY
        )
        _, blob = catalog.get(record.doi)
        fetched = read_table(blob)
        assert fetched.num_rows == gold.num_rows
        assert "user" in fetched
        assert not set(users) & set(fetched["user"].tolist())
