"""End-to-end observability: one trace spanning every hop, deterministically.

The acceptance contract of the obs layer:

* a seeded run emits a span tree linking producer -> consumer ->
  medallion stages -> tier writes -> query execution for each window,
* two same-seed runs emit byte-identical trace IDs and structure
  (durations excluded),
* the self-telemetry loop lands in the lake and the UA dashboard renders
  a finding from it,
* tracing does not perturb outputs (fast path == serial baseline with
  the tracer on).
"""

import numpy as np
import pytest

from repro.apps.ua_dashboard import UserAssistanceDashboard
from repro.core import DataPlaneOptions, ODAFramework
from repro.obs import TRACER, reset_all, span_tree
from repro.perf import baseline_mode
from repro.telemetry import MINI, synthetic_job_mix


def run_observed(n_windows=2, window_s=30.0, options=None):
    reset_all()
    allocation = synthetic_job_mix(
        MINI, 0.0, 600.0, np.random.default_rng(11)
    )
    opts = options or DataPlaneOptions(self_telemetry=True)
    with ODAFramework(MINI, allocation, seed=5, options=opts) as fw:
        summaries = fw.run(0.0, n_windows * window_s, window_s)
        # A planned archive query inside its own deterministic trace:
        # the read plane joins the same observability fabric.
        with TRACER.trace(seed=5, name="query", index=0):
            fw.tiers.query_archive("power.bronze", 0.0, n_windows * window_s)
    return fw, summaries


@pytest.fixture(scope="module")
def observed_run():
    fw, summaries = run_observed()
    spans = TRACER.finished()
    return fw, summaries, spans, span_tree(spans)


def _children(node, name):
    return [c for c in node["children"] if c["name"] == name]


class TestSpanTreeLinksAllHops:
    def test_one_trace_per_window_plus_query(self, observed_run):
        _, summaries, spans, roots = observed_run
        window_roots = [r for r in roots if r["name"] == "window"]
        assert len(window_roots) == len(summaries)
        assert [r["name"] for r in roots if r["name"] == "query"] == ["query"]
        assert all(s.parent_id == "" or s.parent_id for s in spans)

    def test_window_links_produce_consume_refine_tier(self, observed_run):
        *_, roots = observed_run
        (window,) = [
            r for r in roots
            if r["name"] == "window" and r["attrs"]["window"] == 0
        ]

        # Producer hop: one produce span per non-empty topic.
        produces = _children(window, "stream.produce")
        assert {p["attrs"]["topic"] for p in produces} >= {"power", "syslog"}

        # Consumer + medallion hops, nested under the per-topic task span.
        (power,) = _children(window, "refine:power")
        (fetch,) = _children(power, "stream.fetch")
        assert fetch["attrs"]["topic"] == "power"
        for stage in ("refine.bronze", "refine.silver", "refine.gold"):
            (node,) = _children(power, stage)
            assert node["attrs"]["rows_in"] >= 0

        # Tier-write hop.
        tier_writes = {
            c["name"] for c in window["children"]
            if c["name"].startswith("tier.ingest:")
        }
        assert "tier.ingest:power.bronze" in tier_writes
        assert "tier.ingest:power.silver" in tier_writes

    def test_syslog_fanout_and_facility_are_traced(self, observed_run):
        *_, roots = observed_run
        window = [r for r in roots if r["name"] == "window"][0]
        for name in ("consume:log-index", "consume:copacetic",
                     "refine:facility"):
            assert _children(window, name), f"missing {name}"

    def test_query_trace_reaches_executor(self, observed_run):
        *_, roots = observed_run
        (query,) = [r for r in roots if r["name"] == "query"]
        (archive,) = _children(query, "query.archive")
        assert archive["attrs"]["dataset"] == "power.bronze"
        (execute,) = _children(archive, "query.execute")
        assert execute["attrs"]["table"] == "power.bronze"

    def test_self_telemetry_is_traced(self, observed_run):
        *_, roots = observed_run
        window = [r for r in roots if r["name"] == "window"][0]
        (loop,) = _children(window, "obs.self_telemetry")
        names = {c["name"] for c in loop["children"]}
        assert "stream.produce" in names
        assert "tier.ingest:oda_health.silver" in names


def _structure(spans):
    """The replay-comparable projection of a span list (no durations,
    order-insensitive: completion order is thread-scheduling noise)."""
    return sorted(
        (s.trace_id, s.span_id, s.parent_id, s.name, s.seq,
         tuple(sorted(s.attrs.items())))
        for s in spans
    )


def test_same_seed_runs_are_byte_identical():
    run_observed()
    first = _structure(TRACER.finished())
    run_observed()
    second = _structure(TRACER.finished())
    assert first == second
    assert len(first) > 50


def test_serial_and_threaded_traces_match():
    """Executor choice is not allowed to change trace structure — the
    cross-thread propagation contract."""
    run_observed(options=DataPlaneOptions(
        executor="serial", self_telemetry=True))
    serial = _structure(TRACER.finished())
    run_observed(options=DataPlaneOptions(
        executor="threads", self_telemetry=True))
    threaded = _structure(TRACER.finished())
    assert serial == threaded


def test_dashboard_renders_self_telemetry():
    fw, _ = run_observed()
    health = fw.tiers.query_online("oda_health.silver")
    assert health.num_rows >= 2
    dash = UserAssistanceDashboard(fw.tiers.lake, fw.allocation)
    findings = dash.framework_health()
    assert len(findings) >= 1
    assert findings[0].code in (
        "pipeline-healthy", "obs-data-loss", "refinement-stalled",
    )


def test_tracing_preserves_baseline_equivalence():
    """Outputs with the tracer live must equal the serial baseline's —
    observability is not allowed to touch the data plane."""
    reset_all()
    allocation = synthetic_job_mix(MINI, 0.0, 600.0, np.random.default_rng(11))
    with ODAFramework(MINI, allocation, seed=5) as fast:
        fast_summaries = fast.run(0.0, 60.0, 30.0)
        fast_footprint = fast.tier_footprint()
    assert len(TRACER.finished()) > 0  # the tracer really was live
    reset_all()
    with ODAFramework(
        MINI, allocation, seed=5,
        options=DataPlaneOptions.serial_baseline(),
    ) as base:
        with baseline_mode():
            base_summaries = base.run(0.0, 60.0, 30.0)
        base_footprint = base.tier_footprint()
    assert fast_summaries == base_summaries
    assert fast_footprint == base_footprint
    reset_all()
