"""Tier-1 perf gate: the e2e bench smoke must pass against the
committed ``BENCH_e2e.json``.

``make bench-e2e-smoke`` is the same invocation; this test keeps the
gate inside the plain pytest tier so a stage regression (or a fast-path
output divergence) fails CI even where make is not in the loop.  The
``check_against`` comparator itself is unit-tested below on synthetic
reports so its failure modes don't depend on timer noise.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from benchmarks.bench_e2e import CHECK_MIN_STAGE_S, check_against

REPO_ROOT = Path(__file__).resolve().parents[2]
COMMITTED = REPO_ROOT / "BENCH_e2e.json"
COMMITTED_QUERY = REPO_ROOT / "BENCH_query.json"
COMMITTED_SERVING = REPO_ROOT / "BENCH_serving.json"


def _report(stages_base, stages_fast, identical=True):
    def cfg(stages):
        return {
            "stages": {
                k: {"total_s": v, "calls": 1, "max_s": v}
                for k, v in stages.items()
            }
        }

    return {
        "outputs_identical": identical,
        "baseline": cfg(stages_base),
        "fast": cfg(stages_fast),
    }


class TestCheckAgainstComparator:
    def test_identical_reports_pass(self):
        r = _report({"telemetry.emit": 1.0}, {"telemetry.emit": 0.4})
        assert check_against(r, r) == []

    def test_improvement_passes(self):
        committed = _report({"telemetry.emit": 1.0}, {"telemetry.emit": 0.5})
        new = _report({"telemetry.emit": 1.0}, {"telemetry.emit": 0.3})
        assert check_against(new, committed) == []

    def test_fast_losing_to_baseline_fails(self):
        committed = _report({"telemetry.emit": 1.0}, {"telemetry.emit": 0.5})
        new = _report({"telemetry.emit": 1.0}, {"telemetry.emit": 1.4})
        failures = check_against(new, committed)
        assert len(failures) == 1
        assert "telemetry.emit" in failures[0]

    def test_shape_slack_tolerates_worse_but_winning_ratio(self):
        """Memo hit rates shrink with the smoke shape, so a worse — but
        still <1 — ratio is not a regression."""
        committed = _report(
            {"columnar.encode_group": 1.0}, {"columnar.encode_group": 0.25}
        )
        new = _report(
            {"columnar.encode_group": 1.0}, {"columnar.encode_group": 0.9}
        )
        assert check_against(new, committed) == []

    def test_parity_noise_within_slack_passes(self):
        """Smoke shapes barely warm the memos, so a memo-driven stage
        hovering just over 1.0 is parity noise, not a regression."""
        committed = _report({"tier.ingest": 1.0}, {"tier.ingest": 0.7})
        new = _report({"tier.ingest": 1.0}, {"tier.ingest": 1.1})
        assert check_against(new, committed) == []

    def test_regression_beyond_committed_ratio_fails(self):
        committed = _report({"tier.ingest": 1.0}, {"tier.ingest": 1.1})
        new = _report({"tier.ingest": 1.0}, {"tier.ingest": 1.5})
        assert check_against(new, committed) != []

    def test_missing_stage_fails(self):
        committed = _report({"telemetry.emit": 1.0}, {"telemetry.emit": 0.5})
        new = _report({}, {})
        failures = check_against(new, committed)
        assert any("missing" in f for f in failures)

    def test_noise_floor_skips_tiny_stages(self):
        committed = _report({"refine.bronze": 1.0}, {"refine.bronze": 0.5})
        eps = CHECK_MIN_STAGE_S / 10.0
        new = _report({"refine.bronze": eps}, {"refine.bronze": eps * 3})
        assert check_against(new, committed) == []

    def test_output_divergence_fails(self):
        r = _report({"telemetry.emit": 1.0}, {"telemetry.emit": 0.4})
        bad = _report(
            {"telemetry.emit": 1.0}, {"telemetry.emit": 0.4}, identical=False
        )
        assert check_against(bad, r) != []
        assert check_against(r, bad) != []


@pytest.mark.skipif(not COMMITTED.exists(), reason="no committed bench report")
def test_bench_e2e_smoke_gate(tmp_path):
    """The real gate: quick-shape run, outputs identical, no stage
    regression vs. the committed report (what `make bench-e2e-smoke`
    runs)."""
    out = tmp_path / "smoke.json"
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "bench_e2e.py"),
            "--quick",
            "--out",
            str(out),
            "--check-against",
            str(COMMITTED),
        ],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(out.read_text())
    assert report["outputs_identical"] is True
    assert report["fast"]["wall_s_median"] > 0


@pytest.mark.skipif(
    not COMMITTED_QUERY.exists(), reason="no committed query bench report"
)
def test_committed_query_report_records_compaction_win():
    """The committed full-shape report must carry the lifecycle claim:
    identical outputs and a net post-compaction speedup on the sprawl
    panel.  (The quick-shape smoke below re-proves identity but not the
    speedup — small shapes are timer-noise-bound.)"""
    report = json.loads(COMMITTED_QUERY.read_text())
    assert report["outputs_identical"] is True
    compaction = report["compaction"]
    assert compaction["outputs_identical"] is True
    assert compaction["speedup_median"] > 1.0
    assert compaction["parts_after"] < compaction["parts_before"]


def test_bench_query_smoke_gate(tmp_path):
    """Quick-shape run of the read-plane bench: every query identical
    across baseline/serial/threads, and the compaction phase merges the
    sprawl store with byte-identical answers."""
    out = tmp_path / "query_smoke.json"
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "bench_query.py"),
            "--quick",
            "--out",
            str(out),
        ],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(out.read_text())
    assert report["outputs_identical"] is True
    compaction = report["compaction"]
    assert compaction["outputs_identical"] is True
    assert compaction["parts_after"] < compaction["parts_before"]
    assert set(compaction["queries"]) == {
        "project_history", "node_history", "hot_rows",
    }


def _shed_free_below_knee(report):
    """Every level at or below the knee sheds nothing (cache on)."""
    knee = report["knee_offered_qps"]
    below = [
        row for row in report["levels"] if row["offered_qps"] <= knee
    ]
    assert below, "knee not among the swept levels"
    for row in below:
        assert row["cache_on"]["shed_rate"] == 0.0


@pytest.mark.skipif(
    not COMMITTED_SERVING.exists(), reason="no committed serving report"
)
def test_committed_serving_report_records_cache_win():
    """The committed full-shape report must carry the PR claim: p99 at
    the highest sustained (zero-shed) level improves >2x with the cache
    on, every answer byte-identical across configurations, shedding
    deterministic, and each level stamped with a seeded replay digest."""
    report = json.loads(COMMITTED_SERVING.read_text())
    assert report["outputs_identical"] is True
    assert report["shed_identical_across_configs"] is True
    assert report["p99_speedup_at_highest_sustained"] > 2.0
    assert report["p50_speedup_at_highest_sustained"] > 1.0
    for row in report["levels"]:
        assert row["replay_digest"]
    _shed_free_below_knee(report)


def test_bench_serving_smoke_gate(tmp_path):
    """Quick-shape run of the serving bench: cached p50 beats uncached
    at the knee, no shedding below the knee, digests identical across
    configurations."""
    out = tmp_path / "serving_smoke.json"
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "bench_serving.py"),
            "--quick",
            "--out",
            str(out),
        ],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(out.read_text())
    assert report["outputs_identical"] is True
    assert report["shed_identical_across_configs"] is True
    # Quick shapes are timer-noise-bound for tail percentiles, but a
    # warm cache must still beat recomputation at the median.
    assert report["p50_speedup_at_highest_sustained"] > 1.0
    _shed_free_below_knee(report)
    hit = report["levels"][-1]["cache_on"]["hit_rate"]
    assert hit > 0.5, f"cache barely warming: hit_rate={hit}"
