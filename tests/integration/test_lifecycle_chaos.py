"""Crash-mid-compaction chaos: every injection point recovers exactly.

The lifecycle rewrite protocol claims that a :class:`SimulatedCrash` at
*any* put or delete inside a tick leaves a store that — after the
supervised restarts of :meth:`LifecycleManager.run_with_restarts` —
serves ``query_archive`` results byte-identical to a fault-free oracle:
no duplicated rows while superseded parts linger, none lost once they
are swept.  These tests enumerate every injection point of a compaction
tick, then fuzz multi-crash schedules from seeded plans.
"""

import numpy as np
import pytest

from repro.columnar import ColumnTable
from repro.columnar.file_format import write_table
from repro.faults.injector import FaultInjector, FaultyObjectStore
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.storage import DataClass, LifecycleManager, TieredStore, TierPolicy

N_PARTS = 6
#: The injector wraps the store only after ingest, so put call 1 is the
#: compaction commit and the GC that follows is delete calls 1..N_PARTS.
COMMIT_PUT = 1


def batch(t_start, n=40):
    rng = np.random.default_rng(int(t_start))
    return ColumnTable(
        {
            "timestamp": t_start + np.arange(n, dtype=float),
            "node": rng.integers(0, 8, n),
            "value": rng.normal(100.0, 10.0, n),
        }
    )


def build_store(plan=None, policy=None):
    policies = {DataClass.SILVER: policy} if policy else None
    ts = TieredStore(policies=policies)
    ts.register("d", DataClass.SILVER)
    for i in range(N_PARTS):
        ts.ingest("d", batch(i * 100.0), now=float(i))
    if plan is not None:
        ts.ocean = FaultyObjectStore(ts.ocean, FaultInjector(plan))
    return ts


def archive_bytes(ts):
    """The canonical byte encoding of the full archive query."""
    return write_table(ts.scan_ocean("d"))


def oracle_state(policy=None, now=float(N_PARTS)):
    ts = build_store(policy=policy)
    LifecycleManager(ts).tick(now=now)
    return archive_bytes(ts), len(ts.ocean.list(ts.OCEAN_BUCKET, prefix="d/"))


CRASH_POINTS = [("tier.put", COMMIT_PUT)] + [
    ("tier.delete", i) for i in range(1, N_PARTS + 1)
]


class TestEveryInjectionPoint:
    @pytest.mark.parametrize("site,at_call", CRASH_POINTS)
    def test_single_crash_recovers_to_oracle(self, site, at_call):
        want_bytes, want_parts = oracle_state()
        ts = build_store(
            FaultPlan([FaultSpec(site, FaultKind.CRASH, at_call=at_call)])
        )
        report, restarts = LifecycleManager(ts).run_with_restarts(
            now=float(N_PARTS)
        )
        assert restarts == 1
        assert archive_bytes(ts) == want_bytes
        assert len(ts.ocean.list(ts.OCEAN_BUCKET, prefix="d/")) == want_parts

    def test_consistent_even_before_recovery_sweep(self):
        # Between the crash and the restart the store is already
        # duplicate-free: the committed part's ``replaces`` record hides
        # the not-yet-deleted inputs from every reader.
        ts = build_store(
            FaultPlan([FaultSpec("tier.delete", FaultKind.CRASH, at_call=1)])
        )
        before = archive_bytes(ts)
        from repro.faults.errors import SimulatedCrash

        with pytest.raises(SimulatedCrash):
            ts.compact("d")
        assert archive_bytes(ts) == before


class TestCrashSchedules:
    def test_compound_crash_schedule(self):
        want_bytes, want_parts = oracle_state()
        ts = build_store(
            FaultPlan(
                [
                    FaultSpec("tier.put", FaultKind.CRASH, at_call=COMMIT_PUT),
                    FaultSpec("tier.delete", FaultKind.CRASH, at_call=2),
                    FaultSpec("tier.delete", FaultKind.CRASH, at_call=5),
                ]
            )
        )
        report, restarts = LifecycleManager(ts).run_with_restarts(
            now=float(N_PARTS)
        )
        assert restarts == 3
        assert archive_bytes(ts) == want_bytes
        assert len(ts.ocean.list(ts.OCEAN_BUCKET, prefix="d/")) == want_parts

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_seeded_crash_plans(self, seed):
        want_bytes, _ = oracle_state()
        plan = FaultPlan.seeded(
            seed,
            {"tier.put": FaultKind.CRASH, "tier.delete": FaultKind.CRASH},
            rate=0.3,
            horizon=40,
        )
        ts = build_store(plan)
        LifecycleManager(ts).run_with_restarts(now=float(N_PARTS))
        assert archive_bytes(ts) == want_bytes

    def test_crash_during_retention_split(self):
        policy = TierPolicy(
            lake_retention_s=None,
            ocean_retention_s=2.5,
            glacier=True,
            compact_min_parts=2,
        )
        want_bytes, want_parts = oracle_state(policy=policy, now=5.0)
        for at_call in range(COMMIT_PUT, COMMIT_PUT + 2):
            ts = build_store(
                FaultPlan(
                    [FaultSpec("tier.put", FaultKind.CRASH, at_call=at_call)]
                ),
                policy=policy,
            )
            LifecycleManager(ts).run_with_restarts(now=5.0)
            assert archive_bytes(ts) == want_bytes
            assert (
                len(ts.ocean.list(ts.OCEAN_BUCKET, prefix="d/")) == want_parts
            )
