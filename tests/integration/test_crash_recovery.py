"""Crash/recovery chaos suite: the effectively-once contract under fire.

Every test builds the same streaming job twice — once fault-free (the
oracle) and once under a :class:`~repro.faults.plan.FaultPlan` with the
crash/restart harness supervising — and asserts the Gold output is
**byte-identical**.  All input is produced up front so that a full
replay from offset zero (the torn-checkpoint path) regenerates the same
micro-batch boundaries.
"""

import os
import warnings

import numpy as np
import pytest

from repro.columnar import ColumnTable
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    FaultyBroker,
    IdempotentTableSink,
    RetryPolicy,
    TornCheckpointStore,
    run_with_restarts,
)
from repro.perf import PERF
from repro.pipeline import (
    CheckpointCorruptWarning,
    CheckpointStore,
    StreamingQuery,
    Watermark,
)
from repro.stream import Broker, TopicConfig

N_PARTITIONS = 2
N_RECORDS = 40
BATCH_BOUND = 7  # forces several micro-batches over the fixed input
RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.01)


def make_loaded_broker() -> Broker:
    """A broker with the full (fixed) input already produced.

    Producing everything up front is what makes replay-from-zero
    byte-identical: batch boundaries depend only on offsets, never on
    interleaving with production.
    """
    broker = Broker()
    broker.create_topic(TopicConfig("obs", N_PARTITIONS))
    rng = np.random.default_rng(1234)
    times = np.cumsum(rng.exponential(1.0, N_RECORDS))
    # A few out-of-order stragglers exercise the watermark under replay.
    times[10] = times[2]
    times[25] = times[5]
    for i in range(N_RECORDS):
        broker.produce("obs", float(times[i]), timestamp=float(times[i]))
    return broker


def records_to_table(records):
    ts = np.array([r.value for r in records], dtype=float)
    return ColumnTable({"timestamp": ts, "v": ts * 2.0})


def build_query(broker, sink, checkpoint):
    return StreamingQuery(
        "chaos-q",
        broker,
        "obs",
        records_to_table,
        sink,
        checkpoint,
        watermark=Watermark(delay_s=5.0),
        max_records_per_batch=BATCH_BOUND,
        retry_policy=RETRY,
    )


def oracle_bytes(tmp_path) -> bytes:
    """Gold output of a fault-free run of the same job."""
    sink = IdempotentTableSink()
    query = build_query(
        make_loaded_broker(), sink, CheckpointStore(str(tmp_path / "oracle"))
    )
    query.run_until_caught_up()
    assert query.lag() == 0
    return sink.result_bytes()


def run_chaos(tmp_path, plan, subdir="chaos"):
    """Supervised run of the job under ``plan``; returns (bytes, result,
    injector).  The sink and injector survive 'process death'; the
    checkpoint store is re-read from disk on every restart, exactly like
    a real worker coming back up."""
    broker_inner = make_loaded_broker()
    injector = FaultInjector(plan)
    broker = FaultyBroker(broker_inner, injector)
    sink = IdempotentTableSink()
    path = str(tmp_path / subdir)

    def make_query():
        checkpoint = TornCheckpointStore(CheckpointStore(path), injector)
        return build_query(broker, sink, checkpoint)

    with warnings.catch_warnings():
        # Quarantine warnings are an expected part of torn-write plans.
        warnings.simplefilter("ignore", CheckpointCorruptWarning)
        result = run_with_restarts(make_query)
    return sink.result_bytes(), result, injector


class TestFaultFree:
    def test_empty_plan_matches_oracle_with_no_restarts(self, tmp_path):
        gold = oracle_bytes(tmp_path)
        got, result, injector = run_chaos(tmp_path, FaultPlan())
        assert got == gold != b""
        assert result.clean
        assert injector.injected == []


class TestTransientFetchFaults:
    def test_retries_absorb_fetch_storm(self, tmp_path):
        """Bursts shorter than the retry budget never surface: same
        bytes, zero restarts, retries counted per site."""
        gold = oracle_bytes(tmp_path)
        plan = FaultPlan(
            [
                FaultSpec(FaultyBroker.SITE_FETCH, FaultKind.FETCH_ERROR, 1),
                FaultSpec(
                    FaultyBroker.SITE_FETCH, FaultKind.FETCH_ERROR, 4, repeat=2
                ),
            ]
        )
        before = PERF.counter("faults.retry.query.fetch")
        got, result, _ = run_chaos(tmp_path, plan)
        assert got == gold
        assert result.clean
        assert PERF.counter("faults.retry.query.fetch") - before == 3

    def test_giveup_triggers_restart_and_recovers(self, tmp_path):
        """A burst outlasting the retry budget kills the run; the
        supervisor restarts from the checkpoint and output still
        matches."""
        gold = oracle_bytes(tmp_path)
        plan = FaultPlan(
            [
                FaultSpec(
                    FaultyBroker.SITE_FETCH,
                    FaultKind.FETCH_ERROR,
                    2,
                    repeat=RETRY.max_attempts,  # exhausts the budget
                )
            ]
        )
        before = PERF.counter("faults.giveup.query.fetch")
        got, result, _ = run_chaos(tmp_path, plan)
        assert got == gold
        assert result.giveups == 1
        assert result.restarts >= 1
        assert PERF.counter("faults.giveup.query.fetch") - before == 1


class TestCrashRecovery:
    def test_crash_between_sink_and_checkpoint(self, tmp_path):
        """The classic window: sink wrote batch N, process died before
        the checkpoint.  Replay re-delivers batch N with the same id and
        the idempotent sink absorbs it."""
        gold = oracle_bytes(tmp_path)
        plan = FaultPlan(
            [FaultSpec(TornCheckpointStore.SITE_COMMIT, FaultKind.CRASH, 2)]
        )
        got, result, _ = run_chaos(tmp_path, plan)
        assert got == gold
        assert result.crashes == 1
        assert result.restarts == 1

    def test_repeated_crashes(self, tmp_path):
        gold = oracle_bytes(tmp_path)
        plan = FaultPlan(
            [
                FaultSpec(TornCheckpointStore.SITE_COMMIT, FaultKind.CRASH, 2),
                FaultSpec(TornCheckpointStore.SITE_COMMIT, FaultKind.CRASH, 5),
            ]
        )
        got, result, _ = run_chaos(tmp_path, plan)
        assert got == gold
        assert result.crashes == 2
        assert result.restarts == 2

    def test_torn_checkpoint_quarantined_and_replayed(self, tmp_path):
        """A torn write leaves corrupt JSON; the restarted store
        quarantines it and the query replays from scratch — and the
        bytes still match the oracle."""
        gold = oracle_bytes(tmp_path)
        plan = FaultPlan(
            [
                FaultSpec(
                    TornCheckpointStore.SITE_COMMIT,
                    FaultKind.TORN_CHECKPOINT,
                    3,
                )
            ]
        )
        before = PERF.counter("checkpoint.corrupt_quarantined")
        got, result, _ = run_chaos(tmp_path, plan)
        assert got == gold
        assert result.crashes == 1
        assert PERF.counter("checkpoint.corrupt_quarantined") - before == 1
        assert os.path.exists(
            str(tmp_path / "chaos" / "checkpoints.json.corrupt-0")
        )

    def test_mixed_plan(self, tmp_path):
        """Fetch faults, a crash, and a torn write in one run."""
        gold = oracle_bytes(tmp_path)
        plan = FaultPlan(
            [
                FaultSpec(FaultyBroker.SITE_FETCH, FaultKind.FETCH_ERROR, 3),
                FaultSpec(TornCheckpointStore.SITE_COMMIT, FaultKind.CRASH, 2),
                FaultSpec(
                    TornCheckpointStore.SITE_COMMIT,
                    FaultKind.TORN_CHECKPOINT,
                    6,
                ),
                FaultSpec(
                    FaultyBroker.SITE_FETCH, FaultKind.SLOW_READ, 9, arg=0.5
                ),
            ]
        )
        got, result, injector = run_chaos(tmp_path, plan)
        assert got == gold
        assert result.crashes == 2  # the CRASH and the torn write's kill
        assert injector.virtual_delay_s == 0.5


class TestSeededPlans:
    SITE_KINDS = {
        FaultyBroker.SITE_FETCH: FaultKind.FETCH_ERROR,
        TornCheckpointStore.SITE_COMMIT: FaultKind.CRASH,
    }

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_seeded_chaos_matches_oracle(self, tmp_path, seed):
        gold = oracle_bytes(tmp_path)
        plan = FaultPlan.seeded(seed, self.SITE_KINDS, rate=0.15, horizon=60)
        got, _, _ = run_chaos(tmp_path, plan, subdir=f"seed{seed}")
        assert got == gold

    def test_seeded_run_replays_byte_for_byte(self, tmp_path):
        """Same seed, fresh world: identical injected-fault log AND
        identical output bytes — the replayability guarantee."""
        plan_a = FaultPlan.seeded(99, self.SITE_KINDS, rate=0.15, horizon=60)
        plan_b = FaultPlan.seeded(99, self.SITE_KINDS, rate=0.15, horizon=60)
        bytes_a, result_a, inj_a = run_chaos(tmp_path, plan_a, subdir="a")
        bytes_b, result_b, inj_b = run_chaos(tmp_path, plan_b, subdir="b")
        assert inj_a.injected == inj_b.injected != []
        assert bytes_a == bytes_b != b""
        assert result_a == result_b
