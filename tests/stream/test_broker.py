"""Unit + property tests for the partitioned log broker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stream import Broker, RetentionPolicy, TopicConfig


def make_broker(n_partitions=2, retention=None) -> Broker:
    broker = Broker()
    broker.create_topic(
        TopicConfig("t", n_partitions, retention or RetentionPolicy())
    )
    return broker


class TestTopicManagement:
    def test_create_and_list(self):
        broker = make_broker()
        broker.create_topic(TopicConfig("u", 1))
        assert broker.topics() == ["t", "u"]

    def test_duplicate_rejected(self):
        broker = make_broker()
        with pytest.raises(ValueError):
            broker.create_topic(TopicConfig("t", 1))

    def test_unknown_topic(self):
        with pytest.raises(KeyError):
            make_broker().fetch("nope", 0, 0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TopicConfig("t", 0)
        with pytest.raises(ValueError):
            TopicConfig("", 1)


class TestProduceFetch:
    def test_offsets_dense_per_partition(self):
        broker = make_broker(n_partitions=1)
        offsets = [broker.produce("t", i).offset for i in range(5)]
        assert offsets == [0, 1, 2, 3, 4]

    def test_same_key_same_partition(self):
        broker = make_broker(n_partitions=4)
        records = [broker.produce("t", i, key="node-7") for i in range(10)]
        assert len({r.partition for r in records}) == 1

    def test_same_key_preserves_order(self):
        broker = make_broker(n_partitions=4)
        for i in range(10):
            broker.produce("t", i, key="k")
        p = broker.produce("t", 99, key="k").partition
        values = [r.value for r in broker.fetch("t", p, 0, 100)]
        assert values == list(range(10)) + [99]

    def test_keyless_round_robin_spreads(self):
        broker = make_broker(n_partitions=4)
        parts = {broker.produce("t", i).partition for i in range(8)}
        assert parts == {0, 1, 2, 3}

    def test_fetch_respects_max_records(self):
        broker = make_broker(n_partitions=1)
        for i in range(10):
            broker.produce("t", i)
        assert len(broker.fetch("t", 0, 0, max_records=3)) == 3

    def test_fetch_from_future_offset_empty(self):
        broker = make_broker(n_partitions=1)
        broker.produce("t", 1)
        assert broker.fetch("t", 0, 10) == []

    def test_negative_nbytes_rejected(self):
        broker = make_broker()
        with pytest.raises(ValueError):
            broker.produce("t", 1, nbytes=-1)


class TestOffsetsAndLag:
    def test_watermarks(self):
        broker = make_broker(n_partitions=1)
        assert broker.earliest_offset("t", 0) == 0
        assert broker.latest_offset("t", 0) == 0
        broker.produce("t", 1)
        assert broker.latest_offset("t", 0) == 1

    def test_commit_and_lag(self):
        broker = make_broker(n_partitions=1)
        for i in range(10):
            broker.produce("t", i)
        assert broker.lag("g", "t") == 10
        broker.commit("g", "t", 0, 4)
        assert broker.lag("g", "t") == 6
        assert broker.committed("g", "t", 0) == 4

    def test_groups_independent(self):
        broker = make_broker(n_partitions=1)
        broker.produce("t", 1)
        broker.commit("a", "t", 0, 1)
        assert broker.lag("a", "t") == 0
        assert broker.lag("b", "t") == 1

    def test_negative_commit_rejected(self):
        with pytest.raises(ValueError):
            make_broker().commit("g", "t", 0, -1)


class TestRetention:
    def test_age_based_trim(self):
        broker = make_broker(1, RetentionPolicy(max_age_s=100.0))
        for ts in (0.0, 50.0, 150.0):
            broker.produce("t", ts, timestamp=ts, nbytes=10)
        deleted = broker.enforce_retention(now=200.0)
        assert deleted == {"t": 2}
        assert broker.earliest_offset("t", 0) == 2
        assert broker.topic_records("t") == 1

    def test_size_based_trim(self):
        broker = make_broker(1, RetentionPolicy(max_bytes=25))
        for i in range(5):
            broker.produce("t", i, nbytes=10)
        broker.enforce_retention(now=0.0)
        assert broker.topic_bytes("t") <= 25
        assert broker.topic_records("t") == 2

    def test_offsets_survive_trim(self):
        broker = make_broker(1, RetentionPolicy(max_age_s=10.0))
        for i in range(5):
            broker.produce("t", i, timestamp=float(i))
        broker.enforce_retention(now=20.0)
        new = broker.produce("t", 99, timestamp=20.0)
        assert new.offset == 5  # offsets never reused

    def test_unbounded_policy_keeps_everything(self):
        broker = make_broker(1, RetentionPolicy())
        for i in range(5):
            broker.produce("t", i, timestamp=0.0)
        assert broker.enforce_retention(now=1e12) == {}
        assert broker.topic_records("t") == 5

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            RetentionPolicy(max_age_s=0.0)
        with pytest.raises(ValueError):
            RetentionPolicy(max_bytes=0)


class TestBrokerProperties:
    @given(
        keys=st.lists(
            st.one_of(st.none(), st.text(min_size=1, max_size=4)),
            min_size=1,
            max_size=100,
        ),
        n_partitions=st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_all_records_retained_and_offsets_dense(self, keys, n_partitions):
        broker = Broker()
        broker.create_topic(TopicConfig("t", n_partitions))
        for i, key in enumerate(keys):
            broker.produce("t", i, key=key)
        # Every record is fetchable, and per-partition offsets are dense.
        total = 0
        for p in range(n_partitions):
            records = broker.fetch("t", p, 0, max_records=10**6)
            assert [r.offset for r in records] == list(range(len(records)))
            total += len(records)
        assert total == len(keys)
