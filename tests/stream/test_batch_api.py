"""Batch produce / zero-copy fetch equivalence and error contracts."""

import pytest

from repro.stream import (
    Broker,
    Producer,
    RetentionPolicy,
    TopicConfig,
    UnknownPartitionError,
    UnknownTopicError,
)


def make_broker(n_partitions=3) -> Broker:
    broker = Broker()
    broker.create_topic(TopicConfig("t", n_partitions, RetentionPolicy()))
    return broker


def record_tuple(r):
    return (r.topic, r.partition, r.offset, r.timestamp, r.key, r.value, r.nbytes)


class TestProduceManyEquivalence:
    def _compare(self, produce_kwargs_per_record, batch_kwargs):
        """produce() loop and produce_many() must assign identically."""
        loop_broker = make_broker()
        batch_broker = make_broker()
        loop = [
            loop_broker.produce("t", **kw) for kw in produce_kwargs_per_record
        ]
        batch = batch_broker.produce_many("t", **batch_kwargs)
        assert [record_tuple(r) for r in loop] == [record_tuple(r) for r in batch]
        for p in range(3):
            assert [
                record_tuple(r) for r in loop_broker.fetch("t", p, 0, None)
            ] == [record_tuple(r) for r in batch_broker.fetch("t", p, 0, None)]
        assert loop_broker.topic_bytes("t") == batch_broker.topic_bytes("t")

    def test_keyless_round_robin(self):
        self._compare(
            [dict(value=i, timestamp=float(i), nbytes=i + 1) for i in range(10)],
            dict(
                values=list(range(10)),
                timestamps=[float(i) for i in range(10)],
                nbytes=[i + 1 for i in range(10)],
            ),
        )

    def test_keyed_assignment(self):
        keys = ["a", "b", "c", "a", None, "b", None]
        self._compare(
            [dict(value=i, key=k) for i, k in enumerate(keys)],
            dict(values=list(range(len(keys))), keys=keys),
        )

    def test_single_key_broadcast(self):
        self._compare(
            [dict(value=i, key="x", timestamp=2.5) for i in range(5)],
            dict(values=list(range(5)), key="x", timestamp=2.5),
        )

    def test_round_robin_cursor_continuity(self):
        """Interleaving produce and produce_many keeps one rr cursor."""
        loop_broker = make_broker()
        mixed_broker = make_broker()
        loop = [loop_broker.produce("t", i) for i in range(8)]
        mixed = [mixed_broker.produce("t", 0), mixed_broker.produce("t", 1)]
        mixed += mixed_broker.produce_many("t", [2, 3, 4])
        mixed += [mixed_broker.produce("t", 5)]
        mixed += mixed_broker.produce_many("t", [6, 7])
        assert [r.partition for r in loop] == [r.partition for r in mixed]
        assert [r.offset for r in loop] == [r.offset for r in mixed]

    def test_empty_batch(self):
        assert make_broker().produce_many("t", []) == []

    def test_scalar_nbytes_broadcast(self):
        broker = make_broker()
        records = broker.produce_many("t", [1, 2, 3], nbytes=7)
        assert [r.nbytes for r in records] == [7, 7, 7]
        assert broker.topic_bytes("t") == 21

    def test_mismatched_lengths_rejected(self):
        broker = make_broker()
        with pytest.raises(ValueError):
            broker.produce_many("t", [1, 2], keys=["a"])
        with pytest.raises(ValueError):
            broker.produce_many("t", [1, 2], timestamps=[0.0])
        with pytest.raises(ValueError):
            broker.produce_many("t", [1, 2], nbytes=[1])
        with pytest.raises(ValueError):
            broker.produce_many("t", [1, 2], key="a", keys=["a", "b"])


class TestZeroCopyFetch:
    def test_whole_range_fetch_is_zero_copy(self):
        broker = Broker()
        broker.create_topic(TopicConfig("t", 1))
        broker.produce_many("t", list(range(50)))
        first = broker.fetch("t", 0, 0, None)
        second = broker.fetch("t", 0, 0, None)
        assert first is second  # the partition's internal list, not a copy
        assert len(first) == 50

    def test_partial_fetch_is_a_copy(self):
        broker = Broker()
        broker.create_topic(TopicConfig("t", 1))
        broker.produce_many("t", list(range(50)))
        part = broker.fetch("t", 0, 10, None)
        assert [r.value for r in part] == list(range(10, 50))
        capped = broker.fetch("t", 0, 0, 5)
        assert [r.value for r in capped] == list(range(5))
        assert capped is not broker.fetch("t", 0, 0, 5)

    def test_zero_copy_list_survives_trim(self):
        """Retention trims rebind the partition list; handed-out lists stay valid."""
        broker = Broker()
        broker.create_topic(
            TopicConfig("t", 1, RetentionPolicy(max_bytes=10))
        )
        for i in range(10):
            broker.produce("t", i, timestamp=float(i), nbytes=1)
        snapshot = broker.fetch("t", 0, 0, None)
        for i in range(10, 30):
            broker.produce("t", i, timestamp=float(i), nbytes=1)
        # Appends after a whole-log read extend the shared list ...
        assert [r.value for r in snapshot] == list(range(30))
        # ... but a trim rebinds instead of mutating, so the holder's
        # view is untouched even as the broker drops the head.
        assert broker.enforce_retention(now=100.0)["t"] > 0
        assert [r.value for r in snapshot] == list(range(30))
        assert broker.earliest_offset("t", 0) >= 10
        assert len(broker.fetch("t", 0, 0, None)) <= 10


class TestErrorTypes:
    def test_unknown_topic(self):
        broker = make_broker()
        with pytest.raises(UnknownTopicError, match="create it"):
            broker.fetch("nope", 0, 0)
        with pytest.raises(UnknownTopicError):
            broker.produce("nope", 1)
        with pytest.raises(UnknownTopicError):
            broker.produce_many("nope", [1])
        assert issubclass(UnknownTopicError, KeyError)

    def test_unknown_partition(self):
        broker = make_broker(n_partitions=2)
        with pytest.raises(UnknownPartitionError, match="with 2 partitions"):
            broker.fetch("t", 5, 0)
        with pytest.raises(UnknownPartitionError):
            broker.earliest_offset("t", -1)
        assert issubclass(UnknownPartitionError, IndexError)


class TestProducerSendMany:
    def test_send_many_matches_send_loop(self):
        b1, b2 = make_broker(), make_broker()
        p1, p2 = Producer(b1), Producer(b2)
        values = [b"abc", "defg", 3.14, None]
        for v in values:
            p1.send("t", v, timestamp=1.0)
        p2.send_many("t", values, timestamp=1.0)
        assert p1.records_sent("t") == p2.records_sent("t") == 4
        assert p1.bytes_sent("t") == p2.bytes_sent("t")
        assert b1.topic_bytes("t") == b2.topic_bytes("t")
