"""Consumer-group rebalancing: ownership, determinism, no-loss laws.

Satellite coverage: every (shard, partition) is owned by exactly one
consumer per generation; assignments are byte-identical for the same
seed and membership; no record is lost or double-consumed across
join/leave sequences.
"""

import itertools

import pytest

from repro.obs import METRICS
from repro.stream import (
    GroupCoordinator,
    ShardedBroker,
    TopicConfig,
    assign_range,
    assign_round_robin,
)


def make_broker(n_shards=3, n_partitions=2, topic="t") -> ShardedBroker:
    broker = ShardedBroker(n_shards)
    broker.create_topic(TopicConfig(topic, n_partitions=n_partitions))
    return broker


class TestStrategies:
    def test_round_robin_deals_one_at_a_time(self):
        got = assign_round_robin(range(7), ["b", "a", "c"])
        assert got == {"a": [0, 3, 6], "b": [1, 4], "c": [2, 5]}

    def test_round_robin_rotation_shifts_first_owner(self):
        got = assign_round_robin(range(6), ["a", "b", "c"], rotation=1)
        assert got == {"a": [2, 5], "b": [0, 3], "c": [1, 4]}

    def test_range_is_contiguous(self):
        got = assign_range(range(7), ["b", "a", "c"])
        assert got == {"a": [0, 1, 2], "b": [3, 4], "c": [5, 6]}
        for parts in got.values():
            assert parts == list(range(parts[0], parts[0] + len(parts)))

    def test_range_rotation_moves_larger_chunk(self):
        got = assign_range(range(7), ["a", "b", "c"], rotation=2)
        # Rotated order is c, a, b; c takes the first (larger) range.
        assert got == {"a": [3, 4], "b": [5, 6], "c": [0, 1, 2]}

    def test_range_whole_shards_when_arithmetic_allows(self):
        # 3 shards x 2 partitions, 3 members: each member gets exactly
        # one shard's pair of partitions.
        broker = make_broker(n_shards=3, n_partitions=2)
        got = assign_range(range(6), ["a", "b", "c"])
        for parts in got.values():
            shards = {broker.shard_of(p, "t") for p in parts}
            assert len(shards) == 1

    def test_empty_group_raises(self):
        with pytest.raises(ValueError):
            assign_round_robin(range(4), [])
        with pytest.raises(ValueError):
            assign_range(range(4), [])


class TestCoordinatorMembership:
    def test_every_partition_owned_exactly_once_per_generation(self):
        # Property: across an arbitrary join/leave sequence, each
        # generation's assignment is a partition (in the set sense) of
        # the global partition space.
        for strategy in ("round_robin", "range"):
            broker = make_broker()
            coord = GroupCoordinator(
                broker, "t", f"g-{strategy}", seed=7, strategy=strategy
            )
            script = [
                ("join", "a"),
                ("join", "b"),
                ("join", "c"),
                ("leave", "b"),
                ("join", "d"),
                ("leave", "a"),
                ("leave", "c"),
            ]
            for op, name in script:
                (coord.join if op == "join" else coord.leave)(name)
                owned = list(
                    itertools.chain.from_iterable(
                        coord.assignments().values()
                    )
                )
                assert sorted(owned) == list(range(6)), (
                    f"{strategy}: generation {coord.generation} does not "
                    f"partition the space: {coord.assignments()}"
                )

    def test_generation_numbering_and_gauge(self):
        broker = make_broker()
        coord = GroupCoordinator(broker, "t", "gen-group")
        a = coord.join("a")
        assert coord.generation == 1 and a.generation == 1
        b = coord.join("b")
        assert coord.generation == 2
        assert a.generation == 2 and b.generation == 2
        coord.leave("a")
        assert coord.generation == 3 and b.generation == 3
        assert (
            METRICS.gauge_value(
                "stream.group_generation", topic="t", group="gen-group"
            )
            == 3
        )

    def test_join_leave_validation(self):
        broker = make_broker()
        coord = GroupCoordinator(broker, "t", "g")
        coord.join("a")
        with pytest.raises(ValueError):
            coord.join("a")
        with pytest.raises(ValueError):
            coord.leave("ghost")
        with pytest.raises(ValueError):
            GroupCoordinator(broker, "t", "g", strategy="sticky")

    def test_left_member_handle_is_dead(self):
        broker = make_broker()
        coord = GroupCoordinator(broker, "t", "g")
        a = coord.join("a")
        coord.leave("a")
        assert a.assignment == ()
        with pytest.raises(ValueError):
            a.poll()


class TestDeterminism:
    def test_same_seed_and_membership_same_assignment(self):
        # Byte-identical across runs AND independent of join order.
        def deal(join_order, seed, strategy):
            broker = make_broker()
            coord = GroupCoordinator(
                broker, "t", "g", seed=seed, strategy=strategy
            )
            for name in join_order:
                coord.join(name)
            return coord.assignments()

        for strategy in ("round_robin", "range"):
            baseline = deal(["a", "b", "c"], 42, strategy)
            for order in itertools.permutations(["a", "b", "c"]):
                assert deal(list(order), 42, strategy) == baseline

    def test_assignment_independent_of_generation_number(self):
        # Reaching the same membership via different histories (and so
        # different generation counts) deals the same hand.
        broker1 = make_broker()
        direct = GroupCoordinator(broker1, "t", "g", seed=5)
        direct.join("a")
        direct.join("b")

        broker2 = make_broker()
        detour = GroupCoordinator(broker2, "t", "g", seed=5)
        detour.join("a")
        detour.join("x")
        detour.join("b")
        detour.leave("x")
        assert detour.generation != direct.generation
        assert detour.assignments() == direct.assignments()

    def test_different_seeds_rotate_differently_somewhere(self):
        # The rotation must actually depend on the seed: over a spread
        # of seeds, at least two deals differ.
        deals = set()
        for seed in range(8):
            broker = make_broker()
            coord = GroupCoordinator(broker, "t", "g", seed=seed)
            coord.join("a")
            coord.join("b")
            coord.join("c")
            deals.add(tuple(sorted(coord.assignments().items())))
        assert len(deals) > 1


class TestNoLossNoDuplication:
    def _fill(self, broker, n, topic="t"):
        for i in range(n):
            broker.produce(topic, i, key=f"k{i % 11}", nbytes=1)

    def test_records_survive_join_and_leave(self):
        # Consume half the backlog as one member, rebalance twice (join
        # then leave), drain — every record seen exactly once.
        broker = make_broker()
        self._fill(broker, 60)
        coord = GroupCoordinator(broker, "t", "g", seed=3)
        a = coord.join("a")
        seen = [r.value for r in a.poll(max_records=25)]
        b = coord.join("b")  # commits a's progress, re-deals
        seen += [r.value for r in a.poll(max_records=None)]
        seen += [r.value for r in b.poll(max_records=None)]
        coord.leave("b")  # commits b, hands everything back to a
        seen += [r.value for r in a.poll(max_records=None)]
        self._fill(broker, 10)  # late arrivals post-rebalance
        seen += [r.value for r in a.poll(max_records=None)]
        assert sorted(seen) == sorted(list(range(60)) + list(range(10)))
        assert len(seen) == 70

    def test_mid_partition_position_survives_ownership_move(self):
        # One partition consumed partway; after the owner leaves, the
        # new owner resumes at the committed offset, not 0.
        broker = ShardedBroker(2)
        broker.create_topic(TopicConfig("t", n_partitions=1))
        self._fill(broker, 40)
        coord = GroupCoordinator(broker, "t", "g")
        a = coord.join("a")
        first = a.poll(max_records=15)
        assert len(first) == 15
        b = coord.join("b")
        coord.leave("a")  # a's progress committed on both rebalances
        rest = b.poll(max_records=None)
        seen = sorted(r.value for r in first + rest)
        assert seen == list(range(40))

    def test_strategies_agree_on_totals(self):
        for strategy in ("round_robin", "range"):
            broker = make_broker()
            self._fill(broker, 30)
            coord = GroupCoordinator(
                broker, "t", "g", seed=1, strategy=strategy
            )
            members = [coord.join(n) for n in ("a", "b", "c")]
            values = []
            for m in members:
                values += [r.value for r in m.poll(max_records=None)]
            assert sorted(values) == list(range(30))
