"""ShardedBroker: addressing, routing, per-shard offsets and retention.

Includes the two PR satellites: the untouched-shard commit regression
(a consumer that never read a shard must not mark it committed) and
per-shard retention (each shard trims on its own watermark, with
``stream.skipped_by_retention`` labeled per shard).
"""

import pytest

from repro.obs import METRICS
from repro.stream import (
    Broker,
    Consumer,
    RetentionPolicy,
    ShardedBroker,
    TopicConfig,
    UnknownPartitionError,
    UnknownTopicError,
)


def make(n_shards=3, n_partitions=2, retention=None) -> ShardedBroker:
    broker = ShardedBroker(n_shards)
    broker.create_topic(
        TopicConfig(
            "t",
            n_partitions=n_partitions,
            retention=retention or RetentionPolicy(),
        )
    )
    return broker


class TestAddressing:
    def test_flattened_partition_count(self):
        broker = make(n_shards=3, n_partitions=2)
        assert broker.topic_config("t").n_partitions == 6

    def test_shard_of_and_global_roundtrip(self):
        broker = make(n_shards=3, n_partitions=2)
        for g in range(6):
            shard = broker.shard_of(g, "t")
            local = g % 2
            assert broker.global_partition(shard, local, "t") == g

    def test_plain_broker_is_shard_zero(self):
        broker = Broker()
        broker.create_topic(TopicConfig("t", n_partitions=4))
        assert broker.n_shards == 1
        assert broker.shard_of(3, "t") == 0

    def test_single_shard_reduces_to_plain_broker(self):
        sharded = make(n_shards=1, n_partitions=4)
        plain = Broker()
        plain.create_topic(TopicConfig("t", n_partitions=4))
        for i in range(20):
            key = f"k{i % 7}" if i % 3 else None
            a = sharded.produce("t", i, key=key, timestamp=float(i), nbytes=4)
            b = plain.produce("t", i, key=key, timestamp=float(i), nbytes=4)
            assert (a.partition, a.offset) == (b.partition, b.offset)

    def test_typed_errors(self):
        broker = make()
        with pytest.raises(UnknownTopicError):
            broker.fetch("nope", 0, 0)
        with pytest.raises(UnknownTopicError):
            broker.produce("nope", 1)
        with pytest.raises(UnknownPartitionError):
            broker.fetch("t", 6, 0)
        with pytest.raises(ValueError):
            broker.create_topic(TopicConfig("t"))
        with pytest.raises(ValueError):
            ShardedBroker(0)


class TestRouting:
    def test_same_key_same_shard(self):
        broker = make()
        records = [
            broker.produce("t", i, key="stable-key", nbytes=1)
            for i in range(10)
        ]
        # All on one shard, one partition, dense offsets.
        assert [r.offset for r in records] == list(range(10))
        populated = [
            s for s in range(3) if broker.shards[s].topic_records("t")
        ]
        assert len(populated) == 1

    def test_keyless_round_robins_across_shards(self):
        broker = make(n_shards=3)
        for i in range(9):
            broker.produce("t", i, nbytes=1)
        assert [s.topic_records("t") for s in broker.shards] == [3, 3, 3]

    def test_shard_hash_independent_of_partition_hash(self):
        # With equal shard and partition counts, a correlated hash would
        # pin every key to (shard i, local i); the salt must break that.
        broker = ShardedBroker(4)
        broker.create_topic(TopicConfig("t", n_partitions=4))
        off_diagonal = 0
        for i in range(64):
            record = broker.produce("t", i, key=f"key-{i}", nbytes=1)
            shard = broker._shard_for("t", f"key-{i}")  # memoized, pure
            if shard != record.partition:  # record.partition is local
                off_diagonal += 1
        assert off_diagonal > 0

    def test_produce_many_matches_produce_loop(self):
        a, b = make(), make()
        keys = [f"k{i % 5}" if i % 4 else None for i in range(40)]
        singles = [
            a.produce("t", i, key=keys[i], timestamp=float(i), nbytes=i)
            for i in range(40)
        ]
        batch = b.produce_many(
            "t",
            list(range(40)),
            keys=keys,
            timestamps=[float(i) for i in range(40)],
            nbytes=list(range(40)),
        )
        assert [(r.partition, r.offset, r.value, r.key) for r in singles] == [
            (r.partition, r.offset, r.value, r.key) for r in batch
        ]
        for sa, sb in zip(a.shards, b.shards):
            assert [
                (r.partition, r.offset, r.value) for r in sa.iter_all("t")
            ] == [(r.partition, r.offset, r.value) for r in sb.iter_all("t")]

    def test_accounting_sums_shards(self):
        broker = make()
        for i in range(12):
            broker.produce("t", i, key=f"k{i}", nbytes=10)
        assert broker.topic_records("t") == 12
        assert broker.topic_bytes("t") == 120
        assert len(list(broker.iter_all("t"))) == 12


class TestConsumerOverShards:
    def test_consumer_sees_all_shards(self):
        broker = make()
        for i in range(30):
            broker.produce("t", i, key=f"k{i % 9}", nbytes=1)
        consumer = Consumer(broker, "t", "g")
        values = sorted(r.value for r in consumer.poll(max_records=None))
        assert values == list(range(30))
        consumer.commit()
        assert broker.lag("g", "t") == 0

    def test_explicit_partition_assignment(self):
        broker = make(n_shards=2, n_partitions=2)
        consumer = Consumer(broker, "t", "g", partitions=[1, 3])
        assert consumer.partitions == [1, 3]
        with pytest.raises(ValueError):
            Consumer(broker, "t", "g", partitions=[4])

    def test_committed_offsets_are_per_shard(self):
        broker = make(n_shards=2, n_partitions=1)
        # Force both shards to hold records via keyless round-robin.
        for i in range(8):
            broker.produce("t", i, nbytes=1)
        consumer = Consumer(broker, "t", "g")
        consumer.poll(max_records=None)
        consumer.commit()
        # Global partitions 0 and 1 are shard0/local0 and shard1/local0:
        # each shard's own offset store holds its half.
        assert broker.committed("g", "t", 0) == 4
        assert broker.committed("g", "t", 1) == 4
        assert broker.shards[0].committed("g", "t", 0) == 4
        assert broker.shards[1].committed("g", "t", 0) == 4

    def test_untouched_shard_never_marked_committed(self):
        """Satellite regression: the PR-3 touched-only commit contract
        must hold per shard — consuming shard A's records cannot write
        offsets for shard B's partitions."""
        broker = make(n_shards=3, n_partitions=2)
        # All records on one key -> exactly one (shard, partition).
        for i in range(10):
            broker.produce("t", i, key="only-key", nbytes=1)
        (touched_shard,) = [
            s for s in range(3) if broker.shards[s].topic_records("t")
        ]
        consumer = Consumer(broker, "t", "g")
        assert len(consumer.poll(max_records=None)) == 10
        consumer.commit()
        for s, inner in enumerate(broker.shards):
            if s == touched_shard:
                assert inner._group_offsets, "consumed shard must commit"
            else:
                assert inner._group_offsets == {}, (
                    f"untouched shard {s} was marked committed"
                )

    def test_fresh_consumer_commit_is_noop_on_every_shard(self):
        broker = make()
        for i in range(6):
            broker.produce("t", i, nbytes=1)
        Consumer(broker, "t", "g").commit()
        assert all(s._group_offsets == {} for s in broker.shards)


class TestPerShardRetention:
    def test_shards_trim_on_their_own_watermark(self):
        """Satellite: one shard over its byte budget must trim without
        the under-budget shards losing anything."""
        policy = RetentionPolicy(max_bytes=100)
        broker = ShardedBroker(2)
        broker.create_topic(
            TopicConfig("t", n_partitions=1, retention=policy)
        )
        # shard of a key is stable; find one key per shard.
        by_shard = {}
        i = 0
        while len(by_shard) < 2:
            key = f"probe-{i}"
            by_shard.setdefault(broker._shard_for("t", key), key)
            i += 1
        heavy, light = by_shard[0], by_shard[1]
        for j in range(10):
            broker.produce("t", j, key=heavy, timestamp=float(j), nbytes=30)
        broker.produce("t", 99, key=light, timestamp=0.0, nbytes=30)
        deleted = broker.enforce_retention(now=100.0)
        assert deleted["t"] > 0
        assert broker.shards[0].topic_bytes("t") <= 100
        # The light shard kept its lone (old!) record: its own byte
        # watermark never tripped, and age-based trimming is unset.
        assert broker.shards[1].topic_records("t") == 1

    def test_skip_counter_labeled_per_shard(self):
        policy = RetentionPolicy(max_age_s=10.0)
        broker = ShardedBroker(2)
        broker.create_topic(
            TopicConfig("t", n_partitions=1, retention=policy)
        )
        by_shard = {}
        i = 0
        while len(by_shard) < 2:
            key = f"probe-{i}"
            by_shard.setdefault(broker._shard_for("t", key), key)
            i += 1
        consumer = Consumer(broker, "t", "skip-group")
        # Old records on shard 0 only; fresh ones on shard 1.
        for j in range(4):
            broker.produce("t", j, key=by_shard[0], timestamp=0.0, nbytes=1)
        broker.produce("t", 9, key=by_shard[1], timestamp=95.0, nbytes=1)
        broker.enforce_retention(now=100.0)  # trims shard 0's 4 records
        before = [
            METRICS.counter_value(
                "stream.skipped_by_retention", topic="t", shard=s
            )
            for s in range(2)
        ]
        consumer.poll(max_records=None)
        after = [
            METRICS.counter_value(
                "stream.skipped_by_retention", topic="t", shard=s
            )
            for s in range(2)
        ]
        assert after[0] - before[0] == 4
        assert after[1] - before[1] == 0
        assert consumer.skipped_by_retention == 4
