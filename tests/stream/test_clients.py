"""Unit tests for producer/consumer clients."""

import numpy as np
import pytest

from repro.stream import Broker, Consumer, Producer, RetentionPolicy, TopicConfig
from repro.telemetry import ObservationBatch


def make_broker(n_partitions=2):
    broker = Broker()
    broker.create_topic(TopicConfig("t", n_partitions))
    return broker


class TestProducer:
    def test_accounting(self):
        broker = make_broker()
        producer = Producer(broker)
        producer.send("t", "hello", nbytes=5)
        producer.send("t", "world", nbytes=7)
        assert producer.records_sent("t") == 2
        assert producer.bytes_sent("t") == 12

    def test_estimates_batch_size(self):
        broker = make_broker()
        producer = Producer(broker)
        batch = ObservationBatch(
            timestamps=np.zeros(3),
            component_ids=np.zeros(3),
            sensor_ids=np.zeros(3),
            values=np.zeros(3),
        )
        record = producer.send("t", batch)
        assert record.nbytes == batch.nbytes_raw

    def test_estimates_string_bytes(self):
        broker = make_broker()
        record = Producer(broker).send("t", "abcd")
        assert record.nbytes == 4

    def test_unknown_topic_propagates(self):
        with pytest.raises(KeyError):
            Producer(make_broker()).send("nope", 1)


class TestConsumer:
    def test_single_consumer_reads_everything(self):
        broker = make_broker()
        for i in range(20):
            broker.produce("t", i)
        consumer = Consumer(broker, "t", "g")
        values = sorted(r.value for r in consumer.poll(100))
        assert values == list(range(20))

    def test_poll_advances_position(self):
        broker = make_broker(1)
        for i in range(5):
            broker.produce("t", i)
        consumer = Consumer(broker, "t", "g")
        assert len(consumer.poll(3)) == 3
        assert len(consumer.poll(100)) == 2
        assert consumer.poll(100) == []

    def test_commit_resumes_group(self):
        broker = make_broker(1)
        for i in range(10):
            broker.produce("t", i)
        c1 = Consumer(broker, "t", "g")
        c1.poll(4)
        c1.commit()
        # New consumer instance, same group: resumes at committed offset.
        c2 = Consumer(broker, "t", "g")
        assert [r.value for r in c2.poll(100)] == list(range(4, 10))

    def test_uncommitted_progress_lost(self):
        broker = make_broker(1)
        for i in range(10):
            broker.produce("t", i)
        Consumer(broker, "t", "g").poll(4)  # never committed
        c2 = Consumer(broker, "t", "g")
        assert len(c2.poll(100)) == 10

    def test_group_members_split_partitions(self):
        broker = make_broker(n_partitions=4)
        for i in range(40):
            broker.produce("t", i)  # round-robin over partitions
        a = Consumer(broker, "t", "g", member=0, group_size=2)
        b = Consumer(broker, "t", "g", member=1, group_size=2)
        assert set(a.partitions) == {0, 2}
        assert set(b.partitions) == {1, 3}
        got = [r.value for r in a.poll(100)] + [r.value for r in b.poll(100)]
        assert sorted(got) == list(range(40))

    def test_seek_to_beginning_replays(self):
        broker = make_broker(1)
        for i in range(5):
            broker.produce("t", i)
        consumer = Consumer(broker, "t", "g")
        consumer.poll(100)
        consumer.seek_to_beginning()
        assert len(consumer.poll(100)) == 5

    def test_seek_unassigned_partition_rejected(self):
        broker = make_broker(4)
        consumer = Consumer(broker, "t", "g", member=0, group_size=2)
        with pytest.raises(ValueError):
            consumer.seek(1, 0)

    def test_lag_tracks_local_position(self):
        broker = make_broker(1)
        for i in range(10):
            broker.produce("t", i)
        consumer = Consumer(broker, "t", "g")
        assert consumer.lag() == 10
        consumer.poll(6)
        assert consumer.lag() == 4

    def test_poll_skips_trimmed_gap(self):
        broker = Broker()
        broker.create_topic(TopicConfig("t", 1, RetentionPolicy(max_age_s=10.0)))
        for i in range(5):
            broker.produce("t", i, timestamp=float(i))
        broker.enforce_retention(now=100.0)  # everything trimmed
        for i in range(5, 8):
            broker.produce("t", i, timestamp=100.0)
        consumer = Consumer(broker, "t", "g")  # committed=0, trimmed gap
        assert [r.value for r in consumer.poll(100)] == [5, 6, 7]

    def test_invalid_group_geometry(self):
        broker = make_broker()
        with pytest.raises(ValueError):
            Consumer(broker, "t", "g", member=2, group_size=2)
        with pytest.raises(ValueError):
            Consumer(broker, "t", "g", group_size=0)
