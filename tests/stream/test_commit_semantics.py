"""Regression tests for consumer commit semantics.

A consumer that has never polled must not rewrite its group's offsets:
commit() only writes partitions the consumer actually read or seeked.
"""

from repro.stream import Broker, Consumer, RetentionPolicy, TopicConfig


def make_broker(n_partitions=2) -> Broker:
    broker = Broker()
    broker.create_topic(TopicConfig("t", n_partitions, RetentionPolicy()))
    return broker


def test_commit_without_poll_is_noop():
    broker = make_broker()
    for i in range(10):
        broker.produce("t", i)
    worker = Consumer(broker, "t", group="g")
    assert len(worker.poll(None)) == 10
    worker.commit()
    committed = [broker.committed("g", "t", p) for p in range(2)]

    # A fresh group member that commits without polling must not move
    # the group's offsets back to its stale construction-time snapshot.
    for i in range(10, 14):
        broker.produce("t", i)
    bystander = Consumer(broker, "t", group="g")
    first_seen = [broker.committed("g", "t", p) for p in range(2)]
    for i in range(14, 18):
        broker.produce("t", i)
    resumed = Consumer(broker, "t", group="g")
    resumed.poll(None)
    resumed.commit()
    advanced = [broker.committed("g", "t", p) for p in range(2)]
    assert advanced != committed  # the group moved on

    bystander.commit()  # never polled: must change nothing
    assert [broker.committed("g", "t", p) for p in range(2)] == advanced
    assert first_seen == committed


def test_commit_after_seek_writes_only_seeked_partition():
    broker = make_broker()
    for i in range(8):
        broker.produce("t", i)
    reader = Consumer(broker, "t", group="g")
    reader.poll(None)
    reader.commit()
    before = [broker.committed("g", "t", p) for p in range(2)]

    seeker = Consumer(broker, "t", group="g")
    seeker.seek(0, 1)
    seeker.commit()
    after = [broker.committed("g", "t", p) for p in range(2)]
    assert after[0] == 1  # the seeked partition moved
    assert after[1] == before[1]  # the untouched one did not


def test_empty_poll_marks_touched():
    """Polling an empty topic is still an observation worth committing."""
    broker = make_broker()
    consumer = Consumer(broker, "t", group="g")
    assert consumer.poll() == []
    consumer.commit()
    assert [broker.committed("g", "t", p) for p in range(2)] == [0, 0]


def test_poll_slices_matches_poll():
    b1, b2 = make_broker(), make_broker()
    for i in range(20):
        b1.produce("t", i)
        b2.produce("t", i)
    flat = Consumer(b1, "t", group="g").poll(None)
    sliced = Consumer(b2, "t", group="g").poll_slices(None)
    merged = [r for _, records in sliced for r in records]
    assert [(r.partition, r.offset, r.value) for r in flat] == [
        (r.partition, r.offset, r.value) for r in merged
    ]
