"""Regression tests for consumer commit semantics.

A consumer that has never polled must not rewrite its group's offsets:
commit() only writes partitions the consumer actually read or seeked.
"""

from repro.stream import Broker, Consumer, RetentionPolicy, TopicConfig


def make_broker(n_partitions=2) -> Broker:
    broker = Broker()
    broker.create_topic(TopicConfig("t", n_partitions, RetentionPolicy()))
    return broker


def test_commit_without_poll_is_noop():
    broker = make_broker()
    for i in range(10):
        broker.produce("t", i)
    worker = Consumer(broker, "t", group="g")
    assert len(worker.poll(None)) == 10
    worker.commit()
    committed = [broker.committed("g", "t", p) for p in range(2)]

    # A fresh group member that commits without polling must not move
    # the group's offsets back to its stale construction-time snapshot.
    for i in range(10, 14):
        broker.produce("t", i)
    bystander = Consumer(broker, "t", group="g")
    first_seen = [broker.committed("g", "t", p) for p in range(2)]
    for i in range(14, 18):
        broker.produce("t", i)
    resumed = Consumer(broker, "t", group="g")
    resumed.poll(None)
    resumed.commit()
    advanced = [broker.committed("g", "t", p) for p in range(2)]
    assert advanced != committed  # the group moved on

    bystander.commit()  # never polled: must change nothing
    assert [broker.committed("g", "t", p) for p in range(2)] == advanced
    assert first_seen == committed


def test_commit_after_seek_writes_only_seeked_partition():
    broker = make_broker()
    for i in range(8):
        broker.produce("t", i)
    reader = Consumer(broker, "t", group="g")
    reader.poll(None)
    reader.commit()
    before = [broker.committed("g", "t", p) for p in range(2)]

    seeker = Consumer(broker, "t", group="g")
    seeker.seek(0, 1)
    seeker.commit()
    after = [broker.committed("g", "t", p) for p in range(2)]
    assert after[0] == 1  # the seeked partition moved
    assert after[1] == before[1]  # the untouched one did not


def test_empty_poll_leaves_partition_untouched():
    """A poll that moves nothing must not make commit() rewrite offsets.

    Regression: the old poll path added every assigned partition to the
    touched set even when no records arrived and no gap was crossed, so
    a stale member's empty poll + commit dragged the group's offset back
    to its construction-time snapshot.
    """
    broker = make_broker()
    stale = Consumer(broker, "t", group="g")  # snapshots offsets [0, 0]
    # Another member advances the group while `stale` sits idle.
    for i in range(6):
        broker.produce("t", i)
    mover = Consumer(broker, "t", group="g")
    mover.poll(None)
    mover.commit()
    advanced = [broker.committed("g", "t", p) for p in range(2)]
    assert advanced == [3, 3]

    # Drain the log so the stale member's poll genuinely moves nothing.
    broker.enforce_retention(0.0)  # KEEP_ALL policy: trims nothing
    stale._positions = dict.fromkeys(stale.partitions, 3)  # caught up,
    stale._touched.clear()  # but has never polled/seeked itself
    assert stale.poll() == []
    stale.commit()
    assert [broker.committed("g", "t", p) for p in range(2)] == advanced


def test_retention_skip_counted_and_committable():
    """Skipping a retention-trimmed gap is accounted, not silent."""
    from repro.perf import PERF

    broker = Broker()
    broker.create_topic(
        TopicConfig("t", 1, RetentionPolicy(max_age_s=10.0))
    )
    for i in range(8):
        broker.produce("t", i, timestamp=float(i))
    consumer = Consumer(broker, "t", group="g")
    # Age out the first 5 records (ts < 15 - 10) before the first poll.
    broker.enforce_retention(now=15.0)
    assert broker.earliest_offset("t", 0) == 5

    before = PERF.counter("stream.skipped_by_retention")
    records = consumer.poll(None)
    assert [r.value for r in records] == [5, 6, 7]
    assert consumer.skipped_by_retention == 5
    assert PERF.counter("stream.skipped_by_retention") - before == 5
    consumer.commit()
    assert broker.committed("g", "t", 0) == 8


def test_gap_skip_with_empty_tail_still_commits_progress():
    """Crossing a trimmed gap into an empty tail is real progress: the
    new position must be committable even though no records came back."""
    broker = Broker()
    broker.create_topic(
        TopicConfig("t", 1, RetentionPolicy(max_age_s=10.0))
    )
    for i in range(4):
        broker.produce("t", i, timestamp=float(i))
    consumer = Consumer(broker, "t", group="g")
    broker.enforce_retention(now=100.0)  # everything aged out
    assert consumer.poll(None) == []
    assert consumer.skipped_by_retention == 4
    consumer.commit()
    # Committed past the gap: a restart will not re-skip (and re-count)
    # the same trimmed records.
    assert broker.committed("g", "t", 0) == 4


def test_poll_slices_matches_poll():
    b1, b2 = make_broker(), make_broker()
    for i in range(20):
        b1.produce("t", i)
        b2.produce("t", i)
    flat = Consumer(b1, "t", group="g").poll(None)
    sliced = Consumer(b2, "t", group="g").poll_slices(None)
    merged = [r for _, records in sliced for r in records]
    assert [(r.partition, r.offset, r.value) for r in flat] == [
        (r.partition, r.offset, r.value) for r in merged
    ]
