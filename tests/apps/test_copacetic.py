"""Unit tests for the Copacetic correlation engine."""

import numpy as np
import pytest

from repro.apps import CopaceticEngine, Rule
from repro.apps.copacetic import (
    auth_after_fault_rule,
    error_burst_rule,
    escalation_rule,
)
from repro.telemetry import MINI, SyslogSource
from repro.telemetry.schema import EventBatch


def events(node, times, severities, message_ids):
    n = len(times)
    return EventBatch(
        timestamps=np.asarray(times, dtype=float),
        component_ids=np.full(n, node, dtype=np.int32),
        severities=np.asarray(severities, dtype=np.int8),
        message_ids=np.asarray(message_ids, dtype=np.int16),
    )


class TestErrorBurst:
    def test_burst_fires(self):
        engine = CopaceticEngine([error_burst_rule(threshold=3)])
        batch = events(5, [10.0, 11.0, 12.0], [3, 3, 4], [15, 16, 19])
        alerts = engine.process(batch)
        assert len(alerts) == 1
        assert alerts[0].rule == "error-burst"
        assert alerts[0].node == 5

    def test_below_threshold_silent(self):
        engine = CopaceticEngine([error_burst_rule(threshold=5)])
        assert engine.process(events(5, [1.0, 2.0], [3, 3], [15, 15])) == []

    def test_window_eviction(self):
        engine = CopaceticEngine([error_burst_rule(threshold=3, window_s=60.0)])
        engine.process(events(1, [0.0, 1.0], [3, 3], [15, 15]))
        # Third error arrives long after: first two have left the window.
        alerts = engine.process(events(1, [500.0], [3], [15]))
        assert alerts == []

    def test_dedup_within_window_slot(self):
        engine = CopaceticEngine([error_burst_rule(threshold=2, window_s=1000.0)])
        engine.process(events(1, [1.0, 2.0], [3, 3], [15, 15]))
        again = engine.process(events(1, [3.0], [3], [15]))
        assert again == []  # same (rule, node, slot)


class TestEscalation:
    def test_full_escalation_fires(self):
        engine = CopaceticEngine([escalation_rule()])
        batch = events(2, [1.0, 2.0, 3.0], [2, 3, 4], [10, 15, 19])
        assert len(engine.process(batch)) == 1

    def test_partial_escalation_silent(self):
        engine = CopaceticEngine([escalation_rule()])
        assert engine.process(events(2, [1.0, 2.0], [2, 3], [10, 15])) == []


class TestAuthAfterFault:
    def test_login_after_fault_fires(self):
        engine = CopaceticEngine([auth_after_fault_rule()])
        batch = events(3, [10.0, 20.0], [3, 1], [15, 4])
        assert len(engine.process(batch)) == 1

    def test_login_before_fault_silent(self):
        engine = CopaceticEngine([auth_after_fault_rule()])
        batch = events(3, [10.0, 20.0], [1, 3], [4, 15])
        assert engine.process(batch) == []


class TestEngine:
    def test_empty_batch(self):
        assert CopaceticEngine().process(EventBatch.empty()) == []

    def test_no_rules_rejected(self):
        with pytest.raises(ValueError):
            CopaceticEngine([])

    def test_invalid_rule_window(self):
        with pytest.raises(ValueError):
            Rule("x", 0.0, lambda ts, sev, msg: None)

    def test_nodes_isolated(self):
        engine = CopaceticEngine([error_burst_rule(threshold=3)])
        # Two errors on node 1, one on node 2: neither crosses alone.
        batch = EventBatch(
            timestamps=np.array([1.0, 2.0, 3.0]),
            component_ids=np.array([1, 1, 2], dtype=np.int32),
            severities=np.array([3, 3, 3], dtype=np.int8),
            message_ids=np.array([15, 15, 15], dtype=np.int16),
        )
        assert engine.process(batch) == []

    def test_runs_over_synthetic_syslog(self):
        """End-to-end over the bursty generator: some alerts, no storms."""
        source = SyslogSource(MINI, seed=9, burst_prob=0.2, burst_factor=18.0)
        engine = CopaceticEngine()
        for t in np.arange(0.0, 7200.0, 600.0):
            engine.process(source.emit(t, t + 600.0))
        assert engine.events_processed > 500
        assert 0 < len(engine.alerts) < engine.events_processed / 5
