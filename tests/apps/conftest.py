"""Shared fixtures: a small fully-refined deployment for the apps."""

import numpy as np
import pytest

from repro.pipeline.medallion import (
    bronze_standardize,
    gold_job_profiles,
    silver_aggregate,
)
from repro.storage import DataClass, TieredStore
from repro.telemetry import (
    InterconnectSource,
    MINI,
    PowerThermalSource,
    StorageIOSource,
    SyslogSource,
    synthetic_job_mix,
)


@pytest.fixture(scope="package")
def deployment():
    """Telemetry for one hour of MINI, refined into a tiered store."""
    allocation = synthetic_job_mix(MINI, 0.0, 7200.0, np.random.default_rng(21))
    power_src = PowerThermalSource(MINI, allocation, seed=3, loss_rate=0.01)
    io_src = StorageIOSource(MINI, allocation, seed=3)
    net_src = InterconnectSource(MINI, allocation, seed=3)
    syslog_src = SyslogSource(MINI, seed=3, burst_prob=0.05)

    tiers = TieredStore()
    tiers.register("power.bronze", DataClass.BRONZE)
    tiers.register("power.silver", DataClass.SILVER)
    tiers.register("power.gold_profiles", DataClass.GOLD)
    tiers.register("storage_io.silver", DataClass.SILVER)
    tiers.register("interconnect.silver", DataClass.SILVER)

    events = []
    for t in np.arange(0.0, 3600.0, 600.0):
        t1 = t + 600.0
        power_batch = power_src.emit(t, t1)
        bronze = bronze_standardize([power_batch])
        silver = silver_aggregate(bronze, power_src.catalog, 15.0, allocation)
        gold = gold_job_profiles(silver)
        tiers.ingest("power.bronze", bronze, now=t1)
        tiers.ingest("power.silver", silver, now=t1)
        tiers.ingest("power.gold_profiles", gold, now=t1)

        io_bronze = bronze_standardize([io_src.emit(t, t1)])
        io_silver = silver_aggregate(io_bronze, io_src.catalog, 15.0)
        tiers.ingest("storage_io.silver", io_silver, now=t1)

        net_bronze = bronze_standardize([net_src.emit(t, t1)])
        net_silver = silver_aggregate(net_bronze, net_src.catalog, 15.0)
        tiers.ingest("interconnect.silver", net_silver, now=t1)

        events.append(syslog_src.emit(t, t1))

    return {
        "allocation": allocation,
        "tiers": tiers,
        "power_catalog": power_src.catalog,
        "events": events,
        "syslog_templates": syslog_src.templates,
    }
