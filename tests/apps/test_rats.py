"""Unit tests for RATS-Report (Fig. 7)."""

import numpy as np
import pytest

from repro.apps import RatsReport
from repro.scheduler import (
    AccountingLedger,
    BackfillPolicy,
    ProjectAllocation,
    SchedulerSimulator,
    submission_stream,
)
from repro.telemetry import MINI


@pytest.fixture(scope="module")
def rats():
    requests = submission_stream(
        MINI, 86_400.0, np.random.default_rng(2),
        arrival_rate_per_hour=16.0, projects=4,
    )
    sim = SchedulerSimulator(MINI, BackfillPolicy(), failure_rate=0.05, seed=1)
    sim.run(requests)
    ledger = AccountingLedger(gpus_per_node=MINI.gpus_per_node)
    for i in range(4):
        ledger.grant(
            ProjectAllocation(f"PRJ{i:03d}", 20_000.0, 0.0, 30 * 86_400.0)
        )
    records = sim.completed_records()
    ledger.ingest(records)
    return RatsReport(ledger, records)


class TestProjectUsage:
    def test_one_row_per_project(self, rats):
        usage = rats.project_usage()
        assert usage.num_rows == len(set(usage["project"].tolist()))
        assert usage.num_rows >= 3

    def test_cpu_gpu_split_present(self, rats):
        usage = rats.project_usage()
        assert (usage["gpu_hours"] >= 0).all()
        assert (usage["cpu_hours"] >= 0).all()
        # GPU-hours can exceed node-hours (multiple GPUs per node).
        assert usage["gpu_hours"].sum() > 0

    def test_node_hours_match_ledger(self, rats):
        usage = rats.project_usage()
        for project, nh in zip(usage["project"].tolist(), usage["node_hours"]):
            assert nh == pytest.approx(
                rats.ledger.project_node_hours(project), rel=1e-9
            )

    def test_failed_jobs_bounded_by_jobs(self, rats):
        usage = rats.project_usage()
        assert (usage["failed_jobs"] <= usage["jobs"]).all()


class TestTopUsersAndBurnRates:
    def test_top_users_descending(self, rats):
        top = rats.top_users(5)
        nh = top["node_hours"]
        assert (np.diff(nh) <= 1e-9).all()
        assert top.num_rows <= 5

    def test_burn_rates_cover_granted_projects(self, rats):
        rates = rats.burn_rates(now=15 * 86_400.0)
        assert rates.num_rows == 4
        assert (rates["ideal_node_hours"] > 0).all()

    def test_ingest_stats(self, rats):
        stats = rats.ingest_stats()
        assert stats["jobs_reported"] > 0
        assert stats["log_lines_per_day"] > 0


class TestEnergyAttribution:
    def test_project_energy_via_twin(self, rats):
        from repro.scheduler import BackfillPolicy  # noqa: F401
        from repro.telemetry import AllocationTable
        from repro.twin import PowerSimulator

        specs = [r.to_spec() for r in rats.records]
        allocation = AllocationTable(specs)
        simulator = PowerSimulator(MINI, allocation)
        table = rats.project_energy(simulator, dt=120.0)
        assert table.num_rows >= 3
        assert (table["energy_j"] > 0).all()
        np.testing.assert_allclose(
            table["energy_mwh"], table["energy_j"] / 3.6e9
        )

    def test_energy_ordering_tracks_node_hours_roughly(self, rats):
        """Projects burning more node-hours burn more joules (same mix)."""
        from repro.telemetry import AllocationTable
        from repro.twin import PowerSimulator

        allocation = AllocationTable([r.to_spec() for r in rats.records])
        simulator = PowerSimulator(MINI, allocation)
        energy = rats.project_energy(simulator, dt=120.0)
        usage = rats.project_usage()
        e = {p: v for p, v in zip(energy["project"].tolist(),
                                  energy["energy_j"])}
        nh = {p: v for p, v in zip(usage["project"].tolist(),
                                   usage["node_hours"])}
        common = sorted(set(e) & set(nh))
        top_energy = max(common, key=lambda p: e[p])
        top_hours = max(common, key=lambda p: nh[p])
        # Not necessarily identical (mix differs), but correlated: the
        # heaviest project by hours is in the top half by energy.
        ranked = sorted(common, key=lambda p: -e[p])
        assert ranked.index(top_hours) <= len(common) // 2
