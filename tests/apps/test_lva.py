"""Unit + integration tests for Live Visual Analytics (Fig. 8)."""

import numpy as np
import pytest

from repro.apps import LiveVisualAnalytics


@pytest.fixture
def lva(deployment):
    return LiveVisualAnalytics(
        deployment["tiers"],
        deployment["power_catalog"],
        deployment["allocation"],
    )


def early_job(deployment):
    for job in deployment["allocation"].jobs:
        if job.start < 1800.0 and job.end > 600.0:
            return job
    raise RuntimeError("no early job")


class TestInteractiveQueries:
    def test_job_profile_sorted_series(self, lva, deployment):
        job = early_job(deployment)
        profile = lva.job_power_profile(job.job_id)
        assert profile.num_rows > 0
        assert (np.diff(profile["timestamp"]) >= 0).all()
        assert (profile["power_w"] > 0).all()

    def test_system_power_view_resolution(self, lva):
        view = lva.system_power_view(0.0, 1800.0, resolution_s=60.0)
        assert view.num_rows <= 30
        assert (view["total_power_w"] > 0).all()

    def test_system_power_scales_with_fleet(self, lva, deployment):
        from repro.telemetry import MINI

        view = lva.system_power_view(0.0, 1800.0)
        mean_node = view["mean_node_power_w"].mean()
        assert view["total_power_w"].mean() == pytest.approx(
            mean_node * MINI.n_nodes, rel=0.2
        )

    def test_top_jobs_ranked_by_energy(self, lva):
        top = lva.top_jobs_by_energy(5)
        assert top.num_rows >= 1
        energy = top["energy_j"]
        assert (np.diff(energy) <= 1e-6).all()

    def test_empty_window(self, lva):
        view = lva.system_power_view(1e8, 1e8 + 60.0)
        assert view.num_rows == 0


class TestRefinementSpeedup:
    def test_raw_scan_matches_refined_answer(self, lva, deployment):
        """Both paths compute the same profile (modulo float order)."""
        job = early_job(deployment)
        fast = lva.job_power_profile(job.job_id)
        slow = lva.job_power_profile_from_raw(job.job_id)
        assert fast.num_rows == slow.num_rows
        np.testing.assert_allclose(
            fast["power_w"], slow["power_w"], rtol=1e-9
        )

    def test_refined_path_faster(self, lva, deployment):
        """The Fig. 8 claim: precomputed profiles make interaction cheap."""
        job = early_job(deployment)
        lva.job_power_profile(job.job_id)
        lva.job_power_profile_from_raw(job.job_id)
        fast = lva.last_latency("job_power_profile")
        slow = lva.last_latency("job_power_profile_from_raw")
        assert slow > 3 * fast

    def test_latency_log(self, lva, deployment):
        job = early_job(deployment)
        lva.job_power_profile(job.job_id)
        assert lva.last_latency("job_power_profile") is not None
        assert lva.last_latency("never-ran") is None
