"""Unit + integration tests for the User Assistance dashboard (Fig. 6)."""

import numpy as np
import pytest

from repro.apps import UserAssistanceDashboard


@pytest.fixture
def dashboard(deployment):
    dash = UserAssistanceDashboard(
        deployment["tiers"].lake, deployment["allocation"]
    )
    for batch in deployment["events"]:
        dash.feed_events(batch)
    return dash


def job_in_first_hour(deployment):
    for job in deployment["allocation"].jobs:
        if job.start < 1800.0 and job.end > 900.0:
            return job
    raise RuntimeError("fixture produced no early job")


class TestJobOverview:
    def test_overview_compiles_all_streams(self, dashboard, deployment):
        job = job_in_first_hour(deployment)
        overview = dashboard.job_overview(job.job_id)
        assert overview.power.num_rows > 0
        assert overview.io.num_rows > 0
        assert overview.fabric.num_rows > 0

    def test_overview_scoped_to_job_nodes(self, dashboard, deployment):
        job = job_in_first_hour(deployment)
        overview = dashboard.job_overview(job.job_id)
        assert set(np.unique(overview.power["node"])) <= set(job.nodes.tolist())

    def test_overview_scoped_to_job_lifetime(self, dashboard, deployment):
        job = job_in_first_hour(deployment)
        overview = dashboard.job_overview(job.job_id)
        ts = overview.power["timestamp"]
        assert ts.min() >= job.start - 15.0
        assert ts.max() < job.end

    def test_events_scoped_to_job(self, dashboard, deployment):
        job = job_in_first_hour(deployment)
        overview = dashboard.job_overview(job.job_id)
        if len(overview.events):
            assert set(np.unique(overview.events.component_ids)) <= set(
                job.nodes.tolist()
            )

    def test_unknown_job_raises(self, dashboard):
        with pytest.raises(KeyError):
            dashboard.job_overview(999_999)

    def test_ticket_counter(self, dashboard, deployment):
        job = job_in_first_hour(deployment)
        before = dashboard.tickets_resolved
        dashboard.job_overview(job.job_id)
        assert dashboard.tickets_resolved == before + 1


class TestDiagnosis:
    def test_idle_job_flagged(self, dashboard, deployment):
        idle_jobs = [
            j for j in deployment["allocation"].jobs
            if j.archetype in ("idle", "debug") and j.start < 3000.0
        ]
        if not idle_jobs:
            pytest.skip("no idle jobs in mix")
        overview = dashboard.job_overview(idle_jobs[0].job_id)
        codes = {f.code for f in overview.findings}
        assert "idle-gpus" in codes

    def test_busy_job_not_flagged_idle(self, dashboard, deployment):
        busy = [
            j for j in deployment["allocation"].jobs
            if j.archetype in ("climate", "hpl") and j.start < 1800.0
            and j.end > 2400.0
        ]
        if not busy:
            pytest.skip("no busy jobs in mix")
        overview = dashboard.job_overview(busy[0].job_id)
        assert "idle-gpus" not in {f.code for f in overview.findings}

    def test_findings_carry_evidence(self, dashboard, deployment):
        job = job_in_first_hour(deployment)
        overview = dashboard.job_overview(job.job_id)
        for finding in overview.findings:
            assert finding.severity in ("info", "warning", "critical")
            assert finding.message


class TestLogSearch:
    def test_search_job_logs(self, dashboard, deployment):
        from repro.storage import LogStore
        from repro.telemetry.schema import EventBatch

        store = LogStore(deployment["syslog_templates"])
        for batch in deployment["events"]:
            store.ingest(batch)
        dashboard.attach_log_store(store)
        job = job_in_first_hour(deployment)
        hits = dashboard.search_job_logs(job.job_id, "kernel")
        for doc in hits:
            assert doc.node in job.nodes.tolist()
            assert job.start <= doc.timestamp < job.end
            assert "kernel" in doc.message.lower()

    def test_search_requires_store(self, dashboard, deployment):
        job = job_in_first_hour(deployment)
        dashboard.log_store = None
        with pytest.raises(RuntimeError):
            dashboard.search_job_logs(job.job_id, "kernel")


class TestManualBaseline:
    def test_manual_lookup_touches_more_rows(self, dashboard, deployment):
        """The integrated dashboard reads orders of magnitude fewer rows
        than scanning each raw system (the Fig. 6 efficiency claim)."""
        job = job_in_first_hour(deployment)
        bronze = {
            "power": deployment["tiers"].scan_ocean("power.bronze"),
        }
        overview, rows_touched = dashboard.manual_lookup(job.job_id, bronze)
        dashboard_rows = (
            overview.power.num_rows + overview.io.num_rows
            + overview.fabric.num_rows
        )
        assert rows_touched > 10 * dashboard_rows
