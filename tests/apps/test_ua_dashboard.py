"""Unit + integration tests for the User Assistance dashboard (Fig. 6)."""

import numpy as np
import pytest

from repro.apps import UserAssistanceDashboard


@pytest.fixture
def dashboard(deployment):
    dash = UserAssistanceDashboard(
        deployment["tiers"].lake, deployment["allocation"]
    )
    for batch in deployment["events"]:
        dash.feed_events(batch)
    return dash


def job_in_first_hour(deployment):
    for job in deployment["allocation"].jobs:
        if job.start < 1800.0 and job.end > 900.0:
            return job
    raise RuntimeError("fixture produced no early job")


class TestJobOverview:
    def test_overview_compiles_all_streams(self, dashboard, deployment):
        job = job_in_first_hour(deployment)
        overview = dashboard.job_overview(job.job_id)
        assert overview.power.num_rows > 0
        assert overview.io.num_rows > 0
        assert overview.fabric.num_rows > 0

    def test_overview_scoped_to_job_nodes(self, dashboard, deployment):
        job = job_in_first_hour(deployment)
        overview = dashboard.job_overview(job.job_id)
        assert set(np.unique(overview.power["node"])) <= set(job.nodes.tolist())

    def test_overview_scoped_to_job_lifetime(self, dashboard, deployment):
        job = job_in_first_hour(deployment)
        overview = dashboard.job_overview(job.job_id)
        ts = overview.power["timestamp"]
        assert ts.min() >= job.start - 15.0
        assert ts.max() < job.end

    def test_events_scoped_to_job(self, dashboard, deployment):
        job = job_in_first_hour(deployment)
        overview = dashboard.job_overview(job.job_id)
        if len(overview.events):
            assert set(np.unique(overview.events.component_ids)) <= set(
                job.nodes.tolist()
            )

    def test_unknown_job_raises(self, dashboard):
        with pytest.raises(KeyError):
            dashboard.job_overview(999_999)

    def test_ticket_counter(self, dashboard, deployment):
        job = job_in_first_hour(deployment)
        before = dashboard.tickets_resolved
        dashboard.job_overview(job.job_id)
        assert dashboard.tickets_resolved == before + 1


class TestDiagnosis:
    def test_idle_job_flagged(self, dashboard, deployment):
        idle_jobs = [
            j for j in deployment["allocation"].jobs
            if j.archetype in ("idle", "debug") and j.start < 3000.0
        ]
        if not idle_jobs:
            pytest.skip("no idle jobs in mix")
        overview = dashboard.job_overview(idle_jobs[0].job_id)
        codes = {f.code for f in overview.findings}
        assert "idle-gpus" in codes

    def test_busy_job_not_flagged_idle(self, dashboard, deployment):
        busy = [
            j for j in deployment["allocation"].jobs
            if j.archetype in ("climate", "hpl") and j.start < 1800.0
            and j.end > 2400.0
        ]
        if not busy:
            pytest.skip("no busy jobs in mix")
        overview = dashboard.job_overview(busy[0].job_id)
        assert "idle-gpus" not in {f.code for f in overview.findings}

    def test_findings_carry_evidence(self, dashboard, deployment):
        job = job_in_first_hour(deployment)
        overview = dashboard.job_overview(job.job_id)
        for finding in overview.findings:
            assert finding.severity in ("info", "warning", "critical")
            assert finding.message


class TestDiagnosisEdges:
    """The _check_* rules on degenerate inputs: empty/missing tables and
    zero-row job slices must diagnose cleanly, never crash."""

    @staticmethod
    def _empty_overview(deployment):
        from repro.apps.ua_dashboard import JobOverview
        from repro.columnar.table import ColumnTable
        from repro.telemetry.schema import EventBatch

        job = deployment["allocation"].jobs[0]
        empty = ColumnTable({})
        return JobOverview(
            job, empty, EventBatch.empty(), empty, empty
        )

    def test_empty_overview_produces_no_findings(self, dashboard, deployment):
        overview = self._empty_overview(deployment)
        assert dashboard._check_idle_gpus(overview) == []
        assert dashboard._check_fabric_stalls(overview) == []
        assert dashboard._check_error_bursts(overview) == []
        assert dashboard._check_node_imbalance(overview) == []
        assert dashboard._diagnose(overview) == []

    def test_missing_columns_are_tolerated(self, dashboard, deployment):
        """Tables that exist but lack the diagnostic columns (e.g. a
        fabric silver without nic_stall_frac) must not crash the rules."""
        import numpy as np

        from repro.columnar.table import ColumnTable

        overview = self._empty_overview(deployment)
        overview.fabric = ColumnTable(
            {"timestamp": np.zeros(3), "node": np.zeros(3)}
        )
        overview.power = ColumnTable(
            {"timestamp": np.zeros(3), "node": np.arange(3.0)}
        )
        assert dashboard._check_fabric_stalls(overview) == []
        assert dashboard._check_idle_gpus(overview) == []
        assert dashboard._check_node_imbalance(overview) == []

    def test_single_node_job_skips_imbalance(self, dashboard, deployment):
        import numpy as np

        from repro.columnar.table import ColumnTable

        overview = self._empty_overview(deployment)
        overview.power = ColumnTable(
            {
                "timestamp": np.zeros(4),
                "node": np.zeros(4),
                "input_power": np.array([100.0, 900.0, 100.0, 900.0]),
            }
        )
        assert dashboard._check_node_imbalance(overview) == []

    def test_zero_row_job_slice_compiles(self, deployment):
        """A dashboard over a lake with no silver tables yields zero-row
        slices for every job; the overview must still compile and
        diagnose to nothing."""
        from repro.storage.lake import TimeSeriesLake

        dash = UserAssistanceDashboard(
            TimeSeriesLake(), deployment["allocation"]
        )
        job = deployment["allocation"].jobs[0]
        overview = dash.job_overview(job.job_id)
        assert overview.power.num_rows == 0
        assert overview.io.num_rows == 0
        assert overview.fabric.num_rows == 0
        assert overview.findings == []


class TestFrameworkHealth:
    """framework_health: the dashboard diagnosing the ODA itself."""

    @staticmethod
    def _lake_with_health(rows):
        import numpy as np

        from repro.columnar.table import ColumnTable
        from repro.storage.lake import TimeSeriesLake

        lake = TimeSeriesLake()
        n = len(rows["timestamp"])
        table = ColumnTable(
            {k: np.asarray(v, dtype=np.float64) for k, v in rows.items()}
            | {"node": np.zeros(n)}
        )
        lake.ingest("oda_health.silver", table)
        return lake

    def test_no_telemetry_warns(self, deployment):
        from repro.storage.lake import TimeSeriesLake

        dash = UserAssistanceDashboard(
            TimeSeriesLake(), deployment["allocation"]
        )
        (finding,) = dash.framework_health()
        assert finding.code == "obs-no-telemetry"
        assert finding.severity == "warning"

    def test_retention_loss_is_critical(self, deployment):
        lake = self._lake_with_health(
            {
                "timestamp": [0.0, 60.0],
                "oda.skipped_by_retention": [0.0, 12.0],
                "oda.gold_rows": [8.0, 8.0],
            }
        )
        dash = UserAssistanceDashboard(lake, deployment["allocation"])
        codes = {f.code: f for f in dash.framework_health()}
        assert "obs-data-loss" in codes
        assert codes["obs-data-loss"].severity == "critical"
        assert codes["obs-data-loss"].evidence["skipped_records"] == 12.0

    def test_stalled_refinement_warns(self, deployment):
        lake = self._lake_with_health(
            {
                "timestamp": [0.0, 60.0],
                "oda.skipped_by_retention": [0.0, 0.0],
                "oda.gold_rows": [0.0, 0.0],
            }
        )
        dash = UserAssistanceDashboard(lake, deployment["allocation"])
        codes = {f.code for f in dash.framework_health()}
        assert "refinement-stalled" in codes
        assert "pipeline-healthy" not in codes

    def test_healthy_pipeline_reports_info(self, deployment):
        lake = self._lake_with_health(
            {
                "timestamp": [0.0, 60.0],
                "oda.skipped_by_retention": [0.0, 0.0],
                "oda.gold_rows": [8.0, 8.0],
                "oda.silver_rows": [64.0, 64.0],
            }
        )
        dash = UserAssistanceDashboard(lake, deployment["allocation"])
        (finding,) = dash.framework_health()
        assert finding.code == "pipeline-healthy"
        assert finding.severity == "info"
        assert finding.evidence["windows_observed"] == 2.0
        assert finding.evidence["last_silver_rows"] == 64.0


class TestLogSearch:
    def test_search_job_logs(self, dashboard, deployment):
        from repro.storage import LogStore
        from repro.telemetry.schema import EventBatch

        store = LogStore(deployment["syslog_templates"])
        for batch in deployment["events"]:
            store.ingest(batch)
        dashboard.attach_log_store(store)
        job = job_in_first_hour(deployment)
        hits = dashboard.search_job_logs(job.job_id, "kernel")
        for doc in hits:
            assert doc.node in job.nodes.tolist()
            assert job.start <= doc.timestamp < job.end
            assert "kernel" in doc.message.lower()

    def test_search_requires_store(self, dashboard, deployment):
        job = job_in_first_hour(deployment)
        dashboard.log_store = None
        with pytest.raises(RuntimeError):
            dashboard.search_job_logs(job.job_id, "kernel")


class TestManualBaseline:
    def test_manual_lookup_touches_more_rows(self, dashboard, deployment):
        """The integrated dashboard reads orders of magnitude fewer rows
        than scanning each raw system (the Fig. 6 efficiency claim)."""
        job = job_in_first_hour(deployment)
        bronze = {
            "power": deployment["tiers"].scan_ocean("power.bronze"),
        }
        overview, rows_touched = dashboard.manual_lookup(job.job_id, bronze)
        dashboard_rows = (
            overview.power.num_rows + overview.io.num_rows
            + overview.fabric.num_rows
        )
        assert rows_touched > 10 * dashboard_rows
