"""Unit tests for ODAFramework configuration validation."""

import numpy as np
import pytest

from repro.core import ODAFramework
from repro.telemetry import MINI, synthetic_job_mix


@pytest.fixture(scope="module")
def allocation():
    return synthetic_job_mix(MINI, 0.0, 1800.0, np.random.default_rng(29))


class TestRefineStreamConfig:
    def test_unknown_stream_rejected(self, allocation):
        with pytest.raises(ValueError, match="unknown streams"):
            ODAFramework(MINI, allocation, refine_streams=("power", "nope"))

    def test_power_required(self, allocation):
        with pytest.raises(ValueError, match="power"):
            ODAFramework(MINI, allocation, refine_streams=("storage_io",))

    def test_syslog_not_refinable(self, allocation):
        with pytest.raises(ValueError, match="not refinable"):
            ODAFramework(MINI, allocation, refine_streams=("power", "syslog"))

    def test_power_only_configuration(self, allocation):
        framework = ODAFramework(MINI, allocation, refine_streams=("power",))
        framework.run_window(0.0, 60.0)
        assert framework.tiers.query_online("power.silver").num_rows > 0
        # The unrefined stream has no lake table (empty result, no rows).
        assert framework.tiers.query_online("storage_io.silver").num_rows == 0
        assert "storage_io.silver" not in framework.tiers.datasets()

    def test_perf_counters_refinable(self, allocation):
        framework = ODAFramework(
            MINI, allocation, refine_streams=("power", "perf_counters")
        )
        framework.run_window(0.0, 30.0)
        silver = framework.tiers.query_online("perf_counters.silver")
        assert silver.num_rows > 0
        assert "gpu0_occupancy_pct" in silver


class TestStreamRetentionConfig:
    def test_short_retention_trims_broker(self, allocation):
        framework = ODAFramework(
            MINI, allocation, stream_retention_s=30.0,
            refine_streams=("power",),
        )
        framework.run(0.0, 300.0, window_s=60.0)
        # Only the last retention window of records survives.
        retained = sum(
            framework.broker.topic_records(t)
            for t in framework.broker.topics()
        )
        assert retained <= 2 * len(framework.broker.topics())
