"""Unit tests for the multi-machine DataCenter facade."""

import numpy as np
import pytest

from repro.core import DataCenter
from repro.telemetry import COMPASS, MINI, MOUNTAIN, synthetic_job_mix


def small(machine, n=8):
    """A laptop-scale stand-in keeping a machine's per-node character."""
    return machine.scaled(n)


@pytest.fixture(scope="module")
def centre():
    dc = DataCenter()
    for preset, seed in ((small(COMPASS), 0), (small(MOUNTAIN), 1)):
        allocation = synthetic_job_mix(
            preset, 0.0, 1800.0, np.random.default_rng(seed)
        )
        dc.add_machine(preset, allocation, seed=seed)
    dc.run(0.0, 300.0, window_s=150.0)
    return dc


class TestDataCenter:
    def test_machines_listed(self, centre):
        assert centre.machines() == ["compass", "mountain"]

    def test_duplicate_machine_rejected(self, centre):
        allocation = synthetic_job_mix(
            small(COMPASS), 0.0, 600.0, np.random.default_rng(9)
        )
        with pytest.raises(ValueError):
            centre.add_machine(small(COMPASS), allocation)

    def test_unknown_machine(self, centre):
        with pytest.raises(KeyError):
            centre.framework("summit")

    def test_both_machines_ran(self, centre):
        for name in centre.machines():
            assert len(centre.framework(name).windows) == 2

    def test_ingest_volumes_per_machine(self, centre):
        volumes = centre.ingest_volumes()
        assert set(volumes) == {"compass", "mountain"}
        assert volumes["compass"]["power"] > 0

    def test_total_ingest_includes_unmodelled(self, centre):
        base = centre.total_ingest_bytes_per_day(unmodelled_fraction=0.0)
        padded = centre.total_ingest_bytes_per_day(unmodelled_fraction=0.1)
        assert padded == pytest.approx(base * 1.1)
        assert base > 0

    def test_combined_tier_footprint(self, centre):
        combined = centre.tier_footprint()
        per_machine = [
            centre.framework(n).tier_footprint() for n in centre.machines()
        ]
        for tier in combined:
            assert combined[tier] == sum(fp[tier] for fp in per_machine)

    def test_stream_comparison_is_fig4a_column(self, centre):
        power = centre.stream_comparison("power")
        assert set(power) == {"compass", "mountain"}
        # Compass has fewer, hotter channels per node than Mountain's
        # 6-GPU nodes; both must be positive.
        assert all(v > 0 for v in power.values())

    def test_governance_isolated_per_machine(self, centre):
        """Each machine's tiers are independent stores."""
        a = centre.framework("compass").tiers
        b = centre.framework("mountain").tiers
        assert a is not b
        assert a.ocean is not b.ocean
