"""Unit tests for the data dictionary and exploration campaigns (§VI-A)."""

import numpy as np
import pytest

from repro.core import DataDictionary, ExplorationCampaign
from repro.telemetry import MINI, PowerThermalSource, SyslogSource, synthetic_job_mix


@pytest.fixture(scope="module")
def source():
    allocation = synthetic_job_mix(MINI, 0.0, 3600.0, np.random.default_rng(1))
    return PowerThermalSource(MINI, allocation, seed=1, loss_rate=0.02)


class TestDataDictionary:
    def test_register_catalog(self, source):
        dictionary = DataDictionary()
        added = dictionary.register_catalog("power", source.catalog)
        assert added == len(source.catalog)
        assert dictionary.streams() == ["power"]

    def test_register_idempotent(self, source):
        dictionary = DataDictionary()
        dictionary.register_catalog("power", source.catalog)
        assert dictionary.register_catalog("power", source.catalog) == 0

    def test_entry_lookup(self, source):
        dictionary = DataDictionary()
        dictionary.register_catalog("power", source.catalog)
        entry = dictionary.entry("power", "input_power")
        assert entry.spec.unit == "W"
        assert not entry.documented
        with pytest.raises(KeyError):
            dictionary.entry("power", "nope")

    def test_initial_coverage_zero(self, source):
        dictionary = DataDictionary()
        dictionary.register_catalog("power", source.catalog)
        assert dictionary.coverage() == 0.0
        assert len(dictionary.undocumented()) == len(source.catalog)

    def test_empty_dictionary_coverage(self):
        assert DataDictionary().coverage() == 0.0


class TestExplorationCampaign:
    def test_profiling_documents_channels(self, source):
        dictionary = DataDictionary()
        dictionary.register_catalog("power", source.catalog)
        campaign = ExplorationCampaign(dictionary)
        report = campaign.profile(source, 0.0, 300.0)
        assert report.channels_profiled == len(source.catalog)
        assert dictionary.coverage() == 1.0
        assert dictionary.undocumented() == []

    def test_observed_loss_matches_spec(self, source):
        dictionary = DataDictionary()
        dictionary.register_catalog("power", source.catalog)
        report = ExplorationCampaign(dictionary).profile(source, 0.0, 600.0)
        # Generator drops ~2%; the campaign should measure about that.
        assert report.mean_observed_loss == pytest.approx(0.02, abs=0.01)

    def test_healthy_stream_no_anomalies(self, source):
        dictionary = DataDictionary()
        dictionary.register_catalog("power", source.catalog)
        report = ExplorationCampaign(dictionary).profile(source, 0.0, 300.0)
        assert report.anomalies == []
        assert report.worst_rate_discrepancy < 0.10

    def test_lossy_stream_flagged(self):
        allocation = synthetic_job_mix(
            MINI, 0.0, 600.0, np.random.default_rng(2)
        )
        # A stream whose actual loss hugely exceeds its declared spec:
        # build with high loss, then lie in the catalog via a fresh
        # source whose spec says lossless.
        lossy = PowerThermalSource(MINI, allocation, seed=2, loss_rate=0.4)
        declared = PowerThermalSource(MINI, allocation, seed=2, loss_rate=0.0)
        dictionary = DataDictionary()
        dictionary.register_catalog("power", declared.catalog)

        class LyingSource:
            name = "power"
            catalog = declared.catalog
            emit = lossy.emit

        report = ExplorationCampaign(dictionary).profile(
            LyingSource(), 0.0, 300.0
        )
        assert len(report.anomalies) > 0
        assert "loss" in report.anomalies[0] or "Hz" in report.anomalies[0]

    def test_invalid_window(self, source):
        dictionary = DataDictionary()
        dictionary.register_catalog("power", source.catalog)
        with pytest.raises(ValueError):
            ExplorationCampaign(dictionary).profile(source, 10.0, 10.0)

    def test_event_stream_rejected(self):
        dictionary = DataDictionary()
        syslog = SyslogSource(MINI, seed=0)
        dictionary.register_catalog("syslog", syslog.catalog)
        with pytest.raises(TypeError):
            ExplorationCampaign(dictionary).profile(syslog, 0.0, 60.0)

    def test_empty_window_report(self, source):
        dictionary = DataDictionary()
        dictionary.register_catalog("power", source.catalog)
        report = ExplorationCampaign(dictionary).profile(source, 0.0, 0.5)
        assert report.channels_profiled in (0, len(source.catalog))
