"""The fast data plane must be indistinguishable from the serial baseline.

Every configuration of :class:`DataPlaneOptions` — batched emission,
zero-copy polling, threaded refineries, every fast-path memo — must
produce the same window summaries and the same bytes in every storage
tier as the pre-optimization serial path.
"""

import numpy as np
import pytest

from repro.core import DataPlaneOptions, ODAFramework
from repro.faults.injector import FaultInjector, FaultyObjectStore
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.obs import TRACER
from repro.perf import baseline_mode, reset_fast_path_caches
from repro.telemetry import MINI, synthetic_job_mix

N_WINDOWS = 4
WINDOW_S = 30.0


def run_windows(options, baseline=False):
    rng = np.random.default_rng(11)
    allocation = synthetic_job_mix(MINI, 0.0, N_WINDOWS * WINDOW_S, rng)
    fw = ODAFramework(MINI, allocation, seed=3, options=options)
    reset_fast_path_caches()
    try:
        if baseline:
            with baseline_mode():
                summaries = [
                    fw.run_window(w * WINDOW_S, (w + 1) * WINDOW_S)
                    for w in range(N_WINDOWS)
                ]
        else:
            summaries = [
                fw.run_window(w * WINDOW_S, (w + 1) * WINDOW_S)
                for w in range(N_WINDOWS)
            ]
        return fw, summaries
    finally:
        fw.close()


def run_span(options, baseline=False, fault_plan=None):
    """Drive the same four windows through ``ODAFramework.run`` (the
    entry point that owns the pipelined schedule), optionally with a
    fault injector wrapped around the OCEAN store."""
    rng = np.random.default_rng(11)
    allocation = synthetic_job_mix(MINI, 0.0, N_WINDOWS * WINDOW_S, rng)
    fw = ODAFramework(MINI, allocation, seed=3, options=options)
    if fault_plan is not None:
        fw.tiers.ocean = FaultyObjectStore(
            fw.tiers.ocean, FaultInjector(fault_plan)
        )
    reset_fast_path_caches()
    try:
        if baseline:
            with baseline_mode():
                summaries = fw.run(0.0, N_WINDOWS * WINDOW_S, WINDOW_S)
        else:
            summaries = fw.run(0.0, N_WINDOWS * WINDOW_S, WINDOW_S)
        return fw, summaries
    finally:
        fw.close()


@pytest.fixture(scope="module")
def baseline_run():
    return run_windows(DataPlaneOptions.serial_baseline(), baseline=True)


def assert_tables_equal(a, b):
    assert a.column_names == b.column_names
    assert a.num_rows == b.num_rows
    for name in a.column_names:
        ca, cb = a[name], b[name]
        assert ca.dtype == cb.dtype
        if ca.dtype == object:
            assert list(ca) == list(cb)
        else:
            assert ca.tobytes() == cb.tobytes()  # byte-identical, not just ==


def assert_equivalent(fast_fw, fast_summaries, baseline_run):
    base_fw, base_summaries = baseline_run
    assert fast_summaries == base_summaries
    assert fast_fw.tiers.footprint() == base_fw.tiers.footprint()
    for name in base_fw.tiers.datasets():
        assert_tables_equal(
            base_fw.tiers.scan_ocean(name), fast_fw.tiers.scan_ocean(name)
        )
        try:
            bt = base_fw.tiers.query_online(name)
        except KeyError:
            continue  # not a LAKE-resident class; OCEAN compared above
        assert_tables_equal(bt, fast_fw.tiers.query_online(name))


def test_default_options_match_serial_baseline(baseline_run):
    fw, summaries = run_windows(DataPlaneOptions())
    assert_equivalent(fw, summaries, baseline_run)


def test_threaded_executor_matches_serial_baseline(baseline_run):
    fw, summaries = run_windows(
        DataPlaneOptions(executor="threads", max_workers=4)
    )
    assert_equivalent(fw, summaries, baseline_run)


def test_threaded_run_is_deterministic():
    fw1, s1 = run_windows(DataPlaneOptions(executor="threads"))
    fw2, s2 = run_windows(DataPlaneOptions(executor="threads"))
    assert s1 == s2
    assert fw1.tiers.footprint() == fw2.tiers.footprint()


def test_batched_only_matches(baseline_run):
    fw, summaries = run_windows(
        DataPlaneOptions(batched=True, executor="serial")
    )
    assert_equivalent(fw, summaries, baseline_run)


def test_pipelined_run_matches_serial_baseline(baseline_run):
    fw, summaries = run_span(DataPlaneOptions(pipeline="on"))
    assert_equivalent(fw, summaries, baseline_run)


def test_pipeline_off_run_matches_serial_baseline(baseline_run):
    fw, summaries = run_span(DataPlaneOptions(pipeline="off"))
    assert_equivalent(fw, summaries, baseline_run)


def test_pipelined_threads_matches_serial_baseline(baseline_run):
    fw, summaries = run_span(
        DataPlaneOptions(pipeline="on", executor="threads", max_workers=4)
    )
    assert_equivalent(fw, summaries, baseline_run)


def test_pipelined_under_baseline_mode_matches(baseline_run):
    """Pipelining composes with the reference data plane: baseline_mode
    plus overlapped windows still reproduces the serial bytes."""
    fw, summaries = run_span(
        DataPlaneOptions(
            batched=False,
            executor="serial",
            reference_emit=True,
            pipeline="on",
        ),
        baseline=True,
    )
    assert_equivalent(fw, summaries, baseline_run)


def test_pipelined_trace_is_span_identical():
    """The pipelined schedule must emit the same spans with the same
    deterministic ids and parents as the serial one, no matter which
    thread executes a deferred ingest."""

    def spans_for(pipeline):
        TRACER.reset()
        run_span(DataPlaneOptions(pipeline=pipeline))
        return {
            (s.trace_id, s.span_id, s.parent_id, s.name)
            for s in TRACER.finished()
        }

    serial, overlapped = spans_for("off"), spans_for("on")
    assert serial == overlapped
    assert any(name.startswith("tier.ingest:") for *_, name in serial)


def test_pipelined_chaos_equivalence(baseline_run):
    """Transient OCEAN faults under the pipelined schedule are absorbed
    by the retry envelope and leave every byte identical to a fault-free
    serial run (the PR-3 chaos harness contract)."""
    plan = FaultPlan(
        [
            FaultSpec(FaultyObjectStore.SITE_PUT, FaultKind.TIER_ERROR, 2),
            FaultSpec(FaultyObjectStore.SITE_PUT, FaultKind.TIER_ERROR, 7),
            FaultSpec(FaultyObjectStore.SITE_PUT, FaultKind.TIER_ERROR, 11),
        ]
    )
    fw, summaries = run_span(
        DataPlaneOptions(pipeline="on"), fault_plan=plan
    )
    assert fw.tiers.ocean.injector.injected  # the faults actually fired
    assert_equivalent(fw, summaries, baseline_run)


def test_option_validation():
    with pytest.raises(ValueError):
        DataPlaneOptions(executor="processes")
    with pytest.raises(ValueError):
        DataPlaneOptions(max_workers=0)
    with pytest.raises(ValueError):
        DataPlaneOptions(pipeline="eager")
    assert DataPlaneOptions(executor="auto").resolve_executor() in (
        "serial",
        "threads",
    )
    assert DataPlaneOptions(executor="serial").resolve_executor() == "serial"
    assert DataPlaneOptions(executor="threads").resolve_executor() == "threads"
    assert DataPlaneOptions(pipeline="auto").resolve_pipeline() in (
        "off",
        "on",
    )
    assert DataPlaneOptions(pipeline="off").resolve_pipeline() == "off"
    assert DataPlaneOptions.serial_baseline().resolve_pipeline() == "off"


def test_framework_context_manager_closes_pool():
    rng = np.random.default_rng(0)
    allocation = synthetic_job_mix(MINI, 0.0, 60.0, rng)
    with ODAFramework(
        MINI,
        allocation,
        seed=1,
        options=DataPlaneOptions(executor="threads"),
    ) as fw:
        fw.run_window(0.0, 30.0)
        assert fw._executor is not None
    assert fw._executor is None
    # The framework stays usable after close: the pool is lazily rebuilt.
    fw.run_window(30.0, 60.0)
    fw.close()
