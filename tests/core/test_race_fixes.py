"""Regression tests for the concurrency bugs the interprocedural RACE
pass surfaced (PR-7): stale-restore fast-path toggles, the unlocked
RNG-stream cache, the unlocked tier registry, and the zombie emit
thread left behind by a failing pipelined run."""

from __future__ import annotations

import importlib
import threading

import numpy as np
import pytest

from repro.core import DataPlaneOptions, ODAFramework
from repro.storage.tiers import DataClass, TieredStore
from repro.telemetry import MINI, synthetic_job_mix
from repro.util.rng import RngStreams

#: (module, context manager, flag, value while active, value when idle)
#: — every fast-path toggle baseline_mode() composes.
TOGGLES = [
    ("repro.pipeline.factorize", "cache_disabled", "_cache_enabled", False, True),
    ("repro.pipeline.factorize", "factorize_reference_mode", "_reference_mode", True, False),
    ("repro.columnar.encodings", "encoding_memo_disabled", "_memo_enabled", False, True),
    ("repro.columnar.encodings", "encoding_reference_mode", "_reference_mode", True, False),
    ("repro.columnar.compression", "compress_memo_disabled", "_memo_enabled", False, True),
    ("repro.columnar.file_format", "chunk_memo_disabled", "_chunk_memo_enabled", False, True),
    ("repro.telemetry.jobs", "utilization_memo_disabled", "_util_memo_enabled", False, True),
    ("repro.query.executor", "scan_reference_mode", "_scan_reference", True, False),
    ("repro.query.cache", "row_group_cache_disabled", "_cache_enabled", False, True),
]


@pytest.mark.parametrize(
    "module,cm_name,flag,active,idle",
    TOGGLES,
    ids=[f"{m.rsplit('.', 1)[-1]}.{c}" for m, c, *_ in TOGGLES],
)
def test_overlapping_toggles_restore_only_at_last_exit(
    module, cm_name, flag, active, idle
):
    # The old save/restore pattern (`prev = flag; ...; flag = prev`)
    # breaks on non-nested lifetimes: the first toggle to exit restores
    # the pre-entry value while the second is still open.  The depth
    # counter must keep the flag active until the *last* exit,
    # regardless of exit order.
    mod = importlib.import_module(module)
    cm = getattr(mod, cm_name)
    assert getattr(mod, flag) == idle
    first, second = cm(), cm()
    first.__enter__()
    second.__enter__()
    assert getattr(mod, flag) == active
    first.__exit__(None, None, None)  # non-LIFO: first in, first out
    assert getattr(mod, flag) == active, "stale restore: toggle reverted early"
    second.__exit__(None, None, None)
    assert getattr(mod, flag) == idle


def test_baseline_mode_still_composes_all_toggles():
    from repro.perf.baseline import baseline_mode

    with baseline_mode():
        for module, _, flag, active, _ in TOGGLES:
            assert getattr(importlib.import_module(module), flag) == active
    for module, _, flag, _, idle in TOGGLES:
        assert getattr(importlib.import_module(module), flag) == idle


class TestRngStreamsLocking:
    def test_concurrent_get_returns_one_generator(self):
        streams = RngStreams(seed=7)
        gate = threading.Barrier(8)
        got: list = []

        def grab():
            gate.wait()
            got.append(streams.get("shared.stream"))

        threads = [
            threading.Thread(target=grab, name=f"rng-{i}") for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(got) == 8
        assert all(g is got[0] for g in got)

    def test_determinism_unchanged(self):
        a = RngStreams(seed=7).get("power.node-0").random()
        b = RngStreams(seed=7).get("power.node-0").random()
        assert a == b


class TestTieredStoreRegistry:
    def test_concurrent_register_and_lookup(self):
        store = TieredStore()
        names = [f"dataset-{i:02d}" for i in range(32)]
        gate = threading.Barrier(4)
        errors: list = []

        def register(chunk):
            gate.wait()
            for name in chunk:
                try:
                    store.register(name, DataClass.SILVER)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

        def read():
            gate.wait()
            for _ in range(64):
                store.datasets()

        threads = [
            threading.Thread(target=register, args=(names[:16],), name="reg-a"),
            threading.Thread(target=register, args=(names[16:],), name="reg-b"),
            threading.Thread(target=read, name="read-a"),
            threading.Thread(target=read, name="read-b"),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert set(store.datasets()) == set(names)

    def test_duplicate_registration_still_rejected(self):
        store = TieredStore()
        store.register("d", DataClass.GOLD)
        with pytest.raises(ValueError):
            store.register("d", DataClass.GOLD)


class TestPipelinedEmitShutdown:
    def test_failed_window_does_not_leave_emit_thread_running(self):
        # A window failure used to shut the emit pool down with
        # wait=False, returning control while the prefetch emit for the
        # *next* window was still mutating fleet state on its thread.
        allocation = synthetic_job_mix(
            MINI, 0.0, 3600.0, np.random.default_rng(11)
        )
        fw = ODAFramework(
            MINI,
            allocation,
            seed=0,
            options=DataPlaneOptions(pipeline="on"),
        )
        original = fw.run_window
        calls = {"n": 0}

        def failing_run_window(a, b):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("boom")
            return original(a, b)

        fw.run_window = failing_run_window
        try:
            with pytest.raises(RuntimeError, match="boom"):
                fw.run(0.0, 240.0, window_s=60.0)
            emitters = [
                t
                for t in threading.enumerate()
                if t.name.startswith("oda-emit") and t.is_alive()
            ]
            assert emitters == [], "zombie emit thread survived the failure"
        finally:
            fw.run_window = original
            fw.close()
