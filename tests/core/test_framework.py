"""Integration tests for the ODAFramework facade (end-to-end ingest)."""

import numpy as np
import pytest

from repro.core import ODAFramework
from repro.telemetry import MINI, synthetic_job_mix


@pytest.fixture(scope="module")
def framework():
    allocation = synthetic_job_mix(MINI, 0.0, 3600.0, np.random.default_rng(11))
    fw = ODAFramework(MINI, allocation, seed=0)
    fw.run(0.0, 300.0, window_s=60.0)
    return fw


class TestEndToEnd:
    def test_windows_processed(self, framework):
        assert len(framework.windows) == 5

    def test_refinement_funnel(self, framework):
        for w in framework.windows:
            assert w.bronze_rows > w.silver_rows > 0
            assert w.reduction > 3

    def test_all_topics_fed(self, framework):
        for topic in ("power", "perf_counters", "syslog", "storage_io",
                      "interconnect", "facility"):
            assert framework.broker.topic_records(topic) > 0

    def test_tier_placement(self, framework):
        fp = framework.tier_footprint()
        assert fp["lake"] > 0      # silver + gold online
        assert fp["ocean"] > 0     # everything on disk
        assert fp["stream"] > 0    # in-flight records retained

    def test_silver_queryable_online(self, framework):
        out = framework.tiers.query_online("power.silver", 0.0, 120.0)
        assert out.num_rows > 0
        assert "input_power" in out

    def test_gold_profiles_have_jobs(self, framework):
        out = framework.tiers.query_online("power.gold_profiles")
        assert out.num_rows > 0
        assert (out["job_id"] >= 0).all()

    def test_ingest_volumes_positive(self, framework):
        volumes = framework.ingest_volumes()
        assert volumes["power"] > volumes["facility"]

    def test_medallion_stats_accumulated(self, framework):
        funnel = framework.medallion.funnel()
        assert funnel[0].invocations == 5

    def test_invalid_window(self, framework):
        with pytest.raises(ValueError):
            framework.run(0.0, 10.0, window_s=0.0)

    def test_syslog_fans_out_to_log_index(self, framework):
        assert len(framework.logs) > 0
        hits = framework.logs.search("kernel", limit=5)
        assert all("kernel" in d.message.lower() for d in hits)

    def test_syslog_fans_out_to_copacetic(self, framework):
        assert framework.copacetic.events_processed == len(framework.logs)

    def test_multiple_silver_tables_online(self, framework):
        for table in ("power.silver", "storage_io.silver",
                      "interconnect.silver", "facility.silver"):
            assert framework.tiers.query_online(table).num_rows > 0

    def test_facility_silver_wide_format(self, framework):
        out = framework.tiers.query_online("facility.silver")
        assert "supply_temp_c" in out
        assert "return_temp_c" in out
        assert (out["return_temp_c"] >= out["supply_temp_c"] - 1.0).all()

    def test_cooling_plant_view(self, framework):
        from repro.apps import LiveVisualAnalytics

        lva = LiveVisualAnalytics(
            framework.tiers, framework.fleet.power.catalog,
            framework.allocation,
        )
        view = lva.cooling_plant_view(0.0, 300.0)
        assert view.num_rows > 0
        assert "pump_power_w" in view
        assert (np.diff(view["timestamp"]) >= 0).all()

    def test_no_reprocessing_across_windows(self, framework):
        """Each power record is refined exactly once (consumer-group
        offsets advance)."""
        total_bronze = sum(w.bronze_rows for w in framework.windows)
        assert total_bronze == framework.medallion.stats["bronze"].rows_out
