"""Unit tests for the Slate-style multi-tenant platform (§V-C)."""

import pytest

from repro.core import ResourceQuota, SlatePlatform, Workload, WorkloadKind


def quota(cpu=8.0, mem=32.0, disk=100.0):
    return ResourceQuota(cpu, mem, disk)


def workload(name, project="prj-a", cpu=2.0, mem=8.0, disk=10.0,
             kind=WorkloadKind.DATABASE):
    return Workload(name, project, kind, ResourceQuota(cpu, mem, disk))


@pytest.fixture
def platform():
    p = SlatePlatform(capacity=ResourceQuota(32.0, 128.0, 1000.0))
    p.grant_quota("prj-a", quota())
    p.grant_quota("prj-b", quota(cpu=16.0))
    return p


class TestResourceQuota:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceQuota(-1.0, 0.0, 0.0)

    def test_fits(self):
        assert quota().fits(ResourceQuota(8.0, 32.0, 100.0))
        assert not quota().fits(ResourceQuota(8.1, 1.0, 1.0))

    def test_arithmetic(self):
        total = quota() + quota()
        assert total.cpu_cores == 16.0
        diff = total - quota()
        assert diff.memory_gb == 32.0


class TestTenancy:
    def test_duplicate_quota_rejected(self, platform):
        with pytest.raises(ValueError):
            platform.grant_quota("prj-a", quota())

    def test_projects_listed(self, platform):
        assert platform.projects() == ["prj-a", "prj-b"]

    def test_deploy_without_quota_rejected(self, platform):
        with pytest.raises(KeyError):
            platform.deploy(workload("w", project="ghost"))


class TestPlacement:
    def test_deploy_within_quota(self, platform):
        platform.deploy(workload("db-1"))
        assert platform.project_usage("prj-a").cpu_cores == 2.0

    def test_quota_enforced(self, platform):
        platform.deploy(workload("big", cpu=8.0))
        with pytest.raises(ValueError, match="quota"):
            platform.deploy(workload("more", cpu=0.5))

    def test_capacity_enforced(self):
        p = SlatePlatform(capacity=ResourceQuota(4.0, 16.0, 50.0))
        p.grant_quota("a", quota(cpu=4.0))
        p.grant_quota("b", quota(cpu=4.0))  # oversubscribed on purpose
        p.deploy(workload("w1", project="a", cpu=3.0))
        with pytest.raises(ValueError, match="capacity"):
            p.deploy(workload("w2", project="b", cpu=2.0))

    def test_duplicate_name_rejected(self, platform):
        platform.deploy(workload("db-1"))
        with pytest.raises(ValueError):
            platform.deploy(workload("db-1"))

    def test_stop_releases_resources(self, platform):
        platform.deploy(workload("db-1", cpu=6.0))
        platform.stop("db-1")
        platform.deploy(workload("db-2", cpu=6.0))  # fits again
        assert platform.project_usage("prj-a").cpu_cores == 6.0

    def test_stop_unknown(self, platform):
        with pytest.raises(KeyError):
            platform.stop("ghost")

    def test_remove(self, platform):
        platform.deploy(workload("db-1"))
        platform.remove("db-1")
        assert platform.workloads() == []
        with pytest.raises(KeyError):
            platform.remove("db-1")

    def test_workloads_filter_by_project(self, platform):
        platform.deploy(workload("a1", project="prj-a"))
        platform.deploy(workload("b1", project="prj-b"))
        assert [w.name for w in platform.workloads("prj-b")] == ["b1"]


class TestReporting:
    def test_utilization_fractions(self, platform):
        platform.deploy(workload("db-1", cpu=8.0, mem=32.0, disk=100.0))
        util = platform.utilization()
        assert util["cpu"] == pytest.approx(8.0 / 32.0)
        assert util["memory"] == pytest.approx(32.0 / 128.0)

    def test_oversubscription_ratio(self, platform):
        # 8 + 16 granted cores over 32 physical.
        assert platform.oversubscription() == pytest.approx(24.0 / 32.0)

    def test_multiplexing_enables_high_utilization(self):
        """The §V-C lesson: project allocations + shared capacity let
        many projects run where dedicated hardware would idle."""
        p = SlatePlatform(capacity=ResourceQuota(16.0, 64.0, 500.0))
        for i in range(8):
            p.grant_quota(f"p{i}", quota(cpu=4.0, mem=16.0, disk=50.0))
        assert p.oversubscription() == 2.0  # 2x oversubscribed
        # Half the projects are active at once: fits physically.
        for i in range(4):
            p.deploy(workload(f"w{i}", project=f"p{i}", cpu=4.0, mem=16.0))
        assert p.utilization()["cpu"] == 1.0
