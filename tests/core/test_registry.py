"""Unit tests for Table I areas and the Fig. 3 readiness matrix."""

import pytest

from repro.core import (
    DataSourceKind,
    DataSourceRegistry,
    FIG3_MATRIX,
    MaturityLevel,
    UsageArea,
    paper_registry,
)
from repro.core.registry import SOURCE_OWNERS, TABLE1_AREAS


class TestTable1:
    def test_eleven_usage_areas(self):
        assert len(TABLE1_AREAS) == 11

    def test_groups_match_paper(self):
        groups = {g for g, _, _ in TABLE1_AREAS}
        assert groups == {
            "System Management", "Operations", "Administrative",
            "Procurement", "R&D / Cross Cutting",
        }

    def test_every_area_described(self):
        for _, area, desc in TABLE1_AREAS:
            assert area and len(desc) > 10


class TestPaperRegistry:
    def test_every_fig3_cell_present(self):
        reg = paper_registry()
        for (source, area), (m, c) in FIG3_MATRIX.items():
            assert reg.level(source, area, "mountain") == MaturityLevel(m)
            assert reg.level(source, area, "compass") == MaturityLevel(c)

    def test_blank_cells_are_none(self):
        reg = paper_registry()
        assert reg.level(
            DataSourceKind.PERF_COUNTERS, UsageArea.CYBER_SEC, "compass"
        ) is None

    def test_resource_manager_is_highest_maturity_row(self):
        """The paper's L5-everywhere stream: everything joins against it."""
        reg = paper_registry()
        levels = [
            int(reg.level(DataSourceKind.RESOURCE_MANAGER, a, "mountain"))
            for a in UsageArea
            if reg.level(DataSourceKind.RESOURCE_MANAGER, a, "mountain")
            is not None
        ]
        assert min(levels) == 5

    def test_every_source_owned_by_exactly_one_area(self):
        for source in DataSourceKind:
            assert source in SOURCE_OWNERS

    def test_coverage_gap_exists(self):
        """Fig. 3's point: many use cases, most below sustained readiness."""
        reg = paper_registry()
        for system in ("mountain", "compass"):
            coverage = reg.coverage(system, MaturityLevel.L3)
            assert 0.1 < coverage < 0.9

    def test_compass_less_mature_than_mountain(self):
        """The newer system had less time to mature its streams."""
        reg = paper_registry()
        assert reg.coverage("compass") <= reg.coverage("mountain")

    def test_cross_team_cells_dominate(self):
        """Most consumption is by teams that do not own the source —
        the producer/consumer matrix complexity of §V."""
        reg = paper_registry()
        used = len(reg.used_cells("compass"))
        cross = reg.cross_team_cells("compass")
        assert cross > used / 2

    def test_readiness_gaps_listed(self):
        reg = paper_registry()
        gaps = reg.readiness_gaps("compass")
        assert all(level < MaturityLevel.L3 for _, _, level in gaps)
        assert len(gaps) > 5

    def test_consumer_counts(self):
        reg = paper_registry()
        assert reg.consumer_count(DataSourceKind.POWER_TEMP, "compass") == 6

    def test_render_contains_all_sources(self):
        text = paper_registry().render()
        for source in DataSourceKind:
            assert source.value in text


class TestRegistryMutation:
    def test_set_level_unknown_system(self):
        reg = DataSourceRegistry(systems=["x"])
        with pytest.raises(ValueError):
            reg.set_level(
                DataSourceKind.CRM, UsageArea.APPS, "y", MaturityLevel.L1
            )

    def test_set_and_get(self):
        reg = DataSourceRegistry(systems=["x"])
        reg.set_level(DataSourceKind.CRM, UsageArea.APPS, "x", 4)
        assert reg.level(DataSourceKind.CRM, UsageArea.APPS, "x") == MaturityLevel.L4
