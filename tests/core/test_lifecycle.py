"""Unit tests for control loops and the life-cycle stage model."""

import pytest

from repro.core import DEFAULT_CONTROL_LOOPS, ControlLoop, DataLifecycle
from repro.core.lifecycle import LifecycleStage


class TestControlLoop:
    def test_default_loops_span_timescales(self):
        scales = [loop.timescale_s for loop in DEFAULT_CONTROL_LOOPS]
        assert scales == sorted(scales)
        assert scales[0] <= 600.0  # minutes
        assert scales[-1] >= 30 * 86_400.0  # months to a year

    def test_latency_budget_fraction(self):
        loop = ControlLoop("x", "d", 1000.0, "")
        assert loop.max_pipeline_latency_s(0.1) == 100.0
        with pytest.raises(ValueError):
            loop.max_pipeline_latency_s(0.0)

    def test_invalid_timescale(self):
        with pytest.raises(ValueError):
            ControlLoop("x", "d", 0.0, "")


class TestDataLifecycle:
    def test_discovery_is_the_bottleneck(self):
        """§VI lessons: 'The primary bottleneck ... lies within the
        initial stage of large-scale stream exploration.'"""
        assert DataLifecycle().bottleneck() is LifecycleStage.DISCOVERY

    def test_framework_accelerates_every_stage(self):
        base = DataLifecycle()
        fast = base.with_framework()
        for stage in LifecycleStage:
            assert fast.stage_latency_s[stage] < base.stage_latency_s[stage]

    def test_framework_multiplies_iteration_rate(self):
        base = DataLifecycle()
        fast = base.with_framework()
        assert (
            fast.iteration_rate_per_year() > 2 * base.iteration_rate_per_year()
        )

    def test_end_to_end_sums_stages(self):
        lc = DataLifecycle()
        assert lc.end_to_end_s == sum(lc.stage_latency_s.values())

    def test_serviceable_loops_exclude_fastest_only_if_budget_tight(self):
        lc = DataLifecycle()
        serviceable = lc.serviceable_loops()
        names = {loop.name for loop in serviceable}
        # A 15 s micro-batch pipeline serves everything from 5-minute
        # incident response upward.
        assert "incident-response" in names
        assert len(serviceable) == len(DEFAULT_CONTROL_LOOPS)
