"""Unit tests for the L0-L5 maturity ladder."""

import pytest

from repro.core import MaturityLevel, MaturityTracker
from repro.core.maturity import Milestone


class TestMaturityLevel:
    def test_six_levels(self):
        assert [int(l) for l in MaturityLevel] == [0, 1, 2, 3, 4, 5]

    def test_ordering(self):
        assert MaturityLevel.L0 < MaturityLevel.L3 < MaturityLevel.L5

    def test_descriptions_exist(self):
        for level in MaturityLevel:
            assert level.describe()


class TestMaturityTracker:
    def climb(self, tracker, n):
        order = [
            Milestone.PLANNED,
            Milestone.COLLECTION_ENABLED,
            Milestone.DICTIONARY_BUILT,
            Milestone.PIPELINE_DEPLOYED,
            Milestone.APPLICATION_LIVE,
            Milestone.SUSTAINED_USE,
        ]
        for m in order[:n]:
            tracker.advance(m)

    def test_starts_at_l0(self):
        assert MaturityTracker("power").level is MaturityLevel.L0

    def test_full_climb_reaches_l5(self):
        tracker = MaturityTracker("power")
        self.climb(tracker, 6)
        assert tracker.level is MaturityLevel.L5
        assert tracker.milestones_remaining() == []

    def test_skipping_rejected(self):
        tracker = MaturityTracker("power")
        tracker.advance(Milestone.PLANNED)
        with pytest.raises(ValueError, match="cannot be skipped"):
            tracker.advance(Milestone.PIPELINE_DEPLOYED)

    def test_beyond_l5_rejected(self):
        tracker = MaturityTracker("power")
        self.climb(tracker, 6)
        with pytest.raises(ValueError, match="already at L5"):
            tracker.advance(Milestone.SUSTAINED_USE)

    def test_new_generation_with_carryover_keeps_knowledge(self):
        tracker = MaturityTracker("power")
        self.climb(tracker, 6)
        level = tracker.new_generation(knowledge_carryover=True)
        assert level is MaturityLevel.L2  # plan + collection + dictionary

    def test_new_generation_without_carryover_resets(self):
        tracker = MaturityTracker("power")
        self.climb(tracker, 6)
        tracker.new_generation(knowledge_carryover=False)
        assert tracker.level is MaturityLevel.L0
        assert len(tracker.achieved) == 0

    def test_regrowth_after_generation(self):
        """The paper's re-work story: carryover shortens the re-climb."""
        tracker = MaturityTracker("power")
        self.climb(tracker, 6)
        tracker.new_generation(knowledge_carryover=True)
        remaining_with = len(tracker.milestones_remaining())
        tracker2 = MaturityTracker("power2")
        self.climb(tracker2, 6)
        tracker2.new_generation(knowledge_carryover=False)
        remaining_without = len(tracker2.milestones_remaining())
        assert remaining_with < remaining_without
