"""Smoke tests for the packaging surface of the analyzer."""

from __future__ import annotations

import os
import subprocess
import sys
import tomllib

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def test_console_entry_point_imports():
    from repro.analysis.__main__ import main, run

    assert callable(main) and callable(run)


def test_pyproject_declares_repro_lint_script():
    with open(os.path.join(REPO_ROOT, "pyproject.toml"), "rb") as fh:
        pyproject = tomllib.load(fh)
    scripts = pyproject["project"]["scripts"]
    assert scripts["repro-lint"] == "repro.analysis.__main__:main"


def test_module_is_runnable_via_dash_m(tmp_path):
    # `python -m repro.analysis --list-rules` must work from anywhere.
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--list-rules"],
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env=env,
    )
    assert proc.returncode == 0
    assert "DET001" in proc.stdout
