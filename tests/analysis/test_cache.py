"""Incremental lint cache: digest-keyed reuse (zero re-parses on an
unchanged tree), byte-identical JSON across cold/warm runs, precise
invalidation, and the ``--no-cache`` escape hatch."""

from __future__ import annotations

import io
import json
import os

from repro.analysis import Checker, make_rules
from repro.analysis.__main__ import run
from repro.analysis.cache import LintCache

TREE = {
    "repro/pipeline/hot.py": """
        import time

        _cache = {}

        def stamp(key):
            _cache[key] = time.time()
            return _cache[key]
        """,
    "repro/pipeline/racy.py": """
        from concurrent.futures import ThreadPoolExecutor

        _shared = {}

        def worker(n):
            _shared[n] = n

        def run_all():
            with ThreadPoolExecutor(2) as pool:
                for n in range(4):
                    pool.submit(worker, n)
        """,
    "repro/stream/clean.py": """
        import threading

        _lock = threading.Lock()
        _reg = {}

        def put(k, v):
            with _lock:
                _reg[k] = v
        """,
}


def run_cli(*argv):
    out = io.StringIO()
    code = run(list(argv), stdout=out)
    return code, out.getvalue()


def checked(root, cache):
    checker = Checker(make_rules(), cache=cache)
    findings = checker.run([str(root)])
    return checker, findings


class TestIncrementalReuse:
    def test_second_run_parses_nothing(self, make_tree, tmp_path):
        root = make_tree(TREE)
        cache = LintCache(str(tmp_path / "c"))
        first, f1 = checked(root, cache)
        assert first.stats["parsed"] > 0
        assert first.stats["cached"] == 0
        second, f2 = checked(root, LintCache(str(tmp_path / "c")))
        # The acceptance counter: an unchanged tree re-parses zero files.
        assert second.stats["parsed"] == 0
        assert second.stats["cached"] == first.stats["parsed"]

    def test_cold_and_cached_findings_identical(self, make_tree, tmp_path):
        root = make_tree(TREE)
        _, cold = checked(root, LintCache(str(tmp_path / "c")))
        _, warm = checked(root, LintCache(str(tmp_path / "c")))
        assert [f.as_dict() for f in cold] == [f.as_dict() for f in warm]
        # The tree is deliberately dirty: reuse must preserve findings,
        # including the interprocedural RACE001 recomputed from cached
        # summaries.
        assert {f.rule_id for f in cold} >= {"DET001", "CONC001", "RACE001"}

    def test_json_output_byte_identical_across_runs(self, make_tree):
        root = make_tree(TREE)
        _, out1 = run_cli("--format", "json", str(root))
        _, out2 = run_cli("--format", "json", str(root))
        assert out1 == out2

    def test_edit_invalidates_only_that_file(self, make_tree, tmp_path):
        root = make_tree(TREE)
        checked(root, LintCache(str(tmp_path / "c")))
        target = root / "repro" / "stream" / "clean.py"
        target.write_text(
            target.read_text(encoding="utf-8") + "\nX = 1\n", encoding="utf-8"
        )
        again, _ = checked(root, LintCache(str(tmp_path / "c")))
        assert again.stats["parsed"] == 1

    def test_rule_selection_invalidates_cache(self, make_tree, tmp_path):
        # Entries are keyed on the rule set: a --select run must not
        # poison (or be served from) the full-pack cache.
        root = make_tree(TREE)
        cache = LintCache(str(tmp_path / "c"))
        checked(root, cache)
        checker = Checker(
            [r for r in make_rules() if r.id.startswith("DET")],
            cache=LintCache(str(tmp_path / "c")),
        )
        checker.run([str(root)])
        assert checker.stats["parsed"] > 0


class TestNoCacheFlag:
    def test_no_cache_leaves_no_directory(self, make_tree, tmp_path, monkeypatch):
        cache_dir = tmp_path / "never-created"
        monkeypatch.setenv("REPRO_LINT_CACHE", str(cache_dir))
        root = make_tree(TREE)
        code1, out1 = run_cli("--format", "json", "--no-cache", str(root))
        code2, out2 = run_cli("--format", "json", "--no-cache", str(root))
        assert not cache_dir.exists()
        assert out1 == out2

    def test_cached_and_uncached_output_identical(self, make_tree):
        root = make_tree(TREE)
        _, cached = run_cli("--format", "json", str(root))
        _, uncached = run_cli("--format", "json", "--no-cache", str(root))
        assert json.loads(cached) == json.loads(uncached)


class TestCacheEntryHygiene:
    def test_corrupt_entry_falls_back_to_parse(self, make_tree, tmp_path):
        root = make_tree(TREE)
        cache_root = tmp_path / "c"
        checked(root, LintCache(str(cache_root)))
        for entry in os.listdir(cache_root):
            with open(cache_root / entry, "w", encoding="utf-8") as fh:
                fh.write("{not json")
        again, findings = checked(root, LintCache(str(cache_root)))
        assert again.stats["parsed"] > 0
        assert {f.rule_id for f in findings} >= {"DET001", "RACE001"}
