"""ORACLE rules: fast paths keep their reference oracles selectable."""

from repro.analysis import Checker, make_rules

PAIR_WITH_TOGGLE = """
    from contextlib import contextmanager

    _reference_mode = False

    @contextmanager
    def frob_reference_mode():
        global _reference_mode
        prev = _reference_mode
        _reference_mode = True
        try:
            yield
        finally:
            _reference_mode = prev

    def frob(x):
        return frob_reference(x) if _reference_mode else x

    def frob_reference(x):
        return x
    """


class TestPairWithoutToggle:
    def test_pair_without_toggle_flagged(self, rule_ids):
        assert "ORACLE001" in rule_ids(
            """
            def frob(x):
                return x
            def frob_reference(x):
                return x
            """
        )

    def test_pair_with_toggle_passes(self, rule_ids):
        assert "ORACLE001" not in rule_ids(PAIR_WITH_TOGGLE)

    def test_module_without_pairs_ignored(self, rule_ids):
        assert rule_ids(
            """
            def frob(x):
                return x
            """
        ) == []


class TestFastWithoutOracle:
    def test_fast_without_sibling_flagged(self, rule_ids):
        assert "ORACLE002" in rule_ids(
            """
            def quux_fast(x):
                return x
            """
        )

    def test_fast_with_reference_sibling_passes(self, rule_ids):
        assert "ORACLE002" not in rule_ids(
            """
            def quux_fast(x):
                return x
            def quux_reference(x):
                return x
            """
        )


class TestToggleNotInBaseline:
    BASELINE_OK = """
        from contextlib import ExitStack, contextmanager

        @contextmanager
        def baseline_mode():
            from repro.pipeline import fixture
            with ExitStack() as stack:
                stack.enter_context(fixture.frob_reference_mode())
                yield
        """
    BASELINE_EMPTY = """
        from contextlib import contextmanager

        @contextmanager
        def baseline_mode():
            yield
        """

    def _run(self, baseline_source, make_tree):
        import textwrap

        checker = Checker(make_rules())
        checker.check_source(
            textwrap.dedent(PAIR_WITH_TOGGLE),
            "repro/pipeline/fixture.py",
            module="repro.pipeline.fixture",
        )
        checker.check_source(
            textwrap.dedent(baseline_source),
            "repro/perf/baseline.py",
            module="repro.perf.baseline",
        )
        for rule in checker.rules:
            rule.finalize(checker)
        return sorted(f.rule_id for f in checker.findings if not f.suppressed)

    def test_registered_toggle_passes(self, make_tree):
        assert "ORACLE003" not in self._run(self.BASELINE_OK, make_tree)

    def test_unregistered_toggle_flagged(self, make_tree):
        assert "ORACLE003" in self._run(self.BASELINE_EMPTY, make_tree)

    def test_no_baseline_module_skips_check(self, rule_ids):
        # Linting a single module cannot prove registration; the
        # cross-module rule only fires when the baseline is in the run.
        assert "ORACLE003" not in rule_ids(PAIR_WITH_TOGGLE)
