"""EXC rules: no bare excepts, no silent swallows, typed stream errors."""


class TestBareExcept:
    def test_bare_except_flagged(self, rule_ids):
        assert "EXC001" in rule_ids(
            """
            def f():
                try:
                    return 1
                except:
                    return 0
            """
        )

    def test_typed_except_passes(self, rule_ids):
        assert rule_ids(
            """
            def f(d):
                try:
                    return d["k"]
                except KeyError:
                    return None
            """
        ) == []


class TestSwallowedException:
    def test_except_exception_pass_flagged(self, rule_ids):
        assert "EXC002" in rule_ids(
            """
            def f():
                try:
                    work()
                except Exception:
                    pass
            """
        )

    def test_broad_except_that_reraises_passes(self, rule_ids):
        # The checkpoint-store pattern: clean up, then re-raise.
        assert rule_ids(
            """
            def f(tmp):
                try:
                    work()
                except BaseException:
                    cleanup(tmp)
                    raise
            """
        ) == []

    def test_narrow_except_pass_allowed(self, rule_ids):
        # Swallowing a *specific* exception is a legitimate pattern
        # (e.g. FileNotFoundError on a best-effort cleanup).
        assert rule_ids(
            """
            def f(path):
                try:
                    remove(path)
                except FileNotFoundError:
                    pass
            """
        ) == []


class TestStreamUntypedRaise:
    def test_keyerror_in_stream_flagged(self, rule_ids):
        assert "EXC003" in rule_ids(
            """
            def fetch(topics, topic):
                if topic not in topics:
                    raise KeyError(topic)
            """,
            module="repro.stream.fixture",
        )

    def test_typed_error_in_stream_passes(self, rule_ids):
        assert rule_ids(
            """
            class UnknownTopicError(KeyError):
                pass

            def fetch(topics, topic):
                if topic not in topics:
                    raise UnknownTopicError(topic)
            """,
            module="repro.stream.fixture",
        ) == []

    def test_valueerror_validation_in_stream_passes(self, rule_ids):
        assert rule_ids(
            """
            def configure(n):
                if n <= 0:
                    raise ValueError("n must be positive")
            """,
            module="repro.stream.fixture",
        ) == []

    def test_keyerror_outside_stream_ignored(self, rule_ids):
        assert "EXC003" not in rule_ids(
            """
            def get(d, k):
                if k not in d:
                    raise KeyError(k)
            """,
            module="repro.storage.fixture",
        )
