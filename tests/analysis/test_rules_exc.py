"""EXC rules: no bare excepts, no silent swallows, typed stream errors."""


class TestBareExcept:
    def test_bare_except_flagged(self, rule_ids):
        assert "EXC001" in rule_ids(
            """
            def f():
                try:
                    return 1
                except:
                    return 0
            """
        )

    def test_typed_except_passes(self, rule_ids):
        assert rule_ids(
            """
            def f(d):
                try:
                    return d["k"]
                except KeyError:
                    return None
            """
        ) == []


class TestSwallowedException:
    def test_except_exception_pass_flagged(self, rule_ids):
        assert "EXC002" in rule_ids(
            """
            def f():
                try:
                    work()
                except Exception:
                    pass
            """
        )

    def test_broad_except_that_reraises_passes(self, rule_ids):
        # The checkpoint-store pattern: clean up, then re-raise.
        assert rule_ids(
            """
            def f(tmp):
                try:
                    work()
                except BaseException:
                    cleanup(tmp)
                    raise
            """
        ) == []

    def test_narrow_except_pass_allowed(self, rule_ids):
        # Swallowing a *specific* exception is a legitimate pattern
        # (e.g. FileNotFoundError on a best-effort cleanup).
        assert rule_ids(
            """
            def f(path):
                try:
                    remove(path)
                except FileNotFoundError:
                    pass
            """
        ) == []


class TestStreamUntypedRaise:
    def test_keyerror_in_stream_flagged(self, rule_ids):
        assert "EXC003" in rule_ids(
            """
            def fetch(topics, topic):
                if topic not in topics:
                    raise KeyError(topic)
            """,
            module="repro.stream.fixture",
        )

    def test_typed_error_in_stream_passes(self, rule_ids):
        assert rule_ids(
            """
            class UnknownTopicError(KeyError):
                pass

            def fetch(topics, topic):
                if topic not in topics:
                    raise UnknownTopicError(topic)
            """,
            module="repro.stream.fixture",
        ) == []

    def test_valueerror_validation_in_stream_passes(self, rule_ids):
        assert rule_ids(
            """
            def configure(n):
                if n <= 0:
                    raise ValueError("n must be positive")
            """,
            module="repro.stream.fixture",
        ) == []

    def test_keyerror_outside_stream_ignored(self, rule_ids):
        assert "EXC003" not in rule_ids(
            """
            def get(d, k):
                if k not in d:
                    raise KeyError(k)
            """,
            module="repro.storage.fixture",
        )


class TestTransientCatchOutsideRetry:
    SNIPPET = """
        from repro.stream.errors import FetchTimeoutError

        def f(broker):
            try:
                return broker.fetch("t", 0, 0)
            except FetchTimeoutError:
                return []
        """

    def test_transient_catch_flagged_outside_retry(self, rule_ids):
        assert "EXC004" in rule_ids(
            self.SNIPPET, module="repro.pipeline.fixture"
        )

    def test_retry_module_is_sanctioned(self, rule_ids):
        assert "EXC004" not in rule_ids(
            self.SNIPPET, module="repro.faults.retry"
        )

    def test_base_class_catch_flagged(self, rule_ids):
        assert "EXC004" in rule_ids(
            """
            from repro.stream.errors import TransientStreamError

            def f(broker):
                try:
                    return broker.fetch("t", 0, 0)
                except TransientStreamError:
                    return []
            """,
            module="repro.stream.fixture",
        )

    def test_tuple_catch_flagged(self, rule_ids):
        assert "EXC004" in rule_ids(
            """
            from repro.stream.errors import ProduceUnavailableError

            def f(broker, v):
                try:
                    broker.produce("t", v)
                except (ValueError, ProduceUnavailableError):
                    pass
            """,
            module="repro.storage.fixture",
        )

    def test_qualified_catch_flagged(self, rule_ids):
        assert "EXC004" in rule_ids(
            """
            from repro.stream import errors

            def f(broker):
                try:
                    return broker.fetch("t", 0, 0)
                except errors.FetchTimeoutError:
                    return []
            """,
            module="repro.apps.fixture",
        )

    def test_permanent_error_catch_passes(self, rule_ids):
        assert "EXC004" not in rule_ids(
            """
            from repro.stream.broker import UnknownTopicError

            def f(broker):
                try:
                    return broker.fetch("t", 0, 0)
                except UnknownTopicError:
                    return None
            """,
            module="repro.pipeline.fixture",
        )
