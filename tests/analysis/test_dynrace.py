"""Dynamic race validator: Eraser-style lockset monitor, fork/join
happens-before, and the static/dynamic cross-check — including the
contract test that one planted race is caught by BOTH passes."""

from __future__ import annotations

import textwrap
import threading

from repro.analysis import Checker, make_rules
from repro.analysis.dynrace import (
    DynRaceMonitor,
    TrackedLock,
    WatchedDict,
    crosscheck,
    validating,
    watch,
)

#: The planted race: two named threads write one module dict with no
#: lock.  The *same source* is fed to the static checker and executed
#: under the dynamic monitor below.
PLANTED = textwrap.dedent(
    """
    import threading

    _results = {}
    _lock = threading.Lock()

    def worker(n):
        _results[n] = n * n

    def run_all():
        ts = [
            threading.Thread(target=worker, args=(n,), name=f"planted-{n}")
            for n in range(4)
        ]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
    """
)

#: The fix: identical schedule, writes under the module lock.
PLANTED_FIXED = PLANTED.replace(
    "    _results[n] = n * n",
    "    with _lock:\n        _results[n] = n * n",
)


def static_findings(source, module="repro.pipeline.planted"):
    checker = Checker(make_rules())
    checker.check_source(source, "planted.py", module=module)
    for rule in checker.rules:
        rule.finalize(checker)
    return [f for f in checker.findings if not f.suppressed]


def run_planted(source, monitor, locked=False):
    """Execute the planted module with its dict (and lock, if asked)
    replaced by monitored doubles."""
    ns = {}
    exec(compile(source, "planted.py", "exec"), ns)
    ns["_results"] = watch({}, "planted._results", monitor)
    if locked:
        ns["_lock"] = TrackedLock(monitor, "planted._lock")
    ns["run_all"]()
    return ns["_results"]


class TestPlantedRaceBothPasses:
    def test_static_pass_flags_planted_race(self):
        rules = {f.rule_id for f in static_findings(PLANTED)}
        assert "RACE001" in rules

    def test_dynamic_pass_flags_planted_race(self):
        monitor = DynRaceMonitor()
        results = run_planted(PLANTED, monitor)
        assert dict(results) == {n: n * n for n in range(4)}
        races = monitor.races
        assert [r.var for r in races] == ["planted._results"]
        first, second = races[0].first, races[0].second
        assert first.thread != second.thread
        assert first.write and second.write
        assert not (first.locks & second.locks)

    def test_fixed_version_clean_in_both_passes(self):
        assert not any(
            f.rule_id.startswith("RACE") for f in static_findings(PLANTED_FIXED)
        )
        monitor = DynRaceMonitor()
        run_planted(PLANTED_FIXED, monitor, locked=True)
        assert monitor.races == []

    def test_crosscheck_confirms_static_finding(self):
        monitor = DynRaceMonitor()
        run_planted(PLANTED, monitor)
        report = crosscheck(monitor, ["planted._results"])
        assert report.confirmed == ("planted._results",)
        assert not report.ok

    def test_crosscheck_reports_static_miss(self):
        monitor = DynRaceMonitor()
        run_planted(PLANTED, monitor)
        report = crosscheck(monitor, [])
        assert report.missed == ("planted._results",)
        assert not report.ok


class TestLocksetSemantics:
    def test_same_lock_on_both_threads_is_clean(self):
        monitor = DynRaceMonitor()
        lock = TrackedLock(monitor, "L")
        shared = WatchedDict("v", monitor)

        def task(k):
            with lock:
                shared[k] = k

        ts = [
            threading.Thread(target=task, args=(i,), name=f"lk-{i}")
            for i in range(2)
        ]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert monitor.races == []

    def test_different_locks_still_race(self):
        monitor = DynRaceMonitor()
        la = TrackedLock(monitor, "A")
        lb = TrackedLock(monitor, "B")
        shared = WatchedDict("v", monitor)
        done = threading.Barrier(2)

        def task(lock, k):
            done.wait()
            with lock:
                shared[k] = k

        ts = [
            threading.Thread(target=task, args=(lk, i), name=f"dl-{i}")
            for i, lk in enumerate((la, lb))
        ]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert [r.var for r in monitor.races] == ["v"]

    def test_read_read_never_races(self):
        monitor = DynRaceMonitor()
        shared = WatchedDict("v", monitor, {1: 1})

        def task():
            shared.get(1)

        ts = [
            threading.Thread(target=task, name=f"rr-{i}") for i in range(2)
        ]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert monitor.races == []


class TestHappensBefore:
    def test_join_orders_writer_before_reader(self):
        # Phase-barrier shape: a worker writes, the main thread joins
        # it, then reads.  Under plain Eraser this is a false positive;
        # the join edge exonerates it.
        monitor = DynRaceMonitor()
        shared = watch({}, "v", monitor)

        snap = monitor.fork_snapshot()
        cell = {}

        def run():
            monitor.begin_task(snap, fresh=True)
            shared["k"] = 1
            cell["vc"] = monitor.current_vc()

        t = threading.Thread(target=run, name="hb-worker")
        t.start()
        t.join()
        monitor.join_vc(cell["vc"])
        assert shared["k"] == 1  # main-thread read, after the join edge
        assert monitor.races == []

    def test_barrier_separates_phases(self):
        monitor = DynRaceMonitor()
        shared = watch({}, "v", monitor)
        shared["k"] = 0  # main, phase 1

        def phase2():
            shared["k"] = 1

        monitor.barrier("phase-boundary")
        snap = monitor.fork_snapshot()

        def run():
            monitor.begin_task(snap, fresh=True)
            phase2()

        t = threading.Thread(target=run, name="bar-worker")
        t.start()
        t.join()
        assert monitor.races == []

    def test_deterministic_event_log_has_no_wall_clock(self):
        monitor = DynRaceMonitor()
        shared = watch({}, "v", monitor)
        shared["k"] = 1
        _ = shared["k"]
        assert [e["seq"] for e in monitor.events] == [1, 2]
        for event in monitor.events:
            assert set(event) <= {"seq", "op", "thread", "var", "locks", "lock", "label"}


class TestValidatingHook:
    def test_broker_phase_barrier_confirmed_false_positive(self):
        # The static pass flags Broker._partitions / Consumer._positions
        # (suppressed with a phase-barrier invariant).  Drive the real
        # classes through the phased schedule the framework uses —
        # produce on main, fetch on a worker via an executor, drain the
        # future, then seek/commit on main — and the dynamic pass must
        # come back clean: the suppression is a demonstrated FP.
        from concurrent.futures import ThreadPoolExecutor

        from repro.stream.broker import Broker, TopicConfig
        from repro.stream.consumer import Consumer

        with validating() as monitor:
            broker = Broker()
            broker.create_topic(TopicConfig(name="t", n_partitions=2))
            for i in range(8):
                broker.produce("t", key=f"k{i}", value={"i": i})
            consumer = Consumer(broker, "t", group="g")
            with ThreadPoolExecutor(
                1, thread_name_prefix="dynrace-worker"
            ) as pool:
                records = pool.submit(
                    consumer.poll
                ).result()  # <- the join edge the pragmas rely on
            consumer.commit()
            assert len(records) == 8
            report = crosscheck(
                monitor, ["Broker._partitions", "Consumer._positions"]
            )
        assert monitor.races == []
        assert report.confirmed == ()
        assert "Broker._partitions" in (
            report.fp_annotated + report.unexercised
        )

    def test_validating_catches_unbarriered_write(self):
        # Teeth check: without a join edge between a worker write and a
        # main-thread write, the monitor must race — concurrency is
        # decided by the fork/join clocks, not by observed timing.
        with validating() as monitor:
            shared = watch({}, "Broker._partitions", monitor, tag=999)
            t = threading.Thread(
                target=lambda: shared.update({"x": 2}), name="dynrace-rogue"
            )
            t.start()
            shared["y"] = 3  # main thread, concurrent with t
            t.join()
        assert [r.var for r in monitor.races] == ["Broker._partitions"]

    def test_patches_are_restored(self):
        import concurrent.futures as cf

        submit = cf.ThreadPoolExecutor.submit
        result = cf.Future.result
        start = threading.Thread.start
        join = threading.Thread.join
        with validating():
            assert cf.ThreadPoolExecutor.submit is not submit
        assert cf.ThreadPoolExecutor.submit is submit
        assert cf.Future.result is result
        assert threading.Thread.start is start
        assert threading.Thread.join is join
