"""Shared helpers for the analyzer tests: inline-fixture checking and a
builder for on-disk fixture trees (the CLI operates on real paths)."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import Checker, make_rules


@pytest.fixture
def check():
    """Run all rules over an inline snippet under a chosen module name."""

    def _check(source: str, module: str = "repro.pipeline.fixture"):
        checker = Checker(make_rules())
        checker.check_source(textwrap.dedent(source), "fixture.py", module=module)
        for rule in checker.rules:
            rule.finalize(checker)
        return checker.findings

    return _check


@pytest.fixture
def rule_ids(check):
    """Like ``check`` but returns just the unsuppressed rule ids."""

    def _ids(source: str, module: str = "repro.pipeline.fixture"):
        return sorted(
            f.rule_id for f in check(source, module) if not f.suppressed
        )

    return _ids


@pytest.fixture(autouse=True)
def _isolated_lint_cache(tmp_path, monkeypatch):
    """Point the CLI's incremental cache at a per-test directory so
    tests never write ``.repro-lint-cache/`` into the working tree."""
    monkeypatch.setenv("REPRO_LINT_CACHE", str(tmp_path / "lint-cache"))


@pytest.fixture
def make_tree(tmp_path):
    """Write ``{relative_path: source}`` files under a tmp ``repro`` tree
    and return the root directory to point the CLI at."""

    def _make(files: dict[str, str]):
        root = tmp_path / "fixture_src"
        for rel, source in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        # every package dir needs an __init__.py for realism (the
        # checker itself does not require it)
        for sub in root.rglob("*"):
            if sub.is_dir() and not (sub / "__init__.py").exists():
                (sub / "__init__.py").write_text("", encoding="utf-8")
        return root

    return _make
