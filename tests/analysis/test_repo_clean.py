"""Tier-1 self-check: the repo's own source tree has zero unsuppressed
findings.  Any rule regression — or any new code that breaks a
determinism/concurrency/oracle/exception/layering invariant — fails
pytest directly, not just `make lint`."""

from __future__ import annotations

import os

from repro.analysis import Checker, make_rules

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def test_src_tree_is_finding_free():
    checker = Checker(make_rules())
    findings = checker.run([SRC])
    active = [f for f in findings if not f.suppressed]
    assert active == [], "unsuppressed findings:\n" + "\n".join(
        f.render() for f in active
    )


def test_every_rule_family_ran():
    # Guard against the self-check passing because rules were dropped.
    families = {rule.id.rstrip("0123456789") for rule in make_rules()}
    assert {"DET", "CONC", "ORACLE", "EXC", "IMP", "RACE"} <= families


def test_race_rules_registered():
    # The interprocedural pass must stay in the default pack: the
    # self-check above is only meaningful if RACE001-003 and DET010
    # actually ran over the tree.
    ids = {rule.id for rule in make_rules()}
    assert {"RACE001", "RACE002", "RACE003", "DET010"} <= ids


def test_src_suppressions_name_an_invariant():
    # Zero *unexplained* suppressions: every race pragma in the tree
    # must carry a `-- reason` naming the protecting invariant.
    import re

    pat = re.compile(r"#\s*repro:\s*ignore\[(RACE[^\]]*)\](.*)")
    bad = []
    for dirpath, _, names in os.walk(SRC):
        for name in names:
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            with open(path, encoding="utf-8") as fh:
                for lineno, line in enumerate(fh, 1):
                    m = pat.search(line)
                    if m and "--" not in m.group(2):
                        bad.append(f"{path}:{lineno}")
    assert bad == [], f"race suppressions without a stated invariant: {bad}"
