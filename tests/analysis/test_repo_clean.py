"""Tier-1 self-check: the repo's own source tree has zero unsuppressed
findings.  Any rule regression — or any new code that breaks a
determinism/concurrency/oracle/exception/layering invariant — fails
pytest directly, not just `make lint`."""

from __future__ import annotations

import os

from repro.analysis import Checker, make_rules

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def test_src_tree_is_finding_free():
    checker = Checker(make_rules())
    findings = checker.run([SRC])
    active = [f for f in findings if not f.suppressed]
    assert active == [], "unsuppressed findings:\n" + "\n".join(
        f.render() for f in active
    )


def test_every_rule_family_ran():
    # Guard against the self-check passing because rules were dropped.
    families = {rule.id.rstrip("0123456789") for rule in make_rules()}
    assert {"DET", "CONC", "ORACLE", "EXC", "IMP"} <= families
