"""Interprocedural RACE rules and the DET010 seed-taint rule, over
inline fixtures (positive + negative per rule)."""

from __future__ import annotations


class TestRace001UnlockedSharedWrite:
    def test_unlocked_write_from_pool_entry(self, check):
        findings = check(
            """
            from concurrent.futures import ThreadPoolExecutor

            _shared = {}

            def worker(n):
                _shared[n] = n

            def run_all():
                with ThreadPoolExecutor(2) as pool:
                    for n in range(4):
                        pool.submit(worker, n)
            """
        )
        race = [f for f in findings if f.rule_id == "RACE001"]
        assert len(race) == 1
        assert "_shared" in race[0].message
        assert any("worker" in step for step in race[0].call_path)

    def test_thread_target_entry(self, rule_ids):
        ids = rule_ids(
            """
            import threading

            _shared = {}

            def worker():
                _shared["k"] = 1

            def run_all():
                t = threading.Thread(target=worker)
                t.start()
                t.join()
            """
        )
        assert "RACE001" in ids

    def test_consistent_lock_is_clean(self, rule_ids):
        ids = rule_ids(
            """
            import threading
            from concurrent.futures import ThreadPoolExecutor

            _lock = threading.Lock()
            _shared = {}

            def worker(n):
                with _lock:
                    _shared[n] = n

            def run_all():
                with ThreadPoolExecutor(2) as pool:
                    for n in range(4):
                        pool.submit(worker, n)
            """
        )
        assert "RACE001" not in ids

    def test_interprocedural_write_through_callee(self, check):
        # The write happens two calls below the thread entry; only the
        # call graph sees it.
        findings = check(
            """
            from concurrent.futures import ThreadPoolExecutor

            _shared = {}

            def store(n):
                _shared[n] = n

            def worker(n):
                store(n)

            def run_all():
                with ThreadPoolExecutor(2) as pool:
                    pool.submit(worker, 1)
            """
        )
        race = [f for f in findings if f.rule_id == "RACE001"]
        assert len(race) == 1
        assert any("store" in step for step in race[0].call_path)

    def test_lock_held_by_caller_covers_callee(self, rule_ids):
        # The entry takes the lock and calls down; effective locksets
        # must propagate through call edges.
        ids = rule_ids(
            """
            import threading
            from concurrent.futures import ThreadPoolExecutor

            _lock = threading.Lock()
            _shared = {}

            def store(n):
                _shared[n] = n

            def worker(n):
                with _lock:
                    store(n)

            def run_all():
                with ThreadPoolExecutor(2) as pool:
                    pool.submit(worker, 1)
            """
        )
        assert "RACE001" not in ids

    def test_main_only_access_is_clean(self, rule_ids):
        ids = rule_ids(
            """
            _shared = {}

            def store(n):
                _shared[n] = n

            def main():
                store(1)
            """
        )
        assert "RACE001" not in ids

    def test_suppression_at_definition_line(self, check):
        findings = check(
            """
            from concurrent.futures import ThreadPoolExecutor

            _shared = {}  # repro: ignore[RACE001] -- fixture invariant

            def worker(n):
                _shared[n] = n

            def run_all():
                with ThreadPoolExecutor(2) as pool:
                    pool.submit(worker, 1)
            """
        )
        race = [f for f in findings if f.rule_id == "RACE001"]
        assert len(race) == 1 and race[0].suppressed


class TestRace002LockOrderCycle:
    def test_inverted_acquisition_order(self, check):
        findings = check(
            """
            import threading

            _a = threading.Lock()
            _b = threading.Lock()

            def forward():
                with _a:
                    with _b:
                        pass

            def backward():
                with _b:
                    with _a:
                        pass
            """
        )
        cyc = [f for f in findings if f.rule_id == "RACE002"]
        assert len(cyc) == 1
        assert "_a" in cyc[0].message and "_b" in cyc[0].message

    def test_interprocedural_order_edge(self, rule_ids):
        # forward holds _a and calls a helper that takes _b; backward
        # nests them the other way — only visible via the call graph.
        ids = rule_ids(
            """
            import threading

            _a = threading.Lock()
            _b = threading.Lock()

            def helper():
                with _b:
                    pass

            def forward():
                with _a:
                    helper()

            def backward():
                with _b:
                    with _a:
                        pass
            """
        )
        assert "RACE002" in ids

    def test_consistent_order_is_clean(self, rule_ids):
        ids = rule_ids(
            """
            import threading

            _a = threading.Lock()
            _b = threading.Lock()

            def one():
                with _a:
                    with _b:
                        pass

            def two():
                with _a:
                    with _b:
                        pass
            """
        )
        assert "RACE002" not in ids


class TestRace003UnlockedToggle:
    def test_save_restore_toggle_flagged(self, check):
        findings = check(
            """
            from contextlib import contextmanager

            _memo_enabled = True

            @contextmanager
            def memo_disabled():
                global _memo_enabled
                prev = _memo_enabled
                _memo_enabled = False
                try:
                    yield
                finally:
                    _memo_enabled = prev
            """
        )
        toggles = [f for f in findings if f.rule_id == "RACE003"]
        assert toggles
        assert "_memo_enabled" in toggles[0].message

    def test_depth_counter_toggle_is_clean(self, rule_ids):
        ids = rule_ids(
            """
            import threading
            from contextlib import contextmanager

            _lock = threading.Lock()
            _memo_enabled = True
            _disable_depth = 0

            @contextmanager
            def memo_disabled():
                global _disable_depth, _memo_enabled
                with _lock:
                    _disable_depth += 1
                    _memo_enabled = False
                try:
                    yield
                finally:
                    with _lock:
                        _disable_depth -= 1
                        _memo_enabled = _disable_depth == 0
            """
        )
        assert "RACE003" not in ids

    def test_non_toggle_contextmanager_not_flagged(self, rule_ids):
        ids = rule_ids(
            """
            from contextlib import contextmanager

            @contextmanager
            def open_session():
                session = object()
                try:
                    yield session
                finally:
                    del session
            """
        )
        assert "RACE003" not in ids


class TestDet010SeedTaint:
    def test_rng_from_config_count_flagged(self, check):
        findings = check(
            """
            import numpy as np

            def build(config):
                return np.random.default_rng(config.node_count)
            """
        )
        det = [f for f in findings if f.rule_id == "DET010"]
        assert len(det) == 1

    def test_rng_from_seed_param_clean(self, rule_ids):
        ids = rule_ids(
            """
            import numpy as np

            def build(seed):
                return np.random.default_rng(seed)
            """
        )
        assert "DET010" not in ids

    def test_rng_from_derive_seed_clean(self, rule_ids):
        ids = rule_ids(
            """
            import numpy as np

            from repro.util.rng import derive_seed

            def build(root_seed, name):
                return np.random.default_rng(derive_seed(root_seed, name))
            """
        )
        assert "DET010" not in ids

    def test_taint_flows_through_local_helper(self, rule_ids):
        # Transitive: the helper returns a value derived from its
        # seed-ish parameter, so the ctor argument is tainted.
        ids = rule_ids(
            """
            import numpy as np

            def child_seed(seed):
                return seed * 2 + 1

            def build(seed):
                return np.random.default_rng(child_seed(seed))
            """
        )
        assert "DET010" not in ids

    def test_mixing_seed_with_unknown_data_flagged(self, rule_ids):
        # The lattice is conservative: combining a seed with a value of
        # unknown provenance yields unknown, not seed.
        ids = rule_ids(
            """
            import numpy as np

            def build(seed, config):
                return np.random.default_rng(seed + config.node_count)
            """
        )
        assert "DET010" in ids

    def test_untainted_helper_return_flagged(self, rule_ids):
        ids = rule_ids(
            """
            import numpy as np

            def pick():
                return 1234

            def scale(config):
                return config.width * 2

            def build(config):
                return np.random.default_rng(scale(config))
            """
        )
        assert "DET010" in ids

    def test_allowlisted_module_exempt(self, rule_ids):
        ids = rule_ids(
            """
            import numpy as np

            def build(config):
                return np.random.default_rng(config.node_count)
            """,
            module="repro.util.rng",
        )
        assert "DET010" not in ids


class TestRace001ElementAliases:
    """The PR-8 blind spot, closed: ``x = shared[k]`` makes ``x`` an
    element alias, and attribute writes through it are writes to the
    shared container's contents."""

    def test_aliased_attribute_augassign_flagged(self, check):
        # The exact shape of the PR-8 ``meta.next_part`` bug: fetch the
        # per-dataset record out of the shared registry, then mutate a
        # counter on it without the lock.
        findings = check(
            """
            import threading

            _datasets = {}

            def allocate(name):
                meta = _datasets[name]
                meta.next_part += 1
                return meta.next_part

            def run_all():
                t = threading.Thread(target=allocate, args=("d",))
                t.start()
                t.join()
            """
        )
        race = [f for f in findings if f.rule_id == "RACE001"]
        assert len(race) == 1
        assert "_datasets" in race[0].message

    def test_aliased_attribute_write_under_lock_is_clean(self, rule_ids):
        # The post-fix pattern: same alias, mutation inside the lock.
        ids = rule_ids(
            """
            import threading

            _lock = threading.Lock()
            _datasets = {}

            def allocate(name):
                with _lock:
                    meta = _datasets[name]
                    meta.next_part += 1
                    return meta.next_part

            def run_all():
                t = threading.Thread(target=allocate, args=("d",))
                t.start()
                t.join()
            """
        )
        assert "RACE001" not in ids

    def test_mutator_call_through_get_alias_flagged(self, rule_ids):
        ids = rule_ids(
            """
            import threading

            _registry = {}

            def touch(name):
                entry = _registry.get(name)
                entry.append(1)

            def run_all():
                t = threading.Thread(target=touch, args=("d",))
                t.start()
                t.join()
            """
        )
        assert "RACE001" in ids

    def test_rebinding_kills_the_alias(self, rule_ids):
        # Once the name points at a fresh object the container is out
        # of the picture; flagging this would be a false positive.
        ids = rule_ids(
            """
            import threading

            _registry = {}

            def touch(name):
                entry = _registry.get(name)
                entry = object()
                entry.x = 1

            def run_all():
                t = threading.Thread(target=touch, args=("d",))
                t.start()
                t.join()
            """
        )
        assert "RACE001" not in ids

    def test_aliased_read_races_with_writer(self, rule_ids):
        ids = rule_ids(
            """
            import threading

            _datasets = {}

            def peek(name):
                meta = _datasets[name]
                return meta.next_part

            def writer(name):
                _datasets[name] = object()

            def run_all():
                t = threading.Thread(target=writer, args=("d",))
                t.start()
                peek("d")
                t.join()
            """
        )
        assert "RACE001" in ids
