"""CLI behaviour: suppressions, --select/--ignore, JSON schema, exit
codes — including the one-violation-per-family fixture tree."""

from __future__ import annotations

import io
import json

from repro.analysis.__main__ import run

#: One violation per rule family, spread over a realistic mini-tree.
VIOLATION_TREE = {
    "repro/pipeline/hot.py": """
        import time

        _cache = {}

        def stamp_and_remember(key):
            _cache[key] = time.time()      # DET001 + CONC001
            return _cache[key]

        def lookup_fast(key):              # ORACLE002
            return _cache.get(key)
        """,
    "repro/stream/transport.py": """
        def fetch(topics, topic):
            try:
                return topics[topic]
            except Exception:
                pass                       # EXC002
            raise KeyError(topic)          # EXC003
        """,
    "repro/columnar/leaky.py": """
        from repro.stream.broker import Broker   # IMP001
        """,
}

CLEAN_TREE = {
    "repro/pipeline/cold.py": """
        import threading

        _lock = threading.Lock()
        _cache = {}

        def remember(key, value):
            with _lock:
                _cache[key] = value
        """,
}


def run_cli(*argv):
    out = io.StringIO()
    code = run(list(argv), stdout=out)
    return code, out.getvalue()


class TestExitCodes:
    def test_clean_tree_exits_zero(self, make_tree):
        root = make_tree(CLEAN_TREE)
        code, out = run_cli(str(root))
        assert code == 0
        assert "clean" in out

    def test_violation_tree_exits_nonzero_with_all_families(self, make_tree):
        root = make_tree(VIOLATION_TREE)
        code, out = run_cli("--format", "json", str(root))
        assert code == 1
        payload = json.loads(out)
        families = {f["rule"].rstrip("0123456789") for f in payload["findings"]}
        assert {"DET", "CONC", "ORACLE", "EXC", "IMP"} <= families

    def test_empty_rule_selection_is_usage_error(self, make_tree):
        root = make_tree(CLEAN_TREE)
        code, _ = run_cli("--select", "DET", "--ignore", "DET", str(root))
        assert code == 2


class TestSelectIgnore:
    def test_select_family_limits_findings(self, make_tree):
        root = make_tree(VIOLATION_TREE)
        code, out = run_cli("--format", "json", "--select", "DET", str(root))
        assert code == 1
        payload = json.loads(out)
        assert payload["rules"] == ["DET001", "DET002", "DET010"]
        assert {f["rule"] for f in payload["findings"]} == {"DET001"}

    def test_select_single_id(self, make_tree):
        root = make_tree(VIOLATION_TREE)
        _, out = run_cli("--format", "json", "--select", "EXC003", str(root))
        payload = json.loads(out)
        assert payload["rules"] == ["EXC003"]
        assert {f["rule"] for f in payload["findings"]} == {"EXC003"}

    def test_ignore_family_removes_findings(self, make_tree):
        root = make_tree(
            {
                "repro/pipeline/hot.py": """
                import time

                def stamp():
                    return time.time()
                """
            }
        )
        code, out = run_cli("--format", "json", "--ignore", "DET", str(root))
        assert code == 0
        payload = json.loads(out)
        assert payload["findings"] == []
        assert "DET001" not in payload["rules"]


class TestSuppression:
    def test_pragma_suppresses_matching_rule(self, make_tree):
        root = make_tree(
            {
                "repro/pipeline/hot.py": """
                import time

                def stamp():
                    # wall clock is the payload here, not data
                    return time.time()  # repro: ignore[DET001] -- bench label only
                """
            }
        )
        code, out = run_cli("--format", "json", str(root))
        assert code == 0
        payload = json.loads(out)
        assert payload["counts"]["suppressed"] == 1
        assert payload["findings"][0]["suppressed"] is True

    def test_family_pragma_suppresses_all_ids_in_family(self, make_tree):
        root = make_tree(
            {
                "repro/pipeline/hot.py": """
                _cache = {}

                def put(k, v):
                    _cache[k] = v  # repro: ignore[CONC] -- single-threaded fixture
                """
            }
        )
        code, _ = run_cli(str(root))
        assert code == 0

    def test_pragma_for_other_rule_does_not_suppress(self, make_tree):
        root = make_tree(
            {
                "repro/pipeline/hot.py": """
                import time

                def stamp():
                    return time.time()  # repro: ignore[EXC001] -- wrong id
                """
            }
        )
        code, _ = run_cli(str(root))
        assert code == 1

    def test_pragma_inside_string_literal_ignored(self, make_tree):
        root = make_tree(
            {
                "repro/pipeline/hot.py": """
                import time

                def stamp():
                    label = "# repro: ignore[DET001]"
                    return time.time(), label
                """
            }
        )
        code, _ = run_cli(str(root))
        assert code == 1


class TestJsonSchema:
    def test_schema_fields(self, make_tree):
        root = make_tree(VIOLATION_TREE)
        _, out = run_cli("--format", "json", str(root))
        payload = json.loads(out)
        assert payload["version"] == 2
        assert set(payload["counts"]) == {
            "total",
            "suppressed",
            "errors",
            "warnings",
        }
        for finding in payload["findings"]:
            assert set(finding) == {
                "file",
                "line",
                "rule",
                "rule_family",
                "severity",
                "message",
                "suppressed",
                "call_path",
            }
            assert finding["severity"] in ("error", "warning")
            assert isinstance(finding["line"], int) and finding["line"] >= 1
            assert finding["rule"].startswith(finding["rule_family"])
            assert isinstance(finding["call_path"], list)

    def test_counts_are_consistent(self, make_tree):
        root = make_tree(VIOLATION_TREE)
        _, out = run_cli("--format", "json", str(root))
        payload = json.loads(out)
        counts = payload["counts"]
        active = [f for f in payload["findings"] if not f["suppressed"]]
        assert counts["total"] == len(payload["findings"])
        assert counts["suppressed"] == counts["total"] - len(active)
        assert counts["errors"] + counts["warnings"] == len(active)


class TestExplain:
    def test_explain_race_rule(self):
        code, out = run_cli("--explain", "RACE001")
        assert code == 0
        assert "RACE001" in out
        assert "lock" in out.lower()

    def test_explain_det010(self):
        code, out = run_cli("--explain", "DET010")
        assert code == 0
        assert "seed" in out.lower()

    def test_explain_shows_suppression_hint(self):
        _, out = run_cli("--explain", "RACE001")
        assert "repro: ignore[RACE001]" in out

    def test_explain_unknown_rule_is_usage_error(self):
        code, _ = run_cli("--explain", "NOPE999")
        assert code == 2


class TestTextOutput:
    def test_text_lines_have_location_and_rule(self, make_tree):
        root = make_tree(VIOLATION_TREE)
        code, out = run_cli("--select", "EXC", str(root))
        assert code == 1
        line = out.splitlines()[0]
        assert "transport.py" in line and "EXC" in line and "error" in line

    def test_list_rules(self):
        code, out = run_cli("--list-rules")
        assert code == 0
        for rule_id in ("DET001", "CONC001", "ORACLE001", "EXC001", "IMP001"):
            assert rule_id in out
