"""DET rules: wall clock and unseeded RNG are banned in the data plane."""


class TestWallClock:
    def test_time_time_flagged(self, rule_ids):
        assert "DET001" in rule_ids(
            """
            import time
            def stamp():
                return time.time()
            """
        )

    def test_datetime_now_flagged_via_from_import(self, rule_ids):
        assert "DET001" in rule_ids(
            """
            from datetime import datetime
            def stamp():
                return datetime.now()
            """
        )

    def test_perf_counter_allowed(self, rule_ids):
        # Monotonic duration timers feed the perf registry, never data.
        assert rule_ids(
            """
            import time
            def timed():
                t0 = time.perf_counter()
                return time.perf_counter() - t0
            """
        ) == []

    def test_only_data_plane_packages_checked(self, rule_ids):
        source = """
            import time
            def stamp():
                return time.time()
            """
        assert rule_ids(source, module="repro.apps.fixture") == []
        assert "DET001" in rule_ids(source, module="repro.stream.fixture")
        assert "DET001" in rule_ids(source, module="repro.core.fixture")
        # The synthetic ground truth is data plane too (data-plane v2):
        # a wall clock in an emitter breaks split invariance.
        assert "DET001" in rule_ids(source, module="repro.telemetry.fixture")
        assert "DET001" in rule_ids(source, module="repro.util.fixture")


class TestUnseededRandom:
    def test_np_random_legacy_api_flagged(self, rule_ids):
        assert "DET002" in rule_ids(
            """
            import numpy as np
            def draw():
                return np.random.rand(4)
            """
        )

    def test_default_rng_without_seed_flagged(self, rule_ids):
        assert "DET002" in rule_ids(
            """
            import numpy as np
            def draw():
                return np.random.default_rng().random()
            """
        )

    def test_default_rng_with_seed_allowed(self, rule_ids):
        assert rule_ids(
            """
            import numpy as np
            def draw():
                return np.random.default_rng(42).random()
            """
        ) == []

    def test_stdlib_random_flagged(self, rule_ids):
        assert "DET002" in rule_ids(
            """
            import random
            def draw():
                return random.random()
            """
        )

    def test_seeded_random_instance_allowed(self, rule_ids):
        assert rule_ids(
            """
            import random
            def draw():
                return random.Random(7).random()
            """
        ) == []

    def test_rng_allowlist_module_exempt(self, rule_ids):
        # repro.util.rng and repro.perf may touch RNG/clock machinery.
        source = """
            import numpy as np
            def draw():
                return np.random.default_rng()
            """
        assert rule_ids(source, module="repro.perf.fixture") == []
