"""CONC rules: module-level mutable state must be lock-guarded.

The negative cases mirror the PR-1 memo modules (``factorize``,
``encodings``, ``compression``, ``file_format``); the repo-level
guarantee that those real modules stay clean is ``test_repo_clean``.
"""

LOCKED = """
    import threading
    from collections import OrderedDict

    _lock = threading.Lock()
    _cache = OrderedDict()

    def put(key, value):
        with _lock:
            _cache[key] = value
            while len(_cache) > 4:
                _cache.popitem(last=False)

    def stats():
        with _lock:
            return len(_cache)
    """


class TestUnlockedWrite:
    def test_locked_mutation_passes(self, rule_ids):
        assert rule_ids(LOCKED) == []

    def test_unlocked_item_assignment_flagged(self, rule_ids):
        assert "CONC001" in rule_ids(
            """
            _cache = {}
            def put(key, value):
                _cache[key] = value
            """
        )

    def test_unlocked_mutator_method_flagged(self, rule_ids):
        assert "CONC001" in rule_ids(
            """
            _pending = []
            def enqueue(item):
                _pending.append(item)
            """
        )

    def test_unlocked_global_rebind_flagged(self, rule_ids):
        assert "CONC001" in rule_ids(
            """
            _cache = {}
            def reset():
                global _cache
                _cache = {}
            """
        )

    def test_local_shadow_not_flagged(self, rule_ids):
        # Assigning a local of the same name is not a shared-state write.
        assert rule_ids(
            """
            _cache = {}
            def compute():
                _cache = {}
                _cache["x"] = 1
                return _cache
            """
        ) == []

    def test_scalar_module_state_not_flagged(self, rule_ids):
        # Plain flags/counters are not containers; flipping them is the
        # documented single-writer toggle pattern (baseline_mode).
        assert rule_ids(
            """
            _enabled = True
            def toggle(value):
                global _enabled
                _enabled = value
            """
        ) == []

    def test_wrong_lock_scope_still_flagged(self, rule_ids):
        # A `with` on something that is not a module-level Lock does not
        # count as holding the lock.
        assert "CONC001" in rule_ids(
            """
            import threading
            _cache = {}
            def put(key, value):
                with open("f") as fh:
                    _cache[key] = value
            """
        )


class TestUnlockedRead:
    def test_unlocked_read_of_guarded_container_warns(self, rule_ids):
        ids = rule_ids(
            LOCKED
            + """
    def peek(key):
        return _cache.get(key)
    """
        )
        assert "CONC002" in ids

    def test_reads_of_unguarded_readonly_table_pass(self, rule_ids):
        # Read-only module dicts (codec tables, encoders) never take a
        # lock and are never written from functions: no findings.
        assert rule_ids(
            """
            _NAMES = {0: "plain", 1: "rle"}
            def name(code):
                return _NAMES[code]
            """
        ) == []
