"""IMP rules: the hourglass layering is mechanical, not aspirational."""


class TestLayerViolation:
    def test_telemetry_must_not_import_storage(self, rule_ids):
        assert "IMP001" in rule_ids(
            "from repro.storage.lake import TimeSeriesLake\n",
            module="repro.telemetry.fixture",
        )

    def test_telemetry_must_not_import_apps(self, rule_ids):
        assert "IMP001" in rule_ids(
            "import repro.apps.lva\n",
            module="repro.telemetry.fixture",
        )

    def test_columnar_must_not_import_stream(self, rule_ids):
        assert "IMP001" in rule_ids(
            "from repro.stream.broker import Broker\n",
            module="repro.columnar.fixture",
        )

    def test_telemetry_may_import_columnar(self, rule_ids):
        # telemetry emits ColumnTable batches — a sanctioned down edge.
        assert rule_ids(
            "from repro.columnar.table import ColumnTable\n",
            module="repro.telemetry.fixture",
        ) == []

    def test_everyone_may_import_util_and_perf(self, rule_ids):
        assert rule_ids(
            """
            from repro.perf import PERF
            from repro.util.rng import RngStreams
            """,
            module="repro.stream.fixture",
        ) == []

    def test_core_may_import_everything(self, rule_ids):
        assert rule_ids(
            """
            from repro.apps.lva import LiveVisualAnalytics
            from repro.stream.broker import Broker
            from repro.twin.power import PowerSimulator
            """,
            module="repro.core.fixture",
        ) == []

    def test_relative_import_resolved(self, rule_ids):
        # `from ..storage import lake` inside telemetry resolves to
        # repro.storage and violates the layering just like an absolute
        # import would.
        assert "IMP001" in rule_ids(
            "from ..storage import lake\n",
            module="repro.telemetry.fixture",
        )

    def test_relative_sibling_import_passes(self, rule_ids):
        assert rule_ids(
            "from .jobs import AllocationTable\n",
            module="repro.telemetry.fixture",
        ) == []

    def test_from_repro_root_subpackage_checked(self, rule_ids):
        # `from repro import storage` names a subpackage, not a facade
        # symbol, and is held to the same policy.
        assert "IMP001" in rule_ids(
            "from repro import storage\n",
            module="repro.telemetry.fixture",
        )

    def test_non_repro_imports_ignored(self, rule_ids):
        assert rule_ids(
            """
            import os
            import numpy as np
            from collections import OrderedDict
            """,
            module="repro.telemetry.fixture",
        ) == []
