"""RCF v2: seekable footer, lazy open, DICT_REF, cheap codec, v1 compat.

The v2 format exists to make the write plane cheap and the open path
O(1); everything here pins the properties the rest of the data plane
leans on — archived v1 parts stay readable, group headers parse lazily
from the footer, shared string vocabularies collapse to back-references,
and incompressible chunks skip zlib without changing decoded bytes.
"""

import numpy as np
import pytest

from repro.columnar import Col, ColumnTable
from repro.columnar.encodings import DICTIONARY
from repro.columnar.file_format import (
    _CHEAP_ENTROPY_BITS,
    _CHEAP_SAMPLE_BYTES,
    _CHEAP_SKIP_RATIO,
    DICT_REF,
    RcfReader,
    RcfWriter,
    chunk_memo_disabled,
    read_table,
    write_table,
)
from repro.perf import baseline_mode


def make_table(n=1000, seed=0):
    rng = np.random.default_rng(seed)
    return ColumnTable(
        {
            "timestamp": np.arange(n, dtype=np.float64) * 0.5,
            "node": np.repeat(np.arange(n // 10 + 1), 10)[:n].astype(
                np.int32
            ),
            "host": np.array(
                [f"nid{i % 7:05d}.hsn.cluster.example.internal"
                 for i in range(n)],
                dtype=object,
            ),
            "power": rng.normal(550.0, 40.0, n),
        }
    )


def assert_tables_equal(a, b):
    assert a.column_names == b.column_names
    assert a.num_rows == b.num_rows
    for name in a.column_names:
        ca, cb = a[name], b[name]
        assert ca.dtype == cb.dtype
        if ca.dtype == object:
            assert list(ca) == list(cb)
        else:
            assert ca.tobytes() == cb.tobytes()


class TestVersionGate:
    def test_writer_versions_round_trip(self):
        t = make_table()
        for version in (1, 2):
            buf = write_table(t, row_group_size=128, version=version)
            r = RcfReader(buf)
            assert r.version == version
            assert_tables_equal(r.read(), t)

    def test_magic_bytes(self):
        t = make_table(32)
        assert write_table(t, version=1)[:4] == b"RCF1"
        buf = write_table(t, version=2)
        assert buf[:4] == b"RCF2"
        assert buf[-4:] == b"RCF2"

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            RcfWriter(version=3)

    def test_truncated_v2_tail_rejected(self):
        buf = write_table(make_table(32), version=2)
        with pytest.raises(ValueError):
            RcfReader(buf[:-2])

    def test_v1_fixture_blob_remains_readable(self):
        """A byte-for-byte v1 blob (as archived OCEAN parts from earlier
        PRs are) decodes through today's reader."""
        t = make_table(200, seed=3)
        v1 = write_table(t, codec="high", row_group_size=64, version=1)
        r = RcfReader(v1)
        assert r.version == 1
        assert r.num_row_groups == 4
        assert_tables_equal(r.read(), t)
        assert_tables_equal(
            read_table(v1, columns=["power"], predicate=Col("power") > 550.0),
            read_table(
                write_table(t, codec="high", row_group_size=64),
                columns=["power"],
                predicate=Col("power") > 550.0,
            ),
        )


class TestLazyOpen:
    def test_open_parses_no_group_headers(self):
        buf = write_table(make_table(4000), row_group_size=100)
        r = RcfReader(buf)
        assert r.num_row_groups == 40
        assert r.header_parse_count == 0
        assert r.num_rows == 4000  # row counts come from the footer

    def test_open_cost_is_o1_in_group_count(self):
        """Opening a 64-group file does exactly as much header work as a
        1-group file — the regression the ROADMAP flagged ('re-reads
        headers where a seek would do')."""
        small = RcfReader(write_table(make_table(100), row_group_size=100))
        big = RcfReader(write_table(make_table(6400), row_group_size=100))
        assert big.num_row_groups == 64
        assert small.header_parse_count == big.header_parse_count == 0

    def test_groups_parse_on_first_touch_only(self):
        r = RcfReader(write_table(make_table(1000), row_group_size=100))
        r.decode_group_column(7, "power")
        assert r.header_parse_count == 1
        r.decode_group_column(7, "timestamp")  # same group: cached
        assert r.header_parse_count == 1
        r.group_stats(3)
        assert r.header_parse_count == 2
        # DICT_REF decode touches exactly one extra group: its donor.
        r.decode_group_column(7, "host")
        assert r.header_parse_count == 3

    def test_v1_still_parses_eagerly(self):
        r = RcfReader(
            write_table(make_table(1000), row_group_size=100, version=1)
        )
        assert r.header_parse_count == 10

    def test_lazy_read_equals_eager_read(self):
        t = make_table(3000, seed=9)
        v1 = RcfReader(write_table(t, row_group_size=256, version=1))
        v2 = RcfReader(write_table(t, row_group_size=256, version=2))
        assert_tables_equal(v1.read(), v2.read())
        pred = Col("power") > 560.0
        assert_tables_equal(v1.read(predicate=pred), v2.read(predicate=pred))
        assert v1.scan_stats(pred) == v2.scan_stats(pred)


class TestDictRef:
    def test_repeated_vocab_becomes_back_reference(self):
        t = make_table(1000)
        r = RcfReader(write_table(t, row_group_size=100))
        encs = [r.group_encoding(g, "host") for g in range(r.num_row_groups)]
        assert encs[0] == DICTIONARY
        assert all(e == DICT_REF for e in encs[1:])
        assert_tables_equal(r.read(), t)

    def test_back_reference_shrinks_the_file(self):
        t = make_table(2000)
        v1 = write_table(t, row_group_size=100, version=1)
        v2 = write_table(t, row_group_size=100, version=2)
        assert len(v2) < len(v1)

    def test_vocab_change_resets_the_donor(self):
        """A group with a different vocabulary becomes the new donor;
        later groups reference it, not the stale one."""
        a = ColumnTable(
            {"host": np.array(["a", "b"] * 50, dtype=object),
             "v": np.arange(100, dtype=np.float64)}
        )
        b = ColumnTable(
            {"host": np.array(["c", "d"] * 50, dtype=object),
             "v": np.arange(100, dtype=np.float64)}
        )
        w = RcfWriter(row_group_size=50)
        w.append(a)
        w.append(b)
        w.append(a)
        r = RcfReader(w.finish())
        encs = [r.group_encoding(g, "host") for g in range(6)]
        assert encs == [
            DICTIONARY, DICT_REF, DICTIONARY, DICT_REF, DICTIONARY, DICT_REF
        ]
        out = r.read()
        assert list(out["host"]) == ["a", "b"] * 50 + ["c", "d"] * 50 + [
            "a", "b"
        ] * 50

    def test_dictionary_parts_follow_the_reference(self):
        t = make_table(500)
        r = RcfReader(write_table(t, row_group_size=100))
        direct = r.group_dictionary_parts(0, "host")
        via_ref = r.group_dictionary_parts(3, "host")
        assert via_ref is not None and direct is not None
        assert list(direct[0]) == list(via_ref[0])  # same vocabulary
        assert via_ref[2] is True
        got = direct[0][via_ref[1]]
        assert list(got) == list(t["host"][300:400])

    def test_null_strings_round_trip_through_dict_ref(self):
        vals = np.array(["x", None, "y", None] * 25, dtype=object)
        t = ColumnTable({"s": vals, "v": np.arange(100, dtype=np.float64)})
        r = RcfReader(write_table(t, row_group_size=50))
        assert r.group_encoding(1, "s") == DICT_REF
        assert list(r.read()["s"]) == list(vals)

    def test_numeric_dictionary_never_back_references(self):
        """DICT_REF is strings-only: numeric chunks flow through the
        chunk memo, where a position-dependent blob would be unsafe."""
        t = ColumnTable(
            {"cat": np.repeat(np.arange(4), 100).astype(np.int64)[
                np.tile(np.arange(400), 1)
            ]}
        )
        r = RcfReader(write_table(t, row_group_size=100))
        for g in range(r.num_row_groups):
            assert r.group_encoding(g, "cat") != DICT_REF


class TestCheapCodec:
    def test_incompressible_chunks_skip_zlib(self):
        rng = np.random.default_rng(1)
        t = ColumnTable({"noise": rng.random(50_000)})
        with chunk_memo_disabled():
            r = RcfReader(write_table(t, codec="high"))
        meta = r._group(0).chunks["noise"]
        assert meta.codec == "none"  # stored raw: sampling said ~incompressible
        assert_tables_equal(r.read(), t)

    def test_compressible_chunks_still_compress(self):
        t = ColumnTable(
            {"gauge": np.tile(np.arange(16, dtype=np.float64), 4096)}
        )
        with chunk_memo_disabled():
            buf = write_table(t, codec="fast")
        assert len(buf) < t["gauge"].nbytes / 4

    def test_tiny_chunks_never_compress(self):
        t = ColumnTable({"v": np.arange(4, dtype=np.float64)})
        with chunk_memo_disabled():
            r = RcfReader(write_table(t, codec="high"))
        assert r._group(0).chunks["v"].codec == "none"

    def test_thresholds_are_sane(self):
        assert _CHEAP_SAMPLE_BYTES >= 1024
        assert 0.5 < _CHEAP_SKIP_RATIO < 1.0
        assert 1.0 < _CHEAP_ENTROPY_BITS < 8.0

    def test_midsize_high_entropy_chunks_skip_zlib(self):
        # Between the tiny and the probe thresholds, the entropy gate
        # decides: ~random doubles stay raw without ever calling zlib.
        rng = np.random.default_rng(3)
        t = ColumnTable({"noise": rng.random(256)})
        with chunk_memo_disabled():
            r = RcfReader(write_table(t, codec="fast"))
        assert 64 < t["noise"].nbytes <= _CHEAP_SAMPLE_BYTES
        assert r._group(0).chunks["noise"].codec == "none"
        assert_tables_equal(r.read(), t)

    def test_midsize_low_entropy_chunks_still_compress(self):
        # A repetitive mid-size chunk sits well under the entropy bar
        # and still goes through zlib.
        t = ColumnTable({"gauge": np.tile(np.arange(4.0), 64)})
        with chunk_memo_disabled():
            r = RcfReader(write_table(t, codec="fast"))
        meta = r._group(0).chunks["gauge"]
        assert meta.codec == "fast"
        assert_tables_equal(r.read(), t)

    def test_rule_is_identical_under_baseline_mode(self):
        """The cheap-codec and DICT_REF rules are format-level, not
        fast-path toggles: baseline_mode writes the very same bytes."""
        t = make_table(2000, seed=4)
        fast = write_table(t, codec="high", row_group_size=256)
        with baseline_mode():
            base = write_table(t, codec="high", row_group_size=256)
        assert fast == base


class TestWriterStreamingAppend:
    def test_multi_append_v2_round_trips(self):
        w = RcfWriter(row_group_size=64)
        pieces = [make_table(100, seed=s) for s in range(3)]
        for p in pieces:
            w.append(p)
        assert w.num_rows == 300
        out = RcfReader(w.finish()).read()
        assert_tables_equal(out, ColumnTable.concat(pieces))

    def test_empty_file_round_trips(self):
        for version in (1, 2):
            r = RcfReader(RcfWriter(version=version).finish())
            assert r.num_row_groups == 0
            assert r.num_rows == 0
