"""Regression: NaN rows must not poison chunk stats into uselessness.

The old ``_column_stats`` propagated NaN through ``min``/``max``, which
made every NaN-bearing telemetry chunk un-prunable (``might_match``
treats NaN bounds as unknown).  Stats now skip NaNs and carry an
``exact`` flag so pruning works again without becoming unsound for the
predicates NaN rows can satisfy.
"""

import numpy as np

from repro.columnar import (
    Col,
    ColumnTable,
    RcfReader,
    column_stats,
    stats_bounds,
    write_table,
)
from repro.columnar.predicate import Compare, Not


def test_nan_rows_no_longer_poison_bounds():
    stats = column_stats(np.array([1.0, np.nan, 5.0]))
    lo, hi, exact = stats_bounds(stats)
    assert (lo, hi) == (1.0, 5.0)
    assert exact is False  # inexact: a NaN row was excluded


def test_all_nan_column_has_no_stats():
    assert column_stats(np.array([np.nan, np.nan])) is None


def test_clean_float_column_is_exact():
    assert column_stats(np.array([2.0, 7.0])) == (2.0, 7.0, True)


def test_infinities_are_legitimate_bounds():
    stats = column_stats(np.array([-np.inf, 0.0, np.inf]))
    assert stats == (-np.inf, np.inf, True)


def test_null_strings_participate_as_empty_string():
    stats = column_stats(np.array(["b", None, "a"], dtype=object))
    assert stats == ("", "b", True)


def test_exactness_survives_file_round_trip():
    t = ColumnTable(
        {
            "clean": np.array([1.0, 2.0, 3.0, 4.0]),
            "dirty": np.array([1.0, np.nan, 3.0, 4.0]),
        }
    )
    reader = RcfReader(write_table(t, row_group_size=4))
    clean = reader.group_stats(0)["clean"]
    dirty = reader.group_stats(0)["dirty"]
    assert stats_bounds(clean) == (1.0, 4.0, True) and len(clean) == 2
    assert stats_bounds(dirty) == (1.0, 4.0, False)


def test_nan_bearing_chunk_prunes_again():
    # The regression in one assertion: a single NaN used to make this
    # chunk match *every* predicate.  Out-of-range comparisons must
    # exclude it now.
    stats = {"power": column_stats(np.array([100.0, np.nan, 140.0]))}
    assert not (Col("power") > 500.0).might_match(stats)
    assert (Col("power") > 120.0).might_match(stats)


def test_inexact_stats_block_unsound_not_equal_prune():
    # Constant chunk plus a NaN: `!=` is satisfied by the NaN row, so
    # the constant-chunk shortcut may only fire on exact stats.
    exact = {"x": (5.0, 5.0, True)}
    inexact = {"x": (5.0, 5.0, False)}
    for pred in (Compare("x", "!=", 5.0), Not(Compare("x", "==", 5.0))):
        assert not pred.might_match(exact)
        assert pred.might_match(inexact)
