"""Unit + property tests for column encodings and codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.columnar import (
    DELTA,
    DICTIONARY,
    PLAIN,
    RLE,
    choose_encoding,
    compress,
    decode_column,
    decompress,
    encode_column,
)


def roundtrip(arr, encoding):
    return decode_column(encode_column(arr, encoding), encoding)


class TestRoundTrips:
    @pytest.mark.parametrize("encoding", [PLAIN, RLE, DELTA, DICTIONARY])
    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(100, dtype=np.float64),
            np.repeat(np.array([1, 2, 3], dtype=np.int64), 30),
            np.zeros(50, dtype=np.int32),
            np.array([7], dtype=np.int64),
        ],
        ids=["ramp", "runs", "constant", "single"],
    )
    def test_numeric_roundtrip(self, encoding, arr):
        out = roundtrip(arr, encoding)
        np.testing.assert_array_equal(out, arr)

    @pytest.mark.parametrize("encoding", [PLAIN, RLE, DELTA, DICTIONARY])
    def test_empty_roundtrip(self, encoding):
        arr = np.empty(0, dtype=np.float64)
        assert roundtrip(arr, encoding).size == 0

    def test_string_dictionary_roundtrip(self):
        arr = np.array(["a", "bb", None, "a", "ccc"], dtype=object)
        out = roundtrip(arr, DICTIONARY)
        assert out.tolist() == ["a", "bb", None, "a", "ccc"]

    def test_string_requires_dictionary(self):
        arr = np.array(["a"], dtype=object)
        with pytest.raises(ValueError):
            encode_column(arr, PLAIN)

    def test_rle_handles_nan_runs(self):
        arr = np.array([np.nan, np.nan, 1.0, 1.0, np.nan])
        out = roundtrip(arr, RLE)
        np.testing.assert_array_equal(np.isnan(out), np.isnan(arr))
        np.testing.assert_array_equal(out[~np.isnan(out)], arr[~np.isnan(arr)])

    def test_unknown_encoding(self):
        with pytest.raises(ValueError):
            encode_column(np.zeros(1), 99)
        with pytest.raises(ValueError):
            decode_column(b"", 99)

    @given(
        arr=hnp.arrays(
            np.int64, st.integers(0, 300), elements=st.integers(-(2**40), 2**40)
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_all_numeric_encodings_roundtrip(self, arr):
        for enc in (PLAIN, RLE, DELTA, DICTIONARY):
            np.testing.assert_array_equal(roundtrip(arr, enc), arr)

    @given(
        strings=st.lists(
            st.one_of(st.none(), st.text(max_size=6)), max_size=100
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_string_dictionary_roundtrip(self, strings):
        arr = np.empty(len(strings), dtype=object)
        arr[:] = strings
        assert roundtrip(arr, DICTIONARY).tolist() == strings


class TestEncodingSizes:
    def test_regular_timestamps_tiny_under_delta(self):
        ts = np.arange(0, 100_000, 15, dtype=np.float64)  # 15 s grid
        delta = encode_column(ts, DELTA)
        plain = encode_column(ts, PLAIN)
        assert len(delta) < len(plain) / 100

    def test_run_heavy_ids_tiny_under_rle(self):
        ids = np.repeat(np.arange(20, dtype=np.int32), 500)
        rle = encode_column(ids, RLE)
        plain = encode_column(ids, PLAIN)
        assert len(rle) < len(plain) / 50


class TestChooseEncoding:
    def test_regular_grid_prefers_delta(self):
        assert choose_encoding(np.arange(0.0, 1000.0, 15.0)) == DELTA

    def test_runs_prefer_rle_or_delta(self):
        arr = np.repeat(np.arange(5, dtype=np.int64), 100)
        assert choose_encoding(arr) in (RLE, DELTA)

    def test_noise_prefers_plain(self):
        rng = np.random.default_rng(0)
        assert choose_encoding(rng.random(1000)) == PLAIN

    def test_strings_always_dictionary(self):
        arr = np.array(["x"], dtype=object)
        assert choose_encoding(arr) == DICTIONARY

    def test_low_cardinality_floats_dictionary_or_rle(self):
        rng = np.random.default_rng(1)
        arr = rng.choice([1.5, 2.5, 3.5], size=1000)
        assert choose_encoding(arr) in (DICTIONARY, RLE)

    @given(
        arr=hnp.arrays(
            np.float64,
            st.integers(0, 200),
            elements=st.floats(-1e6, 1e6),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_chosen_encoding_roundtrips(self, arr):
        enc = choose_encoding(arr)
        np.testing.assert_allclose(roundtrip(arr, enc), arr, rtol=0, atol=0)


class TestCodecs:
    @pytest.mark.parametrize("codec", ["none", "fast", "high"])
    def test_roundtrip(self, codec):
        data = b"hello world " * 100
        assert decompress(compress(data, codec), codec) == data

    def test_high_compresses_harder_than_fast(self):
        data = np.random.default_rng(0).integers(0, 4, 100_000).astype(np.uint8).tobytes()
        assert len(compress(data, "high")) <= len(compress(data, "fast"))

    def test_unknown_codec(self):
        with pytest.raises(ValueError):
            compress(b"x", "zstd")
        with pytest.raises(ValueError):
            decompress(b"x", "zstd")
