"""Unit + property tests for the RCF file format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.columnar import (
    Col,
    ColumnTable,
    RcfReader,
    RcfWriter,
    read_table,
    write_table,
)


def make_table(n=1000, seed=0):
    rng = np.random.default_rng(seed)
    return ColumnTable(
        {
            "timestamp": np.arange(n, dtype=np.float64) * 15.0,
            "node": rng.integers(0, 16, n).astype(np.int32),
            "power": rng.normal(2000.0, 300.0, n),
            "project": rng.choice(["PRJA", "PRJB", "PRJC"], n).tolist(),
        }
    )


class TestRoundTrip:
    @pytest.mark.parametrize("codec", ["none", "fast", "high"])
    def test_full_roundtrip(self, codec):
        t = make_table()
        out = read_table(write_table(t, codec=codec))
        assert out == t

    def test_multiple_row_groups(self):
        t = make_table(n=1000)
        buf = write_table(t, row_group_size=128)
        reader = RcfReader(buf)
        assert reader.num_row_groups == 8
        assert reader.read() == t

    def test_append_multiple_tables(self):
        writer = RcfWriter()
        a, b = make_table(100, 0), make_table(50, 1)
        writer.append(a)
        writer.append(b)
        assert writer.num_rows == 150
        out = RcfReader(writer.finish()).read()
        assert out == ColumnTable.concat([a, b])

    def test_schema_mismatch_rejected(self):
        writer = RcfWriter()
        writer.append(ColumnTable({"a": [1.0]}))
        with pytest.raises(ValueError):
            writer.append(ColumnTable({"b": [1.0]}))

    def test_empty_append_ignored(self):
        writer = RcfWriter()
        writer.append(ColumnTable({}))
        writer.append(make_table(10))
        assert RcfReader(writer.finish()).num_rows == 10

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            RcfReader(b"JUNKdata")

    def test_invalid_writer_params(self):
        with pytest.raises(ValueError):
            RcfWriter(codec="zstd")
        with pytest.raises(ValueError):
            RcfWriter(row_group_size=0)

    @given(
        x=hnp.arrays(np.float64, st.integers(1, 200), elements=st.floats(-1e9, 1e9)),
        row_group_size=st.integers(1, 64),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip_any_grouping(self, x, row_group_size):
        t = ColumnTable({"x": x})
        out = read_table(write_table(t, row_group_size=row_group_size))
        assert out == t


class TestProjection:
    def test_column_projection(self):
        buf = write_table(make_table())
        out = read_table(buf, columns=["power", "node"])
        assert out.column_names == ["power", "node"]

    def test_unknown_column_rejected(self):
        buf = write_table(make_table())
        with pytest.raises(KeyError):
            read_table(buf, columns=["nope"])


class TestPredicatePushdown:
    def test_filter_matches_in_memory_filter(self):
        t = make_table()
        buf = write_table(t, row_group_size=100)
        pred = (Col("power") > 2100.0) & (Col("project") == "PRJA")
        out = read_table(buf, predicate=pred)
        expected = t.filter(pred.mask(t))
        assert out == expected

    def test_time_sorted_data_prunes_row_groups(self):
        t = make_table(n=10_000)
        buf = write_table(t, row_group_size=500)
        reader = RcfReader(buf)
        # Timestamps are sorted, so a narrow window touches few groups.
        pred = Col("timestamp").between(30_000.0, 31_000.0)
        scanned, pruned = reader.scan_stats(pred)
        assert pruned > scanned
        out = reader.read(predicate=pred)
        assert out.num_rows == t.filter(pred.mask(t)).num_rows

    def test_impossible_predicate_reads_nothing(self):
        buf = write_table(make_table())
        out = read_table(buf, predicate=Col("power") > 1e12)
        assert out.num_rows == 0

    def test_predicate_with_projection(self):
        t = make_table()
        buf = write_table(t)
        out = read_table(buf, columns=["node"], predicate=Col("power") > 2000.0)
        assert out.column_names == ["node"]
        assert out.num_rows == (t["power"] > 2000.0).sum()


class TestCompressionBehaviour:
    def test_telemetry_like_data_compresses_well(self):
        """Sorted long-format telemetry must compress strongly (the paper's
        'significant data compression' claim for the Parquet choice)."""
        n = 20_000
        t = ColumnTable(
            {
                "timestamp": np.repeat(np.arange(n // 20) * 15.0, 20),
                "sensor": np.tile(np.arange(20, dtype=np.int16), n // 20),
                "value": np.round(
                    np.random.default_rng(0).normal(100, 5, n), 1
                ),
            }
        )
        buf = write_table(t, codec="high")
        raw = sum(t[c].nbytes for c in t.column_names)
        assert len(buf) < raw / 3

    def test_stats_recorded_per_group(self):
        buf = write_table(make_table(100))
        stats = RcfReader(buf).group_stats(0)
        lo, hi = stats["timestamp"]
        assert lo == 0.0 and hi == 99 * 15.0
        assert stats["project"] == ("PRJA", "PRJC")
