"""Unit + property tests for the predicate algebra.

Soundness is the key invariant: might_match(stats)==False must imply the
exact mask is empty for any data consistent with those stats.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.columnar import And, Col, ColumnTable, Not, Or
from repro.columnar.predicate import Compare, IsIn


def make_table():
    return ColumnTable(
        {
            "x": np.array([1.0, 2.0, 3.0, 4.0]),
            "node": np.array([0, 0, 1, 1]),
            "user": ["a", "b", "a", "c"],
        }
    )


def stats_of(table):
    return {
        "x": (float(table["x"].min()), float(table["x"].max())),
        "node": (float(table["node"].min()), float(table["node"].max())),
        "user": ("a", "c"),
    }


class TestCompare:
    @pytest.mark.parametrize(
        "op,expected",
        [
            ("==", [False, True, False, False]),
            ("!=", [True, False, True, True]),
            ("<", [True, False, False, False]),
            ("<=", [True, True, False, False]),
            (">", [False, False, True, True]),
            (">=", [False, True, True, True]),
        ],
    )
    def test_mask_ops(self, op, expected):
        mask = Compare("x", op, 2.0).mask(make_table())
        assert mask.tolist() == expected

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Compare("x", "~", 1)

    def test_string_compare(self):
        mask = (Col("user") == "a").mask(make_table())
        assert mask.tolist() == [True, False, True, False]

    def test_might_match_prunes_out_of_range(self):
        stats = stats_of(make_table())
        assert not (Col("x") > 10.0).might_match(stats)
        assert not (Col("x") < 1.0).might_match(stats)
        assert (Col("x") >= 4.0).might_match(stats)

    def test_missing_stats_never_prunes(self):
        assert (Col("y") > 1e9).might_match({"x": (0, 1)})
        assert (Col("x") > 1e9).might_match({"x": None})


class TestCombinators:
    def test_and_or_not_masks(self):
        t = make_table()
        p = (Col("x") > 1.0) & (Col("node") == 1)
        assert p.mask(t).tolist() == [False, False, True, True]
        q = (Col("x") == 1.0) | (Col("user") == "c")
        assert q.mask(t).tolist() == [True, False, False, True]
        assert (~q).mask(t).tolist() == [False, True, True, False]

    def test_and_prunes_if_either_side_prunes(self):
        stats = stats_of(make_table())
        p = (Col("x") > 100.0) & (Col("node") == 0)
        assert not p.might_match(stats)

    def test_or_requires_both_sides_pruned(self):
        stats = stats_of(make_table())
        p = (Col("x") > 100.0) | (Col("node") == 0)
        assert p.might_match(stats)

    def test_not_of_constant_chunk_prunes(self):
        p = ~(Col("x") == 5.0)
        assert not p.might_match({"x": (5.0, 5.0)})
        assert p.might_match({"x": (4.0, 5.0)})

    def test_columns_collected(self):
        p = (Col("x") > 1) & ((Col("node") == 0) | ~(Col("user") == "a"))
        assert p.columns() == {"x", "node", "user"}


class TestIsInAndBetween:
    def test_isin_numeric(self):
        mask = Col("node").isin([1, 7]).mask(make_table())
        assert mask.tolist() == [False, False, True, True]

    def test_isin_string(self):
        mask = Col("user").isin(["a"]).mask(make_table())
        assert mask.tolist() == [True, False, True, False]

    def test_isin_prunes(self):
        assert not IsIn("x", (10.0, 20.0)).might_match({"x": (0.0, 5.0)})
        assert IsIn("x", (3.0,)).might_match({"x": (0.0, 5.0)})

    def test_between(self):
        mask = Col("x").between(2.0, 3.0).mask(make_table())
        assert mask.tolist() == [False, True, True, False]


class TestSoundness:
    """Pruning must never discard a chunk containing matching rows."""

    @given(
        data=hnp.arrays(
            np.float64, st.integers(1, 50), elements=st.floats(-100, 100)
        ),
        threshold=st.floats(-150, 150),
        op=st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
    )
    @settings(max_examples=120, deadline=None)
    def test_compare_soundness(self, data, threshold, op):
        table = ColumnTable({"x": data})
        stats = {"x": (float(data.min()), float(data.max()))}
        pred = Compare("x", op, threshold)
        if not pred.might_match(stats):
            assert not pred.mask(table).any()

    @given(
        data=hnp.arrays(
            np.float64, st.integers(1, 50), elements=st.floats(-100, 100)
        ),
        a=st.floats(-150, 150),
        b=st.floats(-150, 150),
    )
    @settings(max_examples=80, deadline=None)
    def test_compound_soundness(self, data, a, b):
        table = ColumnTable({"x": data})
        stats = {"x": (float(data.min()), float(data.max()))}
        for pred in [
            (Col("x") > a) & (Col("x") < b),
            (Col("x") > a) | (Col("x") < b),
            Col("x").between(min(a, b), max(a, b)),
            ~(Col("x") == a),
        ]:
            if not pred.might_match(stats):
                assert not pred.mask(table).any()
