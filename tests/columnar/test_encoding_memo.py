"""Fast-path memos in the columnar layer must never change bytes.

Three caches sit on the RCF write path — the ``choose_encoding`` memo,
the compression memo, and the writer's whole-chunk memo.  Each must be
an invisible accelerator: same encoding choices, same compressed bytes,
same file bytes, with or without the cache, and identical to the
pre-optimization reference estimator.
"""

import numpy as np
import pytest

from repro.columnar import ColumnTable, read_table, write_table
from repro.columnar.compression import (
    CODECS,
    clear_compress_memo,
    compress,
    compress_memo_disabled,
    compress_memo_stats,
    decompress,
)
from repro.columnar.encodings import (
    choose_encoding,
    choose_encoding_reference,
    clear_encoding_memo,
    encoding_memo_disabled,
    encoding_memo_stats,
    encoding_reference_mode,
)
from repro.columnar.file_format import (
    chunk_memo_disabled,
    chunk_memo_stats,
    clear_chunk_memo,
)


def varied_arrays():
    rng = np.random.default_rng(17)
    yield np.empty(0, dtype=np.float64)
    yield np.array([3.5])
    yield np.zeros(500)
    yield np.full(256, 7, dtype=np.int64)
    yield np.arange(1000, dtype=np.int64)
    yield np.arange(0.0, 100.0, 0.25)
    yield rng.normal(size=1000)
    yield rng.integers(0, 4, size=2000).astype(np.int32)
    yield np.repeat(rng.normal(size=10), 100)
    yield np.repeat([np.nan, 1.0, np.nan], [50, 5, 45])
    yield np.r_[np.zeros(400), rng.normal(size=100)]
    yield rng.integers(0, 2, size=64).astype(np.int8)
    yield (rng.normal(size=300) * 1e12).astype(np.int64)
    yield np.linspace(0, 1, 777)
    yield np.array(["a", "b", "a", None, ""], dtype=object)
    yield np.array([], dtype=object)
    ts = 1700000000.0 + np.arange(3600) * 15.0  # regular timestamp grid
    yield ts
    yield ts.astype(np.int64)


@pytest.mark.parametrize("arr", list(varied_arrays()), ids=range(18))
def test_fast_estimator_matches_reference(arr):
    with encoding_memo_disabled():
        assert choose_encoding(arr) == choose_encoding_reference(arr)


def test_memoized_choice_equals_uncached():
    clear_encoding_memo()
    for arr in varied_arrays():
        cold = choose_encoding(arr)
        hot = choose_encoding(arr.copy())
        with encoding_memo_disabled():
            bare = choose_encoding(arr)
        assert cold == hot == bare
    stats = encoding_memo_stats()
    assert stats["hits"] > 0 and stats["misses"] > 0


def test_reference_mode_bypasses_memo():
    clear_encoding_memo()
    arr = np.repeat(np.arange(10.0), 37)
    with encoding_reference_mode():
        choice = choose_encoding(arr)
        assert encoding_memo_stats()["entries"] == 0
    assert choice == choose_encoding(arr)


def sample_buffers():
    rng = np.random.default_rng(23)
    yield b""
    yield b"x" * 10_000  # highly compressible
    yield rng.bytes(10_000)  # incompressible
    yield np.arange(4096, dtype=np.int64).tobytes()


@pytest.mark.parametrize("codec", sorted(CODECS))
def test_compress_memo_is_invisible(codec):
    clear_compress_memo()
    for buf in sample_buffers():
        cold = compress(buf, codec)
        hot = compress(buf, codec)
        with compress_memo_disabled():
            bare = compress(buf, codec)
        assert cold == hot == bare
        assert decompress(cold, codec) == bytes(buf)
    if codec != "none":  # the identity codec never touches the memo
        assert compress_memo_stats()["hits"] > 0


def sample_table(seed=0):
    rng = np.random.default_rng(seed)
    n = 4096
    return ColumnTable(
        {
            "time": 1700000000.0 + np.arange(n) * 15.0,
            "component_id": np.repeat(
                np.arange(n // 16, dtype=np.int32), 16
            ),
            "sensor_id": np.tile(np.arange(16, dtype=np.int16), n // 16),
            "value": rng.normal(size=n),
            "label": np.array(
                [f"s{i % 7}" for i in range(n)], dtype=object
            ),
        }
    )


@pytest.mark.parametrize("codec", sorted(CODECS))
def test_chunk_memo_write_bytes_identical(codec):
    table = sample_table()
    clear_chunk_memo()
    with chunk_memo_disabled():
        bare = write_table(table, codec=codec)
    cold = write_table(table, codec=codec)
    hot = write_table(table, codec=codec)
    assert bare == cold == hot
    assert chunk_memo_stats()["hits"] > 0

    out = read_table(hot)
    for name in table.column_names:
        a, b = table[name], out[name]
        if a.dtype == object:
            assert list(a) == list(b)
        else:
            assert a.tobytes() == b.tobytes()


def test_chunk_memo_respects_reference_mode():
    """Reference mode must not serve chunks cached by the fast path."""
    table = sample_table(seed=1)
    clear_chunk_memo()
    fast = write_table(table)
    before = chunk_memo_stats()["hits"]
    with encoding_reference_mode():
        ref = write_table(table)
    assert chunk_memo_stats()["hits"] == before  # no hits while bypassed
    assert ref == fast  # same bytes regardless — the estimators agree


def test_chunk_memo_keys_on_codec():
    table = sample_table(seed=2)
    clear_chunk_memo()
    a = write_table(table, codec="fast")
    b = write_table(table, codec="high")
    assert a != b
    assert read_table(a)["value"].tobytes() == read_table(b)["value"].tobytes()
