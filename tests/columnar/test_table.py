"""Unit tests for ColumnTable."""

import numpy as np
import pytest

from repro.columnar import ColumnTable


def make_table():
    return ColumnTable(
        {
            "t": np.array([0.0, 1.0, 2.0, 3.0]),
            "node": np.array([0, 1, 0, 1]),
            "user": ["alice", "bob", "alice", None],
        }
    )


class TestConstruction:
    def test_shape(self):
        t = make_table()
        assert t.num_rows == 4
        assert t.num_columns == 3
        assert t.column_names == ["t", "node", "user"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ColumnTable({"a": np.zeros(2), "b": np.zeros(3)})

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            ColumnTable({"a": np.zeros((2, 2))})

    def test_empty_table(self):
        t = ColumnTable({})
        assert t.num_rows == 0 and t.num_columns == 0

    def test_string_column_normalized(self):
        t = make_table()
        assert t.is_string("user")
        assert not t.is_string("t")
        assert t["user"][3] is None

    def test_unknown_column_keyerror_lists_names(self):
        with pytest.raises(KeyError, match="node"):
            make_table()["missing"]


class TestTransforms:
    def test_select_projects_and_orders(self):
        t = make_table().select(["user", "t"])
        assert t.column_names == ["user", "t"]

    def test_filter(self):
        t = make_table().filter(np.array([True, False, True, False]))
        assert t.num_rows == 2
        np.testing.assert_array_equal(t["node"], [0, 0])

    def test_filter_mask_length_checked(self):
        with pytest.raises(ValueError):
            make_table().filter(np.array([True]))

    def test_take(self):
        t = make_table().take(np.array([3, 0]))
        np.testing.assert_array_equal(t["t"], [3.0, 0.0])

    def test_slice(self):
        t = make_table().slice(1, 3)
        np.testing.assert_array_equal(t["t"], [1.0, 2.0])

    def test_with_column_adds_and_replaces(self):
        t = make_table().with_column("x", np.ones(4))
        assert "x" in t
        t2 = t.with_column("x", np.zeros(4))
        assert t2["x"].sum() == 0

    def test_drop(self):
        t = make_table().drop(["user"])
        assert t.column_names == ["t", "node"]

    def test_rename(self):
        t = make_table().rename({"t": "timestamp"})
        assert "timestamp" in t and "t" not in t

    def test_concat_roundtrip(self):
        t = make_table()
        c = ColumnTable.concat([t.slice(0, 2), t.slice(2, 4)])
        assert c == t

    def test_concat_schema_mismatch(self):
        with pytest.raises(ValueError):
            ColumnTable.concat(
                [ColumnTable({"a": [1]}), ColumnTable({"b": [1]})]
            )

    def test_concat_empty_list(self):
        assert ColumnTable.concat([]).num_rows == 0

    def test_sort_by_numeric(self):
        t = ColumnTable({"x": [3.0, 1.0, 2.0]}).sort_by("x")
        np.testing.assert_array_equal(t["x"], [1.0, 2.0, 3.0])

    def test_sort_by_string(self):
        t = ColumnTable({"s": ["b", "a", "c"]}).sort_by("s")
        assert t["s"].tolist() == ["a", "b", "c"]

    def test_head(self):
        assert make_table().head(2).num_rows == 2
        assert make_table().head(100).num_rows == 4


class TestEqualityAndMisc:
    def test_equality_with_nan(self):
        a = ColumnTable({"x": [1.0, np.nan]})
        b = ColumnTable({"x": [1.0, np.nan]})
        assert a == b

    def test_inequality_different_values(self):
        assert ColumnTable({"x": [1.0]}) != ColumnTable({"x": [2.0]})

    def test_nbytes_positive(self):
        assert make_table().nbytes > 0

    def test_to_pylist(self):
        rows = make_table().to_pylist()
        assert rows[0] == {"t": 0.0, "node": 0, "user": "alice"}

    def test_repr(self):
        assert "4 rows" in repr(make_table())
