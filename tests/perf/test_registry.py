"""PerfRegistry: the always-on meter the benchmark snapshots."""

import threading

import pytest

from repro.perf import (
    PERF,
    PerfRegistry,
    baseline_mode,
    reset_all,
    reset_fast_path_caches,
)


@pytest.fixture()
def reg():
    return PerfRegistry()


def test_timer_accumulates(reg):
    for _ in range(3):
        with reg.timer("stage.a"):
            pass
    snap = reg.snapshot()["timers"]["stage.a"]
    assert snap["calls"] == 3
    assert snap["total_s"] >= 0.0
    assert snap["max_s"] <= snap["total_s"]
    assert reg.total_s("stage.a") == snap["total_s"]
    assert reg.total_s("never.recorded") == 0.0


def test_timer_records_on_exception(reg):
    with pytest.raises(RuntimeError):
        with reg.timer("stage.boom"):
            raise RuntimeError("boom")
    assert reg.snapshot()["timers"]["stage.boom"]["calls"] == 1


def test_counters(reg):
    reg.count("rows")
    reg.count("rows", 41)
    reg.count("bytes", 2.5)
    assert reg.counter("rows") == 42
    assert reg.counter("bytes") == 2.5
    assert reg.counter("never") == 0


def test_reset_and_snapshot_shape(reg):
    with reg.timer("t"):
        pass
    reg.count("c")
    snap = reg.snapshot()
    assert set(snap) == {"timers", "counters"}
    reg.reset()
    assert reg.snapshot() == {"timers": {}, "counters": {}}


def test_disabled_context(reg):
    with reg.disabled():
        with reg.timer("t"):
            pass
        reg.count("c")
    assert reg.snapshot() == {"timers": {}, "counters": {}}
    assert reg.enabled  # restored


def test_timer_decides_once_at_entry(reg):
    """A block that starts enabled is recorded even if recording is
    switched off before it exits — and vice versa.  The old exit-time
    check silently dropped timings straddling a disabled() region."""
    with reg.timer("straddle.on"):
        reg.enabled = False
    reg.enabled = True
    assert reg.snapshot()["timers"]["straddle.on"]["calls"] == 1

    reg.enabled = False
    with reg.timer("straddle.off"):
        reg.enabled = True
    assert "straddle.off" not in reg.snapshot()["timers"]


def test_timer_entered_before_disabled_region_still_records(reg):
    with reg.timer("outer"):
        with reg.disabled():
            with reg.timer("inner"):
                pass
    timers = reg.snapshot()["timers"]
    assert timers["outer"]["calls"] == 1
    assert "inner" not in timers


def test_disabled_is_reentrant(reg):
    with reg.disabled():
        with reg.disabled():
            pass
        # Inner exit must not resume recording while the outer region
        # is still active — the stale-boolean bug the depth counter fixes.
        assert not reg.enabled
        reg.count("c")
    assert reg.enabled
    assert reg.counter("c") == 0


def test_disabled_overlapping_threads(reg):
    """Two overlapping disabled() regions on different threads must
    leave the registry recording once both exit."""
    entered = threading.Barrier(2)
    release = threading.Event()

    def hold():
        with reg.disabled():
            entered.wait()
            release.wait()

    threads = [threading.Thread(target=hold) for _ in range(2)]
    for t in threads:
        t.start()
    release.set()
    for t in threads:
        t.join()
    assert reg.enabled
    reg.count("after")
    assert reg.counter("after") == 1


def test_manual_switch_and_suspension_compose(reg):
    reg.enabled = False
    with reg.disabled():
        pass
    assert not reg.enabled  # the manual switch survives region exit
    reg.enabled = True
    assert reg.enabled


def test_snapshot_is_sorted_and_detached(reg):
    reg.count("b")
    reg.count("a")
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    snap["counters"]["a"] = 99  # mutating the snapshot ...
    assert reg.counter("a") == 1  # ... must not touch the registry


def test_thread_safety(reg):
    def work():
        for _ in range(500):
            reg.count("n")
            with reg.timer("t"):
                pass

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reg.counter("n") == 2000
    assert reg.snapshot()["timers"]["t"]["calls"] == 2000


def test_global_registry_is_wired():
    """The data plane records into PERF under its documented names."""
    import numpy as np

    from repro.core import ODAFramework
    from repro.telemetry import MINI, synthetic_job_mix

    rng = np.random.default_rng(2)
    allocation = synthetic_job_mix(MINI, 0.0, 30.0, rng)
    PERF.reset()
    with ODAFramework(MINI, allocation, seed=1) as fw:
        fw.run_window(0.0, 30.0)
    timers = PERF.snapshot()["timers"]
    for name in ("window.total", "telemetry.emit", "tier.ingest"):
        assert name in timers, f"missing {name}: have {sorted(timers)}"
    assert timers["window.total"]["total_s"] >= timers["telemetry.emit"]["total_s"]


def test_baseline_mode_restores_fast_path():
    """baseline_mode() must disable every fast-path toggle and restore
    them all on exit, even on error."""
    from repro.columnar import compression, encodings, file_format
    from repro.pipeline import factorize

    reset_fast_path_caches()
    with baseline_mode():
        assert not factorize._cache_enabled
        assert factorize._reference_mode
        assert not encodings._memo_enabled
        assert encodings._reference_mode
        assert not compression._memo_enabled
        assert not file_format._chunk_memo_enabled
    assert factorize._cache_enabled
    assert encodings._memo_enabled
    assert not encodings._reference_mode
    assert compression._memo_enabled
    assert file_format._chunk_memo_enabled

    with pytest.raises(RuntimeError):
        with baseline_mode():
            raise RuntimeError("boom")
    assert factorize._cache_enabled and not encodings._reference_mode


def test_reset_all_covers_perf_and_obs():
    """reset_all() is the single isolation call both benchmarks use: it
    must empty the fast-path memos, the PERF registry, the obs tracer
    and the obs metrics in one shot."""
    from repro.obs import METRICS, TRACER

    PERF.count("leftover")
    with PERF.timer("leftover.t"):
        pass
    METRICS.inc("leftover")
    with TRACER.trace(seed=0, name="leftover"):
        pass
    reset_all()
    assert PERF.snapshot() == {"timers": {}, "counters": {}}
    assert METRICS.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }
    assert TRACER.finished() == []


def test_reset_all_gives_rep_to_rep_counter_independence():
    """Two identical seeded runs separated by reset_all() must report
    identical PERF counters — no bleed from the first rep into the
    second (the bug a forgotten manual PERF.reset() used to cause)."""
    import numpy as np

    from repro.core import ODAFramework
    from repro.telemetry import MINI, synthetic_job_mix

    def one_rep():
        reset_all()
        allocation = synthetic_job_mix(
            MINI, 0.0, 60.0, np.random.default_rng(5)
        )
        with ODAFramework(MINI, allocation, seed=3) as fw:
            fw.run_window(0.0, 30.0)
        return PERF.snapshot()["counters"]

    first = one_rep()
    second = one_rep()
    assert first == second
    assert first["stream.produce.records"] > 0
