"""PerfRegistry: the always-on meter the benchmark snapshots."""

import threading

import pytest

from repro.perf import PERF, PerfRegistry, baseline_mode, reset_fast_path_caches


@pytest.fixture()
def reg():
    return PerfRegistry()


def test_timer_accumulates(reg):
    for _ in range(3):
        with reg.timer("stage.a"):
            pass
    snap = reg.snapshot()["timers"]["stage.a"]
    assert snap["calls"] == 3
    assert snap["total_s"] >= 0.0
    assert snap["max_s"] <= snap["total_s"]
    assert reg.total_s("stage.a") == snap["total_s"]
    assert reg.total_s("never.recorded") == 0.0


def test_timer_records_on_exception(reg):
    with pytest.raises(RuntimeError):
        with reg.timer("stage.boom"):
            raise RuntimeError("boom")
    assert reg.snapshot()["timers"]["stage.boom"]["calls"] == 1


def test_counters(reg):
    reg.count("rows")
    reg.count("rows", 41)
    reg.count("bytes", 2.5)
    assert reg.counter("rows") == 42
    assert reg.counter("bytes") == 2.5
    assert reg.counter("never") == 0


def test_reset_and_snapshot_shape(reg):
    with reg.timer("t"):
        pass
    reg.count("c")
    snap = reg.snapshot()
    assert set(snap) == {"timers", "counters"}
    reg.reset()
    assert reg.snapshot() == {"timers": {}, "counters": {}}


def test_disabled_context(reg):
    with reg.disabled():
        with reg.timer("t"):
            pass
        reg.count("c")
    assert reg.snapshot() == {"timers": {}, "counters": {}}
    assert reg.enabled  # restored


def test_snapshot_is_sorted_and_detached(reg):
    reg.count("b")
    reg.count("a")
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    snap["counters"]["a"] = 99  # mutating the snapshot ...
    assert reg.counter("a") == 1  # ... must not touch the registry


def test_thread_safety(reg):
    def work():
        for _ in range(500):
            reg.count("n")
            with reg.timer("t"):
                pass

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reg.counter("n") == 2000
    assert reg.snapshot()["timers"]["t"]["calls"] == 2000


def test_global_registry_is_wired():
    """The data plane records into PERF under its documented names."""
    import numpy as np

    from repro.core import ODAFramework
    from repro.telemetry import MINI, synthetic_job_mix

    rng = np.random.default_rng(2)
    allocation = synthetic_job_mix(MINI, 0.0, 30.0, rng)
    PERF.reset()
    with ODAFramework(MINI, allocation, seed=1) as fw:
        fw.run_window(0.0, 30.0)
    timers = PERF.snapshot()["timers"]
    for name in ("window.total", "telemetry.emit", "tier.ingest"):
        assert name in timers, f"missing {name}: have {sorted(timers)}"
    assert timers["window.total"]["total_s"] >= timers["telemetry.emit"]["total_s"]


def test_baseline_mode_restores_fast_path():
    """baseline_mode() must disable every fast-path toggle and restore
    them all on exit, even on error."""
    from repro.columnar import compression, encodings, file_format
    from repro.pipeline import factorize

    reset_fast_path_caches()
    with baseline_mode():
        assert not factorize._cache_enabled
        assert factorize._reference_mode
        assert not encodings._memo_enabled
        assert encodings._reference_mode
        assert not compression._memo_enabled
        assert not file_format._chunk_memo_enabled
    assert factorize._cache_enabled
    assert encodings._memo_enabled
    assert not encodings._reference_mode
    assert compression._memo_enabled
    assert file_format._chunk_memo_enabled

    with pytest.raises(RuntimeError):
        with baseline_mode():
            raise RuntimeError("boom")
    assert factorize._cache_enabled and not encodings._reference_mode
