"""Catalog unit behavior: identity, closures, liveness, advisories, CLI.

The catalog's contracts that everything else builds on: node IDs are
pure functions of coordinates (so re-recording merges, never forks),
closure queries traverse flow edges only (supersedes is liveness
bookkeeping), live-part queries respect both tombstone chains and
retention retirement, advisories propagate downstream, and the export
is canonical — same graph, same bytes, regardless of insertion order.
"""

import io
import json

import pytest

from repro.lineage import (
    FLOW_EDGE_KINDS,
    LineageCatalog,
    batch_id,
    blast_radius,
    node_id,
    part_id,
)
from repro.lineage.__main__ import main as lineage_main


class TestIdentity:
    def test_ids_are_pure_coordinate_functions(self):
        assert node_id("part", "oda", "d/p0") == node_id("part", "oda", "d/p0")
        assert node_id("part", "oda", "d/p0") != node_id("part", "oda", "d/p1")
        assert node_id("part", "oda", "d/p0") != node_id("batch", "oda", "d/p0")

    def test_float_coordinates_use_repr(self):
        # 30.0 and "30.0" must collide (coords are stringified), but
        # 30.0 and 30.5 must not.
        assert batch_id("d", 30.0) == batch_id("d", 30.0)
        assert batch_id("d", 30.0) != batch_id("d", 30.5)

    def test_no_separator_collisions(self):
        # The joiner is out-of-band (0x1f), so coordinate text cannot
        # smuggle a boundary.
        assert node_id("part", "a:b", "c") != node_id("part", "a", "b:c")

    def test_record_is_idempotent_and_merges(self):
        cat = LineageCatalog()
        first = cat.record("part", ("oda", "d/p0"), attrs={"rows": 3}, span="s1")
        again = cat.record(
            "part", ("oda", "d/p0"), attrs={"rows": 99, "extra": 1}, span="s2"
        )
        assert first == again
        assert len(cat) == 1
        node = cat.node(first)
        # First recording wins span and existing attrs; new keys merge.
        assert node["span"] == "s1"
        assert node["attrs"] == {"rows": 3, "extra": 1}


class TestClosures:
    def build(self):
        # window -> batch -> part -> partial -> query -> envelope
        cat = LineageCatalog()
        w = cat.record("topic_window", ("power", "m:power", 0.0), span="")
        b = cat.record("batch", ("d", 30.0), span="")
        p = cat.record("part", ("oda", "d/p0"), attrs={"dataset": "d", "key": "d/p0"}, span="")
        r = cat.record("rollup_partial", ("d.roll", "d/p0"), span="")
        q = cat.record("query_result", ("archive", "d", 1, ""), span="")
        e = cat.record("envelope", ("t0", "ep", "fp", 0), span="")
        cat.link(w, b)
        cat.link(b, p)
        cat.link(p, r)
        cat.link(q, e, "read")
        cat.link(p, q, "read")
        return cat, (w, b, p, r, q, e)

    def test_downstream_and_upstream_are_inverse(self):
        cat, (w, b, p, r, q, e) = self.build()
        assert cat.downstream(w) == sorted([b, p, r, q, e])
        # The rollup partial is a sibling branch off the part: it feeds
        # nothing into the envelope, so it is absent from its upstream.
        assert cat.upstream(e) == sorted([w, b, p, q])
        assert cat.downstream(r) == []
        assert cat.upstream(w) == []

    def test_supersedes_is_not_a_flow_edge(self):
        cat, (w, b, p, r, q, e) = self.build()
        combined = cat.record("part", ("oda", "d/p1"), span="")
        cat.supersede(combined, [p])
        # The rewrite's data flow is the derived edge old -> new...
        assert combined in cat.downstream(p)
        # ...but the supersedes edge itself never enters a closure:
        # nothing upstream of the dead part came from its replacement.
        assert combined not in cat.upstream(p)
        assert "supersedes" not in FLOW_EDGE_KINDS

    def test_unknown_edge_kind_rejected(self):
        cat = LineageCatalog()
        with pytest.raises(ValueError):
            cat.link("a", "b", "causes")


class TestLiveness:
    def test_superseded_parts_leave_the_live_set_but_not_history(self):
        cat = LineageCatalog()
        olds = [
            cat.record(
                "part", ("oda", f"d/p{i}"),
                attrs={"dataset": "d", "key": f"d/p{i}"}, span="",
            )
            for i in range(3)
        ]
        new = cat.record(
            "part", ("oda", "d/c0"), attrs={"dataset": "d", "key": "d/c0"}, span=""
        )
        cat.supersede(new, olds)
        assert cat.live_parts("d") == ["d/c0"]
        # History is the point: the dead parts are still queryable nodes.
        assert all(cat.node(nid) is not None for nid in olds)

    def test_retired_parts_leave_the_live_set(self):
        cat = LineageCatalog()
        cat.record("part", ("oda", "d/p0"), attrs={"dataset": "d", "key": "d/p0"}, span="")
        cat.retire(cat.part_node("oda", "d/p0"))
        assert cat.live_parts("d") == []
        assert cat.node(cat.part_node("oda", "d/p0"))["retired"] is True

    def test_retire_unknown_node_is_a_noop(self):
        cat = LineageCatalog()
        cat.retire(part_id("oda", "never/recorded"))
        assert len(cat) == 0

    def test_live_parts_filters_by_dataset(self):
        cat = LineageCatalog()
        cat.record("part", ("oda", "a/p0"), attrs={"dataset": "a", "key": "a/p0"}, span="")
        cat.record("part", ("oda", "b/p0"), attrs={"dataset": "b", "key": "b/p0"}, span="")
        assert cat.live_parts("a") == ["a/p0"]
        assert cat.live_parts() == ["a/p0", "b/p0"]


class TestAdvisories:
    def test_advisories_propagate_downstream_only(self):
        cat = LineageCatalog()
        p = cat.record("part", ("oda", "d/p0"), span="")
        q = cat.record("query_result", ("archive", "d", 1, ""), span="")
        cat.link(p, q, "read")
        advisory = {"request_id": 7, "verdict": "approve"}
        cat.attach_advisory(p, advisory)
        inherited = cat.advisories(q)
        assert len(inherited) == 1
        assert inherited[0]["request_id"] == 7
        assert inherited[0]["source"] == p
        # Direct-only view of the query node is empty...
        assert cat.advisories(q, inherited=False) == []
        # ...and nothing flows upstream.
        assert cat.advisories(p) == [dict(advisory, source=p)]

    def test_attach_deduplicates_and_requires_node(self):
        cat = LineageCatalog()
        p = cat.record("part", ("oda", "d/p0"), span="")
        cat.attach_advisory(p, {"request_id": 1})
        cat.attach_advisory(p, {"request_id": 1})
        assert len(cat.advisories(p)) == 1
        with pytest.raises(KeyError):
            cat.attach_advisory(part_id("oda", "ghost"), {"request_id": 2})

    def test_dataruc_annotation_reaches_downstream_artifacts(self):
        from repro.governance.dataruc import DataRUC, RequestType

        cat = LineageCatalog()
        p = cat.record(
            "part", ("oda", "d/p0"), attrs={"dataset": "d", "key": "d/p0"}, span=""
        )
        q = cat.record("query_result", ("archive", "d", 1, ""), span="")
        cat.link(p, q, "read")
        ruc = DataRUC()
        request = ruc.submit(
            "alice", RequestType.INTERNAL_PROJECT, ["d"], "audit", now=0.0
        )
        ruc.run_reviews(request.request_id, now=0.0)
        annotated = ruc.annotate_lineage(request.request_id, cat)
        assert annotated == 1
        got = cat.advisories(q)
        assert got and all(a["request_id"] == request.request_id for a in got)
        assert {a["verdict"] for a in got} == {"approve"}


class TestExport:
    def build_shuffled(self, order):
        cat = LineageCatalog()
        items = [
            ("part", ("oda", "d/p0"), {"dataset": "d", "key": "d/p0"}),
            ("batch", ("d", 30.0), {"dataset": "d"}),
            ("query_result", ("archive", "d", 1, ""), {}),
        ]
        for i in order:
            kind, coords, attrs = items[i]
            cat.record(kind, coords, attrs=attrs, span="")
        cat.link(node_id("batch", "d", 30.0), part_id("oda", "d/p0"))
        return cat

    def test_export_is_insertion_order_independent(self):
        a = self.build_shuffled([0, 1, 2])
        b = self.build_shuffled([2, 0, 1])
        assert a.export_json() == b.export_json()
        assert a.export_digest() == b.export_digest()

    def test_load_round_trips(self, tmp_path):
        cat = self.build_shuffled([0, 1, 2])
        path = tmp_path / "catalog.json"
        cat.write_json(path)
        back = LineageCatalog.read_json(path)
        assert back.export_json() == cat.export_json()
        assert back.live_parts() == cat.live_parts()


class TestBlastRadiusUnit:
    def test_clean_report_when_nothing_corrupted(self):
        cat = LineageCatalog()
        report = blast_radius(cat)
        assert report["clean"] is True
        assert report["corrupted_parts"] == []

    def test_duck_typed_injector_keys_merge_with_explicit(self):
        class FakeInjector:
            corrupted = [("tier.put", 3, "d/p1"), ("tier.put", 4, "d/p1")]

        cat = LineageCatalog()
        p0 = cat.record("part", ("oda", "d/p0"), attrs={"key": "d/p0"}, span="")
        cat.record("part", ("oda", "d/p1"), attrs={"key": "d/p1"}, span="")
        q = cat.record("query_result", ("archive", "d", 1, ""), span="")
        cat.link(p0, q, "read")
        report = blast_radius(
            cat, corrupted_keys=["d/p0"], injector=FakeInjector()
        )
        assert report["corrupted_parts"] == ["d/p0", "d/p1"]
        assert [n["id"] for n in report["affected"]["query_result"]] == [q]
        assert report["clean"] is False


class TestCLI:
    def dump(self, tmp_path):
        cat = LineageCatalog()
        p = cat.record(
            "part", ("oda", "d/p0"), attrs={"dataset": "d", "key": "d/p0"}, span=""
        )
        q = cat.record("query_result", ("archive", "d", 1, ""), span="")
        cat.link(p, q, "read")
        path = tmp_path / "catalog.json"
        cat.write_json(path)
        return str(path), p, q

    def test_report_text_and_json(self, tmp_path):
        path, p, q = self.dump(tmp_path)
        out = io.StringIO()
        assert lineage_main(["report", path], out=out) == 0
        text = out.getvalue()
        assert "2 nodes" in text and "d/p0" in text
        out = io.StringIO()
        assert lineage_main(["report", path, "--format", "json"], out=out) == 0
        payload = json.loads(out.getvalue())
        assert payload["by_kind"] == {"part": 1, "query_result": 1}
        assert payload["live_parts"] == ["d/p0"]

    def test_impact_down_and_up(self, tmp_path):
        path, p, q = self.dump(tmp_path)
        out = io.StringIO()
        rc = lineage_main(
            ["impact", path, "--part", "d/p0", "--format", "json"], out=out
        )
        assert rc == 0
        payload = json.loads(out.getvalue())
        assert payload["closure"] == {"query_result": [q]}
        out = io.StringIO()
        rc = lineage_main(
            ["impact", path, "--node", q, "--direction", "up", "--format", "json"],
            out=out,
        )
        assert rc == 0
        assert json.loads(out.getvalue())["closure"] == {"part": [p]}

    def test_impact_unknown_node_fails_cleanly(self, tmp_path):
        path, _, _ = self.dump(tmp_path)
        out = io.StringIO()
        assert lineage_main(["impact", path, "--part", "ghost"], out=out) == 1
