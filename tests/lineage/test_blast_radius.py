"""The acceptance proof: blast radius == brute-force replay diff.

A seeded ``CORRUPT_PART`` fault silently rewrites one OCEAN part's
values at the put site.  The lineage catalog must then *name* exactly
the artifacts and dashboard answers the fault could have touched — no
more (queries whose manifests pruned the part stay clean), no less
(rollup partials backfilled from the corrupted blob are implicated).
Brute force is the ground truth: a fault-free replay of the same seed,
diffed answer by answer.

And the whole account must be deterministic: the same seed and fault
plan produce byte-identical catalog exports and blast reports across
repeated runs and across serial / pipelined / sharded(3) deployments.
"""

import json

import numpy as np
import pytest

from repro.columnar import ColumnTable
from repro.core import DataPlaneOptions, ODAFramework
from repro.faults.injector import FaultInjector, FaultyObjectStore
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.lineage import LineageCatalog, blast_radius
from repro.obs import reset_all
from repro.serve import Request, ServingGateway, payload_digest
from repro.storage import DataClass, RollupSpec, TieredStore
from repro.telemetry import MINI, synthetic_job_mix

#: OCEAN put order within a window is fixed by the phase-2 commit loop:
#: power.silver, power.bronze, power.gold_profiles, storage_io.silver,
#: interconnect.silver, facility.silver.  Call 2 is therefore window
#: 0's power.bronze part.
BRONZE_W0_PUT = 2
BRONZE_W0_KEY = "power.bronze/part-00000000.rcf"

CORRUPT_PLAN = [
    FaultSpec("tier.put", FaultKind.CORRUPT_PART, at_call=BRONZE_W0_PUT)
]

#: The dashboard battery: one answer that must read the corrupted part,
#: one whose manifests prune it, one on an untouched dataset.
BATTERY = [
    ("t0", "bronze_window", {"t0": 0.0, "t1": 30.0}),   # reads the part
    ("t0", "bronze_window", {"t0": 30.0, "t1": 60.0}),  # pruned away
    ("t1", "silver_window", {"t0": 0.0, "t1": 60.0}),   # other dataset
]


def run_deployment(options, corrupt=False):
    reset_all()
    allocation = synthetic_job_mix(MINI, 0.0, 600.0, np.random.default_rng(11))
    fw = ODAFramework(MINI, allocation, seed=5, options=options)
    injector = None
    if corrupt:
        injector = FaultInjector(FaultPlan(list(CORRUPT_PLAN)))
        fw.tiers.ocean = FaultyObjectStore(fw.tiers.ocean, injector)
    fw.run(0.0, 60.0, 30.0)
    endpoints = {
        "bronze_window": lambda t0, t1: fw.tiers.query_archive(
            "power.bronze", t0, t1
        ),
        "silver_window": lambda t0, t1: fw.tiers.query_archive(
            "power.silver", t0, t1
        ),
    }
    digests = {}
    with ServingGateway(fw.tiers, endpoints, executor="serial") as gw:
        requests = [
            Request.make(tenant, endpoint, **kwargs)
            for tenant, endpoint, kwargs in BATTERY
        ]
        for i, env in enumerate(gw.submit_many(requests)):
            assert env.status == "ok", env.error
            digests[i] = env.digest
    # Map each battery entry (by index) to its envelope node via the
    # request fingerprint, which is part of the node's coordinates.
    by_coords = {
        tuple(n["coords"][:3]): n["id"]
        for n in fw.lineage.nodes("envelope")
    }
    envelope_of = {
        i: by_coords[(tenant, endpoint, Request.make(tenant, endpoint, **kwargs).fingerprint())]
        for i, (tenant, endpoint, kwargs) in enumerate(BATTERY)
    }
    return fw, injector, digests, envelope_of


SERIAL = dict(lineage=True, pipeline="off", executor="serial")


class TestBlastEqualsReplayDiff:
    @pytest.fixture(scope="class")
    def runs(self):
        bad = run_deployment(DataPlaneOptions(**SERIAL), corrupt=True)
        good = run_deployment(DataPlaneOptions(**SERIAL), corrupt=False)
        return bad, good

    def test_exactly_one_part_corrupted(self, runs):
        (_, injector, _, _), _ = runs
        assert injector.corrupted == [
            ("tier.put", BRONZE_W0_PUT, BRONZE_W0_KEY)
        ]

    def test_report_names_exactly_the_changed_answers(self, runs):
        (fw, injector, bad_digests, envelope_of), (_, _, good_digests, _) = runs
        report = blast_radius(fw.lineage, injector=injector)
        assert report["clean"] is False
        assert report["corrupted_parts"] == [BRONZE_W0_KEY]

        # Ground truth: which dashboard answers actually changed?
        truly_changed = {
            i
            for i in range(len(BATTERY))
            if bad_digests[i] != good_digests[i]
        }
        assert truly_changed == {0}  # sanity: fault had teeth

        flagged_envelopes = {
            n["id"] for n in report["affected"]["envelope"]
        }
        # The report names exactly the answers the replay diff found
        # changed — no phantom flags, no misses.
        assert flagged_envelopes == {envelope_of[i] for i in truly_changed}

    def test_clean_datasets_stay_out_of_the_radius(self, runs):
        (fw, injector, _, _), _ = runs
        report = blast_radius(fw.lineage, injector=injector)
        affected_parts = {n["coords"][1] for n in report["affected"]["part"]}
        assert affected_parts == {BRONZE_W0_KEY}
        for node in report["affected"]["query_result"]:
            assert node["coords"][1] == "power.bronze"


class TestDeterminism:
    def account(self, options):
        fw, injector, _, _ = run_deployment(options, corrupt=True)
        report = blast_radius(fw.lineage, injector=injector)
        return fw.lineage.export_json(), json.dumps(report, sort_keys=True)

    def test_same_seed_runs_are_byte_identical(self):
        assert self.account(DataPlaneOptions(**SERIAL)) == self.account(
            DataPlaneOptions(**SERIAL)
        )

    @pytest.mark.parametrize(
        "variant",
        [
            dict(lineage=True, pipeline="on", executor="threads"),
            dict(lineage=True, shards=3),
        ],
        ids=["pipelined", "sharded3"],
    )
    def test_executors_are_byte_identical(self, variant):
        assert self.account(DataPlaneOptions(**SERIAL)) == self.account(
            DataPlaneOptions(**variant)
        )


class TestRollupPartialsInTheRadius:
    """Store-level: a corrupted part implicates the partials and rollup
    answers backfilled from it, verified against a clean twin."""

    N_PARTS = 4
    CORRUPT_AT = 2  # part-00000001

    def batch(self, t_start, n=60):
        rng = np.random.default_rng(int(t_start) + 1)
        return ColumnTable(
            {
                "timestamp": t_start + np.arange(n, dtype=float),
                "node": rng.integers(0, 5, n),
                "input_power": rng.integers(50, 150, n).astype(float),
            }
        )

    def build(self, corrupt):
        ts = TieredStore(lineage=LineageCatalog())
        ts.register("d", DataClass.SILVER)
        injector = None
        if corrupt:
            injector = FaultInjector(
                FaultPlan(
                    [
                        FaultSpec(
                            "tier.put",
                            FaultKind.CORRUPT_PART,
                            at_call=self.CORRUPT_AT,
                        )
                    ]
                )
            )
            ts.ocean = FaultyObjectStore(ts.ocean, injector)
        for i in range(self.N_PARTS):
            ts.ingest("d", self.batch(i * 100.0), now=float(i))
        ts.add_rollup(
            RollupSpec(
                name="d.node_power", source="d", keys=("node",),
                value="input_power",
            )
        )
        agg = ts.query_rollup("d.node_power")
        return ts, injector, agg

    def test_partials_and_rollup_answer_implicated(self):
        ts, injector, bad_agg = self.build(corrupt=True)
        _, _, good_agg = self.build(corrupt=False)
        assert payload_digest(bad_agg) != payload_digest(good_agg)

        corrupted_key = injector.corrupted[0][2]
        report = blast_radius(ts.lineage, injector=injector)
        partial_keys = {
            n["coords"][1] for n in report["affected"]["rollup_partial"]
        }
        # Exactly the corrupted part's partial, not its siblings.
        assert partial_keys == {corrupted_key}
        # The merged rollup answer read every live partial, so it is in
        # the radius too.
        assert [
            n["coords"][0] for n in report["affected"]["query_result"]
        ] == ["rollup"]
