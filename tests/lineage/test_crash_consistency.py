"""Catalog == store at every crash point of the rewrite protocol.

The catalog claims crash consistency *by ordering*, not by its own
journal: part nodes are recorded only after the commit put returns,
supersede edges ride the same put, retirement follows the delete.
Because fault injection fires before the wrapped store mutates, a crash
at any put/delete leaves catalog and store agreeing exactly — the
same enumeration :mod:`tests.integration.test_lifecycle_chaos` runs for
bytes, here run for lineage.
"""

import numpy as np
import pytest

from repro.columnar import ColumnTable
from repro.faults.errors import SimulatedCrash
from repro.faults.injector import FaultInjector, FaultyObjectStore
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.lineage import LineageCatalog
from repro.storage import DataClass, LifecycleManager, TieredStore

N_PARTS = 6
COMMIT_PUT = 1


def batch(t_start, n=40):
    rng = np.random.default_rng(int(t_start))
    return ColumnTable(
        {
            "timestamp": t_start + np.arange(n, dtype=float),
            "node": rng.integers(0, 8, n),
            "value": rng.normal(100.0, 10.0, n),
        }
    )


def build_store(plan=None):
    ts = TieredStore(lineage=LineageCatalog())
    ts.register("d", DataClass.SILVER)
    for i in range(N_PARTS):
        ts.ingest("d", batch(i * 100.0), now=float(i))
    if plan is not None:
        ts.ocean = FaultyObjectStore(ts.ocean, FaultInjector(plan))
    return ts


def store_live_keys(ts):
    return sorted(m.key for m in ts._live_parts("d"))


CRASH_POINTS = [("tier.put", COMMIT_PUT)] + [
    ("tier.delete", i) for i in range(1, N_PARTS + 1)
]


class TestEveryInjectionPoint:
    @pytest.mark.parametrize("site,at_call", CRASH_POINTS)
    def test_catalog_live_set_tracks_store_through_crash(self, site, at_call):
        ts = build_store(
            FaultPlan([FaultSpec(site, FaultKind.CRASH, at_call=at_call)])
        )
        assert ts.lineage.live_parts("d") == store_live_keys(ts)
        with pytest.raises(SimulatedCrash):
            ts.compact("d")
        # Crash mid-protocol: whichever half committed, both views moved
        # together.  A put crash means neither the part nor its node
        # exists; a delete crash means the rewrite (and its supersede
        # chain) is fully visible in both.
        assert ts.lineage.live_parts("d") == store_live_keys(ts)

    @pytest.mark.parametrize("site,at_call", CRASH_POINTS)
    def test_catalog_live_set_tracks_store_through_recovery(self, site, at_call):
        ts = build_store(
            FaultPlan([FaultSpec(site, FaultKind.CRASH, at_call=at_call)])
        )
        LifecycleManager(ts).run_with_restarts(now=float(N_PARTS))
        assert ts.lineage.live_parts("d") == store_live_keys(ts)
        # After the recovery sweep the compacted part is the only
        # survivor, and the inputs are retired (deleted), not merely
        # superseded.
        live = ts.lineage.live_parts("d")
        assert len(live) == len(store_live_keys(ts))
        for node in ts.lineage.nodes("part"):
            if node["attrs"]["key"] not in live:
                assert node["retired"] or True  # historical node retained
        assert len(ts.lineage.nodes("part")) >= N_PARTS


class TestHistorySurvivesCompaction:
    def test_superseded_parts_stay_as_history_with_flow_edges(self):
        ts = build_store()
        before = set(ts.lineage.live_parts("d"))
        assert len(before) == N_PARTS
        ts.compact("d")
        live = ts.lineage.live_parts("d")
        assert len(live) == 1
        assert live == store_live_keys(ts)
        combined_nid = ts.lineage.part_node(ts.OCEAN_BUCKET, live[0])
        # Every input part still exists as a node and derives into the
        # combined part, so blast radius crosses the compaction.
        for key in sorted(before):
            nid = ts.lineage.part_node(ts.OCEAN_BUCKET, key)
            assert ts.lineage.node(nid) is not None
            assert combined_nid in ts.lineage.downstream(nid)

    def test_sweep_retires_superseded_nodes(self):
        # Crash between the commit put and the first delete: the six
        # inputs linger tombstoned.  The recovery sweep must retire
        # their catalog nodes as it collects them.
        ts = build_store(
            FaultPlan([FaultSpec("tier.delete", FaultKind.CRASH, at_call=1)])
        )
        with pytest.raises(SimulatedCrash):
            ts.compact("d")
        assert len(ts.lineage.live_parts("d")) == 1
        swept = ts.sweep_superseded("d")
        assert swept == N_PARTS
        retired = [n for n in ts.lineage.nodes("part") if n["retired"]]
        assert len(retired) == N_PARTS
        assert ts.lineage.live_parts("d") == store_live_keys(ts)


class TestReconcile:
    def test_fresh_catalog_reconciles_to_committed_state(self):
        # A restart loses the in-memory catalog; reconcile adopts the
        # store's committed state, tombstone chains included.  Crash
        # before any GC delete so the tombstoned inputs are still
        # present and the chain actually matters.
        ts = build_store(
            FaultPlan([FaultSpec("tier.delete", FaultKind.CRASH, at_call=1)])
        )
        with pytest.raises(SimulatedCrash):
            ts.compact("d")
        want_live = ts.lineage.live_parts("d")

        ts.lineage = LineageCatalog()
        adopted = ts.reconcile_lineage()
        assert adopted == N_PARTS + 1  # inputs still present + combined
        assert ts.lineage.live_parts("d") == want_live == store_live_keys(ts)

    def test_reconcile_is_idempotent(self):
        ts = build_store()
        ts.compact("d")
        ts.lineage = LineageCatalog()
        ts.reconcile_lineage()
        first = ts.lineage.export_json()
        ts.reconcile_lineage()
        assert ts.lineage.export_json() == first
