"""Unit tests for the aging-backfill policy."""

import numpy as np
import pytest

from repro.scheduler import (
    AgingBackfillPolicy,
    BackfillPolicy,
    JobRequest,
    SchedulerSimulator,
    submission_stream,
)
from repro.telemetry import MINI


def req(job_id, n_nodes, runtime, submit=0.0, priority=0):
    return JobRequest(
        job_id=job_id,
        user=f"user{job_id:03d}",
        project="PRJ001",
        archetype="climate",
        n_nodes=n_nodes,
        walltime_req_s=runtime,
        runtime_s=runtime,
        submit_time=submit,
        priority=priority,
    )


class TestAgingBackfillPolicy:
    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            AgingBackfillPolicy(aging_interval_s=0.0)

    def test_aged_job_overtakes_fresh_priority(self):
        """A job waiting many aging intervals outranks a fresher,
        nominally higher-priority submission."""
        requests = [
            req(1, 16, 7200.0, submit=0.0),               # hogs the machine
            req(2, 8, 600.0, submit=10.0, priority=0),    # waits long
            req(3, 8, 600.0, submit=7000.0, priority=1),  # fresh, higher prio
        ]
        sim = SchedulerSimulator(
            MINI, AgingBackfillPolicy(aging_interval_s=600.0),
            failure_rate=0.0, seed=0,
        )
        sim.run(requests)
        # Job 2 aged ~11 intervals by t=7200; effective prio beats 1.
        assert sim.records[2].start_time <= sim.records[3].start_time

    def test_without_aging_priority_wins(self):
        requests = [
            req(1, 16, 7200.0, submit=0.0),
            req(2, 8, 600.0, submit=10.0, priority=0),
            req(3, 8, 600.0, submit=7000.0, priority=1),
        ]
        sim = SchedulerSimulator(
            MINI, BackfillPolicy(), failure_rate=0.0, seed=0
        )
        sim.run(requests)
        assert sim.records[3].start_time <= sim.records[2].start_time

    def test_aging_bounds_worst_case_wait(self):
        """Aging compresses the wait-time tail on a congested day."""
        requests = submission_stream(
            MINI, 86_400.0, np.random.default_rng(23),
            arrival_rate_per_hour=40.0,
        )
        plain = SchedulerSimulator(MINI, BackfillPolicy(), 0.0, seed=0)
        plain.run(requests)
        aged = SchedulerSimulator(
            MINI, AgingBackfillPolicy(aging_interval_s=1800.0), 0.0, seed=0
        )
        aged.run(requests)
        # Aging must not collapse throughput...
        assert aged.metrics().utilization > 0.8 * plain.metrics().utilization
        # ...and the starvation tail must not get dramatically worse.
        assert aged.metrics().p95_wait_s < 1.5 * plain.metrics().p95_wait_s

    def test_all_jobs_complete(self):
        requests = submission_stream(
            MINI, 21_600.0, np.random.default_rng(24)
        )
        sim = SchedulerSimulator(MINI, AgingBackfillPolicy(), 0.0, seed=0)
        sim.run(requests)
        assert len(sim.completed_records()) == len(requests)
