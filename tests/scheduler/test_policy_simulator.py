"""Unit + integration tests for policies and the event simulator."""

import numpy as np
import pytest

from repro.scheduler import (
    BackfillPolicy,
    FifoPolicy,
    JobRequest,
    JobState,
    SchedulerSimulator,
    submission_stream,
)
from repro.telemetry import MINI


def req(job_id, n_nodes, runtime, submit=0.0, walltime=None, archetype="climate"):
    return JobRequest(
        job_id=job_id,
        user=f"user{job_id:03d}",
        project="PRJ001",
        archetype=archetype,
        n_nodes=n_nodes,
        walltime_req_s=walltime or runtime,
        runtime_s=runtime,
        submit_time=submit,
    )


def run(policy, requests, machine=MINI, failure_rate=0.0):
    sim = SchedulerSimulator(machine, policy, failure_rate=failure_rate, seed=0)
    sim.run(requests)
    return sim


class TestFifo:
    def test_serial_when_machine_full(self):
        # Two 16-node jobs on a 16-node machine must serialize.
        sim = run(FifoPolicy(), [req(1, 16, 100.0), req(2, 16, 100.0, submit=1.0)])
        r1, r2 = sim.records[1], sim.records[2]
        assert r1.start_time == 0.0
        assert r2.start_time == pytest.approx(100.0)

    def test_head_blocks_small_followers(self):
        # Head needs 16 nodes; a 1-node job behind it must wait under FIFO.
        requests = [
            req(1, 12, 100.0),            # occupies most of the machine
            req(2, 16, 50.0, submit=1.0),  # blocked head
            req(3, 1, 10.0, submit=2.0),   # could run, FIFO says no
        ]
        sim = run(FifoPolicy(), requests)
        assert sim.records[3].start_time >= sim.records[2].start_time


class TestBackfill:
    def test_small_job_backfills_into_hole(self):
        requests = [
            req(1, 12, 100.0, walltime=100.0),
            req(2, 16, 50.0, submit=1.0, walltime=50.0),   # blocked head
            req(3, 1, 10.0, submit=2.0, walltime=10.0),    # fits before shadow
        ]
        sim = run(BackfillPolicy(), requests)
        # Job 3 ends by 12 < shadow (100), so it backfills immediately.
        assert sim.records[3].start_time == pytest.approx(2.0)
        # And the head still starts when job 1 releases nodes.
        assert sim.records[2].start_time == pytest.approx(100.0)

    def test_backfill_never_delays_head(self):
        requests = [
            req(1, 12, 100.0, walltime=100.0),
            req(2, 16, 50.0, submit=1.0, walltime=50.0),
            # Long walltime, needs nodes the head will use: must NOT backfill.
            req(3, 4, 300.0, submit=2.0, walltime=300.0),
        ]
        sim = run(BackfillPolicy(), requests)
        assert sim.records[2].start_time == pytest.approx(100.0)
        assert sim.records[3].start_time >= 100.0

    def test_backfill_beats_fifo_on_utilization(self):
        requests = submission_stream(
            MINI, 86_400.0, np.random.default_rng(3), arrival_rate_per_hour=30.0
        )
        fifo = run(FifoPolicy(), requests).metrics()
        backfill = run(BackfillPolicy(), requests).metrics()
        assert backfill.mean_wait_s <= fifo.mean_wait_s
        assert backfill.utilization >= fifo.utilization * 0.98


class TestSimulator:
    def test_no_node_oversubscription(self):
        requests = submission_stream(
            MINI, 43_200.0, np.random.default_rng(1), arrival_rate_per_hour=20.0
        )
        sim = run(BackfillPolicy(), requests)
        table = sim.allocation_table()  # construction checks conflicts
        assert len(table) == len(sim.completed_records())

    def test_all_jobs_eventually_run(self):
        requests = submission_stream(
            MINI, 21_600.0, np.random.default_rng(2)
        )
        sim = run(BackfillPolicy(), requests)
        assert len(sim.completed_records()) == len(requests)

    def test_oversized_job_rejected(self):
        with pytest.raises(ValueError):
            run(FifoPolicy(), [req(1, MINI.n_nodes + 1, 100.0)])

    def test_failure_rate_marks_jobs(self):
        requests = [req(i, 1, 10.0, submit=float(i)) for i in range(1, 101)]
        sim = run(FifoPolicy(), requests, failure_rate=0.3)
        failed = [r for r in sim.records.values() if r.state is JobState.FAILED]
        assert 10 < len(failed) < 60

    def test_invalid_failure_rate(self):
        with pytest.raises(ValueError):
            SchedulerSimulator(MINI, FifoPolicy(), failure_rate=1.0)

    def test_metrics_sane(self):
        requests = submission_stream(
            MINI, 43_200.0, np.random.default_rng(4), arrival_rate_per_hour=20.0
        )
        metrics = run(BackfillPolicy(), requests).metrics()
        assert metrics.n_completed == len(requests)
        assert 0.0 < metrics.utilization <= 1.0
        assert metrics.p95_wait_s >= metrics.mean_wait_s * 0.5

    def test_empty_run(self):
        sim = SchedulerSimulator(MINI, FifoPolicy())
        sim.run([])
        assert sim.metrics().n_completed == 0


class TestSubmissionStream:
    def test_deterministic(self):
        a = submission_stream(MINI, 3600.0, np.random.default_rng(7))
        b = submission_stream(MINI, 3600.0, np.random.default_rng(7))
        assert [r.job_id for r in a] == [r.job_id for r in b]
        assert [r.submit_time for r in a] == [r.submit_time for r in b]

    def test_rate_roughly_respected(self):
        reqs = submission_stream(
            MINI, 36_000.0, np.random.default_rng(8), arrival_rate_per_hour=12.0
        )
        assert len(reqs) == pytest.approx(120, rel=0.4)

    def test_walltime_always_covers_runtime(self):
        for r in submission_stream(MINI, 7200.0, np.random.default_rng(9)):
            assert r.walltime_req_s >= r.runtime_s

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            submission_stream(MINI, 0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            submission_stream(
                MINI, 10.0, np.random.default_rng(0), arrival_rate_per_hour=0.0
            )
