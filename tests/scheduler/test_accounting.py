"""Unit tests for the accounting ledger (RATS substrate)."""

import numpy as np
import pytest

from repro.scheduler import (
    AccountingLedger,
    BackfillPolicy,
    ProjectAllocation,
    SchedulerSimulator,
    submission_stream,
)
from repro.telemetry import MINI


@pytest.fixture(scope="module")
def ledger():
    requests = submission_stream(
        MINI, 86_400.0, np.random.default_rng(0), arrival_rate_per_hour=20.0,
        projects=3,
    )
    sim = SchedulerSimulator(MINI, BackfillPolicy(), failure_rate=0.1, seed=0)
    sim.run(requests)
    ledger = AccountingLedger(gpus_per_node=MINI.gpus_per_node)
    for p in ("PRJ000", "PRJ001", "PRJ002"):
        ledger.grant(ProjectAllocation(p, 10_000.0, 0.0, 30 * 86_400.0))
    ledger.ingest(sim.completed_records())
    return ledger, sim


class TestProjectAllocation:
    def test_invalid_grant(self):
        with pytest.raises(ValueError):
            ProjectAllocation("p", 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            ProjectAllocation("p", 10.0, 1.0, 1.0)

    def test_duplicate_grant_rejected(self, ledger):
        led, _ = ledger
        with pytest.raises(ValueError):
            led.grant(ProjectAllocation("PRJ000", 1.0, 0.0, 1.0))


class TestUsage:
    def test_node_hours_match_job_records(self, ledger):
        led, sim = ledger
        total_from_jobs = sum(r.node_hours for r in sim.completed_records())
        total_from_ledger = sum(
            led.project_node_hours(p) for p in led.projects()
        )
        assert total_from_ledger == pytest.approx(total_from_jobs)

    def test_gpu_hours_scale_with_gpus_per_node(self, ledger):
        led, _ = ledger
        p = led.projects()[0]
        usage = led._by_project[p]
        assert usage.gpu_hours == pytest.approx(
            usage.node_hours * MINI.gpus_per_node
        )

    def test_failed_jobs_counted(self, ledger):
        led, sim = ledger
        total_failed = sum(
            led.project_job_counts(p)[1] for p in led.projects()
        )
        from repro.scheduler import JobState

        assert total_failed == sum(
            1 for r in sim.completed_records() if r.state is JobState.FAILED
        )

    def test_unknown_project_zero(self, ledger):
        led, _ = ledger
        assert led.project_node_hours("NOPE") == 0.0
        assert led.user_node_hours("nobody") == 0.0


class TestBurnRate:
    def test_burn_rate_fields(self, ledger):
        led, _ = ledger
        rate = led.burn_rate("PRJ000", now=15 * 86_400.0)
        assert rate["used_node_hours"] >= 0
        assert rate["ideal_node_hours"] == pytest.approx(5_000.0)
        assert rate["remaining_node_hours"] == pytest.approx(
            10_000.0 - rate["used_node_hours"]
        )

    def test_remaining_node_hours(self, ledger):
        led, _ = ledger
        for p in led.projects():
            assert led.remaining_node_hours(p) == pytest.approx(
                10_000.0 - led.project_node_hours(p)
            )

    def test_usage_series_monotone_and_matches_total(self, ledger):
        led, sim = ledger
        p = led.projects()[0]
        t_end = max(r.end_time for r in sim.completed_records())
        times, series = led.usage_series(p, 3600.0, t_end)
        assert (np.diff(series) >= -1e-9).all()
        assert series[-1] == pytest.approx(led.project_node_hours(p), rel=1e-6)

    def test_daily_log_lines_scales(self, ledger):
        led, _ = ledger
        assert led.daily_log_lines() > 0
