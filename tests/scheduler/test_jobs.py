"""Unit tests for job requests/records."""

import numpy as np
import pytest

from repro.scheduler import JobRecord, JobRequest, JobState


def make_request(**kw):
    defaults = dict(
        job_id=1,
        user="user001",
        project="PRJ001",
        archetype="climate",
        n_nodes=4,
        walltime_req_s=3600.0,
        runtime_s=1800.0,
        submit_time=0.0,
    )
    defaults.update(kw)
    return JobRequest(**defaults)


class TestJobRequest:
    def test_valid(self):
        req = make_request()
        assert req.n_nodes == 4

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            make_request(n_nodes=0)

    def test_invalid_times(self):
        with pytest.raises(ValueError):
            make_request(runtime_s=0.0)
        with pytest.raises(ValueError):
            make_request(walltime_req_s=-1.0)

    def test_runtime_beyond_walltime_rejected(self):
        with pytest.raises(ValueError):
            make_request(runtime_s=7200.0, walltime_req_s=3600.0)

    def test_unknown_archetype(self):
        with pytest.raises(ValueError):
            make_request(archetype="quantum")


class TestJobRecord:
    def test_initial_state(self):
        record = JobRecord(make_request())
        assert record.state is JobState.QUEUED
        assert record.wait_time_s is None
        assert record.node_hours == 0.0

    def test_wait_and_node_hours(self):
        record = JobRecord(make_request(submit_time=100.0))
        record.start_time = 400.0
        record.end_time = 400.0 + 1800.0
        record.nodes = np.arange(4, dtype=np.int32)
        assert record.wait_time_s == 300.0
        assert record.node_hours == pytest.approx(4 * 0.5)

    def test_to_spec_roundtrip(self):
        record = JobRecord(make_request())
        record.start_time = 0.0
        record.end_time = 1800.0
        record.nodes = np.array([3, 1, 2], dtype=np.int32)
        spec = record.to_spec()
        assert spec.job_id == 1
        assert spec.duration == 1800.0
        np.testing.assert_array_equal(spec.nodes, [1, 2, 3])

    def test_to_spec_requires_run(self):
        with pytest.raises(ValueError):
            JobRecord(make_request()).to_spec()
