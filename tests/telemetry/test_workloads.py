"""Unit tests for workload archetypes."""

import numpy as np
import pytest

from repro.telemetry import ARCHETYPES, archetype_names, get_archetype


class TestRegistry:
    def test_expected_archetypes_present(self):
        for name in ("hpl", "ml_training", "climate", "io_heavy",
                      "molecular", "debug", "idle"):
            assert name in ARCHETYPES

    def test_get_unknown_raises_with_candidates(self):
        with pytest.raises(ValueError, match="hpl"):
            get_archetype("nope")

    def test_names_sorted(self):
        names = archetype_names()
        assert names == sorted(names)


class TestProfiles:
    @pytest.mark.parametrize("name", sorted(ARCHETYPES))
    def test_utilization_bounded(self, name):
        arch = get_archetype(name)
        t = np.linspace(0, 7200.0, 500)
        g = arch.gpu_utilization(t, 7200.0)
        c = arch.cpu_utilization(t, 7200.0)
        assert ((g >= 0) & (g <= 1)).all()
        assert ((c >= 0) & (c <= 1)).all()

    @pytest.mark.parametrize("name", sorted(ARCHETYPES))
    def test_profiles_deterministic(self, name):
        arch = get_archetype(name)
        t = np.linspace(0, 3600.0, 100)
        np.testing.assert_array_equal(
            arch.gpu_utilization(t, 3600.0), arch.gpu_utilization(t, 3600.0)
        )

    def test_hpl_sustains_near_peak(self):
        arch = get_archetype("hpl")
        t = np.linspace(0.3, 0.7, 50) * 10000.0
        assert arch.gpu_utilization(t, 10000.0).min() > 0.9

    def test_idle_is_low(self):
        arch = get_archetype("idle")
        t = np.linspace(0, 3600, 50)
        assert arch.gpu_utilization(t, 3600.0).max() < 0.1

    def test_ml_training_has_checkpoint_dips(self):
        arch = get_archetype("ml_training")
        t = np.linspace(200, 43200, 5000)
        g = arch.gpu_utilization(t, 43200.0)
        assert g.max() > 0.8
        assert g.min() < 0.5  # dips exist

    def test_shapes_distinguishable(self):
        """Mean utilization separates at least the extreme archetypes."""
        t = np.linspace(0, 7200, 1000)
        means = {
            name: get_archetype(name).gpu_utilization(t, 7200.0).mean()
            for name in ARCHETYPES
        }
        assert means["hpl"] > means["climate"] > means["io_heavy"] > means["idle"]
