"""Property tests for the vectorized emission paths.

Two laws the data plane's speedup rests on, checked across *random*
seeds and windows rather than the fixed cases in ``test_batch_emit``:

* **oracle equivalence** — every vectorized ``emit`` is byte-identical
  to its ``emit_reference`` loop, whatever the seed or window;
* **split invariance** — ``emit([a, c))`` equals
  ``concat(emit([a, b)), emit([b, c)))`` for any interior split, so
  replay and the pipelined window schedule cannot depend on how a time
  range is chopped into windows.

The fused noise helpers the fast paths lean on are held to the scalar
splitmix64 reference directly, bit for bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import MINI, FleetTelemetry, synthetic_job_mix
from repro.telemetry.schema import ObservationBatch
from repro.util.noise import (
    normal_from_index,
    normal_from_index_tags,
    uniform_from_index,
    uniform_from_index_tags,
)

HORIZON_S = 240.0
SOURCES = ("power", "perf", "storage_io", "interconnect", "syslog", "facility")


def make_fleet(seed: int) -> FleetTelemetry:
    rng = np.random.default_rng(5)
    allocation = synthetic_job_mix(MINI, 0.0, HORIZON_S, rng)
    return FleetTelemetry(MINI, allocation, seed=seed)


def batch_bytes(batch) -> tuple:
    out = []
    for name in ("timestamps", "component_ids", "sensor_ids", "values",
                 "severities", "message_ids"):
        a = getattr(batch, name, None)
        out.append(None if a is None else (a.dtype.str, a.tobytes()))
    return tuple(out)


# Quarter-second grid points inside [0, HORIZON_S + 60): covers aligned
# and unaligned window edges for every source cadence in the fleet.
_edges = st.integers(0, int((HORIZON_S + 60.0) * 4))


class TestEmitMatchesReferenceRandomized:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), e0=_edges, e1=_edges)
    def test_random_seed_and_window(self, seed, e0, e1):
        t0, t1 = sorted((e0 / 4.0, e1 / 4.0))
        fleet = make_fleet(seed)
        for name in SOURCES:
            source = getattr(fleet, name)
            fast = source.emit(t0, t1)
            ref = source.emit_reference(t0, t1)
            assert batch_bytes(fast) == batch_bytes(ref), name


class TestSplitInvariance:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        edges=st.lists(_edges, min_size=3, max_size=5, unique=True),
    )
    def test_any_split_concatenates_exactly(self, seed, edges):
        """emit over one span == concat of emits over any partition."""
        cuts = sorted(e / 4.0 for e in edges)
        t0, t1 = cuts[0], cuts[-1]
        fleet = make_fleet(seed)
        for name in SOURCES:
            source = getattr(fleet, name)
            whole = source.emit(t0, t1)
            parts = [
                source.emit(a, b) for a, b in zip(cuts, cuts[1:])
            ]
            glued = type(whole).concat(
                [p for p in parts if len(p)] or [whole.empty()]
            )
            assert batch_bytes(whole) == batch_bytes(glued), name

    def test_documented_law_holds(self):
        """The ISSUE's literal law: [0,60) == [0,30) ++ [30,60)."""
        fleet = make_fleet(9)
        for name in SOURCES:
            source = getattr(fleet, name)
            whole = source.emit(0.0, 60.0)
            glued = ObservationBatch.concat(
                [source.emit(0.0, 30.0), source.emit(30.0, 60.0)]
            ) if name != "syslog" else type(whole).concat(
                [source.emit(0.0, 30.0), source.emit(30.0, 60.0)]
            )
            assert batch_bytes(whole) == batch_bytes(glued), name


class TestFusedNoiseHelpers:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(0, 2**63 - 1),
        tags=st.lists(st.integers(0, 10_000), min_size=1, max_size=8),
        n=st.integers(0, 40),
    )
    def test_tags_rows_match_scalar_reference(self, seed, tags, n):
        idx = (np.arange(n, dtype=np.uint64) * np.uint64(977)) + np.uint64(3)
        tag_arr = np.asarray(tags, dtype=np.uint64)
        u = uniform_from_index_tags(seed, tag_arr, idx)
        g = normal_from_index_tags(seed, tag_arr, idx)
        for i, tag in enumerate(tags):
            assert u[i].tobytes() == uniform_from_index(seed, tag, idx).tobytes()
            assert g[i].tobytes() == normal_from_index(seed, tag, idx).tobytes()

    def test_2d_index_grids(self):
        idx = np.arange(35, dtype=np.uint64).reshape(5, 7) * np.uint64(1 << 40)
        tags = np.array([3, 500, 4000], dtype=np.uint64)
        u = uniform_from_index_tags(7, tags, idx)
        g = normal_from_index_tags(7, tags, idx)
        assert u.shape == g.shape == (3, 5, 7)
        for i, tag in enumerate(tags.tolist()):
            assert u[i].tobytes() == uniform_from_index(7, tag, idx).tobytes()
            assert g[i].tobytes() == normal_from_index(7, tag, idx).tobytes()

    def test_scalar_tag_promotes(self):
        idx = np.arange(9, dtype=np.uint64)
        g = normal_from_index_tags(1, np.uint64(12), idx)
        assert g[0].tobytes() == normal_from_index(1, 12, idx).tobytes()


@pytest.mark.parametrize("source_name", SOURCES)
def test_empty_window_is_empty(source_name):
    fleet = make_fleet(2)
    source = getattr(fleet, source_name)
    assert len(source.emit(40.0, 40.0)) == 0
