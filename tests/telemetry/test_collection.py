"""Unit tests for collection-path planning (§IV-B)."""

import pytest

from repro.telemetry import (
    IN_BAND,
    OUT_OF_BAND,
    CollectionPath,
    plan_collection,
)


class TestProfiles:
    def test_in_band_overhead_grows_with_rate(self):
        low = IN_BAND.app_overhead(channels=10, rate_hz=1.0)
        high = IN_BAND.app_overhead(channels=10, rate_hz=10.0)
        assert high == pytest.approx(10 * low)

    def test_out_of_band_zero_overhead(self):
        assert OUT_OF_BAND.app_overhead(channels=100, rate_hz=10.0) == 0.0

    def test_out_of_band_rate_ceiling(self):
        assert OUT_OF_BAND.feasible(channels=26, rate_hz=1.0)
        assert not OUT_OF_BAND.feasible(channels=80, rate_hz=1.0)

    def test_in_band_unbounded_rate(self):
        assert IN_BAND.feasible(channels=10_000, rate_hz=100.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            IN_BAND.app_overhead(-1, 1.0)


class TestPlanCollection:
    def test_power_stream_goes_out_of_band(self):
        """26 channels at 1 Hz fits the BMC path: zero app overhead."""
        plan = plan_collection(channels=26, rate_hz=1.0)
        assert plan.profile.path is CollectionPath.OUT_OF_BAND
        assert plan.app_overhead == 0.0

    def test_perf_counters_forced_in_band(self):
        """80 channels at 1 Hz exceeds the OOB ceiling but the in-band
        overhead (0.08%) still fits a 1% budget."""
        plan = plan_collection(channels=80, rate_hz=1.0)
        assert plan.profile.path is CollectionPath.IN_BAND
        assert 0 < plan.app_overhead <= 0.01

    def test_excessive_rate_rejected_with_guidance(self):
        with pytest.raises(ValueError, match="vendor"):
            plan_collection(channels=80, rate_hz=100.0, overhead_budget=0.01)

    def test_budget_tightening_changes_outcome(self):
        # 80ch @ 10Hz in-band costs 0.8%: fine at 1%, rejected at 0.5%.
        plan_collection(channels=80, rate_hz=10.0, overhead_budget=0.01)
        with pytest.raises(ValueError):
            plan_collection(channels=80, rate_hz=10.0, overhead_budget=0.005)

    def test_invalid_plan_inputs(self):
        with pytest.raises(ValueError):
            plan_collection(channels=0, rate_hz=1.0)
        with pytest.raises(ValueError):
            plan_collection(channels=1, rate_hz=0.0)

    def test_loss_expectation_reported(self):
        plan = plan_collection(channels=26, rate_hz=1.0)
        assert plan.expected_loss == OUT_OF_BAND.loss_rate
