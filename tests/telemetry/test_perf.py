"""Unit tests for the perf-counter stream (the L0 inundation source)."""

import numpy as np
import pytest

from repro.telemetry import MINI, PerfCounterSource, synthetic_job_mix
from repro.telemetry.perf import COUNTERS_PER_GPU


@pytest.fixture(scope="module")
def allocation():
    return synthetic_job_mix(MINI, 0.0, 3600.0, np.random.default_rng(13))


class TestPerfCounterSource:
    def test_channel_count_scales_with_gpus(self, allocation):
        src = PerfCounterSource(MINI, allocation)
        assert len(src.catalog) == MINI.gpus_per_node * COUNTERS_PER_GPU

    def test_counters_track_utilization(self, allocation):
        """Idle nodes report ~zero; busy nodes report archetype-driven
        counter values."""
        src = PerfCounterSource(MINI, allocation, seed=0, loss_rate=0.0)
        times = src.sample_times(0.0, 120.0)
        gpu_u, _, _ = allocation.utilization(src.nodes, times)
        batch = src.emit(0.0, 120.0)
        sid = src.catalog.id_of("gpu0_occupancy_pct")
        chan = batch.select_sensor(sid)
        # Partition values by whether the node was busy on average.
        busy_nodes = set(
            np.asarray(src.nodes)[gpu_u.mean(axis=1) > 0.3].tolist()
        )
        if not busy_nodes or len(busy_nodes) == src.nodes.size:
            pytest.skip("mix has no idle/busy contrast in this window")
        busy_mask = np.isin(chan.component_ids, list(busy_nodes))
        assert chan.values[busy_mask].mean() > 5 * max(
            chan.values[~busy_mask].mean(), 1e-9
        )

    def test_counter_scales_span_decades(self, allocation):
        src = PerfCounterSource(MINI, allocation, seed=0)
        assert src._scales.max() / src._scales.min() > 10

    def test_nonnegative(self, allocation):
        batch = PerfCounterSource(MINI, allocation, seed=0).emit(0.0, 60.0)
        assert (batch.values >= 0).all()

    def test_dominant_volume(self, allocation):
        """Perf counters out-emit the power stream (the inundation)."""
        from repro.telemetry import PowerThermalSource

        perf = PerfCounterSource(MINI, allocation)
        power = PowerThermalSource(MINI, allocation)
        assert perf.nominal_bytes_per_day() > 2 * power.nominal_bytes_per_day()

    def test_low_loss_rate(self, allocation):
        src = PerfCounterSource(MINI, allocation, seed=0)
        lossless = PerfCounterSource(MINI, allocation, seed=0, loss_rate=0.0)
        n = len(src.emit(0.0, 60.0))
        n0 = len(lossless.emit(0.0, 60.0))
        assert n <= n0
        assert n > 0.99 * n0  # default loss is 0.2%
