"""Unit tests for telemetry record schemas."""

import numpy as np
import pytest

from repro.telemetry import ObservationBatch, EventBatch, SensorCatalog, SensorSpec
from repro.telemetry.schema import RAW_EVENT_BYTES, RAW_OBSERVATION_BYTES


def make_batch(n=5):
    return ObservationBatch(
        timestamps=np.arange(n, dtype=float)[::-1].copy(),
        component_ids=np.arange(n),
        sensor_ids=np.array([0, 1, 0, 1, 0])[:n],
        values=np.linspace(0, 1, n),
    )


class TestSensorSpec:
    def test_sample_rate(self):
        spec = SensorSpec("p", "W", 0.5, "node")
        assert spec.sample_rate_hz == 2.0

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            SensorSpec("p", "W", 0.0, "node")

    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            SensorSpec("p", "W", 1.0, "node", loss_rate=1.0)


class TestSensorCatalog:
    def test_ids_are_dense(self):
        cat = SensorCatalog([SensorSpec("a", "W", 1, "node"),
                             SensorSpec("b", "W", 1, "node")])
        assert cat.id_of("a") == 0
        assert cat.id_of("b") == 1
        assert len(cat) == 2

    def test_duplicate_rejected(self):
        cat = SensorCatalog([SensorSpec("a", "W", 1, "node")])
        with pytest.raises(ValueError):
            cat.add(SensorSpec("a", "W", 1, "node"))

    def test_roundtrip_spec(self):
        cat = SensorCatalog([SensorSpec("a", "W", 1, "node")])
        assert cat.spec(cat.id_of("a")).name == "a"
        assert "a" in cat
        assert cat.names() == ["a"]


class TestObservationBatch:
    def test_length_and_bytes(self):
        b = make_batch(5)
        assert len(b) == 5
        assert b.nbytes_raw == 5 * RAW_OBSERVATION_BYTES

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ObservationBatch(
                timestamps=np.zeros(2),
                component_ids=np.zeros(3),
                sensor_ids=np.zeros(2),
                values=np.zeros(2),
            )

    def test_empty(self):
        b = ObservationBatch.empty()
        assert len(b) == 0 and b.nbytes_raw == 0

    def test_concat_orders_batches(self):
        a, b = make_batch(2), make_batch(3)
        c = ObservationBatch.concat([a, b])
        assert len(c) == 5
        np.testing.assert_array_equal(c.timestamps[:2], a.timestamps)

    def test_concat_empty_list(self):
        assert len(ObservationBatch.concat([])) == 0

    def test_sorted_by_time(self):
        s = make_batch(5).sorted_by_time()
        assert (np.diff(s.timestamps) >= 0).all()

    def test_select_sensor(self):
        sel = make_batch(5).select_sensor(1)
        assert (sel.sensor_ids == 1).all()
        assert len(sel) == 2

    def test_columns_zero_copy(self):
        b = make_batch(3)
        cols = b.columns()
        assert cols["value"] is b.values

    def test_dtype_coercion(self):
        b = make_batch(3)
        assert b.timestamps.dtype == np.float64
        assert b.component_ids.dtype == np.int32
        assert b.sensor_ids.dtype == np.int16


class TestEventBatch:
    def make(self):
        return EventBatch(
            timestamps=np.array([3.0, 1.0, 2.0]),
            component_ids=np.array([0, 1, 2]),
            severities=np.array([0, 3, 4]),
            message_ids=np.array([0, 15, 19]),
        )

    def test_bytes(self):
        assert self.make().nbytes_raw == 3 * RAW_EVENT_BYTES

    def test_sorted(self):
        s = self.make().sorted_by_time()
        assert list(s.timestamps) == [1.0, 2.0, 3.0]

    def test_severity_filter(self):
        errors = self.make().at_least("error")
        assert len(errors) == 2
        assert (errors.severities >= 3).all()

    def test_render(self):
        lines = self.make().render(["t%d" % i for i in range(21)], limit=2)
        assert len(lines) == 2
        assert "DEBUG" in lines[0]

    def test_concat(self):
        c = EventBatch.concat([self.make(), EventBatch.empty(), self.make()])
        assert len(c) == 6
