"""Unit tests for machine configurations."""

import pytest

from repro.telemetry import COMPASS, MINI, MOUNTAIN, MachineConfig


class TestPresets:
    def test_compass_is_frontier_scale(self):
        assert COMPASS.n_nodes == 74 * 128
        assert COMPASS.gpus_per_node == 4

    def test_mountain_is_summit_scale(self):
        assert MOUNTAIN.n_nodes == 4608
        assert MOUNTAIN.gpus_per_node == 6

    def test_mini_is_small(self):
        assert MINI.n_nodes == 16

    def test_peak_power_in_plausible_range(self):
        # Frontier's envelope is ~30 MW; our model should be same order.
        assert 10e6 < COMPASS.peak_it_power_w < 60e6


class TestMachineConfig:
    def test_cabinet_of(self):
        assert MINI.cabinet_of(0) == 0
        assert MINI.cabinet_of(8) == 1

    def test_cabinet_of_out_of_range(self):
        with pytest.raises(ValueError):
            MINI.cabinet_of(MINI.n_nodes)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            MachineConfig("x", 0, 1, 1, 1, 1.0, 1.0, 10.0, 100.0)

    def test_invalid_power_envelope(self):
        with pytest.raises(ValueError):
            MachineConfig("x", 1, 1, 1, 1, 1.0, 1.0, 100.0, 100.0)

    def test_scaled_preserves_per_node_characteristics(self):
        small = COMPASS.scaled(32)
        assert small.n_nodes >= 32
        assert small.gpu_tdp_w == COMPASS.gpu_tdp_w
        assert small.node_max_w == COMPASS.node_max_w

    def test_scaled_handles_tiny_counts(self):
        assert COMPASS.scaled(1).n_nodes >= 1
