"""Unit tests for fleet assembly and volume accounting."""

import numpy as np
import pytest

from repro.telemetry import COMPASS, FleetTelemetry, MINI, synthetic_job_mix
from repro.util import TB


@pytest.fixture(scope="module")
def fleet():
    allocation = synthetic_job_mix(MINI, 0.0, 3600.0, np.random.default_rng(0))
    f = FleetTelemetry(MINI, allocation, seed=0)
    for t in (0.0, 60.0):
        f.emit_window(t, t + 60.0)
    return f


class TestFleetTelemetry:
    def test_emits_all_streams(self, fleet):
        batches = fleet.emit_window(120.0, 180.0)
        assert set(batches) == {
            "power", "perf_counters", "syslog", "storage_io",
            "interconnect", "facility",
        }

    def test_volume_accounting_accumulates(self, fleet):
        vols = fleet.volumes
        assert vols["power"].rows > 0
        assert vols["power"].raw_bytes > 0
        assert vols["power"].windows >= 2

    def test_high_rate_streams_dominate_volume(self, fleet):
        """Perf counters and per-component power dwarf everything else —
        the paper's inundation ordering."""
        daily = fleet.extrapolated_bytes_per_day()
        assert daily["perf_counters"] > daily["power"]
        assert daily["power"] > daily["storage_io"]
        assert daily["power"] > daily["interconnect"]
        assert daily["power"] > daily["facility"]

    def test_total_it_power_positive_and_bounded(self, fleet):
        p = fleet.total_it_power(np.array([100.0, 200.0]))
        assert (p > 0).all()
        assert (p <= MINI.peak_it_power_w).all()

    def test_extrapolation_matches_nominal_order(self, fleet):
        observed = fleet.extrapolated_bytes_per_day()
        nominal = fleet.nominal_fleet_bytes_per_day()
        for name in ("power", "storage_io", "interconnect"):
            assert observed[name] == pytest.approx(nominal[name], rel=0.25)


class TestCompassScaleExtrapolation:
    def test_compass_power_stream_near_half_terabyte_per_day(self):
        """Paper: ~0.5 TB/day of power profiling data for Frontier.

        We emit a 16-node subset and extrapolate to the 9472-node fleet.
        """
        nodes = np.arange(16, dtype=np.int32)
        allocation = synthetic_job_mix(
            COMPASS.scaled(16), 0.0, 600.0, np.random.default_rng(1)
        )
        fleet = FleetTelemetry(COMPASS, allocation, seed=0, nodes=nodes)
        fleet.emit_window(0.0, 120.0)
        daily = fleet.extrapolated_bytes_per_day()
        assert 0.2 * TB < daily["power"] < 1.0 * TB
