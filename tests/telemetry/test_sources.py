"""Cross-source contract tests plus per-source behaviour tests.

The two contracts every source must satisfy (see sources.py):
split-invariance and determinism under the same seed.
"""

import numpy as np
import pytest

from repro.telemetry import (
    FacilitySource,
    InterconnectSource,
    MINI,
    ObservationBatch,
    PerfCounterSource,
    PowerThermalSource,
    StorageIOSource,
    SyslogSource,
    synthetic_job_mix,
)


@pytest.fixture(scope="module")
def allocation():
    return synthetic_job_mix(MINI, 0.0, 3600.0, np.random.default_rng(42))


def _flat_power(times):
    return np.full(np.asarray(times).size, 1e6)


def make_sources(allocation, seed=0):
    return [
        PowerThermalSource(MINI, allocation, seed),
        SyslogSource(MINI, seed),
        StorageIOSource(MINI, allocation, seed),
        InterconnectSource(MINI, allocation, seed),
        FacilitySource(MINI, _flat_power, seed),
        PerfCounterSource(MINI, allocation, seed),
    ]


class TestSourceContracts:
    @pytest.mark.parametrize("idx", range(6))
    def test_split_invariance(self, allocation, idx):
        """emit([0,60)) == concat(emit([0,15)) .. emit([45,60)))."""
        whole_src = make_sources(allocation)[idx]
        split_src = make_sources(allocation)[idx]
        whole = whole_src.emit(0.0, 60.0)
        parts = type(whole).concat(
            [split_src.emit(t, t + 15.0) for t in (0.0, 15.0, 30.0, 45.0)]
        ).sorted_by_time()
        whole = whole.sorted_by_time()
        assert len(whole) == len(parts)
        np.testing.assert_allclose(whole.timestamps, parts.timestamps)
        # Values (or event payloads) must match too, not just times.
        if hasattr(whole, "values"):
            order_w = np.lexsort(
                (whole.sensor_ids, whole.component_ids, whole.timestamps)
            )
            order_p = np.lexsort(
                (parts.sensor_ids, parts.component_ids, parts.timestamps)
            )
            np.testing.assert_allclose(
                whole.values[order_w], parts.values[order_p]
            )
        else:
            np.testing.assert_array_equal(
                np.sort(whole.message_ids), np.sort(parts.message_ids)
            )

    @pytest.mark.parametrize("idx", range(6))
    def test_deterministic_under_seed(self, allocation, idx):
        a = make_sources(allocation, seed=5)[idx].emit(0.0, 30.0)
        b = make_sources(allocation, seed=5)[idx].emit(0.0, 30.0)
        np.testing.assert_array_equal(a.timestamps, b.timestamps)

    @pytest.mark.parametrize("idx", range(6))
    def test_different_seed_changes_stream(self, allocation, idx):
        a = make_sources(allocation, seed=1)[idx].emit(0.0, 30.0)
        b = make_sources(allocation, seed=2)[idx].emit(0.0, 30.0)
        same_len = len(a) == len(b)
        if same_len and len(a) > 0 and hasattr(a, "values"):
            assert not np.array_equal(a.values, b.values)

    @pytest.mark.parametrize("idx", range(6))
    def test_empty_window(self, allocation, idx):
        src = make_sources(allocation)[idx]
        assert len(src.emit(10.0, 10.0)) == 0

    @pytest.mark.parametrize("idx", range(6))
    def test_invalid_window_rejected(self, allocation, idx):
        src = make_sources(allocation)[idx]
        with pytest.raises(ValueError):
            src.emit(10.0, 5.0)

    @pytest.mark.parametrize("idx", range(6))
    def test_timestamps_within_window(self, allocation, idx):
        batch = make_sources(allocation)[idx].emit(30.0, 90.0)
        if len(batch):
            assert batch.timestamps.min() >= 30.0
            assert batch.timestamps.max() < 90.0

    @pytest.mark.parametrize("idx", range(6))
    def test_nominal_volume_positive(self, allocation, idx):
        assert make_sources(allocation)[idx].nominal_bytes_per_day() > 0


class TestPowerThermalSource:
    def test_idle_node_near_idle_power(self, allocation):
        src = PowerThermalSource(MINI, allocation, seed=0)
        # Find a (node, time) that is idle.
        times = src.sample_times(0.0, 60.0)
        _, _, jid = allocation.utilization(src.nodes, times)
        idle_cells = np.argwhere(jid == -1)
        if idle_cells.size == 0:
            pytest.skip("no idle cells in this mix")
        _, power = src.node_power_matrix(0.0, 60.0)
        r, c = idle_cells[0]
        assert power[r, c] == pytest.approx(
            MINI.node_idle_w / 0.92, rel=0.15
        )

    def test_power_under_node_max(self, allocation):
        src = PowerThermalSource(MINI, allocation, seed=0)
        batch = src.emit(0.0, 120.0)
        pw = batch.select_sensor(src.catalog.id_of("input_power"))
        assert pw.values.max() <= MINI.node_max_w

    def test_loss_rate_drops_samples(self, allocation):
        lossless = PowerThermalSource(MINI, allocation, seed=0, loss_rate=0.0)
        lossy = PowerThermalSource(MINI, allocation, seed=0, loss_rate=0.3)
        n0 = len(lossless.emit(0.0, 120.0))
        n1 = len(lossy.emit(0.0, 120.0))
        assert n1 < n0
        assert n1 / n0 == pytest.approx(0.7, abs=0.05)

    def test_node_subset(self, allocation):
        src = PowerThermalSource(MINI, allocation, nodes=np.array([0, 1]))
        batch = src.emit(0.0, 30.0)
        assert set(np.unique(batch.component_ids)) <= {0, 1}

    def test_node_subset_out_of_range(self, allocation):
        with pytest.raises(ValueError):
            PowerThermalSource(MINI, allocation, nodes=np.array([999]))

    def test_fleet_extrapolation_scales(self, allocation):
        sub = PowerThermalSource(MINI, allocation, nodes=np.array([0, 1]))
        assert sub.fleet_bytes_per_day() == pytest.approx(
            sub.nominal_bytes_per_day() * MINI.n_nodes / 2
        )

    def test_temps_above_coolant_supply(self, allocation):
        src = PowerThermalSource(MINI, allocation, seed=0)
        batch = src.emit(0.0, 60.0)
        temps = batch.select_sensor(src.catalog.id_of("gpu0_temp"))
        assert temps.values.mean() > MINI.coolant_supply_c

    def test_catalog_has_per_gpu_channels(self, allocation):
        src = PowerThermalSource(MINI, allocation)
        for g in range(MINI.gpus_per_node):
            assert f"gpu{g}_power" in src.catalog
            assert f"gpu{g}_temp" in src.catalog


class TestSyslogSource:
    def test_severity_distribution_skewed_low(self):
        src = SyslogSource(MINI, seed=0)
        batch = src.emit(0.0, 7200.0)
        assert len(batch) > 50
        frac_error_up = (batch.severities >= 3).mean()
        assert frac_error_up < 0.2

    def test_rate_roughly_matches_base_rate(self):
        src = SyslogSource(MINI, seed=3, base_rate=0.05, burst_prob=0.0)
        batch = src.emit(0.0, 3600.0)
        expected = 0.05 * MINI.n_nodes * 3600.0
        assert len(batch) == pytest.approx(expected, rel=0.2)

    def test_bursts_raise_volume(self):
        quiet = SyslogSource(MINI, seed=1, burst_prob=0.0)
        bursty = SyslogSource(MINI, seed=1, burst_prob=0.3, burst_factor=15.0)
        assert len(bursty.emit(0, 3600.0)) > 2 * len(quiet.emit(0, 3600.0))

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            SyslogSource(MINI, base_rate=0.2, burst_factor=20.0)

    def test_message_ids_match_severity_class(self):
        from repro.telemetry.syslog import TEMPLATE_SEVERITIES

        batch = SyslogSource(MINI, seed=2).emit(0.0, 3600.0)
        np.testing.assert_array_equal(
            TEMPLATE_SEVERITIES[batch.message_ids], batch.severities
        )

    def test_render_produces_lines(self):
        src = SyslogSource(MINI, seed=0)
        batch = src.emit(0.0, 600.0)
        lines = batch.render(src.templates, limit=3)
        assert len(lines) == min(3, len(batch))


class TestStorageIOSource:
    def test_io_follows_job_intensity(self, allocation):
        src = StorageIOSource(MINI, allocation, seed=0, loss_rate=0.0)
        batch = src.emit(0.0, 1800.0)
        read = batch.select_sensor(src.catalog.id_of("fs_read_bps"))
        assert read.values.max() > 0

    def test_nonnegative_counters(self, allocation):
        batch = StorageIOSource(MINI, allocation, seed=0).emit(0.0, 600.0)
        assert (batch.values >= 0).all()


class TestInterconnectSource:
    def test_stall_fraction_bounded(self, allocation):
        src = InterconnectSource(MINI, allocation, seed=0)
        batch = src.emit(0.0, 600.0)
        stall = batch.select_sensor(src.catalog.id_of("nic_stall_frac"))
        assert ((stall.values >= 0) & (stall.values <= 1)).all()

    def test_bandwidth_under_nic_limit(self, allocation):
        from repro.telemetry.interconnect import NIC_BPS

        src = InterconnectSource(MINI, allocation, seed=0)
        batch = src.emit(0.0, 600.0)
        tx = batch.select_sensor(src.catalog.id_of("nic_tx_bps"))
        assert tx.values.max() <= NIC_BPS


class TestFacilitySource:
    def test_return_warmer_than_supply(self):
        src = FacilitySource(MINI, _flat_power, seed=0)
        state = src.plant_state(src.sample_times(0.0, 600.0))
        assert (
            state["return_temp_c"].mean() > state["supply_temp_c"].mean()
        )

    def test_energy_balance(self):
        """Q = m_dot * c_p * dT must hold (within sensor noise)."""
        from repro.telemetry.facility import WATER_HEAT_CAPACITY

        src = FacilitySource(MINI, _flat_power, seed=0)
        state = src.plant_state(src.sample_times(0.0, 600.0))
        q = (
            state["flow_kg_s"]
            * WATER_HEAT_CAPACITY
            * (state["return_temp_c"] - state["supply_temp_c"])
        )
        assert q.mean() == pytest.approx(1e6, rel=0.1)

    def test_pump_power_increases_with_load(self):
        lo = FacilitySource(
            MINI,
            lambda t: np.full(np.asarray(t).size, 0.05 * MINI.peak_it_power_w),
            0,
        )
        hi = FacilitySource(
            MINI, lambda t: np.full(np.asarray(t).size, MINI.peak_it_power_w), 0
        )
        t = lo.sample_times(0.0, 600.0)
        assert (
            hi.plant_state(t)["pump_power_w"].mean()
            > lo.plant_state(t)["pump_power_w"].mean()
        )

    def test_outdoor_temperature_diurnal(self):
        src = FacilitySource(MINI, _flat_power, 0)
        t = np.array([0.0, 21_600.0, 43_200.0, 64_800.0])
        temps = src.outdoor_temp(t)
        assert temps.max() - temps.min() > 5.0
