"""Unit tests for job specs, allocation tables, and the job-mix generator."""

import numpy as np
import pytest

from repro.telemetry import AllocationTable, JobSpec, MINI, synthetic_job_mix


def make_job(job_id=1, nodes=(0, 1), start=0.0, end=100.0, archetype="climate"):
    return JobSpec(
        job_id=job_id,
        user="user001",
        project="PRJ001",
        archetype=archetype,
        nodes=np.array(nodes),
        start=start,
        end=end,
    )


class TestJobSpec:
    def test_basic_properties(self):
        j = make_job()
        assert j.duration == 100.0
        assert j.n_nodes == 2
        assert j.node_seconds == 200.0

    def test_nodes_deduplicated_and_sorted(self):
        j = make_job(nodes=(3, 1, 3))
        np.testing.assert_array_equal(j.nodes, [1, 3])

    def test_invalid_times(self):
        with pytest.raises(ValueError):
            make_job(start=10.0, end=10.0)

    def test_empty_nodes_rejected(self):
        with pytest.raises(ValueError):
            make_job(nodes=())

    def test_unknown_archetype_rejected(self):
        with pytest.raises(ValueError):
            make_job(archetype="quantum")

    def test_overlaps(self):
        j = make_job(start=10.0, end=20.0)
        assert j.overlaps(15.0, 25.0)
        assert j.overlaps(0.0, 11.0)
        assert not j.overlaps(20.0, 30.0)  # half-open
        assert not j.overlaps(0.0, 10.0)


class TestAllocationTable:
    def test_rejects_node_conflicts(self):
        jobs = [make_job(1, (0, 1), 0, 100), make_job(2, (1, 2), 50, 150)]
        with pytest.raises(ValueError, match="overlap"):
            AllocationTable(jobs)

    def test_allows_back_to_back(self):
        jobs = [make_job(1, (0,), 0, 100), make_job(2, (0,), 100, 200)]
        table = AllocationTable(jobs)
        assert len(table) == 2

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            AllocationTable([make_job(1, (0,)), make_job(1, (1,))])

    def test_jobs_overlapping_window(self):
        jobs = [make_job(1, (0,), 0, 50), make_job(2, (1,), 100, 150)]
        table = AllocationTable(jobs)
        assert [j.job_id for j in table.jobs_overlapping(40, 110)] == [1, 2]
        assert [j.job_id for j in table.jobs_overlapping(50, 100)] == []

    def test_job_at(self):
        table = AllocationTable([make_job(1, (0, 1), 10, 20)])
        assert table.job_at(0, 15.0).job_id == 1
        assert table.job_at(2, 15.0) is None
        assert table.job_at(0, 25.0) is None

    def test_utilization_grid_shape_and_idle(self):
        table = AllocationTable([make_job(1, (0,), 0, 50, "hpl")])
        nodes = np.array([0, 1])
        times = np.array([10.0, 25.0, 60.0])
        gpu, cpu, jid = table.utilization(nodes, times)
        assert gpu.shape == (2, 3)
        # Node 1 never allocated; node 0 idle after t=50.
        assert (gpu[1] == 0).all()
        assert gpu[0, 2] == 0.0
        assert gpu[0, 1] > 0.5  # hpl plateau
        assert jid[0, 0] == 1 and jid[1, 0] == -1

    def test_utilization_empty_inputs(self):
        table = AllocationTable([make_job()])
        gpu, cpu, jid = table.utilization(np.array([]), np.array([1.0]))
        assert gpu.shape == (0, 1)

    def test_log_records(self):
        recs = AllocationTable([make_job()]).log_records()
        assert recs[0]["job_id"] == 1
        assert recs[0]["n_nodes"] == 2


class TestSyntheticJobMix:
    def test_generates_conflict_free_schedule(self):
        rng = np.random.default_rng(0)
        table = synthetic_job_mix(MINI, 0.0, 7200.0, rng)
        assert len(table) > 0  # construction validates conflicts

    def test_deterministic_under_seed(self):
        t1 = synthetic_job_mix(MINI, 0.0, 3600.0, np.random.default_rng(7))
        t2 = synthetic_job_mix(MINI, 0.0, 3600.0, np.random.default_rng(7))
        assert [j.job_id for j in t1.jobs] == [j.job_id for j in t2.jobs]
        assert [j.start for j in t1.jobs] == [j.start for j in t2.jobs]

    def test_respects_machine_size(self):
        table = synthetic_job_mix(MINI, 0.0, 3600.0, np.random.default_rng(1))
        for j in table.jobs:
            assert j.nodes.max() < MINI.n_nodes

    def test_achieves_reasonable_utilization(self):
        table = synthetic_job_mix(
            MINI, 0.0, 14400.0, np.random.default_rng(3), utilization_target=0.85
        )
        times = np.linspace(3600.0, 10800.0, 60)  # steady-state window
        gpu, _, jid = table.utilization(
            np.arange(MINI.n_nodes), times
        )
        allocated_frac = (jid >= 0).mean()
        assert allocated_frac > 0.5

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            synthetic_job_mix(MINI, 10.0, 10.0, np.random.default_rng(0))

    def test_invalid_mix_weights(self):
        with pytest.raises(ValueError):
            synthetic_job_mix(
                MINI, 0.0, 100.0, np.random.default_rng(0), mix={"hpl": -1.0}
            )

    def test_custom_mix_restricts_archetypes(self):
        table = synthetic_job_mix(
            MINI, 0.0, 7200.0, np.random.default_rng(2), mix={"hpl": 1.0}
        )
        assert {j.archetype for j in table.jobs} == {"hpl"}
