"""Batched ``emit`` must be byte-identical to ``emit_reference``.

The benchmark's speedup claim rests on the fast emission path changing
nothing but wall time.  Every vectorized source is held to its original
per-channel loop implementation bit for bit, including the idle-node
short-circuit in the perf-counter source (all-idle and partially idle
windows are exercised explicitly).
"""

import numpy as np
import pytest

from repro.telemetry import MINI, FleetTelemetry, synthetic_job_mix

HORIZON_S = 240.0

#: [t0, t1) windows: aligned, unaligned, empty, and — past the job
#: horizon — an all-idle window for the perf-counter short-circuit.
WINDOWS = [
    (0.0, 30.0),
    (30.0, 60.0),
    (95.0, 127.5),
    (50.0, 50.0),
    (HORIZON_S + 60.0, HORIZON_S + 90.0),
]


@pytest.fixture(scope="module")
def fleet():
    rng = np.random.default_rng(5)
    allocation = synthetic_job_mix(MINI, 0.0, HORIZON_S, rng)
    return FleetTelemetry(MINI, allocation, seed=9)


def assert_batches_identical(fast, ref):
    assert type(fast) is type(ref)
    assert len(fast) == len(ref)
    for name in ("timestamps", "component_ids", "sensor_ids", "values",
                 "severities", "message_ids"):
        a = getattr(fast, name, None)
        b = getattr(ref, name, None)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.dtype == b.dtype
            assert a.tobytes() == b.tobytes()


@pytest.mark.parametrize("source_name",
                         ["power", "perf", "storage_io", "interconnect"])
@pytest.mark.parametrize("window", WINDOWS, ids=lambda w: f"{w[0]}-{w[1]}")
def test_emit_matches_reference(fleet, source_name, window):
    source = getattr(fleet, source_name)
    t0, t1 = window
    assert_batches_identical(source.emit(t0, t1), source.emit_reference(t0, t1))


def test_idle_windows_actually_exercise_the_skip(fleet):
    """The parametrized windows must cover idle and active cells, or the
    perf source's idle short-circuit is never really tested."""
    t0, t1 = WINDOWS[-1]
    mid = np.array([(t0 + t1) / 2])
    gpu_u, _, _ = fleet.allocation.utilization(fleet.nodes, mid)
    assert (gpu_u == 0.0).all()  # fully idle past the job horizon
    gpu_u, _, _ = fleet.allocation.utilization(fleet.nodes, np.array([15.0]))
    assert (gpu_u > 0.0).any()  # and genuinely busy inside it


def test_partially_idle_window_matches(fleet):
    """A window straddling the job horizon mixes idle and active nodes."""
    t0, t1 = HORIZON_S - 15.0, HORIZON_S + 15.0
    for name in ("power", "perf", "storage_io", "interconnect"):
        source = getattr(fleet, name)
        assert_batches_identical(
            source.emit(t0, t1), source.emit_reference(t0, t1)
        )


def test_fleet_reference_flag_is_byte_identical():
    rng = np.random.default_rng(5)
    allocation = synthetic_job_mix(MINI, 0.0, HORIZON_S, rng)
    fast = FleetTelemetry(MINI, allocation, seed=9)
    ref = FleetTelemetry(MINI, allocation, seed=9, reference_emit=True)
    for t0 in (0.0, 30.0, 60.0):
        fb = fast.emit_window(t0, t0 + 30.0)
        rb = ref.emit_window(t0, t0 + 30.0)
        assert fb.keys() == rb.keys()
        for topic in fb:
            assert_batches_identical(fb[topic], rb[topic])
    assert {n: (v.rows, v.raw_bytes) for n, v in fast.volumes.items()} == {
        n: (v.rows, v.raw_bytes) for n, v in ref.volumes.items()
    }
