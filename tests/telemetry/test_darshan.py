"""Unit tests for Darshan-style per-job I/O summaries."""

import numpy as np
import pytest

from repro.telemetry import DarshanCollector, MINI, synthetic_job_mix


@pytest.fixture(scope="module")
def collector():
    allocation = synthetic_job_mix(MINI, 0.0, 14_400.0,
                                   np.random.default_rng(17))
    return DarshanCollector(allocation, seed=0), allocation


class TestDarshanCollector:
    def test_records_at_job_end_only(self, collector):
        coll, allocation = collector
        records = coll.collect(0.0, 7200.0)
        ended = [j for j in allocation.jobs if 0.0 <= j.end < 7200.0]
        assert len(records) == len(ended)

    def test_collect_all_covers_every_job(self, collector):
        coll, allocation = collector
        assert len(coll.collect_all()) == len(allocation.jobs)

    def test_deterministic(self, collector):
        coll, allocation = collector
        again = DarshanCollector(allocation, seed=0)
        a = coll.collect_all()
        b = again.collect_all()
        assert [r.bytes_read for r in a] == [r.bytes_read for r in b]

    def test_io_heavy_jobs_move_more_bytes(self, collector):
        coll, allocation = collector
        records = {r.job_id: r for r in coll.collect_all()}
        by_arch: dict[str, list[float]] = {}
        for job in allocation.jobs:
            rec = records[job.job_id]
            by_arch.setdefault(job.archetype, []).append(
                rec.total_bytes / (job.n_nodes * job.duration)
            )
        if "io_heavy" in by_arch and "molecular" in by_arch:
            assert np.mean(by_arch["io_heavy"]) > np.mean(by_arch["molecular"])

    def test_access_histogram_normalized(self, collector):
        coll, _ = collector
        for rec in coll.collect_all():
            assert sum(rec.access_histogram) == pytest.approx(1.0)

    def test_io_heavy_prefers_large_accesses(self, collector):
        coll, allocation = collector
        records = {r.job_id: r for r in coll.collect_all()}
        for job in allocation.jobs:
            rec = records[job.job_id]
            if job.archetype == "io_heavy":
                assert rec.access_histogram[3] + rec.access_histogram[4] > 0.5
            if job.archetype == "molecular":
                assert rec.access_histogram[0] > 0.3

    def test_table_shape(self, collector):
        coll, allocation = collector
        table = coll.to_table(coll.collect_all())
        assert table.num_rows == len(allocation.jobs)
        assert "bytes_written" in table
        assert table.is_string("archetype")

    def test_empty_window(self, collector):
        coll, _ = collector
        assert coll.collect(1e9, 2e9) == []
        assert coll.to_table([]).num_rows == 0

    def test_write_dominated(self, collector):
        """Checkpoint-driven HPC I/O writes more than it reads."""
        coll, _ = collector
        for rec in coll.collect_all():
            assert rec.bytes_written >= rec.bytes_read
