"""Unit tests for the DataRUC workflow state machine (Fig. 12)."""

import pytest

from repro.governance import (
    AdvisoryRole,
    DataRUC,
    RequestState,
    RequestType,
    Verdict,
)

DAY = 86_400.0


@pytest.fixture
def ruc():
    return DataRUC()


def submit(ruc, request_type=RequestType.INTERNAL_PROJECT, human=False):
    return ruc.submit(
        "shinw", request_type, ["power.silver"], "energy analysis", now=0.0,
        human_subjects=human,
    )


class TestIntake:
    def test_submit_enters_review(self, ruc):
        request = submit(ruc)
        assert request.state is RequestState.UNDER_REVIEW
        assert request in ruc.pending()

    def test_empty_datasets_rejected(self, ruc):
        with pytest.raises(ValueError):
            ruc.submit("x", RequestType.INTERNAL_PROJECT, [], "p", 0.0)

    def test_required_roles_by_type(self, ruc):
        internal = submit(ruc)
        release = submit(ruc, RequestType.DATASET_RELEASE)
        assert AdvisoryRole.LEGAL not in internal.required_roles
        assert AdvisoryRole.LEGAL in release.required_roles

    def test_ids_unique(self, ruc):
        assert submit(ruc).request_id != submit(ruc).request_id


class TestReview:
    def test_full_approval_flow(self, ruc):
        request = submit(ruc)
        ruc.record_review(
            request.request_id, AdvisoryRole.DATA_OWNER, Verdict.APPROVE, 1 * DAY
        )
        assert request.state is RequestState.UNDER_REVIEW
        ruc.record_review(
            request.request_id, AdvisoryRole.CYBER_SECURITY, Verdict.APPROVE, 2 * DAY
        )
        assert request.state is RequestState.APPROVED

    def test_veto_terminates(self, ruc):
        request = submit(ruc)
        ruc.record_review(
            request.request_id, AdvisoryRole.DATA_OWNER, Verdict.REJECT, 1 * DAY
        )
        assert request.state is RequestState.REJECTED
        with pytest.raises(ValueError):
            ruc.record_review(
                request.request_id, AdvisoryRole.CYBER_SECURITY,
                Verdict.APPROVE, 2 * DAY,
            )

    def test_unrequired_role_rejected(self, ruc):
        request = submit(ruc)  # internal: no IRB
        with pytest.raises(ValueError, match="not a required reviewer"):
            ruc.record_review(
                request.request_id, AdvisoryRole.IRB, Verdict.APPROVE, 1.0
            )

    def test_double_review_rejected(self, ruc):
        request = submit(ruc)
        ruc.record_review(
            request.request_id, AdvisoryRole.DATA_OWNER, Verdict.APPROVE, 1.0
        )
        with pytest.raises(ValueError, match="already reviewed"):
            ruc.record_review(
                request.request_id, AdvisoryRole.DATA_OWNER, Verdict.APPROVE, 2.0
            )

    def test_run_reviews_simulation(self, ruc):
        request = submit(ruc, RequestType.DATASET_RELEASE)
        ruc.run_reviews(request.request_id, now=0.0)
        assert request.state is RequestState.APPROVED
        assert request.latency_s() is None  # not yet terminal

    def test_run_reviews_with_veto(self, ruc):
        request = submit(ruc, RequestType.DATASET_RELEASE)
        ruc.run_reviews(
            request.request_id, now=0.0, reject_roles={AdvisoryRole.LEGAL}
        )
        assert request.state is RequestState.REJECTED
        assert request.latency_s() is not None


class TestPostApproval:
    def approve(self, ruc, request):
        ruc.run_reviews(request.request_id, now=0.0)
        return request

    def test_internal_provisioning_grants_tiers(self, ruc):
        request = self.approve(ruc, submit(ruc))
        access = ruc.provision(request.request_id, now=10 * DAY)
        assert access == ("STREAM", "LAKE", "OCEAN")
        assert request.state is RequestState.PROVISIONED
        assert request.latency_s() == pytest.approx(10 * DAY)

    def test_provision_requires_approval(self, ruc):
        request = submit(ruc)
        with pytest.raises(ValueError):
            ruc.provision(request.request_id, 1.0)

    def test_external_release_requires_sanitization(self, ruc):
        request = self.approve(ruc, submit(ruc, RequestType.DATASET_RELEASE))
        with pytest.raises(ValueError, match="sanitization"):
            ruc.release(request.request_id, 20 * DAY)
        ruc.mark_sanitized(request.request_id, 15 * DAY)
        ruc.release(request.request_id, 20 * DAY)
        assert request.state is RequestState.RELEASED

    def test_internal_requests_not_sanitized(self, ruc):
        request = self.approve(ruc, submit(ruc))
        with pytest.raises(ValueError):
            ruc.mark_sanitized(request.request_id, 1.0)

    def test_provisioning_writes_audit_trail(self, ruc):
        request = self.approve(ruc, submit(ruc))
        ruc.provision(request.request_id, now=10 * DAY)
        grants = [e for e in ruc.access_log if e[3].startswith("grant:")]
        assert len(grants) == 3  # STREAM, LAKE, OCEAN
        assert all(e[1] == "shinw" for e in grants)

    def test_record_access_requires_grant(self, ruc):
        request = self.approve(ruc, submit(ruc))
        with pytest.raises(ValueError, match="no active grant"):
            ruc.record_access(request.request_id, "LAKE", 10 * DAY)
        ruc.provision(request.request_id, now=10 * DAY)
        ruc.record_access(request.request_id, "LAKE", 11 * DAY)
        with pytest.raises(ValueError, match="not granted"):
            ruc.record_access(request.request_id, "public-repository", 11 * DAY)

    def test_accesses_by_requester(self, ruc):
        request = self.approve(ruc, submit(ruc))
        ruc.provision(request.request_id, now=10 * DAY)
        ruc.record_access(request.request_id, "OCEAN", 12 * DAY)
        entries = ruc.accesses_by("shinw")
        assert any(what == "access:OCEAN" for _, _, what in entries)
        assert ruc.accesses_by("nobody") == []

    def test_time_monotonicity_enforced(self, ruc):
        request = self.approve(ruc, submit(ruc))
        with pytest.raises(ValueError):
            # Approvals landed at +3 days (cyber latency); going back fails.
            ruc.provision(request.request_id, now=1.0)
