"""Unit + property tests for sanitization and the release catalog."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import ColumnTable
from repro.governance import (
    DataRUC,
    ReleaseCatalog,
    RequestType,
    Sanitizer,
    detect_identifier_columns,
)


def usage_table():
    return ColumnTable(
        {
            "timestamp": np.arange(4, dtype=float),
            "user": ["alice", "bob", "alice", None],
            "project": ["FUSION", "CLIMATE", "FUSION", "CLIMATE"],
            "node_hours": np.array([1.0, 2.0, 3.0, 4.0]),
        }
    )


class TestDetection:
    def test_detects_identifier_columns(self):
        assert set(detect_identifier_columns(usage_table())) == {
            "user", "project"
        }

    def test_ignores_measurements(self):
        t = ColumnTable({"power": np.ones(2), "timestamp": np.zeros(2)})
        assert detect_identifier_columns(t) == []


class TestSanitizer:
    def test_key_required(self):
        with pytest.raises(ValueError):
            Sanitizer(b"")

    def test_pseudonyms_consistent_within_key(self):
        sanitizer = Sanitizer(b"key1")
        assert sanitizer.pseudonym("alice") == sanitizer.pseudonym("alice")
        assert sanitizer.pseudonym("alice") != sanitizer.pseudonym("bob")

    def test_pseudonyms_differ_across_keys(self):
        assert Sanitizer(b"k1").pseudonym("alice") != Sanitizer(b"k2").pseudonym("alice")

    def test_sanitize_table_replaces_identities(self):
        sanitizer = Sanitizer(b"release-key")
        out = sanitizer.sanitize_table(usage_table())
        assert "alice" not in out["user"].tolist()
        # Join structure preserved: rows 0 and 2 still share a pseudonym.
        assert out["user"][0] == out["user"][2]
        assert out["user"][3] is None
        np.testing.assert_array_equal(out["node_hours"], [1.0, 2.0, 3.0, 4.0])

    def test_drop_columns(self):
        sanitizer = Sanitizer(b"k")
        out = sanitizer.sanitize_table(usage_table(), drop=["user"])
        assert "user" not in out

    def test_numeric_identifier_rejected(self):
        t = ColumnTable({"user_id": np.array([1, 2])})
        with pytest.raises(ValueError):
            Sanitizer(b"k").sanitize_table(t, columns=["user_id"])

    def test_verify_sanitized(self):
        sanitizer = Sanitizer(b"k")
        original = usage_table()
        out = sanitizer.sanitize_table(original)
        assert sanitizer.verify_sanitized(original, out)
        assert not sanitizer.verify_sanitized(original, original)

    @given(
        names=st.lists(
            st.text(min_size=1, max_size=10), min_size=1, max_size=30
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_no_raw_identity_survives(self, names):
        arr = np.empty(len(names), dtype=object)
        arr[:] = names
        table = ColumnTable({"user": arr})
        sanitizer = Sanitizer(b"secret")
        out = sanitizer.sanitize_table(table)
        released = set(out["user"].tolist())
        # A raw value may only "survive" if it happens to equal its own
        # pseudonym format, which our prefix prevents.
        assert not (set(names) & released)
        assert sanitizer.verify_sanitized(table, out)


class TestReleaseCatalog:
    def released_request(self):
        ruc = DataRUC()
        request = ruc.submit(
            "shinw", RequestType.DATASET_RELEASE, ["power"], "open data", 0.0
        )
        ruc.run_reviews(request.request_id, now=0.0)
        ruc.mark_sanitized(request.request_id, 15 * 86_400.0)
        ruc.release(request.request_id, 16 * 86_400.0)
        return request

    def test_publish_requires_released_state(self):
        ruc = DataRUC()
        request = ruc.submit(
            "x", RequestType.DATASET_RELEASE, ["power"], "p", 0.0
        )
        with pytest.raises(ValueError):
            ReleaseCatalog().publish(request, "t", b"data", 1.0)

    def test_publish_and_fetch(self):
        catalog = ReleaseCatalog()
        record = catalog.publish(
            self.released_request(), "Summit power data", b"blob", 17 * 86_400.0,
            metadata={"license": "CC-BY"},
        )
        assert record.doi.startswith("10.13139/SIM/")
        got, blob = catalog.get(record.doi)
        assert blob == b"blob"
        assert got.metadata["license"] == "CC-BY"

    def test_search(self):
        catalog = ReleaseCatalog()
        catalog.publish(self.released_request(), "GPU failure data", b"x", 0.0)
        catalog.publish(self.released_request(), "Power profiles", b"y", 0.0)
        assert len(catalog.search("power")) == 1
        assert len(catalog.search("nothing")) == 0

    def test_unknown_doi(self):
        with pytest.raises(KeyError):
            ReleaseCatalog().get("10.13139/SIM/9999999")

    def test_dois_sequential(self):
        catalog = ReleaseCatalog()
        a = catalog.publish(self.released_request(), "a", b"1", 0.0)
        b = catalog.publish(self.released_request(), "b", b"2", 0.0)
        assert a.doi != b.doi
