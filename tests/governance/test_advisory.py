"""Unit tests for the advisory chain (Table II)."""

import pytest

from repro.governance import AdvisoryChain, AdvisoryRole, Review, Verdict
from repro.governance.advisory import REVIEW_LATENCY_S, TABLE2


class TestTable2:
    def test_five_roles_documented(self):
        assert len(TABLE2) == 5
        for role in AdvisoryRole:
            assert len(TABLE2[role]) > 20


class TestRequiredRoles:
    def setup_method(self):
        self.chain = AdvisoryChain()

    def test_internal_minimal_set(self):
        roles = self.chain.required_roles(False, False, False)
        assert roles == {AdvisoryRole.DATA_OWNER, AdvisoryRole.CYBER_SECURITY}

    def test_external_adds_legal_and_management(self):
        roles = self.chain.required_roles(True, False, False)
        assert AdvisoryRole.LEGAL in roles
        assert AdvisoryRole.MANAGEMENT in roles

    def test_irb_only_for_human_subjects(self):
        assert AdvisoryRole.IRB not in self.chain.required_roles(True, True, False)
        assert AdvisoryRole.IRB in self.chain.required_roles(False, False, True)


class TestVerdictLogic:
    def setup_method(self):
        self.chain = AdvisoryChain()
        self.required = {AdvisoryRole.DATA_OWNER, AdvisoryRole.CYBER_SECURITY}

    def review(self, role, verdict):
        return Review(role, verdict, reviewed_at=0.0)

    def test_conjunctive_approval(self):
        reviews = [self.review(AdvisoryRole.DATA_OWNER, Verdict.APPROVE)]
        assert not self.chain.is_approved(self.required, reviews)
        reviews.append(self.review(AdvisoryRole.CYBER_SECURITY, Verdict.APPROVE))
        assert self.chain.is_approved(self.required, reviews)

    def test_any_veto_rejects(self):
        reviews = [
            self.review(AdvisoryRole.DATA_OWNER, Verdict.APPROVE),
            self.review(AdvisoryRole.CYBER_SECURITY, Verdict.REJECT),
        ]
        assert self.chain.is_rejected(reviews)
        assert not self.chain.is_approved(self.required, reviews)


class TestLatency:
    def test_parallel_is_max_sequential_is_sum(self):
        chain = AdvisoryChain()
        required = chain.required_roles(True, True, True)  # all five
        parallel = chain.expected_latency_s(required, parallel=True)
        sequential = chain.expected_latency_s(required, parallel=False)
        assert parallel == max(REVIEW_LATENCY_S[r] for r in required)
        assert sequential == sum(REVIEW_LATENCY_S[r] for r in required)
        assert sequential > 1.5 * parallel

    def test_empty_set(self):
        assert AdvisoryChain().expected_latency_s(set()) == 0.0
