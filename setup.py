"""Legacy setup shim.

The execution environment has no network access and no `wheel` package, so
PEP 517 editable installs fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` work offline; all
real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
