PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-quick bench-e2e-smoke bench-query bench-serving chaos lifecycle lineage lint lint-json obs-report race

test:
	$(PYTHON) -m pytest -x -q

# Fault-injection suite: deterministic chaos plans (repro.faults) plus
# the crash/restart harness asserting Gold output is byte-identical to
# a fault-free run — see DESIGN.md §10.
chaos:
	$(PYTHON) -m pytest -x -q tests/faults tests/integration/test_crash_recovery.py

bench:
	$(PYTHON) -m pytest -q benchmarks/
	$(PYTHON) benchmarks/bench_e2e.py

bench-quick:
	$(PYTHON) benchmarks/bench_e2e.py --quick

# Tier-1 perf gate (run alongside `make lint`): tiny-shape end-to-end
# bench that must still produce baseline-identical outputs and must not
# regress any headline stage's fast/baseline ratio >10% vs. the
# committed BENCH_e2e.json — see DESIGN.md §13.
bench-e2e-smoke:
	$(PYTHON) benchmarks/bench_e2e.py --quick \
		--out .bench_e2e_smoke.json --check-against BENCH_e2e.json

# Tier lifecycle suite: crash-safe compaction commit protocol, sorted
# rewrites, demotion/freeze policies, materialized Gold rollups, and
# the crash-mid-compaction chaos harness — see DESIGN.md §15.
lifecycle:
	$(PYTHON) -m pytest -x -q tests/storage/test_compaction.py \
		tests/storage/test_lifecycle.py tests/storage/test_rollup.py \
		tests/integration/test_lifecycle_chaos.py

# Read-plane benchmark: planned scans (manifest + row-group pruning,
# dict pushdown, row-group cache, parallel units) vs. the
# decode-everything baseline — see DESIGN.md §11.
bench-query:
	$(PYTHON) benchmarks/bench_query.py

# Serving benchmark: seeded zipf multi-tenant load replayed against the
# gateway with the result cache on/off across offered-QPS levels; finds
# the admission knee and the cached p50/p99 speedup — see DESIGN.md §16.
bench-serving:
	$(PYTHON) benchmarks/bench_serving.py

# Bytecode compile catches syntax errors in cold paths; repro.analysis
# then enforces the repo invariants (determinism, locking, fast-path
# oracles, exception hygiene, layering, interprocedural races) — see
# DESIGN.md §9 and §14.  Incremental: unchanged files are served from
# .repro-lint-cache/ (keyed on content digest + rule set); pass
# --no-cache to force a full re-parse.
lint:
	$(PYTHON) -m compileall -q src benchmarks examples
	$(PYTHON) -m repro.analysis src

lint-json:
	$(PYTHON) -m repro.analysis --format json src

# Dynamic cross-validation of the static RACE verdicts (DESIGN.md §14):
# first the Eraser-style monitor's own suite (including the planted
# race that must be caught by BOTH passes), then the chaos and
# parallel-equivalence suites under REPRO_DYNRACE=1 — every container
# the static pass flags is watched live, and any observed race (a
# suppression pragma whose invariant failed to hold) fails the run.
race:
	$(PYTHON) -m pytest -x -q tests/analysis/test_dynrace.py tests/core/test_race_fixes.py
	REPRO_DYNRACE=1 $(PYTHON) -m pytest -x -q tests/faults \
		tests/integration/test_crash_recovery.py \
		tests/core/test_parallel_equivalence.py

# Provenance: run a seeded deployment with the lineage catalog on and a
# CORRUPT_PART fault planted at one OCEAN put, print the blast-radius
# report, dump the catalog, and render it with the offline CLI — see
# DESIGN.md §17.
lineage:
	$(PYTHON) examples/lineage_impact.py
	$(PYTHON) -m repro.lineage report lineage_catalog.json

# Self-observability: run a seeded end-to-end window sequence with
# tracing + self-telemetry on, dump the trace/metric JSONL, and render
# it as a span-tree report — see DESIGN.md §12.
obs-report:
	$(PYTHON) examples/self_observability.py
	$(PYTHON) -m repro.obs report obs_trace.jsonl
