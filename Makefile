PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-quick lint

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest -q benchmarks/
	$(PYTHON) benchmarks/bench_e2e.py

bench-quick:
	$(PYTHON) benchmarks/bench_e2e.py --quick

# No third-party linter is vendored; a full-tree bytecode compile still
# catches syntax errors and most undefined-name typos in cold paths.
lint:
	$(PYTHON) -m compileall -q src benchmarks examples
