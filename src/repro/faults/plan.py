"""Deterministic fault plans.

A :class:`FaultPlan` is pure data: "the Nth invocation of site S fails
with kind K".  Nothing about it consults the wall clock or global RNG,
so a failure run is replayable byte-for-byte — rerunning the same plan
against the same input injects the same faults at the same points.

Plans are written by hand for targeted tests or drawn from a seed via
:meth:`FaultPlan.seeded`, which derives an independent named RNG stream
per site (the :mod:`repro.util.rng` discipline), so adding a site to a
plan never perturbs the draws of the others.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.util.rng import derive_seed

__all__ = ["FaultKind", "FaultSpec", "FaultPlan"]


class FaultKind(enum.Enum):
    """Taxonomy of injectable faults (see DESIGN.md §10)."""

    #: Fetch fails with :class:`~repro.stream.errors.FetchTimeoutError`.
    FETCH_ERROR = "fetch_error"
    #: Produce fails with
    #: :class:`~repro.stream.errors.ProduceUnavailableError`.
    PRODUCE_ERROR = "produce_error"
    #: A tier write fails with
    #: :class:`~repro.faults.errors.TransientTierError`.
    TIER_ERROR = "tier_error"
    #: A checkpoint commit dies mid-write, leaving truncated JSON on
    #: disk (then raises :class:`~repro.faults.errors.SimulatedCrash`).
    TORN_CHECKPOINT = "torn_checkpoint"
    #: The process dies at the site (``SimulatedCrash``), no side effect.
    CRASH = "crash"
    #: The operation succeeds but takes ``arg`` extra virtual seconds.
    SLOW_READ = "slow_read"
    #: A tier put lands, but the payload is silently corrupted in
    #: transit: numeric values are deterministically perturbed before
    #: the store sees them, manifests and digests are left as the
    #: writer computed them (the silent-corruption shape blast-radius
    #: analysis exists for — see ``repro.lineage.blast``).
    CORRUPT_PART = "corrupt_part"
    #: Retention runs concurrently: the broker trims as of time ``arg``
    #: immediately before the fetch, racing the consumer.
    RETENTION_RACE = "retention_race"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: ``site`` fails at its ``at_call``-th
    invocation (1-based), for ``repeat`` consecutive invocations.

    ``arg`` is the kind's payload: virtual seconds for ``SLOW_READ``,
    the retention ``now`` for ``RETENTION_RACE``.
    """

    site: str
    kind: FaultKind
    at_call: int
    repeat: int = 1
    arg: float = 0.0

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("site must be non-empty")
        if self.at_call < 1:
            raise ValueError("at_call is 1-based and must be >= 1")
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")


class FaultPlan:
    """An immutable schedule of :class:`FaultSpec` entries.

    Lookup is by ``(site, invocation index)``; two specs covering the
    same invocation of the same site are rejected at construction so a
    plan is always unambiguous.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        by_site: dict[str, dict[int, FaultSpec]] = {}
        for spec in self.specs:
            calls = by_site.setdefault(spec.site, {})
            for i in range(spec.repeat):
                call = spec.at_call + i
                if call in calls:
                    raise ValueError(
                        f"overlapping fault specs for {spec.site!r} "
                        f"call {call}"
                    )
                calls[call] = spec
        self._by_site = by_site

    def lookup(self, site: str, call_index: int) -> FaultSpec | None:
        """The spec scheduled for the ``call_index``-th invocation of
        ``site`` (1-based), or None."""
        calls = self._by_site.get(site)
        return None if calls is None else calls.get(call_index)

    def sites(self) -> list[str]:
        """Sites the plan touches, sorted."""
        return sorted(self._by_site)

    def fault_points(self) -> int:
        """Total (site, invocation) pairs that will fault."""
        return sum(len(calls) for calls in self._by_site.values())

    def __len__(self) -> int:
        return len(self.specs)

    @classmethod
    def seeded(
        cls,
        seed: int,
        site_kinds: Mapping[str, FaultKind],
        rate: float = 0.05,
        horizon: int = 200,
        arg: float = 0.0,
    ) -> "FaultPlan":
        """Draw a reproducible plan: each of the first ``horizon``
        invocations of each site faults independently with probability
        ``rate``.

        Each site draws from its own stream derived from ``(seed,
        site)``, so the schedule for one site is stable no matter which
        other sites are in the plan.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        specs: list[FaultSpec] = []
        for site in sorted(site_kinds):
            rng = np.random.default_rng(derive_seed(seed, f"faults.{site}"))
            hits = np.flatnonzero(rng.random(horizon) < rate)
            specs.extend(
                FaultSpec(site, site_kinds[site], int(call) + 1, arg=arg)
                for call in hits
            )
        return cls(specs)
