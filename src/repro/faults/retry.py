"""Retry with capped exponential backoff for transient transport faults.

This module is the *only* sanctioned place that catches the broker's
typed transient errors (rule EXC004).  ``Consumer``, the micro-batch
driver, and the tier writes all route their fallible hops through
:func:`call_with_retry`, which:

* retries :class:`~repro.stream.errors.TransientStreamError` subclasses
  up to ``policy.max_attempts`` total attempts,
* fails fast on everything else (``UnknownTopicError``, ``ValueError``,
  crashes — permanent by definition),
* counts every retry and give-up per site in the :data:`repro.perf.PERF`
  registry (``faults.retry.<site>`` / ``faults.giveup.<site>``),
* keeps backoff *virtual*: delays are computed deterministically and
  accumulated into the ``faults.backoff_virtual_s`` counter (or handed
  to an injected ``sleep``) rather than stalling the test clock — the
  whole fault layer stays wall-clock-free and replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.perf import PERF
from repro.stream.errors import TransientStreamError

__all__ = [
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "RetryExhaustedError",
    "call_with_retry",
]


class RetryExhaustedError(Exception):
    """A transient fault persisted through every allowed attempt.

    Permanent from the caller's perspective; the original transient
    error is chained as ``__cause__``.
    """

    def __init__(self, site: str, attempts: int, last: TransientStreamError) -> None:
        super().__init__(
            f"gave up at {site or 'unnamed site'} after {attempts} attempts: {last}"
        )
        self.site = site
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: attempt ``k`` (0-based) waits
    ``min(base_delay_s * multiplier**k, max_delay_s)`` before retrying."""

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay_s(self, retry_index: int) -> float:
        """Backoff before the ``retry_index``-th retry (0-based)."""
        return min(
            self.base_delay_s * self.multiplier**retry_index, self.max_delay_s
        )

    def delays(self) -> tuple[float, ...]:
        """The full deterministic backoff sequence (one entry per retry)."""
        return tuple(self.delay_s(i) for i in range(self.max_attempts - 1))


#: Policy used by the data plane when none is configured.
DEFAULT_RETRY_POLICY = RetryPolicy()


def call_with_retry(
    fn: Callable[[], Any],
    *,
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    site: str = "",
    sleep: Callable[[float], None] | None = None,
) -> Any:
    """Invoke ``fn``, retrying transient stream faults per ``policy``.

    ``sleep`` receives each backoff delay; by default the delay is only
    accounted (``faults.backoff_virtual_s``), never actually slept —
    deterministic tests must not wait on real time.  Raises
    :class:`RetryExhaustedError` (with the transient cause chained) once
    the budget is spent; permanent errors propagate untouched on the
    first attempt.
    """
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except TransientStreamError as exc:
            retries_left = policy.max_attempts - 1 - attempt
            if retries_left == 0:
                PERF.count(f"faults.giveup.{site or exc.site}")
                raise RetryExhaustedError(
                    site or exc.site, policy.max_attempts, exc
                ) from exc
            PERF.count(f"faults.retry.{site or exc.site}")
            delay = policy.delay_s(attempt)
            if sleep is not None:
                sleep(delay)
            else:
                PERF.count("faults.backoff_virtual_s", delay)
    raise AssertionError("unreachable: loop either returns or raises")
