"""The fault injector and the wrappers that put it in the data path.

:class:`FaultInjector` counts invocations per site and consults a
:class:`~repro.faults.plan.FaultPlan`; the wrapper classes
(:class:`FaultyBroker`, :class:`TornCheckpointStore`,
:class:`FaultyObjectStore`) sit in front of the real components and call
:meth:`FaultInjector.fire` at each fault site before delegating.  The
wrappers are pure delegation otherwise — with an empty plan they are
behaviourally identical to the wrapped object (tested), so chaos runs
exercise exactly the production code paths.

Wrappers duck-type rather than subclass: everything not intercepted is
forwarded via ``__getattr__``, keeping them oblivious to API growth in
the wrapped classes.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any

from repro.faults.errors import SimulatedCrash, TransientTierError
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.perf import PERF
from repro.stream.errors import FetchTimeoutError, ProduceUnavailableError

if TYPE_CHECKING:  # import for type hints only; wrappers duck-type
    from repro.pipeline.checkpoint import CheckpointStore
    from repro.stream.broker import Broker, Record
    from repro.storage.object_store import ObjectMeta, ObjectStore

__all__ = [
    "FaultInjector",
    "FaultyBroker",
    "TornCheckpointStore",
    "FaultyObjectStore",
]


class FaultInjector:
    """Counts per-site invocations and raises scheduled faults.

    The injector is the single source of truth for "where are we in the
    plan": every wrapper shares one injector so a site's invocation
    index is global to the run.  ``injected`` logs every fired fault as
    ``(site, call_index, kind)`` — two runs of the same plan over the
    same input produce identical logs (replayability).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._calls: dict[str, int] = {}
        self.injected: list[tuple[str, int, FaultKind]] = []
        #: ``(site, call_index, object key)`` for every ``CORRUPT_PART``
        #: effect applied — the input ``repro.lineage.blast.blast_radius``
        #: maps to downstream artifacts.
        self.corrupted: list[tuple[str, int, str]] = []
        self.virtual_delay_s = 0.0

    def calls(self, site: str) -> int:
        """Invocations of ``site`` seen so far."""
        return self._calls.get(site, 0)

    def on_call(self, site: str) -> tuple[int, FaultSpec | None]:
        """Advance ``site``'s invocation counter; return (index, spec)."""
        n = self._calls.get(site, 0) + 1
        self._calls[site] = n
        spec = self.plan.lookup(site, n)
        if spec is not None:
            self.injected.append((site, n, spec.kind))
            PERF.count(f"faults.injected.{spec.kind.value}")
        return n, spec

    def fire(self, site: str) -> FaultSpec | None:
        """Consult the plan at ``site``; raise error-kind faults, apply
        slow-read delay, and return effect-kind specs for the caller."""
        call, spec = self.on_call(site)
        if spec is None:
            return None
        kind = spec.kind
        if kind is FaultKind.FETCH_ERROR:
            raise FetchTimeoutError(site, f"injected at call {call}")
        if kind is FaultKind.PRODUCE_ERROR:
            raise ProduceUnavailableError(site, f"injected at call {call}")
        if kind is FaultKind.TIER_ERROR:
            raise TransientTierError(site, f"injected at call {call}")
        if kind is FaultKind.CRASH:
            raise SimulatedCrash(site, call)
        if kind is FaultKind.SLOW_READ:
            self.virtual_delay_s += spec.arg
            PERF.count("faults.slow_read_virtual_s", spec.arg)
        return spec


class FaultyBroker:
    """A :class:`~repro.stream.broker.Broker` front that injects
    transport faults at the fetch/produce sites.

    ``site_prefix`` namespaces the fault sites, so a sharded broker's
    individual shards can be wrapped independently (e.g. wrapping
    ``sharded.shards[1]`` with ``site_prefix="broker.shard1"`` arms the
    sites ``broker.shard1.fetch`` / ``broker.shard1.produce`` — a
    shard-local outage the other shards never see).
    """

    SITE_FETCH = "broker.fetch"
    SITE_PRODUCE = "broker.produce"

    def __init__(
        self,
        inner: "Broker",
        injector: FaultInjector,
        site_prefix: str = "broker",
    ) -> None:
        self.inner = inner
        self.injector = injector
        self.site_fetch = f"{site_prefix}.fetch"
        self.site_produce = f"{site_prefix}.produce"

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)

    def fetch(
        self,
        topic: str,
        partition: int,
        from_offset: int,
        max_records: int | None = 1000,
    ) -> list["Record"]:
        spec = self.injector.fire(self.site_fetch)
        if spec is not None and spec.kind is FaultKind.RETENTION_RACE:
            # Retention runs "concurrently", trimming the head the
            # consumer was about to read.
            self.inner.enforce_retention(spec.arg)
        return self.inner.fetch(topic, partition, from_offset, max_records)

    def produce(self, topic: str, value: Any, **kwargs: Any) -> "Record":
        self.injector.fire(self.site_produce)
        return self.inner.produce(topic, value, **kwargs)

    def produce_many(
        self, topic: str, values: Any, **kwargs: Any
    ) -> list["Record"]:
        self.injector.fire(self.site_produce)
        return self.inner.produce_many(topic, values, **kwargs)


class TornCheckpointStore:
    """A :class:`~repro.pipeline.checkpoint.CheckpointStore` front that
    can die mid-commit.

    ``CRASH`` kills the process *before* any write reaches disk (the
    crash-between-sink-and-checkpoint window).  ``TORN_CHECKPOINT``
    models a crash mid-``os.replace`` era: the would-be checkpoint
    payload is written **truncated, in place, without the
    temp-file/rename dance** — exactly the corrupt file a restarted
    store must quarantine — and then the process dies.
    """

    SITE_COMMIT = "checkpoint.commit"

    def __init__(self, inner: "CheckpointStore", injector: FaultInjector) -> None:
        if inner.path is None:
            raise ValueError(
                "TornCheckpointStore needs a disk-backed CheckpointStore; "
                "in-memory state has no file to tear"
            )
        self.inner = inner
        self.injector = injector

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)

    def commit(
        self,
        query_id: str,
        batch_id: int,
        offsets: dict[int, int],
        state: dict[str, Any] | None = None,
    ) -> None:
        call, spec = self.injector.on_call(self.SITE_COMMIT)
        if spec is not None:
            if spec.kind is FaultKind.CRASH:
                raise SimulatedCrash(self.SITE_COMMIT, call)
            if spec.kind is FaultKind.TORN_CHECKPOINT:
                self._tear(query_id, batch_id, offsets, state)
                raise SimulatedCrash(self.SITE_COMMIT, call)
        self.inner.commit(query_id, batch_id, offsets, state)

    def _tear(
        self,
        query_id: str,
        batch_id: int,
        offsets: dict[int, int],
        state: dict[str, Any] | None,
    ) -> None:
        payload: dict[str, Any] = {
            q: {
                "batch_id": self.inner.last_batch_id(q),
                "offsets": {str(k): v for k, v in self.inner.offsets(q).items()},
                "state": self.inner.state(q),
            }
            for q in self.inner.queries()
        }
        payload[query_id] = {
            "batch_id": batch_id,
            "offsets": {str(k): int(v) for k, v in offsets.items()},
            "state": state or {},
        }
        blob = json.dumps(payload)
        torn = blob[: max(1, len(blob) // 2)]
        target = os.path.join(self.inner.path, "checkpoints.json")
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(torn)


class FaultyObjectStore:
    """An :class:`~repro.storage.object_store.ObjectStore` front that
    injects faults at the put and delete sites.

    Both sites fire *before* delegating, so a ``CRASH`` models a process
    death in which the operation never reached the store — the windows
    the tier rewrite protocol (DESIGN.md §15) must survive: a crash at
    ``tier.put`` loses an uncommitted rewrite, a crash at
    ``tier.delete`` strands a superseded part for the recovery sweep.
    """

    SITE_PUT = "tier.put"
    SITE_DELETE = "tier.delete"

    def __init__(self, inner: "ObjectStore", injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)

    def put(self, bucket: str, key: str, data: bytes, **kwargs: Any) -> "ObjectMeta":
        spec = self.injector.fire(self.SITE_PUT)
        if spec is not None and spec.kind is FaultKind.CORRUPT_PART:
            # Silent corruption: the put succeeds, the bytes are wrong.
            # The caller's manifest/digest metadata describe the clean
            # table, exactly the mismatch real bit-rot produces.
            data = _corrupt_blob(data)
            self.injector.corrupted.append(
                (self.SITE_PUT, self.injector.calls(self.SITE_PUT), key)
            )
            PERF.count("faults.parts_corrupted")
        return self.inner.put(bucket, key, data, **kwargs)

    def delete(self, bucket: str, key: str) -> None:
        self.injector.fire(self.SITE_DELETE)
        self.inner.delete(bucket, key)


def _corrupt_blob(data: bytes) -> bytes:
    """Deterministically perturb an RCF blob's float columns.

    The blob stays decodable (queries keep running and return wrong
    numbers — the dangerous failure mode) and the perturbation is a
    pure function of the input, so a corrupted run replays byte-for-
    byte.  The time column is left alone: windowing and span accounting
    must keep working for the corruption to flow downstream silently.
    """
    import numpy as np

    from repro.columnar.file_format import read_table, write_table
    from repro.columnar.table import ColumnTable

    table = read_table(data)
    if table.num_rows == 0:
        return data
    columns = {}
    for name in table.column_names:
        arr = np.asarray(table[name])
        if name != "timestamp" and np.issubdtype(arr.dtype, np.floating):
            arr = arr + 1.0e6
        columns[name] = arr
    return write_table(ColumnTable(columns))
