"""Fault injection and recovery machinery for the data plane.

The paper adopted Spark structured streaming for its "advanced failure
and recovery mechanisms that can be difficult to re-engineer from
scratch" (§V-B).  This package is how the from-scratch reproduction
earns the same trust: deterministic, seeded fault injection
(:mod:`~repro.faults.plan`, :mod:`~repro.faults.injector`), typed
retry/backoff for transient transport faults
(:mod:`~repro.faults.retry`), and a crash/restart harness
(:mod:`~repro.faults.harness`) that asserts the effectively-once
contract — Gold output byte-identical to a fault-free run under every
plan in the chaos suite.

Everything here is wall-clock-free and seeded (the DET rules apply to
this package), so every failure run is replayable byte-for-byte.
"""

from repro.faults.errors import SimulatedCrash, TransientTierError
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.retry import (
    DEFAULT_RETRY_POLICY,
    RetryExhaustedError,
    RetryPolicy,
    call_with_retry,
)
from repro.faults.injector import (
    FaultInjector,
    FaultyBroker,
    FaultyObjectStore,
    TornCheckpointStore,
)

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "FaultyBroker",
    "FaultyObjectStore",
    "TornCheckpointStore",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "RetryExhaustedError",
    "call_with_retry",
    "SimulatedCrash",
    "TransientTierError",
    # lazily re-exported from repro.faults.harness (see __getattr__):
    "IdempotentTableSink",
    "ChaosResult",
    "run_with_restarts",
]

_HARNESS_EXPORTS = frozenset(
    {"IdempotentTableSink", "ChaosResult", "run_with_restarts"}
)


def __getattr__(name: str):
    # The harness imports the pipeline, which imports repro.faults.retry
    # at module scope — importing it eagerly here would deadlock that
    # cycle, so it loads on first attribute access instead.
    if name in _HARNESS_EXPORTS:
        from repro.faults import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
