"""Error types raised by the fault-injection layer.

Two families, mirroring :mod:`repro.stream.errors`:

* transient faults (:class:`TransientTierError` plus the stream's own
  :class:`~repro.stream.errors.TransientStreamError` subclasses) — the
  retry wrappers absorb these;
* :class:`SimulatedCrash` — a modelled process kill.  It subclasses
  ``BaseException`` exactly like ``KeyboardInterrupt`` so that no
  ``except Exception`` on the data path can accidentally survive a
  "kill"; only the crash/restart harness catches it.
"""

from __future__ import annotations

from repro.stream.errors import TransientStreamError

__all__ = ["TransientTierError", "SimulatedCrash"]


class TransientTierError(TransientStreamError):
    """A storage-tier write transiently failed (lake or object store);
    safe to retry because the write either did not land or is
    idempotent per key."""


class SimulatedCrash(BaseException):
    """The fault plan killed the process at ``site``.

    Deliberately *not* an :class:`Exception` subclass: a real ``kill -9``
    cannot be caught, so neither can this — except by the restart
    harness, which models the supervisor that restarts the query.
    """

    def __init__(self, site: str, call_index: int) -> None:
        super().__init__(f"simulated crash at {site} (call {call_index})")
        self.site = site
        self.call_index = call_index
