"""Crash/restart harness: supervise a streaming query under a fault plan.

The effectively-once contract (§V-B) says: an at-least-once source plus
a checkpointed driver plus an idempotent sink yields output identical to
a fault-free run, no matter where crashes land.  This module is the
machinery that *proves* it for a given plan:

* :class:`IdempotentTableSink` — the canonical idempotent sink (last
  write per ``batch_id`` wins) with a byte-stable serialization of the
  final output for oracle comparison.
* :func:`run_with_restarts` — the supervisor loop: build the query,
  drive it, and on a :class:`~repro.faults.errors.SimulatedCrash` or a
  retry give-up, rebuild it from the checkpoint and carry on.

Kept out of ``repro.faults.__init__``'s eager imports: the data plane
imports ``repro.faults.retry`` at module scope, and this module imports
the data plane back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.columnar.file_format import write_table
from repro.columnar.table import ColumnTable
from repro.faults.errors import SimulatedCrash
from repro.faults.retry import RetryExhaustedError
from repro.pipeline.micro_batch import StreamingQuery

__all__ = ["IdempotentTableSink", "ChaosResult", "run_with_restarts"]


class IdempotentTableSink:
    """A sink where the last write per ``batch_id`` wins.

    Re-delivering a batch overwrites its previous output, so replays
    after a crash are absorbed instead of duplicated — the contract
    :class:`~repro.pipeline.micro_batch.StreamingQuery` requires of its
    sink.  In production this role is played by a keyed table write
    (e.g. an object-store part file named by batch id); a dict models it
    exactly and survives "process death" the way durable storage does.
    """

    def __init__(self) -> None:
        self.batches: dict[int, ColumnTable] = {}
        self.writes = 0

    def __call__(self, batch_id: int, table: ColumnTable) -> None:
        self.writes += 1
        self.batches[batch_id] = table

    def result_table(self) -> ColumnTable:
        """All batch outputs concatenated in batch-id order."""
        tables = [
            self.batches[b] for b in sorted(self.batches)
            if self.batches[b].num_rows
        ]
        if not tables:
            return ColumnTable({})
        return ColumnTable.concat(tables)

    def result_bytes(self) -> bytes:
        """Byte-stable serialization of :meth:`result_table` — the value
        two runs must agree on for the effectively-once check."""
        table = self.result_table()
        if table.num_rows == 0:
            return b""
        return write_table(table)


@dataclass(frozen=True)
class ChaosResult:
    """Outcome of one supervised run."""

    crashes: int
    giveups: int
    restarts: int
    batches: int

    @property
    def clean(self) -> bool:
        """True when the run needed no restart at all."""
        return self.restarts == 0


def run_with_restarts(
    make_query: Callable[[], StreamingQuery],
    max_restarts: int = 50,
    max_batches_per_run: int = 1000,
) -> ChaosResult:
    """Drive a query to completion across crashes.

    ``make_query`` must rebuild the query *from its checkpoint store* —
    the supervisor calls it after every simulated death, exactly like a
    process manager restarting a worker.  Raises ``RuntimeError`` if the
    query cannot drain within ``max_restarts`` restarts (a plan that
    faults every invocation of a site forever is unrecoverable by
    design).
    """
    crashes = 0
    giveups = 0
    batches = 0
    for restarts in range(max_restarts + 1):
        query = make_query()
        try:
            results = query.run_until_caught_up(max_batches=max_batches_per_run)
            batches += len(results)
            if query.lag() == 0:
                return ChaosResult(crashes, giveups, restarts, batches)
        except SimulatedCrash:
            crashes += 1
            batches += len(query.history)
        except RetryExhaustedError:
            giveups += 1
            batches += len(query.history)
    raise RuntimeError(
        f"query did not drain within {max_restarts} restarts "
        f"({crashes} crashes, {giveups} retry give-ups)"
    )
