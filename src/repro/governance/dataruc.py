"""The DataRUC request workflow (Fig. 12).

State machine: SUBMITTED -> UNDER_REVIEW -> APPROVED | REJECTED;
approved internal requests are PROVISIONED with tier access; approved
external/publication requests additionally pass SANITIZED before
RELEASED.  Every transition is timestamped so the Fig. 12 bench can
report end-to-end latency under the standing process vs. the ad-hoc
baseline.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.governance.advisory import (
    AdvisoryChain,
    AdvisoryRole,
    Review,
    Verdict,
)

__all__ = ["RequestType", "RequestState", "DataRequest", "DataRUC"]


class RequestType(enum.Enum):
    """Kinds of data-usage requests (Fig. 12 entry points)."""

    INTERNAL_PROJECT = "internal project"
    EXTERNAL_COLLABORATION = "external collaboration"
    PUBLICATION = "publication"
    DATASET_RELEASE = "public dataset release"

    @property
    def external(self) -> bool:
        """Data leaves the organization."""
        return self in (
            RequestType.EXTERNAL_COLLABORATION,
            RequestType.DATASET_RELEASE,
        )

    @property
    def publication(self) -> bool:
        """Artifacts reach a wider audience."""
        return self in (RequestType.PUBLICATION, RequestType.DATASET_RELEASE)


class RequestState(enum.Enum):
    """Workflow states of Fig. 12."""

    SUBMITTED = "submitted"
    UNDER_REVIEW = "under review"
    APPROVED = "approved"
    REJECTED = "rejected"
    PROVISIONED = "provisioned"
    SANITIZED = "sanitized"
    RELEASED = "released"


#: Tier access granted per request type ("(1) enable data visualization
#: and reporting applications (STREAM, LAKE) or (2) carry out a
#: historical analysis campaign (OCEAN)").
ACCESS_GRANTS: dict[RequestType, tuple[str, ...]] = {
    RequestType.INTERNAL_PROJECT: ("STREAM", "LAKE", "OCEAN"),
    RequestType.EXTERNAL_COLLABORATION: ("project-export",),
    RequestType.PUBLICATION: ("OCEAN",),
    RequestType.DATASET_RELEASE: ("public-repository",),
}


@dataclass
class DataRequest:
    """One request moving through the workflow."""

    request_id: int
    requester: str
    request_type: RequestType
    datasets: list[str]
    purpose: str
    human_subjects: bool = False
    state: RequestState = RequestState.SUBMITTED
    submitted_at: float = 0.0
    reviews: list[Review] = field(default_factory=list)
    required_roles: set[AdvisoryRole] = field(default_factory=set)
    granted_access: tuple[str, ...] = ()
    history: list[tuple[RequestState, float]] = field(default_factory=list)

    def transition(self, state: RequestState, at: float) -> None:
        """Record a state change (monotone time enforced)."""
        if self.history and at < self.history[-1][1]:
            raise ValueError("transitions must move forward in time")
        self.state = state
        self.history.append((state, at))

    def latency_s(self) -> float | None:
        """Submit-to-terminal latency, if terminal."""
        terminal = {
            RequestState.REJECTED,
            RequestState.PROVISIONED,
            RequestState.RELEASED,
        }
        for state, at in self.history:
            if state in terminal:
                return at - self.submitted_at
        return None


class DataRUC:
    """The data resource usage committee: intake, review, provisioning."""

    def __init__(self, chain: AdvisoryChain | None = None) -> None:
        self.chain = chain or AdvisoryChain()
        self._requests: dict[int, DataRequest] = {}
        self._ids = itertools.count(1)
        #: Audit trail: every grant and data touch ("access to the data
        #: is provided and tracked via various channels", §IX-B).
        self.access_log: list[tuple[float, str, int, str]] = []

    # -- intake ------------------------------------------------------------------

    def submit(
        self,
        requester: str,
        request_type: RequestType,
        datasets: list[str],
        purpose: str,
        now: float,
        human_subjects: bool = False,
    ) -> DataRequest:
        """File a request; it immediately enters review."""
        if not datasets:
            raise ValueError("request must name at least one dataset")
        request = DataRequest(
            request_id=next(self._ids),
            requester=requester,
            request_type=request_type,
            datasets=list(datasets),
            purpose=purpose,
            human_subjects=human_subjects,
            submitted_at=now,
        )
        request.required_roles = self.chain.required_roles(
            external=request_type.external,
            publication=request_type.publication,
            human_subjects=human_subjects,
        )
        request.transition(RequestState.SUBMITTED, now)
        request.transition(RequestState.UNDER_REVIEW, now)
        self._requests[request.request_id] = request
        return request

    def get(self, request_id: int) -> DataRequest:
        """Request by id (KeyError if unknown)."""
        try:
            return self._requests[request_id]
        except KeyError:
            raise KeyError(f"unknown request {request_id}") from None

    def pending(self) -> list[DataRequest]:
        """Requests awaiting reviews."""
        return [
            r for r in self._requests.values()
            if r.state is RequestState.UNDER_REVIEW
        ]

    # -- review ---------------------------------------------------------------------

    def record_review(
        self,
        request_id: int,
        role: AdvisoryRole,
        verdict: Verdict,
        now: float,
        comment: str = "",
    ) -> DataRequest:
        """File one role's review; resolves the request when decisive."""
        request = self.get(request_id)
        if request.state is not RequestState.UNDER_REVIEW:
            raise ValueError(
                f"request {request_id} is {request.state.value}, not under review"
            )
        if role not in request.required_roles:
            raise ValueError(
                f"{role.value} is not a required reviewer for request "
                f"{request_id}"
            )
        if any(r.role is role for r in request.reviews):
            raise ValueError(f"{role.value} already reviewed request {request_id}")
        request.reviews.append(Review(role, verdict, now, comment))
        if self.chain.is_rejected(request.reviews):
            request.transition(RequestState.REJECTED, now)
        elif self.chain.is_approved(request.required_roles, request.reviews):
            request.transition(RequestState.APPROVED, now)
        return request

    def run_reviews(
        self, request_id: int, now: float, reject_roles: set[AdvisoryRole] = frozenset()
    ) -> DataRequest:
        """Simulate all outstanding reviews landing at their nominal
        latencies (parallel routing).  Roles in ``reject_roles`` veto."""
        from repro.governance.advisory import REVIEW_LATENCY_S

        request = self.get(request_id)
        for role in sorted(
            request.required_roles, key=lambda r: REVIEW_LATENCY_S[r]
        ):
            if request.state is not RequestState.UNDER_REVIEW:
                break
            verdict = (
                Verdict.REJECT if role in reject_roles else Verdict.APPROVE
            )
            self.record_review(
                request_id, role, verdict, now + REVIEW_LATENCY_S[role]
            )
        return request

    # -- post-approval -----------------------------------------------------------------

    def provision(self, request_id: int, now: float) -> tuple[str, ...]:
        """Grant tier access for an approved internal request."""
        request = self.get(request_id)
        if request.state is not RequestState.APPROVED:
            raise ValueError("only approved requests can be provisioned")
        request.granted_access = ACCESS_GRANTS[request.request_type]
        request.transition(RequestState.PROVISIONED, now)
        for channel in request.granted_access:
            self.access_log.append(
                (now, request.requester, request.request_id, f"grant:{channel}")
            )
        return request.granted_access

    def record_access(
        self, request_id: int, channel: str, now: float
    ) -> None:
        """Record one data touch against a provisioned/released grant."""
        request = self.get(request_id)
        if request.state not in (RequestState.PROVISIONED, RequestState.RELEASED):
            raise ValueError(
                f"request {request_id} has no active grant "
                f"({request.state.value})"
            )
        if channel not in request.granted_access:
            raise ValueError(
                f"channel {channel!r} not granted to request {request_id}; "
                f"granted: {request.granted_access}"
            )
        self.access_log.append(
            (now, request.requester, request_id, f"access:{channel}")
        )

    def accesses_by(self, requester: str) -> list[tuple[float, int, str]]:
        """Audit query: all log entries for one requester."""
        return [
            (at, rid, what)
            for at, who, rid, what in self.access_log
            if who == requester
        ]

    def annotate_lineage(
        self, request_id: int, catalog, bucket: str = "oda"
    ) -> int:
        """Attach a request's reviews to its datasets' lineage nodes.

        Every review filed against the request becomes an advisory on
        each *live* part node of each dataset the request names.
        Advisories propagate downstream at query time
        (:meth:`repro.lineage.LineageCatalog.advisories` walks the
        upstream closure), so a restriction recorded on a dataset
        restricts every rollup partial, query answer and serve envelope
        computed from it — the §IX intent, made queryable.  Returns the
        number of part nodes annotated.
        """
        request = self.get(request_id)
        annotated = 0
        for dataset in request.datasets:
            for key in catalog.live_parts(dataset):
                nid = catalog.part_node(bucket, key)
                for review in request.reviews:
                    catalog.attach_advisory(
                        nid,
                        {
                            "request_id": request.request_id,
                            "requester": request.requester,
                            "role": review.role.value,
                            "verdict": review.verdict.value,
                            "comment": review.comment,
                            "at": review.reviewed_at,
                        },
                    )
                annotated += 1
        return annotated

    def mark_sanitized(self, request_id: int, now: float) -> None:
        """Record completed sanitization for an external request."""
        request = self.get(request_id)
        if request.state is not RequestState.APPROVED:
            raise ValueError("sanitization follows approval")
        if not request.request_type.external:
            raise ValueError("internal requests are not sanitized")
        request.transition(RequestState.SANITIZED, now)

    def release(self, request_id: int, now: float) -> None:
        """Final release of a sanitized external request."""
        request = self.get(request_id)
        if request.state is not RequestState.SANITIZED:
            raise ValueError("release requires completed sanitization")
        request.granted_access = ACCESS_GRANTS[request.request_type]
        request.transition(RequestState.RELEASED, now)
        for channel in request.granted_access:
            self.access_log.append(
                (now, request.requester, request.request_id, f"grant:{channel}")
            )
