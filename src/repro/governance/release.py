"""Public release catalog (the Constellation role).

"for datasets, the data is curated, and archived in a public repository
for public usage" — the catalog mints DOI-like identifiers, stores the
released artifact immutably, and records the approving request so every
public dataset traces back through the Fig. 12 workflow.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.governance.dataruc import DataRequest, RequestState

__all__ = ["ReleasedDataset", "ReleaseCatalog"]


@dataclass(frozen=True)
class ReleasedDataset:
    """One published dataset record."""

    doi: str
    title: str
    request_id: int
    size_bytes: int
    released_at: float
    checksum: str
    metadata: dict[str, str] = field(default_factory=dict)


class ReleaseCatalog:
    """Immutable catalog of publicly released datasets."""

    DOI_PREFIX = "10.13139/SIM"

    def __init__(self) -> None:
        self._datasets: dict[str, ReleasedDataset] = {}
        self._blobs: dict[str, bytes] = {}
        self._counter = 0

    def publish(
        self,
        request: DataRequest,
        title: str,
        blob: bytes,
        released_at: float,
        metadata: dict[str, str] | None = None,
    ) -> ReleasedDataset:
        """Publish an artifact under an approved-and-released request.

        The gate is the whole point: no RELEASED request, no publication.
        """
        if request.state is not RequestState.RELEASED:
            raise ValueError(
                f"request {request.request_id} is {request.state.value}; "
                "only released requests can publish"
            )
        self._counter += 1
        doi = f"{self.DOI_PREFIX}/{self._counter:07d}"
        record = ReleasedDataset(
            doi=doi,
            title=title,
            request_id=request.request_id,
            size_bytes=len(blob),
            released_at=released_at,
            checksum=hashlib.sha256(blob).hexdigest(),
            metadata=dict(metadata or {}),
        )
        self._datasets[doi] = record
        self._blobs[doi] = bytes(blob)
        return record

    def get(self, doi: str) -> tuple[ReleasedDataset, bytes]:
        """Fetch a released dataset and verify its checksum."""
        try:
            record = self._datasets[doi]
        except KeyError:
            raise KeyError(f"unknown DOI {doi!r}") from None
        blob = self._blobs[doi]
        if hashlib.sha256(blob).hexdigest() != record.checksum:
            raise RuntimeError(f"checksum mismatch for {doi}")
        return record, blob

    def search(self, term: str) -> list[ReleasedDataset]:
        """Title substring search (case-insensitive)."""
        needle = term.lower()
        return [
            r for r in self._datasets.values() if needle in r.title.lower()
        ]

    def datasets(self) -> list[ReleasedDataset]:
        """All records, in publication order."""
        return list(self._datasets.values())
