"""Data governance and distribution (§IX, Table II, Fig. 12).

"every data usage request [is reviewed] through an advisory chain ...
submitting a request to a data resource usage committee (DataRUC)" —
and, the paper's counterintuitive lesson, this *accelerates* empowerment
because the standing process replaces ad-hoc legal/security navigation.

* :mod:`repro.governance.advisory` — the Table II advisory roles and
  their veto semantics,
* :mod:`repro.governance.dataruc` — the request workflow state machine
  of Fig. 12 with latency accounting,
* :mod:`repro.governance.sanitize` — keyed pseudonymization and PII
  scrubbing for external releases,
* :mod:`repro.governance.release` — the public release catalog (the
  Constellation role).
"""

from repro.governance.advisory import (
    AdvisoryChain,
    AdvisoryRole,
    Review,
    Verdict,
)
from repro.governance.dataruc import (
    DataRequest,
    DataRUC,
    RequestState,
    RequestType,
)
from repro.governance.sanitize import Sanitizer, detect_identifier_columns
from repro.governance.release import ReleaseCatalog, ReleasedDataset

__all__ = [
    "AdvisoryRole",
    "AdvisoryChain",
    "Review",
    "Verdict",
    "DataRequest",
    "DataRUC",
    "RequestState",
    "RequestType",
    "Sanitizer",
    "detect_identifier_columns",
    "ReleaseCatalog",
    "ReleasedDataset",
]
