"""The advisory chain (Table II).

Five reviewing entities, each with a distinct concern and a veto.  The
chain is *conjunctive*: a request proceeds only when every applicable
role approves.  IRB participation is conditional — it reviews only when
the request involves human-subjects research, matching the federally
mandated scope the paper describes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["AdvisoryRole", "Verdict", "Review", "AdvisoryChain", "TABLE2"]


class AdvisoryRole(enum.Enum):
    """Reviewing entities of Table II."""

    DATA_OWNER = "data owner"
    CYBER_SECURITY = "cyber security"
    LEGAL = "legal"
    IRB = "institutional review board"
    MANAGEMENT = "management"


#: Table II verbatim concerns, keyed by role.
TABLE2: dict[AdvisoryRole, str] = {
    AdvisoryRole.DATA_OWNER: (
        "Considers purpose and potential interpretation of the data that "
        "can harm ongoing operations."
    ),
    AdvisoryRole.CYBER_SECURITY: (
        "Prevent leakage of PII data embedded within the data or "
        "information that can identify certain projects or users."
    ),
    AdvisoryRole.LEGAL: (
        "Provides guidance on legal requirements defined by contractual "
        "obligations as well as any national regulatory concerns."
    ),
    AdvisoryRole.IRB: (
        "Federally mandated entity that oversees the protection of human "
        "subjects in research ensuring rights and welfare of human "
        "research subjects are protected."
    ),
    AdvisoryRole.MANAGEMENT: (
        "Organizational approval on publications or artifacts reviewing "
        "alignment with the facility mission."
    ),
}

#: Nominal review turnaround per role (seconds) for latency accounting.
REVIEW_LATENCY_S: dict[AdvisoryRole, float] = {
    AdvisoryRole.DATA_OWNER: 2 * 86_400.0,
    AdvisoryRole.CYBER_SECURITY: 3 * 86_400.0,
    AdvisoryRole.LEGAL: 7 * 86_400.0,
    AdvisoryRole.IRB: 14 * 86_400.0,
    AdvisoryRole.MANAGEMENT: 2 * 86_400.0,
}


class Verdict(enum.Enum):
    """Outcome of one role's review."""

    APPROVE = "approve"
    REJECT = "reject"


@dataclass(frozen=True)
class Review:
    """One recorded review."""

    role: AdvisoryRole
    verdict: Verdict
    reviewed_at: float
    comment: str = ""


class AdvisoryChain:
    """Determines which roles must review a given request."""

    def required_roles(
        self,
        external: bool,
        publication: bool,
        human_subjects: bool,
    ) -> set[AdvisoryRole]:
        """The applicable reviewer set.

        Data owner and cyber security review everything; legal joins for
        anything leaving the organization; IRB only for human-subjects
        research; management signs off on publications and releases.
        """
        roles = {AdvisoryRole.DATA_OWNER, AdvisoryRole.CYBER_SECURITY}
        if external or publication:
            roles.add(AdvisoryRole.LEGAL)
            roles.add(AdvisoryRole.MANAGEMENT)
        if human_subjects:
            roles.add(AdvisoryRole.IRB)
        return roles

    def is_approved(
        self, required: set[AdvisoryRole], reviews: list[Review]
    ) -> bool:
        """True iff every required role has approved (conjunctive)."""
        approved = {
            r.role for r in reviews if r.verdict is Verdict.APPROVE
        }
        return required <= approved

    def is_rejected(self, reviews: list[Review]) -> bool:
        """True if any role vetoed."""
        return any(r.verdict is Verdict.REJECT for r in reviews)

    def expected_latency_s(self, required: set[AdvisoryRole],
                           parallel: bool = True) -> float:
        """Review latency under parallel vs. sequential routing.

        The standing DataRUC process routes reviews in parallel; the
        ad-hoc pre-process baseline was sequential — the difference is
        the paper's 'accelerating empowerment' claim, measured in the
        Fig. 12 bench.
        """
        latencies = [REVIEW_LATENCY_S[r] for r in required]
        if not latencies:
            return 0.0
        return max(latencies) if parallel else sum(latencies)
