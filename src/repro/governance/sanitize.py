"""Sanitization and anonymization for external data release.

"internal staff hosting such projects carry out data sanitization or
anonymization tasks with the guidance of the curation and cybersecurity
staff before the data reaches external users."

The sanitizer applies keyed pseudonymization (HMAC-SHA256 truncated) to
identifier columns: consistent — the same user maps to the same
pseudonym across datasets released under one key — but irreversible
without the key, preserving join structure for researchers while
removing identities.
"""

from __future__ import annotations

import hmac
import hashlib
import re

import numpy as np

from repro.columnar.table import ColumnTable

__all__ = ["Sanitizer", "detect_identifier_columns"]

#: Column-name patterns treated as identifiers by default.
_IDENTIFIER_PATTERNS = (
    re.compile(r"user", re.IGNORECASE),
    re.compile(r"project", re.IGNORECASE),
    re.compile(r"email", re.IGNORECASE),
    re.compile(r"name$", re.IGNORECASE),
    re.compile(r"account", re.IGNORECASE),
)


def detect_identifier_columns(table: ColumnTable) -> list[str]:
    """Columns whose names look like identifiers (conservative list)."""
    return [
        c
        for c in table.column_names
        if any(p.search(c) for p in _IDENTIFIER_PATTERNS)
    ]


class Sanitizer:
    """Keyed pseudonymizer for tabular releases.

    Parameters
    ----------
    key:
        Secret bytes; pseudonyms are stable per key.
    prefix:
        Pseudonym prefix, e.g. ``usr_`` -> ``usr_3fa4b2c1``.
    """

    PSEUDONYM_LEN = 8

    def __init__(self, key: bytes, prefix: str = "anon_") -> None:
        if not key:
            raise ValueError("key must be non-empty")
        self._key = bytes(key)
        self.prefix = prefix

    def pseudonym(self, value: str) -> str:
        """Stable pseudonym for one identifier value."""
        digest = hmac.new(
            self._key, value.encode("utf-8"), hashlib.sha256
        ).hexdigest()
        return f"{self.prefix}{digest[: self.PSEUDONYM_LEN]}"

    def sanitize_table(
        self,
        table: ColumnTable,
        columns: list[str] | None = None,
        drop: list[str] | None = None,
    ) -> ColumnTable:
        """Pseudonymize ``columns`` (auto-detected when None) and drop
        ``drop`` columns entirely."""
        if columns is None:
            columns = detect_identifier_columns(table)
        out = table
        if drop:
            out = out.drop(drop)
        for name in columns:
            if name not in out:
                continue
            col = out[name]
            if col.dtype != object:
                raise ValueError(
                    f"column {name!r} is numeric; pseudonymization is for "
                    "string identifiers (drop numeric ids instead)"
                )
            cache: dict[str, str] = {}
            new = np.empty(col.size, dtype=object)
            for i, value in enumerate(col.tolist()):
                if value is None:
                    new[i] = None
                    continue
                hit = cache.get(value)
                if hit is None:
                    hit = self.pseudonym(value)
                    cache[value] = hit
                new[i] = hit
            out = out.with_column(name, new)
        return out

    def verify_sanitized(
        self, original: ColumnTable, sanitized: ColumnTable,
        columns: list[str] | None = None,
    ) -> bool:
        """True iff no raw identifier value from ``original`` survives in
        the sanitized table's identifier columns."""
        if columns is None:
            columns = detect_identifier_columns(original)
        for name in columns:
            if name not in sanitized:
                continue
            raw = {
                v for v in original[name].tolist() if v is not None
            }
            released = {
                v for v in sanitized[name].tolist() if v is not None
            }
            if raw & released:
                return False
        return True
