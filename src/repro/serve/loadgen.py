"""Seeded multi-tenant load generator for the serving gateway.

Models what production ODA front-ends actually see: many dashboard and
reporting sessions, a zipf-skewed tenant population (a few heavy
projects dominate), a weighted endpoint mix, and *sticky sessions* —
a tenant refreshing a dashboard re-issues its previous query with high
probability, which is exactly the redundancy a result cache monetizes.

Everything is a pure function of ``(profile, n_requests, seed)``:
:func:`generate_load` replays byte-identically (checkable with
:func:`replay_digest`), so a bench run's offered load is part of its
reproducibility contract.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.serve.envelope import Request
from repro.util.rng import derive_seed

__all__ = ["EndpointMix", "LoadProfile", "generate_load", "replay_digest"]


@dataclass(frozen=True)
class EndpointMix:
    """One endpoint's share of the offered load.

    ``params`` maps each parameter name to the tuple of candidate
    values a session may ask for — the distinct-query population is the
    cross product, deliberately bounded so cache behaviour is a
    function of the profile, not of unbounded key cardinality.
    """

    name: str
    weight: float
    params: tuple[tuple[str, tuple], ...] = ()

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        for pname, candidates in self.params:
            if not candidates:
                raise ValueError(
                    f"param {pname!r} of {self.name!r} has no candidates"
                )


@dataclass(frozen=True)
class LoadProfile:
    """Shape of the offered load (who asks, what, how repetitively)."""

    mix: tuple[EndpointMix, ...]
    n_tenants: int = 50
    zipf_a: float = 1.2
    repeat_p: float = 0.6

    def __post_init__(self) -> None:
        if not self.mix:
            raise ValueError("mix must name at least one endpoint")
        if self.n_tenants <= 0:
            raise ValueError("n_tenants must be positive")
        if self.zipf_a <= 0:
            raise ValueError("zipf_a must be positive")
        if not 0.0 <= self.repeat_p < 1.0:
            raise ValueError("repeat_p must be in [0, 1)")


def _tenant_probs(n: int, a: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    p = ranks**-a
    return p / p.sum()


def generate_load(
    profile: LoadProfile, n_requests: int, seed: int = 0
) -> list[Request]:
    """``n_requests`` seeded arrivals in issue order.

    Tenant choice is bounded-zipf over ``n_tenants`` ranks; endpoint
    choice is weighted by the mix; each param draws uniformly from its
    candidate tuple.  With probability ``repeat_p`` a tenant that has
    asked before re-issues its previous query verbatim (the sticky
    dashboard refresh).
    """
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    rng = np.random.default_rng(derive_seed(seed, "serve.loadgen"))
    tenant_p = _tenant_probs(profile.n_tenants, profile.zipf_a)
    weights = np.array([m.weight for m in profile.mix], dtype=np.float64)
    weights /= weights.sum()

    tenant_ids = rng.choice(profile.n_tenants, size=n_requests, p=tenant_p)
    endpoint_ids = rng.choice(len(profile.mix), size=n_requests, p=weights)
    repeat_draws = rng.random(n_requests)

    last_by_tenant: dict[int, tuple[str, tuple]] = {}
    out: list[Request] = []
    for i in range(n_requests):
        t = int(tenant_ids[i])
        tenant = f"tenant-{t:04d}"
        previous = last_by_tenant.get(t)
        if previous is not None and repeat_draws[i] < profile.repeat_p:
            endpoint, params = previous
        else:
            mix = profile.mix[int(endpoint_ids[i])]
            endpoint = mix.name
            chosen: list[tuple[str, Any]] = []
            for pname, candidates in mix.params:
                j = int(rng.integers(len(candidates)))
                chosen.append((pname, candidates[j]))
            params = tuple(sorted(chosen))
        last_by_tenant[t] = (endpoint, params)
        out.append(Request(tenant, endpoint, params))
    return out


def replay_digest(requests: list[Request]) -> str:
    """Content digest of an offered-load sequence (order-sensitive).

    Two generators produced the same load iff their digests match —
    the serving bench records this so a report's latency numbers are
    pinned to a replayable request stream.
    """
    h = hashlib.blake2b(digest_size=16)
    for request in requests:
        h.update(request.tenant.encode("utf-8"))
        h.update(b"\x00")
        h.update(request.fingerprint().encode("utf-8"))
        h.update(b"\x01")
    return h.hexdigest()
