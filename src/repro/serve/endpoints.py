"""Canonical gateway endpoints over the analytics apps.

Each adapter wraps one app entry point (UA dashboard, LVA, RATS) and
returns a *canonical payload*: tables, arrays, scalars and containers
of those, with every nondeterministic-under-concurrency field stripped.
The one deliberate omission is ``JobOverview.scan_stats`` — it reports
process-wide read-plane counter deltas, which interleave arbitrarily
when requests run on a pool, so it cannot appear in a payload whose
bytes must match across serial/threaded/cached serving.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["build_endpoints"]


def _canon_findings(findings) -> tuple:
    return tuple(
        (f.code, f.severity, f.message, tuple(sorted(f.evidence.items())))
        for f in findings
    )


def build_endpoints(
    dashboard=None,
    lva=None,
    rats=None,
    tiers=None,
) -> dict[str, Callable[..., Any]]:
    """Endpoint registry for a :class:`~repro.serve.gateway.ServingGateway`.

    Pass whichever apps exist; only their endpoints are registered.
    ``tiers`` additionally enables the rollup/archive-backed endpoints
    (``fleet_power``, ``archived_power_usage``).
    """
    endpoints: dict[str, Callable[..., Any]] = {}

    if dashboard is not None:

        def job_overview(job_id: int) -> dict[str, Any]:
            overview = dashboard.job_overview(int(job_id))
            events = overview.events
            return {
                "job_id": int(job_id),
                "power": overview.power,
                "io": overview.io,
                "fabric": overview.fabric,
                "events": {
                    "timestamps": events.timestamps,
                    "component_ids": events.component_ids,
                    "severities": events.severities,
                    "message_ids": events.message_ids,
                },
                "findings": _canon_findings(overview.findings),
            }

        def framework_health(
            t0: float | None = None, t1: float | None = None
        ) -> tuple:
            return _canon_findings(dashboard.framework_health(t0, t1))

        endpoints["job_overview"] = job_overview
        endpoints["framework_health"] = framework_health

        if tiers is not None:

            def fleet_power() -> Any:
                return dashboard.fleet_power_summary(tiers)

            endpoints["fleet_power"] = fleet_power

    if lva is not None:

        def job_power_profile(job_id: int) -> Any:
            return lva.job_power_profile(int(job_id))

        def system_power_view(
            t0: float, t1: float, resolution_s: float = 60.0
        ) -> Any:
            return lva.system_power_view(t0, t1, resolution_s)

        def top_jobs_by_energy(n: int = 10) -> Any:
            return lva.top_jobs_by_energy(int(n))

        def cooling_plant_view(t0: float, t1: float) -> Any:
            return lva.cooling_plant_view(t0, t1)

        endpoints["job_power_profile"] = job_power_profile
        endpoints["system_power_view"] = system_power_view
        endpoints["top_jobs_by_energy"] = top_jobs_by_energy
        endpoints["cooling_plant_view"] = cooling_plant_view

    if rats is not None and tiers is not None:

        def archived_power_usage(
            dataset: str,
            t0: float | None = None,
            t1: float | None = None,
        ) -> Any:
            return rats.archived_power_usage(tiers, dataset, t0, t1)

        endpoints["archived_power_usage"] = archived_power_usage

    return endpoints
