"""Typed request/result envelopes and content fingerprints.

The gateway's determinism contract lives here: a :class:`Request` is a
value (tenant, endpoint, canonically ordered params) whose
:meth:`~Request.fingerprint` is stable across processes, and a
:class:`ResultEnvelope` carries only deterministic fields — status,
payload, generation, payload digest — so a gateway answer can be
compared byte-for-byte against a direct library call regardless of
which thread produced it or whether the cache served it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["Request", "ResultEnvelope", "payload_digest"]


def _canon_params(params: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    for key, value in params.items():
        if not isinstance(value, (str, int, float, bool, tuple, type(None))):
            raise ValueError(
                f"request param {key!r} must be a scalar or tuple, "
                f"got {type(value).__name__}"
            )
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class Request:
    """One serving request: who asks what with which arguments.

    ``params`` is stored as a sorted tuple of (name, value) pairs so
    requests are hashable values and two call-sites passing the same
    kwargs in different order produce the same fingerprint.
    """

    tenant: str
    endpoint: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, tenant: str, endpoint: str, **params: Any) -> "Request":
        """Build a request from kwargs (canonically ordered)."""
        return cls(tenant, endpoint, _canon_params(params))

    def kwargs(self) -> dict[str, Any]:
        """The params as a kwargs dict for the endpoint callable."""
        return dict(self.params)

    def fingerprint(self) -> str:
        """Content fingerprint of (endpoint, params) — NOT the tenant.

        Tenancy is an admission concern, not a result concern: two
        tenants asking the same question share one cache entry.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(self.endpoint.encode("utf-8"))
        for key, value in self.params:
            h.update(b"\x00")
            h.update(key.encode("utf-8"))
            h.update(b"=")
            h.update(f"{type(value).__name__}:{value!r}".encode("utf-8"))
        return h.hexdigest()


@dataclass(frozen=True)
class ResultEnvelope:
    """What the gateway returns for one request.

    ``status`` is ``"ok"`` (freshly computed), ``"cached"`` (served from
    the result cache — payload and digest are the cached computation's),
    ``"rejected"`` (admission shed it; ``error`` holds the reason) or
    ``"error"`` (the endpoint raised; ``error`` holds the rendered
    exception).  All fields are deterministic functions of the request,
    the store generation and the endpoint — wall time never appears
    here (the gateway tracks service latency out-of-band).
    """

    request: Request
    status: str
    payload: Any = None
    error: str | None = None
    generation: int = -1
    digest: str | None = None

    @property
    def ok(self) -> bool:
        """True when a payload is present (fresh or cached)."""
        return self.status in ("ok", "cached")


def _digest_array(h, arr: np.ndarray) -> None:
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    if arr.dtype == object:
        # .tobytes() on an object array hashes pointers; stringify the
        # values instead (same canonicalization assert_tables_equal uses).
        h.update(repr(arr.tolist()).encode())
    else:
        h.update(arr.tobytes())


def payload_digest(payload: Any) -> str:
    """Stable content digest of an endpoint payload.

    Handles the closed vocabulary endpoints return: ``None``, scalars,
    strings, tuples/lists, dicts (sorted by key), numpy arrays, and
    duck-typed column tables (anything with ``column_names`` and
    ``__getitem__``).  Two payloads digest equal iff a byte-level
    comparison of their canonical forms would — the equivalence tests'
    working definition of "identical result".
    """
    h = hashlib.blake2b(digest_size=16)
    _digest_into(h, payload)
    return h.hexdigest()


def _digest_into(h, obj: Any) -> None:
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"I" + repr(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        h.update(b"F" + repr(float(obj)).encode())
    elif isinstance(obj, str):
        h.update(b"S" + obj.encode("utf-8"))
    elif isinstance(obj, np.ndarray):
        h.update(b"A")
        _digest_array(h, obj)
    elif isinstance(obj, (tuple, list)):
        h.update(f"T{len(obj)}".encode())
        for item in obj:
            h.update(b"\x00")
            _digest_into(h, item)
    elif isinstance(obj, dict):
        h.update(f"D{len(obj)}".encode())
        for key in sorted(obj):
            h.update(b"\x00" + str(key).encode("utf-8") + b"\x01")
            _digest_into(h, obj[key])
    elif hasattr(obj, "column_names") and hasattr(obj, "__getitem__"):
        names = list(obj.column_names)
        h.update(f"C{len(names)}".encode())
        for name in names:  # column order is part of the identity
            h.update(b"\x00" + name.encode("utf-8") + b"\x01")
            _digest_array(h, np.asarray(obj[name]))
    else:
        raise ValueError(
            f"cannot digest payload of type {type(obj).__name__}; "
            "endpoints must return tables, arrays, scalars or containers "
            "of those"
        )
