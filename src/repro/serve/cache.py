"""Generation-keyed LRU result cache.

Entries are keyed ``(query fingerprint, store generation)`` where the
generation is :meth:`repro.storage.tiers.TieredStore.data_version` — a
counter every committed mutation bumps.  Invalidation therefore needs
no subscriptions or TTLs: a lifecycle tick (or any ingest) moves the
generation, old entries stop matching, and the gateway prunes them on
its next batch.  A cached answer is byte-identical to recomputing by
construction: same fingerprint means same endpoint and params, same
generation means the store would answer identically.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded LRU of ``(fingerprint, generation) -> (payload, digest)``."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[
            tuple[str, int], tuple[Any, str, frozenset[str] | None]
        ] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evicted = 0
        self.invalidated = 0
        #: Entries dropped by :meth:`prune_stale` whose recorded
        #: read-set was disjoint from the datasets actually mutated —
        #: collateral damage of generation-keyed invalidation, the
        #: number a lineage-driven precise scheme would save (see the
        #: DESIGN.md §17 follow-up note).
        self.over_invalidated = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(
        self, fingerprint: str, generation: int
    ) -> tuple[Any, str] | None:
        """The cached (payload, digest) for this exact generation, or None."""
        key = (fingerprint, generation)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[:2]

    def put(
        self,
        fingerprint: str,
        generation: int,
        payload: Any,
        digest: str,
        reads: frozenset[str] | None = None,
    ) -> None:
        """Insert (idempotent per key), evicting LRU entries over capacity.

        ``reads`` is the entry's dataset read-set when the gateway
        tracked one (None means unknown — e.g. an endpoint that reaches
        around the tier store).  It never affects lookup; it only feeds
        :meth:`prune_stale`'s over-invalidation accounting.
        """
        key = (fingerprint, generation)
        with self._lock:
            self._entries[key] = (payload, digest, reads)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evicted += 1

    def prune_stale(
        self, generation: int, mutated: frozenset[str] | None = None
    ) -> int:
        """Drop every entry not of ``generation``; returns the count.

        The gateway calls this when it observes the store generation
        move — stale entries can never match again (generations are
        monotone), so keeping them would only squeeze live ones out of
        the LRU.

        ``mutated`` — the datasets actually touched since the entries'
        generations (:meth:`repro.storage.tiers.TieredStore.
        mutated_since`) — turns the pass into an audit as well: an
        entry whose known read-set is disjoint from ``mutated`` would
        have answered identically at the new generation, and is counted
        in :attr:`over_invalidated`.  It is still dropped — today's
        invalidation is deliberately coarse; the counter is the
        evidence line for the precise lineage-driven scheme (DESIGN.md
        §17 follow-up).
        """
        with self._lock:
            stale = [k for k in self._entries if k[1] != generation]
            for key in stale:
                reads = self._entries[key][2]
                if (
                    mutated is not None
                    and reads is not None
                    and not (reads & mutated)
                ):
                    self.over_invalidated += 1
                del self._entries[key]
            self.invalidated += len(stale)
            return len(stale)

    def stats(self) -> dict[str, int]:
        """Counters snapshot (hits/misses/evicted/invalidated/size)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evicted": self.evicted,
                "invalidated": self.invalidated,
                "over_invalidated": self.over_invalidated,
                "size": len(self._entries),
            }
