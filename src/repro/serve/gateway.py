"""The serving gateway: admission -> cache -> scheduled execution.

One object fronts the read-side apps (UA dashboard, LVA, RATS) for many
tenants, the way production ODA deployments put a service layer between
dashboards and the telemetry store instead of letting every client scan
raw data.  A batch of arrivals flows through three stages:

1. **Arrival loop** (one thread, in submission order): admission
   control per tenant — token-bucket quota, bounded queue, typed
   fast-fail — then a result-cache probe keyed
   ``(fingerprint, store generation)``.  Probing *before* execution,
   and only there, keeps the serial and threaded schedulers
   observationally identical: a request's status never depends on
   whether a concurrent twin finished first.
2. **Execution**: admitted misses run through the configured scheduler
   — inline (``"serial"``) or on a worker pool (``"threads"``) — with
   results collected in submission order either way, so envelope
   sequences are byte-identical across executors.
3. **Collection loop** (same thread as arrivals): cache fills, queue
   slots released, envelopes assembled.

Everything the caller can observe in an envelope is deterministic;
wall-clock service times are tracked out-of-band (for the serving
bench) in :attr:`ServingGateway.last_service_times`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Any, Callable, Sequence

from repro.obs import METRICS, TRACER
from repro.serve.admission import AdmissionController
from repro.serve.cache import ResultCache
from repro.serve.envelope import Request, ResultEnvelope, payload_digest
from repro.serve.errors import AdmissionRejected

__all__ = ["ServingGateway"]


class ServingGateway:
    """Multi-tenant request front for the analytics apps.

    Parameters
    ----------
    tiers:
        The :class:`~repro.storage.tiers.TieredStore` whose
        ``data_version()`` drives cache invalidation (None pins the
        generation to 0 — for stores that never mutate mid-test).
    endpoints:
        Name -> callable(**params).  Callables must return payloads in
        the closed vocabulary :func:`repro.serve.envelope.payload_digest`
        accepts, and must be deterministic functions of the store state
        (see :mod:`repro.serve.endpoints` for the canonical adapters).
    admission, cache:
        Policy objects (defaults: permissive controller, 1024-entry LRU).
    executor:
        ``"serial"``, ``"threads"``, or ``"auto"`` (threads on
        multi-core hosts).  Envelopes are identical across all three.
    cache_enabled:
        ``False`` bypasses the cache entirely (the bench's baseline).
    """

    def __init__(
        self,
        tiers,
        endpoints: dict[str, Callable[..., Any]],
        admission: AdmissionController | None = None,
        cache: ResultCache | None = None,
        executor: str = "auto",
        max_workers: int = 4,
        cache_enabled: bool = True,
    ) -> None:
        if executor not in ("auto", "serial", "threads"):
            raise ValueError(
                "executor must be 'auto', 'serial' or 'threads', "
                f"got {executor!r}"
            )
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.tiers = tiers
        self.endpoints = dict(endpoints)
        self.admission = admission or AdmissionController()
        self.cache = cache or ResultCache()
        self.executor = executor
        self.max_workers = max_workers
        self.cache_enabled = cache_enabled
        self._generation: int | None = None
        self._pool: ThreadPoolExecutor | None = None
        #: Prior fresh computations per (tenant, endpoint, fingerprint)
        #: — the ``seq`` coordinate of envelope lineage nodes.  Advanced
        #: only on the arrival loop (serial, submission order), never on
        #: the worker pool, so envelope identity is scheduler-independent.
        self._envelope_seq: dict[tuple[str, str, str], int] = {}
        #: Wall service seconds per request of the most recent
        #: :meth:`submit_many` batch (0.0 for rejected/cached/unknown),
        #: aligned with the returned envelopes.  Measurement only —
        #: never feeds back into any envelope field.
        self.last_service_times: list[float] = []

    # -- lifecycle ----------------------------------------------------------

    def resolve_executor(self) -> str:
        """The concrete scheduler ``"auto"`` resolves to on this host."""
        if self.executor == "auto":
            import os

            return "threads" if (os.cpu_count() or 1) >= 2 else "serial"
        return self.executor

    def _get_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="oda-serve"
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; lazily recreated)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ServingGateway":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- generation ---------------------------------------------------------

    def generation(self) -> int:
        """The store generation requests are currently served against."""
        return self.tiers.data_version() if self.tiers is not None else 0

    def _refresh_generation(self) -> int:
        gen = self.generation()
        if gen != self._generation:
            if self._generation is not None and self.cache_enabled:
                # Ask the store what actually changed so the prune can
                # count collateral invalidations (entries whose read-set
                # is untouched) — measurement only, eviction is still
                # wholesale.  Duck-typed: bare stores without the
                # mutation ledger just skip the audit.
                mutated = None
                mutated_since = getattr(self.tiers, "mutated_since", None)
                if mutated_since is not None:
                    mutated = mutated_since(self._generation)
                over_before = self.cache.over_invalidated
                pruned = self.cache.prune_stale(gen, mutated=mutated)
                if pruned:
                    METRICS.inc("serve.cache_invalidated", pruned)
                over = self.cache.over_invalidated - over_before
                if over:
                    METRICS.inc("serve.cache.over_invalidated", over)
            self._generation = gen
            METRICS.set_gauge("serve.generation", gen, deterministic=True)
        return gen

    # -- serving ------------------------------------------------------------

    def submit(self, request: Request, now: float = 0.0) -> ResultEnvelope:
        """Serve one request (see :meth:`submit_many`)."""
        return self.submit_many([request], now=now)[0]

    def submit_many(
        self, requests: Sequence[Request], now: float = 0.0
    ) -> list[ResultEnvelope]:
        """Serve a batch of arrivals at virtual time ``now``.

        Envelopes come back in submission order and are identical
        whatever the scheduler; ``now`` only feeds admission's token
        buckets (virtual time keeps shedding replayable).
        """
        gen = self._refresh_generation()
        cat = getattr(self.tiers, "lineage", None)
        n = len(requests)
        envelopes: list[ResultEnvelope | None] = [None] * n
        times = [0.0] * n
        to_run: list[tuple[int, Request, str, int]] = []

        for i, request in enumerate(requests):
            with TRACER.span(
                "serve.admit",
                tenant=request.tenant,
                endpoint=request.endpoint,
            ):
                envelopes[i] = self._admit_one(i, request, now, gen, to_run)

        results = self._execute([(i, r) for i, r, _, _ in to_run])

        for (i, request, fingerprint, seq), (payload, error, dt, reads) in zip(
            to_run, results
        ):
            times[i] = dt
            self.admission.release(request.tenant)
            METRICS.observe(
                "serve.latency_s", dt, endpoint=request.endpoint
            )
            if error is not None:
                envelopes[i] = ResultEnvelope(
                    request, "error", error=error, generation=gen
                )
                self._count(request, "error")
            else:
                digest = payload_digest(payload)
                # The read-set travels two ways: dataset names tag the
                # cache entry (over-invalidation audit), query lineage
                # nodes become the envelope's ``read`` edges.  An empty
                # set means the endpoint never touched the tier store's
                # query paths — unknown, not "reads nothing".
                read_datasets = frozenset(d for d, _ in reads) or None
                if self.cache_enabled:
                    self.cache.put(
                        fingerprint, gen, payload, digest, reads=read_datasets
                    )
                if cat is not None:
                    nid = cat.record(
                        "envelope",
                        (request.tenant, request.endpoint, fingerprint, seq),
                        attrs={
                            "tenant": request.tenant,
                            "endpoint": request.endpoint,
                        },
                    )
                    cat.link_many(
                        sorted({q for _, q in reads if q is not None}),
                        nid,
                        "read",
                    )
                envelopes[i] = ResultEnvelope(
                    request,
                    "ok",
                    payload=payload,
                    generation=gen,
                    digest=digest,
                )
                self._count(request, "ok")

        self.last_service_times = times
        return envelopes  # type: ignore[return-value]

    def _admit_one(
        self,
        index: int,
        request: Request,
        now: float,
        gen: int,
        to_run: list[tuple[int, Request, str, int]],
    ) -> ResultEnvelope | None:
        """Arrival-stage verdict: an immediate envelope, or None with the
        request appended to ``to_run`` for execution."""
        if request.endpoint not in self.endpoints:
            self._count(request, "error")
            return ResultEnvelope(
                request,
                "error",
                error=f"unknown endpoint {request.endpoint!r}",
                generation=gen,
            )
        try:
            self.admission.admit(request.tenant, now)
        except AdmissionRejected as exc:
            METRICS.inc(
                "serve.shed", tenant=request.tenant, reason=exc.reason
            )
            self._count(request, "rejected")
            return ResultEnvelope(
                request, "rejected", error=exc.reason, generation=gen
            )
        fingerprint = request.fingerprint()
        if self.cache_enabled:
            hit = self.cache.get(fingerprint, gen)
            if hit is not None:
                payload, digest = hit
                self.admission.release(request.tenant)
                self._count(request, "cached")
                return ResultEnvelope(
                    request,
                    "cached",
                    payload=payload,
                    generation=gen,
                    digest=digest,
                )
        seq_key = (request.tenant, request.endpoint, fingerprint)
        seq = self._envelope_seq.get(seq_key, 0)
        self._envelope_seq[seq_key] = seq + 1
        to_run.append((index, request, fingerprint, seq))
        return None

    def _execute(
        self, tasks: list[tuple[int, Request]]
    ) -> list[tuple[Any, str | None, float, list]]:
        """Run admitted misses; results in submission order.

        Each worker task's span gets a per-batch-unique name
        (``serve.request:<index>``) so concurrently created sibling
        spans keep assignment-order-independent IDs.  Each result
        carries the request's tier read-set (thread-local, so the pool
        tracks concurrent requests without cross-talk).
        """
        collect = getattr(self.tiers, "collect_reads", None)

        def make_task(index: int, request: Request):
            fn = self.endpoints[request.endpoint]
            kwargs = request.kwargs()

            def task() -> tuple[Any, str | None, float, list]:
                t0 = perf_counter()
                reads: list = []
                with TRACER.span(
                    f"serve.request:{index}",
                    tenant=request.tenant,
                    endpoint=request.endpoint,
                ):
                    try:
                        if collect is not None:
                            with collect() as reads:
                                payload = fn(**kwargs)
                        else:
                            payload = fn(**kwargs)
                    except Exception as exc:
                        return (
                            None,
                            f"{type(exc).__name__}: {exc}",
                            perf_counter() - t0,
                            [],
                        )
                return payload, None, perf_counter() - t0, reads

            return task

        thunks = [make_task(i, r) for i, r in tasks]
        if self.resolve_executor() == "serial" or len(thunks) <= 1:
            return [t() for t in thunks]
        pool = self._get_pool()
        return [
            f.result()
            for f in [pool.submit(TRACER.wrap(t)) for t in thunks]
        ]

    def _count(self, request: Request, status: str) -> None:
        METRICS.inc(
            "serve.requests",
            tenant=request.tenant,
            endpoint=request.endpoint,
            status=status,
        )
