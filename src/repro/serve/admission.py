"""Per-tenant admission control: token-bucket quotas + bounded queues.

DCDB Wintermute's lesson, applied at the serving layer: push admission
into the gateway so an overloaded or greedy tenant is shed *before* it
scans data, and shed deterministically — the decision depends only on
the tenant's policy, its arrival history in virtual time, and how many
of its requests are currently queued, never on wall-clock racing.

All state here is touched from the gateway's arrival/collection loop on
one thread (the executed endpoints run on workers, the bookkeeping does
not); see :class:`repro.serve.gateway.ServingGateway`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.errors import AdmissionRejected

__all__ = ["TokenBucket", "TenantPolicy", "AdmissionController"]


class TokenBucket:
    """Classic token bucket over an externally supplied clock.

    ``now`` is whatever monotone axis the caller runs on (the load
    harness uses simulated seconds), which keeps shedding decisions
    replayable: same arrivals at the same virtual times, same verdicts.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least one token")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last = None  # type: float | None

    def try_take(self, now: float) -> bool:
        """Refill to ``now`` and consume one token if available."""
        if self._last is None:
            self._last = now
        dt = max(0.0, now - self._last)
        self._last = now
        self.tokens = min(self.burst, self.tokens + dt * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's admission budget.

    rate_qps / burst:
        Token-bucket refill rate and capacity.
    queue_limit:
        Maximum requests the tenant may have queued-or-executing at
        once; arrivals beyond it shed with ``reason="queue_full"``.
    """

    rate_qps: float = 100.0
    burst: float = 20.0
    queue_limit: int = 32

    def __post_init__(self) -> None:
        if self.queue_limit <= 0:
            raise ValueError("queue_limit must be positive")


class AdmissionController:
    """Admit-or-shed gate the gateway consults per arrival.

    Unknown tenants get ``default_policy``; per-tenant overrides come
    from ``policies``.  :meth:`admit` either raises
    :class:`AdmissionRejected` or reserves a queue slot the caller must
    give back with :meth:`release` when the request completes (cached
    and failed requests release immediately).
    """

    def __init__(
        self,
        default_policy: TenantPolicy | None = None,
        policies: dict[str, TenantPolicy] | None = None,
    ) -> None:
        self.default_policy = default_policy or TenantPolicy()
        self.policies = dict(policies or {})
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight: dict[str, int] = {}
        self.rejected: dict[str, int] = {}

    def policy_for(self, tenant: str) -> TenantPolicy:
        """The effective policy for a tenant."""
        return self.policies.get(tenant, self.default_policy)

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            policy = self.policy_for(tenant)
            bucket = self._buckets[tenant] = TokenBucket(
                policy.rate_qps, policy.burst
            )
        return bucket

    def inflight(self, tenant: str) -> int:
        """Requests currently holding a queue slot for the tenant."""
        return self._inflight.get(tenant, 0)

    def admit(self, tenant: str, now: float) -> None:
        """Admit one arrival at virtual time ``now`` or shed it.

        Raises :class:`AdmissionRejected` with ``reason="quota"`` when
        the token bucket is dry, ``reason="queue_full"`` when the
        tenant's bounded queue is at capacity.  On success the tenant
        holds one more queue slot until :meth:`release`.
        """
        policy = self.policy_for(tenant)
        if not self._bucket(tenant).try_take(now):
            self.rejected[tenant] = self.rejected.get(tenant, 0) + 1
            raise AdmissionRejected(tenant, "quota")
        if self.inflight(tenant) >= policy.queue_limit:
            self.rejected[tenant] = self.rejected.get(tenant, 0) + 1
            raise AdmissionRejected(tenant, "queue_full")
        self._inflight[tenant] = self.inflight(tenant) + 1

    def release(self, tenant: str) -> None:
        """Return a queue slot reserved by a successful :meth:`admit`."""
        held = self.inflight(tenant)
        if held <= 0:
            raise ValueError(
                f"release without matching admit for tenant {tenant!r}"
            )
        self._inflight[tenant] = held - 1
