"""Typed serving-plane errors."""

from __future__ import annotations

__all__ = ["AdmissionRejected"]


class AdmissionRejected(Exception):
    """Fast-fail raised when admission control refuses a request.

    ``reason`` is one of ``"quota"`` (the tenant's token bucket is
    empty) or ``"queue_full"`` (the tenant's bounded queue is at its
    limit).  The gateway converts this into a ``"rejected"`` result
    envelope rather than letting it propagate — shedding is an answer,
    not a crash.
    """

    def __init__(self, tenant: str, reason: str) -> None:
        super().__init__(
            f"request from tenant {tenant!r} rejected: {reason}"
        )
        self.tenant = tenant
        self.reason = reason
