"""Serving plane: a multi-tenant gateway in front of the analytics apps.

The paper's consumers — UA dashboards, RATS reports, LVA panels — are
read by *many* concurrent clients in production, not called as a
library by one.  This package models that layer: typed request/result
envelopes (:mod:`repro.serve.envelope`), per-tenant admission control
with token-bucket quotas and bounded queues (:mod:`repro.serve.admission`),
a result cache keyed on ``(query fingerprint, store generation)`` whose
invalidation rides the tier lifecycle (:mod:`repro.serve.cache`), the
serial/threaded request scheduler (:mod:`repro.serve.gateway`), the
canonical app endpoint adapters (:mod:`repro.serve.endpoints`), and a
seeded zipf multi-tenant load generator (:mod:`repro.serve.loadgen`).

The plane's invariant: every gateway-served answer is byte-identical
to the direct library call — across serial and threaded scheduling,
and across cache hits — enforced by
``tests/integration/test_serving_equivalence.py``.
"""

from repro.serve.admission import AdmissionController, TenantPolicy, TokenBucket
from repro.serve.cache import ResultCache
from repro.serve.endpoints import build_endpoints
from repro.serve.envelope import Request, ResultEnvelope, payload_digest
from repro.serve.errors import AdmissionRejected
from repro.serve.gateway import ServingGateway
from repro.serve.loadgen import (
    EndpointMix,
    LoadProfile,
    generate_load,
    replay_digest,
)

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "EndpointMix",
    "LoadProfile",
    "Request",
    "ResultCache",
    "ResultEnvelope",
    "ServingGateway",
    "TenantPolicy",
    "TokenBucket",
    "build_endpoints",
    "generate_load",
    "payload_digest",
    "replay_digest",
]
