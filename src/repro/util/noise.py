"""Counter-based deterministic noise.

Telemetry generators must be *split-invariant*: emitting ``[0, 60)`` in one
call or in four 15-second calls must produce byte-identical samples, or
replay (Fig. 11) and recovery tests would be flaky.  Stateful RNGs cannot
give that, so noise is derived from a stateless integer hash of
``(seed, stream tag, absolute sample index)`` — a vectorized splitmix64.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "hash_u64",
    "uniform_from_index",
    "normal_from_index",
    "uniform_from_index_tags",
    "normal_from_index_tags",
]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def hash_u64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over uint64 inputs."""
    with np.errstate(over="ignore"):
        z = (np.asarray(x, dtype=np.uint64) + _GOLDEN) * _MIX1
        z ^= z >> np.uint64(30)
        z *= _MIX1
        z ^= z >> np.uint64(27)
        z *= _MIX2
        z ^= z >> np.uint64(31)
    return z


def _hash_u64_inplace(z: np.ndarray) -> np.ndarray:
    """Splitmix64 finalizer applied in place to an owned uint64 array.

    Integer arithmetic is exact, so the result is bit-identical to
    :func:`hash_u64`; the only difference is that the caller's array is
    consumed as scratch, saving one temporary per arithmetic step on the
    batched hot path.
    """
    with np.errstate(over="ignore"):
        z += _GOLDEN
        z *= _MIX1
        z ^= z >> np.uint64(30)
        z *= _MIX1
        z ^= z >> np.uint64(27)
        z *= _MIX2
        z ^= z >> np.uint64(31)
    return z


def _indices_to_u64(seed: int, tag: int, idx: np.ndarray) -> np.ndarray:
    with np.errstate(over="ignore"):
        base = np.uint64(seed & 0xFFFFFFFFFFFFFFFF) * _MIX2 + np.uint64(
            tag & 0xFFFFFFFFFFFFFFFF
        ) * _GOLDEN
        return hash_u64(np.asarray(idx, dtype=np.uint64) + base)


def uniform_from_index(seed: int, tag: int, idx: np.ndarray) -> np.ndarray:
    """Deterministic U[0,1) draws keyed by absolute sample index.

    ``tag`` distinguishes channels sharing the same index space (e.g. the
    loss mask vs. the value noise of one sensor).
    """
    bits = _indices_to_u64(seed, tag, idx)
    # 53-bit mantissa trick for uniform doubles in [0, 1).
    return (bits >> np.uint64(11)).astype(np.float64) * (1.0 / (1 << 53))


def normal_from_index(seed: int, tag: int, idx: np.ndarray) -> np.ndarray:
    """Deterministic standard-normal draws keyed by absolute sample index.

    Box-Muller over two decorrelated uniform channels derived from the
    same index, clamped away from log(0).
    """
    u1 = uniform_from_index(seed, tag * 2 + 1, idx)
    u2 = uniform_from_index(seed, tag * 2 + 2, idx)
    u1 = np.maximum(u1, 1e-12)
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


def uniform_from_index_tags(
    seed: int, tags: np.ndarray, idx: np.ndarray
) -> np.ndarray:
    """Batched :func:`uniform_from_index` over many channel tags at once.

    ``tags`` has shape ``(m,)``; the result has shape ``(m, *idx.shape)``
    and row ``i`` is bit-identical to ``uniform_from_index(seed, tags[i],
    idx)``.  Sources with tens of channels over one (component x time)
    grid draw all their noise in a single hash pass this way.
    """
    tags = np.asarray(tags, dtype=np.uint64)
    idx = np.asarray(idx, dtype=np.uint64)
    with np.errstate(over="ignore"):
        base = np.uint64(seed & 0xFFFFFFFFFFFFFFFF) * _MIX2 + tags * _GOLDEN
        # ``keyed`` is a fresh array, so the finalizer may consume it.
        keyed = idx[None, ...] + base.reshape((-1,) + (1,) * idx.ndim)
    bits = _hash_u64_inplace(keyed)
    bits >>= np.uint64(11)
    out = bits.astype(np.float64)
    out *= 1.0 / (1 << 53)
    return out


def normal_from_index_tags(
    seed: int, tags: np.ndarray, idx: np.ndarray
) -> np.ndarray:
    """Batched :func:`normal_from_index` over many channel tags at once.

    Row ``i`` is bit-identical to ``normal_from_index(seed, tags[i], idx)``.
    The two Box-Muller uniform channels for all tags are drawn in a
    *single* stacked hash pass (tags ``2t+1`` then ``2t+2``), and the
    transform runs in place on the halves — elementwise float ops in the
    same order and with the same operands as the scalar path, so the
    bits cannot differ.
    """
    tags = np.atleast_1d(np.asarray(tags, dtype=np.uint64))
    with np.errstate(over="ignore"):
        doubled = tags * np.uint64(2)
        stacked = np.concatenate(
            [doubled + np.uint64(1), doubled + np.uint64(2)]
        )
    u = uniform_from_index_tags(seed, stacked, idx)
    m = tags.size
    u1, u2 = u[:m], u[m:]
    np.maximum(u1, 1e-12, out=u1)
    np.log(u1, out=u1)
    u1 *= -2.0
    np.sqrt(u1, out=u1)
    u2 *= 2.0 * np.pi
    np.cos(u2, out=u2)
    u1 *= u2
    return u1
