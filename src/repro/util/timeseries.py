"""Vectorized time-series primitives.

These helpers implement the numerical inner loops shared by the pipeline
operators, the LVA query engine, and the digital twin: bucketed reductions
(the "aggregate every 15 seconds" step of the medallion Silver stage),
rolling/exponential smoothing, and gap filling for lossy sensor streams.

All functions are pure NumPy with no Python-level loops over samples, per
the project's hpc-parallel guidelines (vectorize, avoid copies where a view
suffices).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bucket_indices",
    "bucket_plan",
    "bucket_reduce",
    "bucket_reduce_planned",
    "bucket_mean",
    "resample_mean",
    "rolling_mean",
    "ema",
    "fill_forward",
]


def bucket_indices(
    timestamps: np.ndarray, interval: float, origin: float = 0.0
) -> np.ndarray:
    """Map each timestamp to the integer index of its time bucket.

    Bucket ``i`` covers ``[origin + i*interval, origin + (i+1)*interval)``.
    """
    ts = np.asarray(timestamps, dtype=np.float64)
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    return np.floor((ts - origin) / interval).astype(np.int64)


def bucket_reduce(
    keys: np.ndarray,
    values: np.ndarray,
    reducer: str = "mean",
) -> tuple[np.ndarray, np.ndarray]:
    """Group ``values`` by integer ``keys`` and reduce each group.

    Returns ``(unique_keys, reduced)`` with groups in ascending key order.
    Supported reducers: ``mean``, ``sum``, ``min``, ``max``, ``count``,
    ``std``, ``first``, ``last``.

    Implementation: a single argsort followed by ``np.add.reduceat`` —
    O(n log n) with no per-group Python overhead, which matters because the
    Silver aggregation step runs this over millions of observations.
    """
    keys = np.asarray(keys)
    values = np.asarray(values, dtype=np.float64)
    if keys.shape[0] != values.shape[0]:
        raise ValueError(
            f"keys and values length mismatch: {keys.shape[0]} != {values.shape[0]}"
        )
    if keys.size == 0:
        return keys[:0], values[:0]
    return bucket_reduce_planned(bucket_plan(keys), values, reducer)


def bucket_plan(
    keys: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Precompute the grouping of ``keys``: ``(unique_keys, order,
    boundaries, counts)``.

    The stable argsort is the dominant cost of :func:`bucket_reduce`;
    computing the plan once lets every aggregation over the same keys
    (a multi-agg GROUP BY) share it.  ``keys`` must be non-empty.
    """
    keys = np.asarray(keys)
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    # Start offset of each group in the sorted arrays.
    boundaries = np.flatnonzero(np.concatenate(([True], sk[1:] != sk[:-1])))
    uniq = sk[boundaries]
    counts = np.diff(np.concatenate((boundaries, [sk.size])))
    return uniq, order, boundaries, counts


def bucket_reduce_planned(
    plan: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    values: np.ndarray,
    reducer: str = "mean",
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`bucket_reduce` over a precomputed :func:`bucket_plan` —
    identical results, shared sort."""
    uniq, order, boundaries, counts = plan
    values = np.asarray(values, dtype=np.float64)
    sv = values[order]

    if reducer == "count":
        return uniq, counts.astype(np.float64)
    if reducer == "sum":
        return uniq, np.add.reduceat(sv, boundaries)
    if reducer == "mean":
        return uniq, np.add.reduceat(sv, boundaries) / counts
    if reducer == "min":
        return uniq, np.minimum.reduceat(sv, boundaries)
    if reducer == "max":
        return uniq, np.maximum.reduceat(sv, boundaries)
    if reducer == "first":
        return uniq, sv[boundaries]
    if reducer == "last":
        ends = np.concatenate((boundaries[1:], [sv.size])) - 1
        return uniq, sv[ends]
    if reducer == "std":
        sums = np.add.reduceat(sv, boundaries)
        sqsums = np.add.reduceat(sv * sv, boundaries)
        mean = sums / counts
        var = np.maximum(sqsums / counts - mean * mean, 0.0)
        return uniq, np.sqrt(var)
    raise ValueError(f"unknown reducer {reducer!r}")


def bucket_mean(
    timestamps: np.ndarray,
    values: np.ndarray,
    interval: float,
    origin: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Mean of ``values`` per time bucket; returns (bucket_start_times, means)."""
    idx = bucket_indices(timestamps, interval, origin)
    uniq, means = bucket_reduce(idx, values, "mean")
    return origin + uniq * interval, means


def resample_mean(
    timestamps: np.ndarray,
    values: np.ndarray,
    interval: float,
    t_start: float,
    t_end: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Resample to a *dense* regular grid over ``[t_start, t_end)``.

    Buckets with no samples are NaN (callers may :func:`fill_forward`).
    """
    n = int(np.ceil((t_end - t_start) / interval))
    if n < 0:
        raise ValueError("t_end must be >= t_start")
    grid = t_start + np.arange(n, dtype=np.float64) * interval
    out = np.full(n, np.nan)
    ts = np.asarray(timestamps, dtype=np.float64)
    mask = (ts >= t_start) & (ts < t_end)
    if mask.any():
        idx = bucket_indices(ts[mask], interval, t_start)
        uniq, means = bucket_reduce(idx, np.asarray(values)[mask], "mean")
        out[uniq] = means
    return grid, out


def rolling_mean(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing rolling mean with a ramp-up (partial windows at the start).

    Output has the same length as the input; ``out[i]`` is the mean of
    ``values[max(0, i-window+1):i+1]``.
    """
    v = np.asarray(values, dtype=np.float64)
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if v.size == 0:
        return v.copy()
    csum = np.concatenate(([0.0], np.cumsum(v)))
    idx = np.arange(1, v.size + 1)
    lo = np.maximum(idx - window, 0)
    return (csum[idx] - csum[lo]) / (idx - lo)


def ema(values: np.ndarray, alpha: float) -> np.ndarray:
    """Exponential moving average, ``out[0] = values[0]``.

    Computed via the closed-form recurrence unrolled with cumulative
    products so no Python loop is needed for moderate lengths; falls back
    to an iterative scheme when the closed form would underflow.
    """
    v = np.asarray(values, dtype=np.float64)
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if v.size == 0:
        return v.copy()
    if alpha == 1.0:
        return v.copy()
    decay = 1.0 - alpha
    n = v.size
    # out[i] = decay^i * v[0] + alpha * sum_{k=1..i} decay^(i-k) v[k]
    # Scale trick: w[i] = out[i] / decay^i; w[i] = w[i-1] + alpha*v[i]/decay^i.
    # decay^-i overflows for long series, so chunk the computation.
    out = np.empty(n)
    chunk = max(1, int(200 / max(-np.log10(decay), 1e-12)))  # keep decay^-i sane
    prev = v[0]
    out[0] = prev
    i = 1
    while i < n:
        j = min(n, i + chunk)
        seg = v[i:j]
        m = j - i
        powers = decay ** np.arange(1, m + 1)
        inv = 1.0 / powers
        w = np.cumsum(alpha * seg * inv)
        out[i:j] = powers * (prev + w)
        prev = out[j - 1]
        i = j
    return out


def fill_forward(values: np.ndarray) -> np.ndarray:
    """Replace NaNs with the most recent preceding non-NaN value.

    Leading NaNs (no predecessor) are left as NaN.  Vectorized via a
    running maximum over the indices of valid samples.
    """
    v = np.asarray(values, dtype=np.float64)
    out = v.copy()
    valid = ~np.isnan(v)
    idx = np.where(valid, np.arange(v.size), -1)
    np.maximum.accumulate(idx, out=idx)
    has_prev = idx >= 0
    out[has_prev] = v[idx[has_prev]]
    return out
