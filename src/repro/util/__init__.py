"""Shared utilities: simulation clock, deterministic RNG streams, units,
and vectorized time-series helpers.

These are the lowest-level building blocks of the ODA substrate.  Everything
above (telemetry generators, the stream broker, the pipeline engine, the
digital twin) consumes the :class:`~repro.util.clock.SimClock` for virtual
time and :class:`~repro.util.rng.RngStreams` for reproducible randomness.
"""

from repro.util.clock import SimClock
from repro.util.rng import RngStreams, derive_seed
from repro.util.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    PB,
    TB,
    TIB,
    bytes_per_day,
    format_bytes,
    format_rate,
)
from repro.util.timeseries import (
    bucket_indices,
    bucket_mean,
    bucket_reduce,
    ema,
    fill_forward,
    resample_mean,
    rolling_mean,
)

__all__ = [
    "SimClock",
    "RngStreams",
    "derive_seed",
    "KB",
    "MB",
    "GB",
    "TB",
    "PB",
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "bytes_per_day",
    "format_bytes",
    "format_rate",
    "bucket_indices",
    "bucket_mean",
    "bucket_reduce",
    "ema",
    "fill_forward",
    "resample_mean",
    "rolling_mean",
]
