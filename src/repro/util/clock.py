"""Virtual simulation clock.

All components of the reproduction operate in *simulated* time so that a
laptop run can cover days of telemetry from a Frontier-scale machine.  The
clock is a plain monotonically non-decreasing counter of seconds since the
simulation epoch; wall-clock time never leaks into the data path, which is
what makes runs byte-for-byte reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator


@dataclass
class SimClock:
    """A monotonic virtual clock measured in seconds since the sim epoch.

    Parameters
    ----------
    start:
        Initial timestamp (seconds).  Defaults to 0.0.

    Examples
    --------
    >>> clock = SimClock()
    >>> clock.advance(15.0)
    15.0
    >>> clock.now
    15.0
    """

    start: float = 0.0
    _now: float = field(init=False)
    _observers: list[Callable[[float], None]] = field(
        init=False, default_factory=list, repr=False
    )

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"clock start must be >= 0, got {self.start}")
        self._now = float(self.start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds and return the new time.

        Observers registered via :meth:`on_tick` are notified after the
        advance.  ``dt`` must be non-negative; a zero advance is permitted
        (it still notifies observers, which is useful for flushing).
        """
        if dt < 0:
            raise ValueError(f"cannot move time backwards (dt={dt})")
        self._now += dt
        for obs in self._observers:
            obs(self._now)
        return self._now

    def advance_to(self, t: float) -> float:
        """Advance the clock to absolute time ``t`` (must be >= now)."""
        if t < self._now:
            raise ValueError(f"cannot move time backwards ({t} < {self._now})")
        return self.advance(t - self._now)

    def on_tick(self, callback: Callable[[float], None]) -> None:
        """Register ``callback(now)`` to fire after every advance."""
        self._observers.append(callback)

    def ticks(self, interval: float, count: int) -> Iterator[float]:
        """Yield ``count`` successive times, advancing ``interval`` each.

        This is the canonical driver loop for micro-batch triggers::

            for now in clock.ticks(15.0, 240):  # one hour of 15 s batches
                engine.run_once(now)
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        for _ in range(count):
            yield self.advance(interval)
