"""Deterministic, named random-number streams.

A single root seed fans out to independent :class:`numpy.random.Generator`
streams keyed by name (e.g. ``"telemetry.power.node-0042"``).  Stream
derivation is order-independent: asking for the same name always yields a
generator seeded identically, no matter how many other streams were created
in between.  This is what lets a test re-create just one node's sensor noise
without replaying the whole fleet.
"""

from __future__ import annotations

import hashlib
import threading

import numpy as np

__all__ = ["derive_seed", "RngStreams"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream ``name``.

    Uses BLAKE2b over the root seed and name, so the mapping is stable
    across Python processes and platforms (unlike ``hash()``).
    """
    digest = hashlib.blake2b(
        f"{root_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class RngStreams:
    """A factory of independent named RNG streams under one root seed.

    Examples
    --------
    >>> streams = RngStreams(seed=7)
    >>> a = streams.get("power.node-0")
    >>> b = streams.get("power.node-1")
    >>> float(a.random()) != float(b.random())
    True
    >>> streams2 = RngStreams(seed=7)
    >>> float(streams2.get("power.node-0").random()) == float(
    ...     RngStreams(seed=7).get("power.node-0").random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}
        # One factory may be shared by concurrently emitting sources;
        # the check-then-create in ``get`` must be atomic or two threads
        # can briefly hold *different* generator objects for one name.
        self._lock = threading.Lock()

    @property
    def seed(self) -> int:
        """The root seed this factory was constructed with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object (its internal state advances as it is consumed).
        """
        with self._lock:
            gen = self._cache.get(name)
            if gen is None:
                gen = np.random.default_rng(derive_seed(self._seed, name))
                self._cache[name] = gen
            return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *newly seeded* generator for ``name``.

        Unlike :meth:`get`, this never shares state with earlier calls —
        useful when a component must be replayable in isolation.
        """
        return np.random.default_rng(derive_seed(self._seed, name))

    def child(self, namespace: str) -> "RngStreams":
        """Return a derived factory whose streams live under ``namespace``."""
        return RngStreams(derive_seed(self._seed, f"ns:{namespace}"))
