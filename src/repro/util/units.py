"""Byte/rate unit constants and human-readable formatting.

The paper's headline numbers are data-volume figures (4.2-4.5 TB/day of raw
telemetry, ~0.5 TB/day for the Frontier power stream), so the benches need a
common vocabulary for bytes and rates.  Decimal units (KB/MB/...) follow
storage-industry convention; binary units (KiB/MiB/...) are provided for
memory-footprint reporting.
"""

from __future__ import annotations

KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12
PB = 10**15

KIB = 2**10
MIB = 2**20
GIB = 2**30
TIB = 2**40

_DECIMAL_STEPS = [(PB, "PB"), (TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")]

SECONDS_PER_DAY = 86_400.0


def bytes_per_day(n_bytes: float, duration_s: float) -> float:
    """Extrapolate an observed volume over ``duration_s`` to bytes/day.

    This is how the Fig. 4a bench turns a short simulated window into the
    paper's TB/day framing.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    return n_bytes * (SECONDS_PER_DAY / duration_s)


def format_bytes(n_bytes: float) -> str:
    """Format a byte count with a decimal unit suffix, e.g. ``'4.38 TB'``."""
    n = float(n_bytes)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for step, suffix in _DECIMAL_STEPS:
        if n >= step:
            return f"{sign}{n / step:.2f} {suffix}"
    return f"{sign}{n:.0f} B"


def format_rate(n_bytes_per_s: float) -> str:
    """Format a byte rate, e.g. ``'51.2 MB/s'``."""
    return f"{format_bytes(n_bytes_per_s)}/s"
