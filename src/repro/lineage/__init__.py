"""Provenance: the typed lineage catalog over the data plane.

PR-5's spans answer "what happened, in what order" but die with the
bounded span buffer; governance (DataRUC, §IX) and the chaos harness
both need the durable question — "what did this artifact come from, and
what did it feed?".  This package is that record:

* :class:`LineageCatalog` — every artifact (topic window, refined
  batch, OCEAN part and its ``replaces`` tombstone chain, rollup
  partial, query result, serve envelope) as a node with a deterministic
  BLAKE2b identity, linked by ``derived``/``read``/``supersedes`` edges
  recorded write-through at the producing sites.
* :mod:`repro.lineage.ids` — node identity from logical coordinates,
  never the clock.
* :func:`blast_radius` — after a chaos run with ``CORRUPT_PART``
  faults, exactly the artifacts and dashboard answers the corruption
  could have touched.
* ``python -m repro.lineage`` — offline impact queries over a catalog
  dump (``impact``/``report`` subcommands).

Import discipline: like :mod:`repro.obs`, this is a cross-cutting spine
— every layer may record into it; it imports nothing of the data plane
(the store-side reconcile pass lives in :mod:`repro.storage.tiers`,
which owns the manifest knowledge).
"""

from repro.lineage.blast import blast_radius
from repro.lineage.catalog import EDGE_KINDS, FLOW_EDGE_KINDS, LineageCatalog
from repro.lineage.ids import (
    batch_id,
    envelope_id,
    node_id,
    part_id,
    query_result_id,
    rollup_partial_id,
    topic_window_id,
)

__all__ = [
    "LineageCatalog",
    "EDGE_KINDS",
    "FLOW_EDGE_KINDS",
    "blast_radius",
    "node_id",
    "topic_window_id",
    "batch_id",
    "part_id",
    "rollup_partial_id",
    "query_result_id",
    "envelope_id",
]
