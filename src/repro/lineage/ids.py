"""Deterministic lineage-node identifiers.

A lineage node's identity is a pure function of the artifact's *logical*
coordinates — dataset names, part keys, window boundaries, store
generations — hashed with BLAKE2b exactly like
:func:`repro.obs.ids.trace_id` mints trace IDs.  No wall clock, no
global RNG, no insertion counters that depend on thread interleaving:
two runs of the same seed (serial, pipelined or sharded) mint the same
node IDs in whatever order they get there, which is what lets the
catalog export byte-identically across executors.

Coordinate formatting matters: floats go through ``repr`` (shortest
round-trip form, stable across platforms for the doubles the simulated
clock produces) and every coordinate is separated by an un-escapable
``\\x1f`` so ``("a", "b:c")`` and ``("a:b", "c")`` cannot collide.
"""

from __future__ import annotations

import hashlib

__all__ = [
    "node_id",
    "topic_window_id",
    "batch_id",
    "part_id",
    "rollup_partial_id",
    "query_result_id",
    "envelope_id",
]

#: Hex digits in a node ID (64-bit, matching repro.obs.ids width).
_ID_BYTES = 8

_SEP = "\x1f"


def _coord(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def node_id(kind: str, *coords) -> str:
    """The ID of the node whose logical coordinates are ``coords``."""
    payload = _SEP.join(("lineage", kind, *(_coord(c) for c in coords)))
    return hashlib.blake2b(
        payload.encode("utf-8"), digest_size=_ID_BYTES
    ).hexdigest()


def topic_window_id(topic: str, key: str, t0: float) -> str:
    """One producer send: ``(topic, record key, window start)``."""
    return node_id("topic_window", topic, key, t0)


def batch_id(dataset: str, now: float) -> str:
    """One refined batch landing in a dataset at logical time ``now``.

    The tier store derives part nodes from this ID without ever talking
    to the framework: both sides compute it from ``(dataset, now)``,
    which is exactly the coordinate pair :meth:`TieredStore.ingest`
    receives — so the edge survives the pipelined run's deferred-ingest
    indirection with no shared mutable hand-off.
    """
    return node_id("batch", dataset, now)


def part_id(bucket: str, key: str) -> str:
    """One OCEAN part object.  Part keys are deterministic (the part
    counter is allocated under the registry lock in ingest order), so
    the node ID is too."""
    return node_id("part", bucket, key)


def rollup_partial_id(rollup: str, part_key: str) -> str:
    """One rollup partial aggregate (keyed by rollup and source part)."""
    return node_id("rollup_partial", rollup, part_key)


def query_result_id(op: str, name: str, version: int, params: str) -> str:
    """One query answer: ``(archive|rollup, dataset, generation, params)``.

    Including the store generation makes repeats idempotent rather than
    sequential: the same question at the same generation *is* the same
    answer, so concurrent identical queries (the threaded gateway) merge
    into one node instead of racing over a sequence counter.
    """
    return node_id("query_result", op, name, version, params)


def envelope_id(tenant: str, endpoint: str, fingerprint: str, seq: int) -> str:
    """One freshly computed serve envelope.  ``seq`` counts prior
    submissions with the same coordinates and is assigned on the
    gateway's arrival loop (serial, submission order) — never on the
    worker pool."""
    return node_id("envelope", tenant, endpoint, fingerprint, seq)
