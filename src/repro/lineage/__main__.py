"""Operator CLI: impact queries over a lineage catalog dump.

Usage::

    python -m repro.lineage report catalog.json
    python -m repro.lineage impact catalog.json --node <id>
    python -m repro.lineage impact catalog.json --part oda/power.gold_profiles/part-00000000.rcf
    python -m repro.lineage impact catalog.json --part ... --direction up

``report`` summarizes the catalog (node counts per kind, edge counts,
live part sets).  ``impact`` walks the flow closure from one node —
downstream by default ("which cached envelopes read this corrupted
part?"), upstream with ``--direction up`` ("which raw windows fed this
Gold row?") — and prints the result grouped by kind.  Catalogs are the
canonical JSON :meth:`repro.lineage.LineageCatalog.write_json` dumps.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.lineage.catalog import LineageCatalog

__all__ = ["main"]


def _describe(node: dict) -> str:
    coords = ":".join(node["coords"])
    flags = []
    if node.get("retired"):
        flags.append("retired")
    if node.get("advisories"):
        flags.append(f"advisories={len(node['advisories'])}")
    suffix = f"  ({', '.join(flags)})" if flags else ""
    return f"{node['id']}  {coords}{suffix}"


def _cmd_report(catalog: LineageCatalog, args, out) -> int:
    nodes = catalog.nodes()
    by_kind: dict[str, int] = {}
    for node in nodes:
        by_kind[node["kind"]] = by_kind.get(node["kind"], 0) + 1
    if args.format == "json":
        payload = {
            "nodes": len(nodes),
            "edges": len(catalog.edges()),
            "by_kind": by_kind,
            "live_parts": catalog.live_parts(),
        }
        out.write(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        return 0
    out.write(f"lineage catalog: {len(nodes)} nodes, {len(catalog.edges())} edges\n")
    for kind in sorted(by_kind):
        out.write(f"  {kind:<16} {by_kind[kind]}\n")
    live = catalog.live_parts()
    out.write(f"live parts ({len(live)}):\n")
    for key in live:
        out.write(f"  {key}\n")
    return 0


def _cmd_impact(catalog: LineageCatalog, args, out) -> int:
    if args.node:
        nid = args.node
    elif args.part:
        nid = catalog.part_node(args.bucket, args.part)
    else:
        sys.stderr.write("impact needs --node or --part\n")
        return 2
    start = catalog.node(nid)
    if start is None:
        sys.stderr.write(f"no such node {nid!r} in the catalog\n")
        return 1
    closure = (
        catalog.upstream(nid) if args.direction == "up" else catalog.downstream(nid)
    )
    grouped: dict[str, list[dict]] = {}
    for cid in closure:
        node = catalog.node(cid)
        if node is not None:
            grouped.setdefault(node["kind"], []).append(node)
    if args.format == "json":
        payload = {
            "node": start,
            "direction": args.direction,
            "closure": {
                kind: [n["id"] for n in nodes]
                for kind, nodes in sorted(grouped.items())
            },
        }
        out.write(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        return 0
    arrow = "upstream of" if args.direction == "up" else "downstream of"
    out.write(f"{arrow} {start['kind']} {_describe(start)}\n")
    if not grouped:
        out.write("  (nothing)\n")
    for kind in sorted(grouped):
        out.write(f"  {kind} ({len(grouped[kind])}):\n")
        for node in grouped[kind]:
            out.write(f"    {_describe(node)}\n")
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro.lineage",
        description="Impact queries over a lineage catalog dump.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_report = sub.add_parser("report", help="summarize a catalog dump")
    p_report.add_argument("catalog", help="path to a catalog JSON dump")
    p_report.add_argument("--format", choices=("text", "json"), default="text")
    p_impact = sub.add_parser("impact", help="flow closure from one node")
    p_impact.add_argument("catalog", help="path to a catalog JSON dump")
    p_impact.add_argument("--node", help="lineage node id to start from")
    p_impact.add_argument("--part", help="OCEAN part key to start from")
    p_impact.add_argument("--bucket", default="oda", help="OCEAN bucket (default: oda)")
    p_impact.add_argument(
        "--direction", choices=("down", "up"), default="down"
    )
    p_impact.add_argument("--format", choices=("text", "json"), default="text")
    args = parser.parse_args(argv)
    catalog = LineageCatalog.read_json(args.catalog)
    if args.command == "report":
        return _cmd_report(catalog, args, out)
    return _cmd_impact(catalog, args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
