"""The typed entity/relation catalog behind provenance queries.

Every artifact the data plane mints — a topic window landing on the
broker, a refined Silver/Gold batch, an OCEAN part (including the
``replaces`` tombstone chain a compaction leaves), a rollup partial, a
query answer, a serve envelope — is a :class:`LineageCatalog` node,
recorded **write-through at the producing site** (the producer loop, the
tier ingest/compaction commit points, the query executor, the serving
gateway), never scraped from the span buffer after the fact.  Spans are
bounded and droppable; the catalog is the durable record, and each node
carries the ``span_id`` active when it was minted so traces and lineage
cross-reference both ways.

Consistency with the store is inherited from the PR-8 rewrite-commit
protocol rather than re-implemented: part nodes are recorded only
*after* the commit put returns (fault injection fires before the store
mutates, so a ``SimulatedCrash`` at ``tier.put`` means neither the part
nor its node exists), supersede edges ride the same single-put commit
point, and retirement is marked only after the delete lands.  At every
crash point the catalog's live set therefore equals the store's
present-minus-tombstoned set — the invariant
``tests/lineage/test_crash_consistency.py`` enumerates.

Identity is deterministic (:mod:`repro.lineage.ids`): node IDs are pure
functions of logical coordinates, edges live in a set, and
:meth:`LineageCatalog.export` canonicalizes by sorting — so serial,
pipelined, threaded and sharded runs of the same seed export
byte-identical catalogs no matter how their threads interleaved.
"""

from __future__ import annotations

import json
import threading
from typing import Iterable

from repro.lineage.ids import node_id

__all__ = ["LineageCatalog", "EDGE_KINDS", "FLOW_EDGE_KINDS"]

#: Edge vocabulary.  ``derived`` is produced-by/derived-from (data
#: flowed from src into dst), ``read`` is a consumption by a query or
#: envelope, ``supersedes`` is the compaction tombstone chain (dst is
#: the dead part src replaced).
EDGE_KINDS = frozenset({"derived", "read", "supersedes"})

#: The kinds closure queries traverse.  ``supersedes`` is bookkeeping
#: about *liveness*, not data flow — a rewrite's data flow is its own
#: ``derived`` edges — so impact queries skip it.
FLOW_EDGE_KINDS = frozenset({"derived", "read"})


def _span_id() -> str:
    from repro.obs import TRACER

    span = TRACER.current()
    return span.span_id if span is not None else ""


class LineageCatalog:
    """Typed provenance graph over the data plane's artifacts.

    All mutation goes through one lock: producing sites span the window
    thread, the pipelined ingest thread and the serving pool, and node
    recording is idempotent (same coordinates merge into one node), so
    whichever thread gets there first wins without changing the export.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: id -> node dict (kind, coords, attrs, span, retired, advisories).
        self._nodes: dict[str, dict] = {}
        #: (src, dst, kind) triples.
        self._edges: set[tuple[str, str, str]] = set()
        #: dst -> incoming, src -> outgoing adjacency (flow edges only).
        self._out: dict[str, set[str]] = {}
        self._in: dict[str, set[str]] = {}
        #: parts that lost a supersedes race (dst of a supersedes edge).
        self._superseded: set[str] = set()

    # -- recording ----------------------------------------------------------

    def record(
        self,
        kind: str,
        coords: tuple,
        attrs: dict | None = None,
        span: str | None = None,
    ) -> str:
        """Record (or merge into) the node at ``coords``; returns its ID.

        The first recording wins the ``span`` field (the producing
        site's span); later recordings only merge missing attrs, so
        re-deriving a node — an idempotent repeated query, a restart's
        reconcile pass — never flaps the export.
        """
        nid = node_id(kind, *coords)
        if span is None:
            span = _span_id()
        with self._lock:
            node = self._nodes.get(nid)
            if node is None:
                self._nodes[nid] = {
                    "id": nid,
                    "kind": kind,
                    "coords": [str(c) if not isinstance(c, float) else repr(c) for c in coords],
                    "attrs": dict(attrs or {}),
                    "span": span,
                    "retired": False,
                    "advisories": [],
                }
            else:
                for k, v in (attrs or {}).items():
                    node["attrs"].setdefault(k, v)
        return nid

    def link(self, src: str, dst: str, kind: str = "derived") -> None:
        """Add one edge (idempotent)."""
        if kind not in EDGE_KINDS:
            raise ValueError(f"unknown edge kind {kind!r}")
        with self._lock:
            self._edges.add((src, dst, kind))
            if kind in FLOW_EDGE_KINDS:
                self._out.setdefault(src, set()).add(dst)
                self._in.setdefault(dst, set()).add(src)
            elif kind == "supersedes":
                self._superseded.add(dst)

    def link_many(
        self, srcs: Iterable[str], dst: str, kind: str = "derived"
    ) -> None:
        """Edges from every ``src`` to one ``dst``."""
        for src in srcs:
            self.link(src, dst, kind)

    def supersede(self, new: str, old_ids: Iterable[str]) -> None:
        """Record a rewrite commit: ``new`` tombstones every ``old``.

        Adds both halves of the rewrite's meaning — the liveness
        tombstone (``supersedes``) and the data flow (each input
        ``derived`` into the combined part, so blast radius crosses
        compactions).  Superseded parts stay in the catalog as
        historical nodes; only live-set queries exclude them.
        """
        for old in old_ids:
            self.link(new, old, "supersedes")
            self.link(old, new, "derived")

    def retire(self, nid: str) -> None:
        """Mark a node's artifact as removed from its store (retention
        delete, partial drop).  The node itself stays — history is the
        point of the catalog."""
        with self._lock:
            node = self._nodes.get(nid)
            if node is not None:
                node["retired"] = True

    # -- reading ------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)

    def node(self, nid: str) -> dict | None:
        """A copy of one node, or None."""
        with self._lock:
            node = self._nodes.get(nid)
            return None if node is None else json.loads(json.dumps(node))

    def nodes(self, kind: str | None = None) -> list[dict]:
        """Copies of all nodes (optionally one kind), sorted by ID."""
        with self._lock:
            picked = [
                n
                for n in self._nodes.values()
                if kind is None or n["kind"] == kind
            ]
            return sorted(
                (json.loads(json.dumps(n)) for n in picked),
                key=lambda n: n["id"],
            )

    def edges(self) -> list[tuple[str, str, str]]:
        """All edges, sorted."""
        with self._lock:
            return sorted(self._edges)

    def _closure(self, start: str, adjacency: dict[str, set[str]]) -> set[str]:
        seen: set[str] = set()
        stack = [start]
        while stack:
            nid = stack.pop()
            for nxt in adjacency.get(nid, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        seen.discard(start)
        return seen

    def downstream(self, nid: str) -> list[str]:
        """Every node reachable from ``nid`` over flow edges, sorted —
        "which artifacts did this one feed?"."""
        with self._lock:
            return sorted(self._closure(nid, self._out))

    def upstream(self, nid: str) -> list[str]:
        """Every node ``nid`` is reachable from, sorted — "what fed
        this artifact?"."""
        with self._lock:
            return sorted(self._closure(nid, self._in))

    def live_parts(self, dataset: str | None = None) -> list[str]:
        """Part *keys* currently live per the catalog: recorded, not
        superseded by a committed rewrite, not retired by retention.
        Mirrors :meth:`TieredStore._live_parts` by construction."""
        with self._lock:
            out = []
            for nid, node in self._nodes.items():
                if node["kind"] != "part" or node["retired"]:
                    continue
                if nid in self._superseded:
                    continue
                if dataset is not None and node["attrs"].get("dataset") != dataset:
                    continue
                out.append(node["attrs"].get("key", nid))
            return sorted(out)

    def part_node(self, bucket: str, key: str) -> str:
        """The node ID an OCEAN part records under (whether or not it
        has been recorded)."""
        return node_id("part", bucket, key)

    def partial_node(self, rollup: str, key: str) -> str:
        """The node ID a rollup partial records under."""
        return node_id("rollup_partial", rollup, key)

    # -- advisories (DataRUC) ----------------------------------------------

    def attach_advisory(self, nid: str, advisory: dict) -> None:
        """Attach one governance advisory to a node.

        ``advisory`` is a JSON-able dict (role, verdict, request id,
        comment — see :meth:`repro.governance.dataruc.DataRUC.
        annotate_lineage`).  Advisories propagate *downstream* at query
        time: anything derived from a reviewed artifact inherits its
        advisories, which is the paper's §IX intent — a restriction on a
        dataset restricts everything computed from it.
        """
        with self._lock:
            node = self._nodes.get(nid)
            if node is None:
                raise KeyError(f"unknown lineage node {nid!r}")
            if advisory not in node["advisories"]:
                node["advisories"].append(advisory)

    def advisories(self, nid: str, inherited: bool = True) -> list[dict]:
        """Advisories on ``nid`` — direct plus (by default) every
        advisory attached anywhere in its upstream closure."""
        with self._lock:
            node = self._nodes.get(nid)
            if node is None:
                raise KeyError(f"unknown lineage node {nid!r}")
            found = [(nid, a) for a in node["advisories"]]
            if inherited:
                for up in sorted(self._closure(nid, self._in)):
                    up_node = self._nodes.get(up)
                    if up_node is not None:
                        found.extend((up, a) for a in up_node["advisories"])
            return [
                dict(a, source=src)
                for src, a in sorted(
                    found, key=lambda pair: (pair[0], sorted(pair[1].items()))
                )
            ]

    # -- export -------------------------------------------------------------

    def export(self) -> dict:
        """Canonical JSON-able form: nodes sorted by ID, edges sorted.

        Two same-seed runs — serial, threaded, pipelined or sharded —
        export byte-identical dicts; the equivalence tests compare
        :meth:`export_digest` across executors.
        """
        with self._lock:
            nodes = sorted(
                (json.loads(json.dumps(n)) for n in self._nodes.values()),
                key=lambda n: n["id"],
            )
            edges = [list(e) for e in sorted(self._edges)]
        return {"nodes": nodes, "edges": edges}

    def export_json(self) -> str:
        """The export as canonical JSON text."""
        return json.dumps(self.export(), sort_keys=True, separators=(",", ":"))

    def export_digest(self) -> str:
        """BLAKE2b digest of the canonical export (byte-identity checks)."""
        import hashlib

        return hashlib.blake2b(
            self.export_json().encode("utf-8"), digest_size=8
        ).hexdigest()

    def write_json(self, path) -> None:
        """Dump the canonical export to ``path`` (CLI input format)."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.export_json())

    @classmethod
    def load(cls, exported: dict) -> "LineageCatalog":
        """Rebuild a catalog from :meth:`export` output (the CLI's
        entry point for offline impact queries)."""
        cat = cls()
        with cat._lock:
            for node in exported.get("nodes", ()):
                cat._nodes[node["id"]] = json.loads(json.dumps(node))
            for src, dst, kind in exported.get("edges", ()):
                cat._edges.add((src, dst, kind))
                if kind in FLOW_EDGE_KINDS:
                    cat._out.setdefault(src, set()).add(dst)
                    cat._in.setdefault(dst, set()).add(src)
                elif kind == "supersedes":
                    cat._superseded.add(dst)
        return cat

    @classmethod
    def read_json(cls, path) -> "LineageCatalog":
        """Load a catalog dumped by :meth:`write_json`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.load(json.load(fh))
