"""Blast-radius reports: from an injected fault to the artifacts it
could have touched.

The chaos harness (DESIGN.md §10) proves outputs byte-identical under
crash/retry faults; *corruption* faults are different — a
``CORRUPT_PART`` silently rewrites a part's values at the put site, and
the question becomes "which downstream answers can no longer be
trusted?".  :func:`blast_radius` answers it from the lineage catalog:
the downstream flow closure of each corrupted part, grouped by artifact
kind, is exactly the set a brute-force replay diff finds changed
(``tests/lineage/test_blast_radius.py`` holds the two equal).

The injector is duck-typed — anything with a ``corrupted`` list of
``(site, call_index, key)`` triples works — so this module stays
import-light and usable on offline catalog dumps.
"""

from __future__ import annotations

from repro.lineage.catalog import LineageCatalog

__all__ = ["blast_radius"]

#: Report sections, in severity-of-surprise order: the corrupt parts
#: themselves, then everything derived from them.
_REPORT_KINDS = (
    "part",
    "rollup_partial",
    "batch",
    "query_result",
    "envelope",
)


def blast_radius(
    catalog: LineageCatalog,
    corrupted_keys=None,
    injector=None,
    bucket: str = "oda",
) -> dict:
    """Name every artifact an injected corruption could have touched.

    Parameters
    ----------
    catalog:
        The run's lineage catalog (live, or :meth:`LineageCatalog.load`-ed
        from a dump).
    corrupted_keys:
        OCEAN part keys the fault plan corrupted.  May be omitted when
        ``injector`` is given.
    injector:
        A :class:`~repro.faults.injector.FaultInjector` (duck-typed:
        only its ``corrupted`` log of ``(site, call, key)`` triples is
        read) to pull the corrupted keys from.
    bucket:
        OCEAN bucket the keys live in.

    Returns a report dict::

        {"corrupted_parts": [keys...],
         "affected": {"part": [...], "rollup_partial": [...],
                      "batch": [...], "query_result": [...],
                      "envelope": [...]},
         "clean": true/false}

    ``affected`` values are sorted lists of node summaries
    (``{"id", "kind", "coords", "retired"}``); ``clean`` is True when no
    corruption was injected.  The report is deterministic: same seed,
    same plan, same report — byte for byte.
    """
    keys: list[str] = []
    if corrupted_keys is not None:
        keys.extend(corrupted_keys)
    if injector is not None:
        keys.extend(k for _, _, k in getattr(injector, "corrupted", ()))
    keys = sorted(dict.fromkeys(keys))

    affected_ids: set[str] = set()
    for key in keys:
        nid = catalog.part_node(bucket, key)
        if catalog.node(nid) is None:
            continue
        affected_ids.add(nid)
        affected_ids.update(catalog.downstream(nid))

    affected: dict[str, list[dict]] = {kind: [] for kind in _REPORT_KINDS}
    for nid in sorted(affected_ids):
        node = catalog.node(nid)
        if node is None:
            continue
        kind = node["kind"]
        if kind not in affected:
            affected[kind] = []
        affected[kind].append(
            {
                "id": node["id"],
                "kind": kind,
                "coords": node["coords"],
                "retired": node["retired"],
            }
        )
    return {
        "corrupted_parts": keys,
        "affected": affected,
        "clean": not keys,
    }
