"""A tiny process-wide timer/counter registry for the data plane.

The paper's operational lesson (§VI-B) is that you cannot steer an
ingest pipeline you do not measure: every hop of the hot path needs a
cheap, always-on cost meter.  This registry is that meter for the
reproduction — producers, consumers, the medallion stages, the columnar
encoder, and the tier manager all record wall time and volume here, and
``benchmarks/bench_e2e.py`` snapshots it into ``BENCH_e2e.json`` so each
PR leaves a performance trajectory behind.

Design constraints:

* **Cheap** — one ``perf_counter`` pair per timed call and a dict
  update; safe to leave enabled in tests and examples.
* **Thread-safe** — the parallel ``run_window`` records from worker
  threads; a single lock guards the (tiny, coarse-grained) updates.
* **Pull-based** — nothing is printed or exported unless someone calls
  :meth:`PerfRegistry.snapshot`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter

__all__ = ["PerfRegistry", "PERF"]


class _TimerStat:
    __slots__ = ("total_s", "calls", "max_s")

    def __init__(self) -> None:
        self.total_s = 0.0
        self.calls = 0
        self.max_s = 0.0

    def add(self, dt: float) -> None:
        self.total_s += dt
        self.calls += 1
        if dt > self.max_s:
            self.max_s = dt


class PerfRegistry:
    """Named wall-time accumulators and monotonic counters."""

    def __init__(self) -> None:
        self._enabled = True
        self._suspend = 0
        self._lock = threading.Lock()
        self._timers: dict[str, _TimerStat] = {}
        self._counters: dict[str, float] = {}

    @property
    def enabled(self) -> bool:
        """Whether records are currently accepted (manual switch AND no
        active :meth:`disabled` region on any thread)."""
        with self._lock:
            return self._enabled and self._suspend == 0

    @enabled.setter
    def enabled(self, value: bool) -> None:
        with self._lock:
            self._enabled = bool(value)

    # -- recording ----------------------------------------------------------

    @contextmanager
    def timer(self, name: str):
        """Context manager accumulating wall time under ``name``.

        Whether the block is recorded is decided *once, at entry*: a
        block that starts while recording is enabled lands in the stats
        even if a :meth:`disabled` region begins before it exits (and a
        block that starts disabled stays unrecorded however the flag
        moves).  Deciding again at exit — the old behaviour — silently
        dropped timings that straddled a baseline-bench region.
        """
        if not self.enabled:
            yield
            return
        t0 = perf_counter()
        try:
            yield
        finally:
            self._add_time_unconditional(name, perf_counter() - t0)

    def _add_time_unconditional(self, name: str, dt: float) -> None:
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = _TimerStat()
            stat.add(dt)

    def add_time(self, name: str, dt: float) -> None:
        """Record one timed invocation of ``name``."""
        if not self.enabled:
            return
        self._add_time_unconditional(name, dt)

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to the counter ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    # -- reading ------------------------------------------------------------

    def total_s(self, name: str) -> float:
        """Accumulated seconds under timer ``name`` (0.0 if never hit)."""
        with self._lock:
            stat = self._timers.get(name)
            return stat.total_s if stat is not None else 0.0

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never hit)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """All timers and counters as one JSON-ready dict."""
        with self._lock:
            return {
                "timers": {
                    name: {
                        "total_s": stat.total_s,
                        "calls": stat.calls,
                        "max_s": stat.max_s,
                    }
                    for name, stat in sorted(self._timers.items())
                },
                "counters": dict(sorted(self._counters.items())),
            }

    def reset(self) -> None:
        """Drop all recorded timers and counters."""
        with self._lock:
            self._timers.clear()
            self._counters.clear()

    @contextmanager
    def disabled(self):
        """Context manager that pauses recording (for baseline benches).

        Implemented as a lock-guarded suppression *depth*, so the region
        is reentrant and safe under concurrency: overlapping regions —
        a baseline bench on the main thread while threaded ``run_window``
        workers enter their own — each push and pop one level, and
        recording resumes exactly when the last one exits.  The previous
        save/restore of a shared boolean could restore a stale value and
        leave recording off forever.
        """
        with self._lock:
            self._suspend += 1
        try:
            yield
        finally:
            with self._lock:
                self._suspend -= 1


#: The process-wide registry the data plane records into.
PERF = PerfRegistry()
