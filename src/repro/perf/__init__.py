"""Lightweight performance instrumentation for the data plane."""

from repro.perf.baseline import baseline_mode, reset_all, reset_fast_path_caches
from repro.perf.registry import PERF, PerfRegistry

__all__ = [
    "PERF",
    "PerfRegistry",
    "baseline_mode",
    "reset_all",
    "reset_fast_path_caches",
]
