"""One switch for the pre-optimization data plane.

The fast path is a collection of independently toggleable pieces —
content-addressed memos, the fast encoding estimator, batched emission.
Benchmarks and equivalence tests need to flip *all* of them at once to
reproduce the reference behaviour; :func:`baseline_mode` is that switch.

It covers the global toggles only.  Per-framework choices (serial
executor, reference emit, unbatched polling) live in
:class:`repro.core.DataPlaneOptions.serial_baseline`.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager

__all__ = ["baseline_mode", "reset_fast_path_caches", "reset_all"]


@contextmanager
def baseline_mode():
    """Disable every fast-path memo and route estimators through their
    reference implementations for the duration of the block."""
    # Imported lazily: repro.perf must stay import-light because the
    # instrumented modules import it at call time.
    from repro.columnar import compression, encodings, file_format
    from repro.pipeline import factorize
    from repro.query import cache as query_cache
    from repro.query import executor as query_executor
    from repro.telemetry import jobs

    with ExitStack() as stack:
        stack.enter_context(factorize.cache_disabled())
        stack.enter_context(factorize.factorize_reference_mode())
        stack.enter_context(encodings.encoding_memo_disabled())
        stack.enter_context(encodings.encoding_reference_mode())
        stack.enter_context(compression.compress_memo_disabled())
        stack.enter_context(file_format.chunk_memo_disabled())
        stack.enter_context(jobs.utilization_memo_disabled())
        stack.enter_context(query_executor.scan_reference_mode())
        stack.enter_context(query_cache.row_group_cache_disabled())
        yield


def reset_fast_path_caches() -> None:
    """Empty every fast-path memo (for benchmark isolation)."""
    from repro.columnar import compression, encodings, file_format
    from repro.pipeline import factorize
    from repro.query import cache as query_cache

    factorize.clear_cache()
    encodings.clear_encoding_memo()
    compression.clear_compress_memo()
    file_format.clear_chunk_memo()
    query_cache.clear_row_group_cache()


def reset_all() -> None:
    """Full measurement isolation: fast-path memos, the PERF registry,
    and the obs tracer/metrics, all emptied in one call.

    ``reset_fast_path_caches`` alone promised "benchmark isolation" but
    left ``PERF``'s timers and counters intact, so every benchmark had
    to remember a second manual ``PERF.reset()`` — and a forgotten one
    silently blended repetitions.  Both benchmarks now call this.
    """
    from repro import obs
    from repro.perf.registry import PERF

    reset_fast_path_caches()
    PERF.reset()
    obs.reset_all()
