"""Syslog / system-event stream.

Models the "Syslog & Events" row of the paper's Fig. 3 matrix: every node
emits a low background rate of log events with a heavy-tailed severity
distribution, plus correlated *bursts* (a node having a bad hour emits at
many times the base rate — the failure-cascade pattern that Copacetic and
the UA dashboards key on).

Events are deterministic per (seed, node, time slot): the window is
discretized into one-second slots and each (node, slot) cell decides
independently — via counter-based hashing — whether it emits, at what
severity, and with which message template.  That keeps the stream
split-invariant like every other source.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.machine import MachineConfig
from repro.telemetry.schema import (
    RAW_EVENT_BYTES,
    EventBatch,
    SensorCatalog,
    SensorSpec,
)
from repro.telemetry.sources import TelemetrySource
from repro.util.noise import uniform_from_index

__all__ = ["SyslogSource", "TEMPLATES", "TEMPLATE_SEVERITIES"]

#: Message templates by severity class.  Index = message_id.
TEMPLATES: list[str] = [
    # debug (0-3)
    "slurmd: debug: credential for job verified",
    "kernel: perf: interrupt took too long, throttling",
    "systemd: Started session scope",
    "lustre: client connected to MDT",
    # info (4-9)
    "sshd: Accepted publickey for user",
    "slurmd: launching job step",
    "kernel: EDC single-bit error corrected",
    "lustre: recovery complete on OST",
    "nvidia: Xid 13 graphics engine exception recovered",
    "bmc: fan speed adjusted",
    # warning (10-14)
    "kernel: page allocation stall on node",
    "lustre: slow reply on OST, resending",
    "slurmd: job step exceeded memory watermark",
    "fabric: link retraining initiated",
    "bmc: inlet temperature above nominal",
    # error (15-18)
    "kernel: GPU fell off the bus",
    "lustre: evicting client after timeout",
    "slurmd: job step terminated by signal 9",
    "fabric: link down, rerouting traffic",
    # critical (19-20)
    "kernel: machine check exception, node halting",
    "bmc: voltage regulator fault, node power-off",
]

#: Severity index (into schema.SEVERITIES) of each template.
TEMPLATE_SEVERITIES: np.ndarray = np.array(
    [0] * 4 + [1] * 6 + [2] * 5 + [3] * 4 + [4] * 2, dtype=np.int8
)

# Cumulative severity distribution of emitted events (heavily skewed to
# low severities, as real syslog is).
_SEVERITY_PROBS = np.array([0.45, 0.40, 0.10, 0.045, 0.005])
_SEVERITY_CDF = np.cumsum(_SEVERITY_PROBS)

# First/last template index per severity class.
_SEV_RANGES = [(0, 4), (4, 10), (10, 15), (15, 19), (19, 21)]


class SyslogSource(TelemetrySource):
    """Deterministic per-node syslog stream.

    Parameters
    ----------
    base_rate:
        Mean events per node-second outside bursts.
    burst_prob:
        Probability that a given (node, hour) is a burst hour.
    burst_factor:
        Rate multiplier during a burst hour.
    """

    name = "syslog"

    def __init__(
        self,
        machine: MachineConfig,
        seed: int = 0,
        nodes: np.ndarray | None = None,
        base_rate: float = 0.05,
        burst_prob: float = 0.02,
        burst_factor: float = 20.0,
    ) -> None:
        if base_rate <= 0 or base_rate * burst_factor > 1.0:
            raise ValueError(
                "base_rate must be in (0, 1/burst_factor] — one slot emits "
                "at most one event"
            )
        self.machine = machine
        self.seed = int(seed)
        self.base_rate = float(base_rate)
        self.burst_prob = float(burst_prob)
        self.burst_factor = float(burst_factor)
        if nodes is None:
            nodes = np.arange(machine.n_nodes, dtype=np.int32)
        self.nodes = np.asarray(nodes, dtype=np.int32)
        self._catalog = SensorCatalog(
            [
                SensorSpec(
                    "syslog_event",
                    "event",
                    1.0 / max(base_rate, 1e-9),
                    "node",
                    "system log event (see TEMPLATES)",
                )
            ]
        )

    @property
    def catalog(self) -> SensorCatalog:
        return self._catalog

    @property
    def templates(self) -> list[str]:
        """Template table for :meth:`EventBatch.render`."""
        return TEMPLATES

    def _cell_index(self, slots: np.ndarray) -> np.ndarray:
        return (
            self.nodes.astype(np.uint64)[:, None] * np.uint64(1 << 40)
            + slots.astype(np.uint64)[None, :]
        )

    def emit(self, t0: float, t1: float) -> EventBatch:
        self._check_window(t0, t1)
        s0 = int(np.ceil(t0 - 1e-9))
        s1 = int(np.ceil(t1 - 1e-9))
        if s1 <= s0 or self.nodes.size == 0:
            return EventBatch.empty()
        slots = np.arange(s0, s1, dtype=np.int64)
        idx = self._cell_index(slots)

        # Burst state is stable per (node, hour).
        hours = slots // 3600
        hour_idx = (
            self.nodes.astype(np.uint64)[:, None] * np.uint64(1 << 24)
            + hours.astype(np.uint64)[None, :]
        )
        bursty = uniform_from_index(self.seed, 50, hour_idx) < self.burst_prob
        rate = np.where(bursty, self.base_rate * self.burst_factor, self.base_rate)

        fires = uniform_from_index(self.seed, 51, idx) < rate
        if not fires.any():
            return EventBatch.empty()

        node_grid = np.broadcast_to(
            self.nodes[:, None], fires.shape
        )[fires]
        slot_grid = np.broadcast_to(slots[None, :], fires.shape)[fires]
        fired_idx = idx[fires]

        jitter = uniform_from_index(self.seed, 52, fired_idx)
        timestamps = slot_grid.astype(np.float64) + jitter

        sev_u = uniform_from_index(self.seed, 53, fired_idx)
        severities = np.searchsorted(_SEVERITY_CDF, sev_u).astype(np.int8)
        severities = np.minimum(severities, len(_SEV_RANGES) - 1)

        msg_u = uniform_from_index(self.seed, 54, fired_idx)
        lo = np.array([r[0] for r in _SEV_RANGES])[severities]
        hi = np.array([r[1] for r in _SEV_RANGES])[severities]
        message_ids = (lo + (msg_u * (hi - lo)).astype(np.int64)).astype(np.int16)

        batch = EventBatch(
            timestamps=timestamps,
            component_ids=node_grid,
            severities=severities,
            message_ids=message_ids,
        )
        return batch.sorted_by_time()

    def nominal_bytes_per_day(self) -> float:
        eff_rate = self.base_rate * (
            1.0 + self.burst_prob * (self.burst_factor - 1.0)
        )
        return eff_rate * self.nodes.size * RAW_EVENT_BYTES * 86_400.0

    def fleet_bytes_per_day(self) -> float:
        """Raw volume/day extrapolated to the full machine."""
        if self.nodes.size == 0:
            return 0.0
        return self.nominal_bytes_per_day() * (
            self.machine.n_nodes / self.nodes.size
        )
