"""Batch assembly of grid-shaped telemetry into time-sorted batches.

Every numeric source follows the same shape: each channel is computed on
one ``(component x time)`` grid, a loss mask drops samples, and the
channels are merged into one time-ordered long-format batch.  The
reference implementations do this with one :class:`ObservationBatch` per
channel followed by a concat and a full stable ``argsort`` over the
window — an O(n log n) sort re-deriving an order that is already implied
by the grid.

:func:`assemble_sorted_batch` builds the sorted batch directly: stack
the channel grids into a ``(channel, component, time)`` cube, transpose
to ``(time, channel, component)``, and apply the loss mask once.  Row
order is then time-major with ties broken by channel insertion order and
component order — exactly the order a stable timestamp sort of the
concatenated per-channel batches produces, so the result is
byte-identical to the reference path at a fraction of the cost.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.schema import ObservationBatch

__all__ = ["assemble_sorted_batch"]


def assemble_sorted_batch(
    times: np.ndarray,
    components: np.ndarray,
    sensor_ids: np.ndarray,
    values: np.ndarray,
    keep: np.ndarray,
) -> ObservationBatch:
    """Merge per-channel grids into one time-sorted long-format batch.

    Parameters
    ----------
    times:
        Sample grid, shape ``(T,)`` (float64 seconds).
    components:
        Component ids, shape ``(N,)`` (int32).
    sensor_ids:
        One sensor id per channel, shape ``(C,)``, in the channel order
        the reference path would emit its per-channel parts.
    values:
        Channel value grids, shape ``(C, N, T)``.
    keep:
        Boolean loss mask, shape ``(C, N, T)``; dropped cells are omitted.

    Returns
    -------
    ObservationBatch
        Rows ordered (time, channel, component) — identical to
        concatenating the per-channel masked batches in ``sensor_ids``
        order and stable-sorting by timestamp.
    """
    values = np.asarray(values)
    keep = np.asarray(keep, dtype=bool)
    if values.shape != keep.shape or values.ndim != 3:
        raise ValueError(
            f"values/keep must share a (C, N, T) shape, got "
            f"{values.shape} vs {keep.shape}"
        )
    n_channels, n_components, n_times = values.shape
    if n_channels == 0 or n_components == 0 or n_times == 0:
        return ObservationBatch.empty()

    # (C, N, T) -> (T, C, N): C-order iteration of the transposed cube is
    # the target row order, so one boolean index yields sorted columns.
    mask = keep.transpose(2, 0, 1)
    shape = (n_times, n_channels, n_components)
    ts = np.broadcast_to(
        np.asarray(times, dtype=np.float64)[:, None, None], shape
    )
    comp = np.broadcast_to(
        np.asarray(components, dtype=np.int32)[None, None, :], shape
    )
    sid = np.broadcast_to(
        np.asarray(sensor_ids, dtype=np.int16)[None, :, None], shape
    )
    return ObservationBatch(
        timestamps=ts[mask],
        component_ids=comp[mask],
        sensor_ids=sid[mask],
        values=values.transpose(2, 0, 1)[mask],
    )
