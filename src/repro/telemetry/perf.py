"""GPU/CPU performance-counter stream.

The "Compute: perf counters" row of Fig. 3 sits at **L0 for every
consumer** — collected raw, not yet operationalized — and it is the
single largest contributor to the ingest firehose: tens of counters per
accelerator at 1 Hz across the fleet.  This is the "inundation" of the
paper's title: most of the daily terabytes are this stream, stored
frozen until an exploration campaign reaches it.

Counters are modelled as utilization-coupled rates (occupancy, issued
flops, memory bandwidth, cache hits, ...) with per-counter scale factors
and deterministic noise; their information content is deliberately
redundant with utilization — the very reason a Bronze->Silver campaign
can compact them so hard once someone invests in it.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.jobs import AllocationTable
from repro.telemetry.machine import MachineConfig
from repro.telemetry.schema import (
    RAW_OBSERVATION_BYTES,
    ObservationBatch,
    SensorCatalog,
    SensorSpec,
)
from repro.telemetry.grid import assemble_sorted_batch
from repro.telemetry.sources import TelemetrySource
from repro.util.noise import (
    normal_from_index,
    normal_from_index_tags,
    uniform_from_index,
    uniform_from_index_tags,
)

__all__ = ["PerfCounterSource", "COUNTERS_PER_GPU"]

#: Counter channels collected per accelerator (occupancy, flops issued,
#: memory bandwidth, cache hit rates, stall reasons, ...).
COUNTERS_PER_GPU = 20
SAMPLE_PERIOD_S = 1.0

_COUNTER_NAMES = [
    "occupancy_pct", "flops_issued", "mem_bw_bytes", "l2_hit_pct",
    "lds_util_pct", "valu_busy_pct", "salu_busy_pct", "fetch_stall_pct",
    "write_stall_pct", "wavefronts", "kernel_launches", "pcie_rx_bytes",
    "pcie_tx_bytes", "xgmi_bytes", "power_violations", "clk_mhz",
    "mem_clk_mhz", "temp_hotspot_c", "ecc_corrected", "page_faults",
]


class PerfCounterSource(TelemetrySource):
    """Deterministic per-GPU performance-counter stream."""

    name = "perf_counters"

    def __init__(
        self,
        machine: MachineConfig,
        allocation: AllocationTable,
        seed: int = 0,
        nodes: np.ndarray | None = None,
        loss_rate: float = 0.002,
    ) -> None:
        self.machine = machine
        self.allocation = allocation
        self.seed = int(seed)
        self.loss_rate = float(loss_rate)
        if nodes is None:
            nodes = np.arange(machine.n_nodes, dtype=np.int32)
        self.nodes = np.asarray(nodes, dtype=np.int32)
        specs = []
        for g in range(machine.gpus_per_node):
            for counter in _COUNTER_NAMES[:COUNTERS_PER_GPU]:
                specs.append(
                    SensorSpec(
                        f"gpu{g}_{counter}", "count", SAMPLE_PERIOD_S, "node",
                        f"GPU {g} perf counter: {counter}", loss_rate,
                    )
                )
        self._catalog = SensorCatalog(specs)
        # Per-counter deterministic scale factors (decades apart).
        n_channels = len(specs)
        exponents = normal_from_index(
            self.seed, 400, np.arange(n_channels, dtype=np.uint64)
        )
        self._scales = 10.0 ** (2.0 + 2.0 * np.abs(exponents))

    @property
    def catalog(self) -> SensorCatalog:
        return self._catalog

    def sample_times(self, t0: float, t1: float) -> np.ndarray:
        k0 = int(np.ceil(t0 / SAMPLE_PERIOD_S - 1e-9))
        k1 = int(np.ceil(t1 / SAMPLE_PERIOD_S - 1e-9))
        return np.arange(k0, k1, dtype=np.int64) * SAMPLE_PERIOD_S

    def _sample_index(self, times: np.ndarray) -> np.ndarray:
        k = np.round(times / SAMPLE_PERIOD_S).astype(np.int64)
        return (
            self.nodes.astype(np.uint64)[:, None] * np.uint64(1 << 40)
            + k.astype(np.uint64)[None, :]
        )

    def emit(self, t0: float, t1: float) -> ObservationBatch:
        """Batched emission: all channels in one noise pass, no sort."""
        self._check_window(t0, t1)
        times = self.sample_times(t0, t1)
        if times.size == 0 or self.nodes.size == 0:
            return ObservationBatch.empty()
        gpu_u, _, _ = self.allocation.utilization(self.nodes, times)
        idx = self._sample_index(times)

        sids = np.arange(len(self._catalog), dtype=np.uint64)
        active = gpu_u > 0.0
        if active.all():
            # In-place pipeline over the one noise cube: each step uses
            # the same operands (commuted where needed — IEEE multiply is
            # bitwise commutative) and order as the reference expression
            # scale * max(u * (1 + 0.1 * n), 0), so bits are identical.
            values = normal_from_index_tags(self.seed, 500 + sids, idx)
            values *= 0.1
            values += 1.0
            values *= gpu_u[None, :, :]
            np.maximum(values, 0.0, out=values)
            values *= self._scales[:, None, None]
        else:
            # Idle cells are exactly 0.0 regardless of noise (|noise| < 1,
            # so gpu_u * (1 + noise) is +0.0 there) — draw noise only on
            # the active cells and leave the rest zero-filled.
            values = np.zeros((sids.size,) + gpu_u.shape)
            if active.any():
                cells = normal_from_index_tags(
                    self.seed, 500 + sids, idx[active]
                )
                cells *= 0.1
                cells += 1.0
                cells *= gpu_u[active][None, :]
                np.maximum(cells, 0.0, out=cells)
                cells *= self._scales[:, None]
                values[:, active] = cells
        keep = (
            uniform_from_index_tags(self.seed, 4000 + sids, idx)
            >= self.loss_rate
        )
        return assemble_sorted_batch(times, self.nodes, sids, values, keep)

    def emit_reference(self, t0: float, t1: float) -> ObservationBatch:
        self._check_window(t0, t1)
        times = self.sample_times(t0, t1)
        if times.size == 0 or self.nodes.size == 0:
            return ObservationBatch.empty()
        gpu_u, _, _ = self.allocation.utilization(self.nodes, times)

        idx = self._sample_index(times)
        ts_grid = np.broadcast_to(times[None, :], idx.shape)
        node_grid = np.broadcast_to(self.nodes[:, None], idx.shape)

        parts: list[ObservationBatch] = []
        n_channels = len(self._catalog)
        for sid in range(n_channels):
            # Counter value = scale * utilization * (1 + noise); the
            # redundancy across channels is intentional (see module doc).
            noise = 0.1 * normal_from_index(
                self.seed, 500 + sid, idx
            )
            values = self._scales[sid] * np.maximum(gpu_u * (1.0 + noise), 0.0)
            keep = (
                uniform_from_index(self.seed, 4000 + sid, idx) >= self.loss_rate
            )
            n_keep = int(keep.sum())
            if n_keep == 0:
                continue
            parts.append(
                ObservationBatch(
                    timestamps=ts_grid[keep],
                    component_ids=node_grid[keep],
                    sensor_ids=np.full(n_keep, sid, dtype=np.int16),
                    values=values[keep],
                )
            )
        return ObservationBatch.concat(parts).sorted_by_time()

    def nominal_bytes_per_day(self) -> float:
        per_node = sum(
            s.sample_rate_hz * (1.0 - s.loss_rate) for s in self._catalog
        )
        return per_node * self.nodes.size * RAW_OBSERVATION_BYTES * 86_400.0

    def fleet_bytes_per_day(self) -> float:
        """Raw volume/day extrapolated to the full machine."""
        if self.nodes.size == 0:
            return 0.0
        return self.nominal_bytes_per_day() * (
            self.machine.n_nodes / self.nodes.size
        )
