"""Per-component power and thermal telemetry.

This is the dominant stream by volume on the Compass-class machine (the
paper cites ~0.5 TB/day of power profiling data for Frontier) and the raw
material for the LVA application (Fig. 8), the job power-profile classifier
(Fig. 10), and the ExaDigiT replay (Fig. 11).

Each node reports, at the machine's native cadence (1 Hz on Compass):

* ``input_power`` — node power at the rectifier output,
* ``cpu_power``, ``mem_power``, and one ``gpuN_power`` per GPU,
* ``cpu_temp`` and one ``gpuN_temp`` per GPU,
* ``coolant_return_temp`` — per-node cold-plate return temperature.

The electrical model: device power is idle + utilization x (TDP - idle)
plus multiplicative device-to-device variation (manufacturing spread) and
additive measurement noise; node input power adds a fixed overhead (fans,
NIC, board) divided by a point-of-load conversion efficiency.  Temperatures
are coolant supply + thermal resistance x power + noise.  Utilization comes
from the :class:`~repro.telemetry.jobs.AllocationTable`, so profiles carry
the archetype shapes end to end.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.jobs import AllocationTable
from repro.telemetry.machine import MachineConfig
from repro.telemetry.schema import (
    RAW_OBSERVATION_BYTES,
    ObservationBatch,
    SensorCatalog,
    SensorSpec,
)
from repro.telemetry.grid import assemble_sorted_batch
from repro.telemetry.sources import TelemetrySource
from repro.util.noise import (
    normal_from_index,
    normal_from_index_tags,
    uniform_from_index,
    uniform_from_index_tags,
)

__all__ = ["PowerThermalSource"]

# Electrical/thermal constants of the node model.
GPU_IDLE_W = 90.0
CPU_IDLE_W = 60.0
MEM_IDLE_W = 40.0
MEM_ACTIVE_W = 25.0  # extra at full GPU utilization
POL_EFFICIENCY = 0.92  # point-of-load DC-DC conversion efficiency
CPU_THERMAL_R = 0.055  # degC per watt
GPU_THERMAL_R = 0.045
NODE_THERMAL_R = 0.004  # coolant return rise per node watt
MEASUREMENT_NOISE_W = 4.0
TEMP_NOISE_C = 0.3


def _build_catalog(machine: MachineConfig, loss_rate: float) -> SensorCatalog:
    period = machine.power_sample_period_s
    specs = [
        SensorSpec(
            "input_power", "W", period, "node",
            "node input power at rectifier output", loss_rate,
        ),
        SensorSpec("cpu_power", "W", period, "node", "CPU package power", loss_rate),
        SensorSpec("mem_power", "W", period, "node", "DIMM power", loss_rate),
        SensorSpec("cpu_temp", "degC", period, "node", "CPU die temperature", loss_rate),
        SensorSpec(
            "coolant_return_temp", "degC", period, "node",
            "cold-plate coolant return temperature", loss_rate,
        ),
        SensorSpec(
            "node_energy", "J", period, "node",
            "energy consumed over the sample interval", loss_rate,
        ),
        SensorSpec("fan0_speed", "rpm", period, "node",
                   "chassis fan 0 speed", loss_rate),
        SensorSpec("fan1_speed", "rpm", period, "node",
                   "chassis fan 1 speed", loss_rate),
        SensorSpec("ps0_voltage", "V", period, "node",
                   "power shelf 0 bus voltage", loss_rate),
        SensorSpec("ps1_voltage", "V", period, "node",
                   "power shelf 1 bus voltage", loss_rate),
    ]
    for g in range(machine.gpus_per_node):
        specs.append(
            SensorSpec(
                f"gpu{g}_power", "W", period, "node",
                f"GPU {g} package power", loss_rate,
            )
        )
        specs.append(
            SensorSpec(
                f"gpu{g}_temp", "degC", period, "node",
                f"GPU {g} die temperature", loss_rate,
            )
        )
        specs.append(
            SensorSpec(
                f"gpu{g}_hbm_temp", "degC", period, "node",
                f"GPU {g} HBM stack temperature", loss_rate,
            )
        )
        specs.append(
            SensorSpec(
                f"gpu{g}_util", "fraction", period, "node",
                f"GPU {g} utilization", loss_rate,
            )
        )
    return SensorCatalog(specs)


class PowerThermalSource(TelemetrySource):
    """Deterministic per-node power/thermal stream for a fleet subset.

    Parameters
    ----------
    machine:
        Fleet geometry and electrical envelope.
    allocation:
        Job oracle driving utilization.
    seed:
        Root seed; all noise is a pure function of (seed, sample index).
    nodes:
        Optional subset of node ids to emit (defaults to the whole fleet).
        Benches emit a sampled subset and extrapolate volumes.
    loss_rate:
        Fraction of samples dropped at the source, modelling the lossy
        out-of-band collection path the paper highlights (§VIII-A).
    """

    name = "power"

    def __init__(
        self,
        machine: MachineConfig,
        allocation: AllocationTable,
        seed: int = 0,
        nodes: np.ndarray | None = None,
        loss_rate: float = 0.01,
    ) -> None:
        self.machine = machine
        self.allocation = allocation
        self.seed = int(seed)
        self.loss_rate = float(loss_rate)
        self._catalog = _build_catalog(machine, loss_rate)
        if nodes is None:
            nodes = np.arange(machine.n_nodes, dtype=np.int32)
        self.nodes = np.asarray(nodes, dtype=np.int32)
        if self.nodes.size and (
            self.nodes.min() < 0 or self.nodes.max() >= machine.n_nodes
        ):
            raise ValueError("node subset out of range for machine")
        # Per-device manufacturing spread: stable per (node, device).
        node_u64 = self.nodes.astype(np.uint64)
        self._gpu_spread = 1.0 + 0.04 * normal_from_index(
            self.seed, 101, node_u64
        )  # per-node factor; per-GPU refinement below
        self._cpu_spread = 1.0 + 0.03 * normal_from_index(self.seed, 102, node_u64)
        # Hoisted per-(node, GPU) spread columns: the exact expression the
        # per-window loop used to rebuild every emit, computed once here.
        self._gpu_spread_cols = [
            self._gpu_spread[:, None]
            * (
                1.0
                + 0.02 * normal_from_index(self.seed, 200 + g, node_u64)[:, None]
            )
            for g in range(machine.gpus_per_node)
        ]

    @property
    def catalog(self) -> SensorCatalog:
        return self._catalog

    def sample_times(self, t0: float, t1: float) -> np.ndarray:
        """The absolute sample grid falling in ``[t0, t1)``."""
        p = self.machine.power_sample_period_s
        k0 = int(np.ceil(t0 / p - 1e-9))
        k1 = int(np.ceil(t1 / p - 1e-9))
        return np.arange(k0, k1, dtype=np.int64) * p

    def node_power_matrix(
        self, t0: float, t1: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lossless (times, node_input_power) matrix for the window.

        Shape of power matrix: ``(n_nodes, n_times)``.  Used directly by
        the digital twin and the facility source, bypassing the long
        format.
        """
        times = self.sample_times(t0, t1)
        comp = self._components(times)
        return times, comp["input_power"]

    def _components(self, times: np.ndarray) -> dict[str, np.ndarray]:
        """Compute every channel on the (node x time) grid, noiselessly
        joined with deterministic noise."""
        m = self.machine
        gpu_u, cpu_u, _ = self.allocation.utilization(self.nodes, times)
        n_nodes, n_times = gpu_u.shape
        # Absolute sample index per (node, time) cell for noise keys.
        p = m.power_sample_period_s
        k = np.round(times / p).astype(np.int64)
        idx = (
            self.nodes.astype(np.uint64)[:, None] * np.uint64(1 << 40)
            + k.astype(np.uint64)[None, :]
        )

        # One batched hash pass for every grid-shaped noise channel; row i
        # is bit-identical to normal_from_index(seed, tags[i], idx).
        tags = [1, 2, 3, 4, 5, 6, 7, 8, 9]
        for g in range(m.gpus_per_node):
            tags.extend((10 + g, 30 + g, 50 + g, 60 + g))
        noise_rows = normal_from_index_tags(
            self.seed, np.asarray(tags, dtype=np.uint64), idx
        )
        noise = {tag: noise_rows[i] for i, tag in enumerate(tags)}

        out: dict[str, np.ndarray] = {}
        cpu_pwr = (
            CPU_IDLE_W + cpu_u * (m.cpu_tdp_w - CPU_IDLE_W)
        ) * self._cpu_spread[:, None] * m.cpus_per_node
        cpu_pwr += MEASUREMENT_NOISE_W * noise[1]
        out["cpu_power"] = np.maximum(cpu_pwr, 0.0)

        mem_pwr = MEM_IDLE_W + MEM_ACTIVE_W * gpu_u
        mem_pwr += 0.5 * MEASUREMENT_NOISE_W * noise[2]
        out["mem_power"] = np.maximum(mem_pwr, 0.0)

        gpu_total = np.zeros_like(gpu_u)
        for g in range(m.gpus_per_node):
            # Per-GPU spread refines the per-node factor deterministically.
            spread = self._gpu_spread_cols[g]
            pwr = (GPU_IDLE_W + gpu_u * (m.gpu_tdp_w - GPU_IDLE_W)) * spread
            pwr += MEASUREMENT_NOISE_W * noise[10 + g]
            pwr = np.maximum(pwr, 0.0)
            out[f"gpu{g}_power"] = pwr
            gpu_total += pwr
            gpu_temp = (
                m.coolant_supply_c
                + GPU_THERMAL_R * pwr
                + TEMP_NOISE_C * noise[30 + g]
            )
            out[f"gpu{g}_temp"] = gpu_temp
            # HBM runs hotter than the die under memory-bound load.
            out[f"gpu{g}_hbm_temp"] = (
                gpu_temp
                + 6.0
                + 4.0 * gpu_u
                + TEMP_NOISE_C * noise[50 + g]
            )
            out[f"gpu{g}_util"] = np.clip(
                gpu_u + 0.01 * noise[60 + g],
                0.0,
                1.0,
            )

        overhead = m.node_idle_w - (
            CPU_IDLE_W * m.cpus_per_node
            + MEM_IDLE_W
            + GPU_IDLE_W * m.gpus_per_node
        )
        overhead = max(overhead, 0.0)
        it_power = out["cpu_power"] + out["mem_power"] + gpu_total + overhead
        input_power = it_power / POL_EFFICIENCY
        input_power += MEASUREMENT_NOISE_W * noise[3]
        out["input_power"] = np.minimum(np.maximum(input_power, 0.0), m.node_max_w)

        out["cpu_temp"] = (
            m.coolant_supply_c
            + CPU_THERMAL_R * out["cpu_power"] / max(m.cpus_per_node, 1)
            + TEMP_NOISE_C * noise[4]
        )
        out["coolant_return_temp"] = (
            m.coolant_supply_c
            + NODE_THERMAL_R * out["input_power"]
            + TEMP_NOISE_C * noise[5]
        )
        out["node_energy"] = out["input_power"] * m.power_sample_period_s
        fan_base = 4000.0 + 3000.0 * np.clip(
            out["input_power"] / m.node_max_w, 0.0, 1.0
        )
        out["fan0_speed"] = fan_base * (1.0 + 0.02 * noise[6])
        out["fan1_speed"] = fan_base * (1.0 + 0.02 * noise[7])
        out["ps0_voltage"] = 380.0 + 1.5 * noise[8]
        out["ps1_voltage"] = 380.0 + 1.5 * noise[9]
        return out

    def _sample_index(self, times: np.ndarray) -> np.ndarray:
        p = self.machine.power_sample_period_s
        k = np.round(times / p).astype(np.int64)
        return (
            self.nodes.astype(np.uint64)[:, None] * np.uint64(1 << 40)
            + k.astype(np.uint64)[None, :]
        )

    def emit(self, t0: float, t1: float) -> ObservationBatch:
        """Batched emission: one loss-mask pass over all channels, no sort."""
        self._check_window(t0, t1)
        times = self.sample_times(t0, t1)
        if times.size == 0 or self.nodes.size == 0:
            return ObservationBatch.empty()
        comp = self._components(times)
        idx = self._sample_index(times)

        # Channel order must match the reference path's part order (the
        # _components insertion order), not ascending sensor id.
        sids = np.array(
            [self._catalog.id_of(name) for name in comp], dtype=np.int64
        )
        values = np.stack(list(comp.values()))
        keep = (
            uniform_from_index_tags(
                self.seed, (1000 + sids).astype(np.uint64), idx
            )
            >= self.loss_rate
        )
        return assemble_sorted_batch(times, self.nodes, sids, values, keep)

    def emit_reference(self, t0: float, t1: float) -> ObservationBatch:
        self._check_window(t0, t1)
        times = self.sample_times(t0, t1)
        if times.size == 0 or self.nodes.size == 0:
            return ObservationBatch.empty()
        comp = self._components(times)
        n_nodes, n_times = self.nodes.size, times.size

        ts_grid = np.broadcast_to(times[None, :], (n_nodes, n_times))
        node_grid = np.broadcast_to(self.nodes[:, None], (n_nodes, n_times))
        idx = self._sample_index(times)

        parts: list[ObservationBatch] = []
        for sensor_name, grid in comp.items():
            sid = self._catalog.id_of(sensor_name)
            # Loss mask keyed by (sensor, sample) so drops are independent
            # across channels.
            keep = (
                uniform_from_index(self.seed, 1000 + sid, idx) >= self.loss_rate
            )
            n_keep = int(keep.sum())
            if n_keep == 0:
                continue
            parts.append(
                ObservationBatch(
                    timestamps=ts_grid[keep],
                    component_ids=node_grid[keep],
                    sensor_ids=np.full(n_keep, sid, dtype=np.int16),
                    values=grid[keep],
                )
            )
        return ObservationBatch.concat(parts).sorted_by_time()

    def nominal_bytes_per_day(self) -> float:
        """Raw volume/day for the emitted node subset."""
        per_node_rate = sum(
            s.sample_rate_hz * (1.0 - s.loss_rate) for s in self._catalog
        )
        return per_node_rate * self.nodes.size * RAW_OBSERVATION_BYTES * 86_400.0

    def fleet_bytes_per_day(self) -> float:
        """Raw volume/day extrapolated to the full machine."""
        if self.nodes.size == 0:
            return 0.0
        return self.nominal_bytes_per_day() * (
            self.machine.n_nodes / self.nodes.size
        )
