"""Interconnect (fabric) client counters.

The "Interconnect client" row of Fig. 3: per-node NIC injection/ejection
bandwidth and a congestion-stall fraction, at a 10-second cadence.
Traffic follows the running job's archetype ``net_intensity``; congestion
rises super-linearly with offered load, giving the downstream analyses a
signal that correlates across nodes of the same job — which is what the
UA dashboards exploit when diagnosing "slow job" tickets.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.jobs import AllocationTable
from repro.telemetry.machine import MachineConfig
from repro.telemetry.schema import (
    RAW_OBSERVATION_BYTES,
    ObservationBatch,
    SensorCatalog,
    SensorSpec,
)
from repro.telemetry.grid import assemble_sorted_batch
from repro.telemetry.sources import TelemetrySource
from repro.telemetry.workloads import get_archetype
from repro.util.noise import (
    normal_from_index,
    uniform_from_index,
    uniform_from_index_tags,
)

__all__ = ["InterconnectSource"]

#: NIC injection bandwidth (bytes/s) that net_intensity scales.
NIC_BPS = 25e9
SAMPLE_PERIOD_S = 10.0


def _net_lookup(allocation: AllocationTable) -> np.ndarray:
    max_id = max((j.job_id for j in allocation.jobs), default=0)
    table = np.zeros(max_id + 1)
    for j in allocation.jobs:
        table[j.job_id] = get_archetype(j.archetype).net_intensity
    return table


class InterconnectSource(TelemetrySource):
    """Deterministic per-node fabric counter stream."""

    name = "interconnect"

    def __init__(
        self,
        machine: MachineConfig,
        allocation: AllocationTable,
        seed: int = 0,
        nodes: np.ndarray | None = None,
        loss_rate: float = 0.005,
    ) -> None:
        self.machine = machine
        self.allocation = allocation
        self.seed = int(seed)
        self.loss_rate = float(loss_rate)
        if nodes is None:
            nodes = np.arange(machine.n_nodes, dtype=np.int32)
        self.nodes = np.asarray(nodes, dtype=np.int32)
        self._net = _net_lookup(allocation)
        self._catalog = SensorCatalog(
            [
                SensorSpec(
                    "nic_tx_bps", "B/s", SAMPLE_PERIOD_S, "node",
                    "NIC injection bandwidth", loss_rate,
                ),
                SensorSpec(
                    "nic_rx_bps", "B/s", SAMPLE_PERIOD_S, "node",
                    "NIC ejection bandwidth", loss_rate,
                ),
                SensorSpec(
                    "nic_stall_frac", "fraction", SAMPLE_PERIOD_S, "node",
                    "fraction of cycles stalled on fabric credits", loss_rate,
                ),
            ]
        )

    @property
    def catalog(self) -> SensorCatalog:
        return self._catalog

    def sample_times(self, t0: float, t1: float) -> np.ndarray:
        p = SAMPLE_PERIOD_S
        k0 = int(np.ceil(t0 / p - 1e-9))
        k1 = int(np.ceil(t1 / p - 1e-9))
        return np.arange(k0, k1, dtype=np.int64) * p

    def _channel_grids(
        self, times: np.ndarray
    ) -> tuple[np.ndarray, list[tuple[str, np.ndarray]]]:
        """(noise index, [(channel name, value grid), ...]) for a window."""
        gpu_u, _, jid = self.allocation.utilization(self.nodes, times)
        net = np.where(jid >= 0, self._net[np.maximum(jid, 0)], 0.0)
        # Offered load tracks compute phase (communication and compute
        # interleave), with mild noise.
        k = np.round(times / SAMPLE_PERIOD_S).astype(np.int64)
        idx = (
            self.nodes.astype(np.uint64)[:, None] * np.uint64(1 << 40)
            + k.astype(np.uint64)[None, :]
        )
        wobble = 1.0 + 0.15 * normal_from_index(self.seed, 70, idx)
        offered = np.clip(net * gpu_u * wobble, 0.0, 1.0)
        tx = offered * NIC_BPS
        rx = np.clip(offered * (1.0 + 0.1 * normal_from_index(self.seed, 71, idx)), 0, 1) * NIC_BPS
        # Congestion stalls grow super-linearly with offered load.
        stall = np.clip(offered**3 * 0.5, 0.0, 1.0)
        return idx, [
            ("nic_tx_bps", tx),
            ("nic_rx_bps", rx),
            ("nic_stall_frac", stall),
        ]

    def emit(self, t0: float, t1: float) -> ObservationBatch:
        """Batched emission: one loss-mask pass over all channels, no sort."""
        self._check_window(t0, t1)
        times = self.sample_times(t0, t1)
        if times.size == 0 or self.nodes.size == 0:
            return ObservationBatch.empty()
        idx, channels = self._channel_grids(times)
        sids = np.array(
            [self._catalog.id_of(name) for name, _ in channels], dtype=np.int64
        )
        values = np.stack([grid for _, grid in channels])
        keep = (
            uniform_from_index_tags(
                self.seed, (3000 + sids).astype(np.uint64), idx
            )
            >= self.loss_rate
        )
        return assemble_sorted_batch(times, self.nodes, sids, values, keep)

    def emit_reference(self, t0: float, t1: float) -> ObservationBatch:
        self._check_window(t0, t1)
        times = self.sample_times(t0, t1)
        if times.size == 0 or self.nodes.size == 0:
            return ObservationBatch.empty()
        idx, channels = self._channel_grids(times)
        (_, tx), (_, rx), (_, stall) = channels

        ts_grid = np.broadcast_to(times[None, :], idx.shape)
        node_grid = np.broadcast_to(self.nodes[:, None], idx.shape)
        parts: list[ObservationBatch] = []
        for sensor_name, grid in (
            ("nic_tx_bps", tx),
            ("nic_rx_bps", rx),
            ("nic_stall_frac", stall),
        ):
            sid = self._catalog.id_of(sensor_name)
            keep = uniform_from_index(self.seed, 3000 + sid, idx) >= self.loss_rate
            n_keep = int(keep.sum())
            if n_keep == 0:
                continue
            parts.append(
                ObservationBatch(
                    timestamps=ts_grid[keep],
                    component_ids=node_grid[keep],
                    sensor_ids=np.full(n_keep, sid, dtype=np.int16),
                    values=grid[keep],
                )
            )
        return ObservationBatch.concat(parts).sorted_by_time()

    def nominal_bytes_per_day(self) -> float:
        per_node = sum(
            s.sample_rate_hz * (1.0 - s.loss_rate) for s in self._catalog
        )
        return per_node * self.nodes.size * RAW_OBSERVATION_BYTES * 86_400.0

    def fleet_bytes_per_day(self) -> float:
        """Raw volume/day extrapolated to the full machine."""
        if self.nodes.size == 0:
            return 0.0
        return self.nominal_bytes_per_day() * (
            self.machine.n_nodes / self.nodes.size
        )
