"""Workload archetypes: parametric job behaviour models.

Every simulated job belongs to an archetype describing how it exercises the
machine over its lifetime: GPU/CPU utilization shape, I/O intensity, and
network intensity.  These shapes are what the paper's energy-efficiency
work clusters (Fig. 10 groups job *power profiles* by shape), so the
archetypes double as ground-truth labels for the classifier benches.

Profiles are pure vectorized functions of *relative* job time — given an
array of times, utilization comes back as an array — so power generation
for a whole window of a whole fleet is a single broadcasted expression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["WorkloadArchetype", "ARCHETYPES", "get_archetype", "archetype_names"]

ProfileFn = Callable[[np.ndarray, float], np.ndarray]


def _clip01(x: np.ndarray) -> np.ndarray:
    return np.clip(x, 0.0, 1.0)


def _hpl_profile(t_rel: np.ndarray, duration: float) -> np.ndarray:
    """HPL/benchmark shape: fast ramp, sustained near-peak, sharp tail.

    Mirrors the HPL run replayed in Fig. 11: a plateau at ~95% with a slow
    decay in the final 10% of the run as panels shrink.
    """
    ramp = _clip01(t_rel / (0.02 * duration + 1e-9))
    tail_start = 0.88 * duration
    tail = _clip01(1.0 - 0.6 * (t_rel - tail_start) / (0.12 * duration + 1e-9))
    tail = np.where(t_rel > tail_start, tail, 1.0)
    return _clip01(0.95 * ramp * tail)


def _ml_training_profile(t_rel: np.ndarray, duration: float) -> np.ndarray:
    """ML training: high plateau with periodic checkpoint dips."""
    period = max(duration / 12.0, 60.0)
    phase = (t_rel % period) / period
    dip = np.where(phase < 0.08, 0.35, 1.0)  # checkpoint stall
    ramp = _clip01(t_rel / 120.0)
    return _clip01(0.88 * ramp * dip)


def _climate_profile(t_rel: np.ndarray, duration: float) -> np.ndarray:
    """Climate/CFD: steady mid-high utilization with gentle oscillation."""
    osc = 0.06 * np.sin(2 * np.pi * t_rel / max(duration / 6.0, 300.0))
    return _clip01(0.70 + osc)


def _io_heavy_profile(t_rel: np.ndarray, duration: float) -> np.ndarray:
    """I/O-bound analysis: low compute with bursts between I/O phases."""
    period = max(duration / 8.0, 120.0)
    phase = (t_rel % period) / period
    return _clip01(np.where(phase < 0.4, 0.55, 0.15))


def _molecular_profile(t_rel: np.ndarray, duration: float) -> np.ndarray:
    """MD: sawtooth between neighbour-list rebuilds, upper-mid utilization."""
    period = max(duration / 20.0, 30.0)
    phase = (t_rel % period) / period
    return _clip01(0.60 + 0.25 * phase)


def _debug_profile(t_rel: np.ndarray, duration: float) -> np.ndarray:
    """Interactive/debug: mostly idle with sparse short spikes."""
    period = 300.0
    phase = (t_rel % period) / period
    return _clip01(np.where(phase < 0.05, 0.75, 0.08))


def _idle_profile(t_rel: np.ndarray, duration: float) -> np.ndarray:
    """Allocated but idle (the paper's wasted-allocation concern)."""
    return np.full_like(np.asarray(t_rel, dtype=np.float64), 0.02)


@dataclass(frozen=True)
class WorkloadArchetype:
    """A named job behaviour model.

    Attributes
    ----------
    name:
        Archetype label (ground truth for profile-classification benches).
    profile:
        ``profile(t_rel, duration) -> gpu_utilization in [0, 1]``.
    cpu_fraction:
        CPU utilization as a fraction of GPU utilization (captures
        CPU-heavy vs GPU-heavy codes).
    io_intensity:
        Mean filesystem bandwidth per node as a fraction of a reference
        10 GB/s client link.
    net_intensity:
        Mean injection bandwidth per node as a fraction of a 25 GB/s NIC.
    typical_nodes:
        (lo, hi) node-count range for the job-mix generator.
    typical_duration_s:
        (lo, hi) walltime range (seconds) for the job-mix generator.
    """

    name: str
    profile: ProfileFn
    cpu_fraction: float
    io_intensity: float
    net_intensity: float
    typical_nodes: tuple[int, int]
    typical_duration_s: tuple[float, float]

    def gpu_utilization(self, t_rel: np.ndarray, duration: float) -> np.ndarray:
        """Vectorized GPU utilization over relative job times."""
        return self.profile(np.asarray(t_rel, dtype=np.float64), duration)

    def cpu_utilization(self, t_rel: np.ndarray, duration: float) -> np.ndarray:
        """Vectorized CPU utilization (floor of 5% while the job runs)."""
        return _clip01(
            self.cpu_fraction * self.gpu_utilization(t_rel, duration) + 0.05
        )


ARCHETYPES: dict[str, WorkloadArchetype] = {
    a.name: a
    for a in [
        WorkloadArchetype(
            "hpl", _hpl_profile, 0.45, 0.02, 0.60, (64, 4096), (1800.0, 14400.0)
        ),
        WorkloadArchetype(
            "ml_training",
            _ml_training_profile,
            0.30,
            0.25,
            0.70,
            (8, 1024),
            (3600.0, 43200.0),
        ),
        WorkloadArchetype(
            "climate", _climate_profile, 0.55, 0.15, 0.45, (32, 2048), (7200.0, 43200.0)
        ),
        WorkloadArchetype(
            "io_heavy", _io_heavy_profile, 0.60, 0.80, 0.20, (4, 256), (1800.0, 14400.0)
        ),
        WorkloadArchetype(
            "molecular",
            _molecular_profile,
            0.40,
            0.05,
            0.35,
            (16, 512),
            (3600.0, 28800.0),
        ),
        WorkloadArchetype(
            "debug", _debug_profile, 0.80, 0.05, 0.05, (1, 8), (600.0, 3600.0)
        ),
        WorkloadArchetype(
            "idle", _idle_profile, 1.00, 0.00, 0.01, (1, 64), (1800.0, 7200.0)
        ),
    ]
}


def get_archetype(name: str) -> WorkloadArchetype:
    """Look up an archetype by name (ValueError with candidates if unknown)."""
    try:
        return ARCHETYPES[name]
    except KeyError:
        raise ValueError(
            f"unknown archetype {name!r}; known: {sorted(ARCHETYPES)}"
        ) from None


def archetype_names() -> list[str]:
    """All archetype names, sorted."""
    return sorted(ARCHETYPES)
