"""Facility (central energy plant) telemetry.

The "Facility" row of Fig. 3 and the right panel of Fig. 8: the cooling
plant reports supply/return water temperatures, flow, pump and tower
powers, and outdoor conditions at a 10-second cadence.  The plant responds
to total IT load — supplied as a callable so the source composes with
either live fleet power or a replayed trace (the ExaDigiT coupling in
Fig. 11).

The steady-state plant model used for the *telemetry* stream is simple
(energy balance + affine device curves); the digital twin
(:mod:`repro.twin.cooling`) carries the transient thermo-fluidic model.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.telemetry.machine import MachineConfig
from repro.telemetry.schema import (
    RAW_OBSERVATION_BYTES,
    ObservationBatch,
    SensorCatalog,
    SensorSpec,
)
from repro.telemetry.sources import TelemetrySource
from repro.util.noise import normal_from_index

__all__ = ["FacilitySource", "WATER_HEAT_CAPACITY"]

SAMPLE_PERIOD_S = 10.0
#: J/(kg*K) specific heat of water.
WATER_HEAT_CAPACITY = 4186.0
#: Design flow: kg/s of facility water per MW of design IT load.
FLOW_KG_S_PER_MW = 30.0
#: Pump power as a fraction of design IT power at full flow (cubic law).
PUMP_FRACTION = 0.015
#: Cooling-tower fan power fraction at design heat rejection.
TOWER_FRACTION = 0.01


class FacilitySource(TelemetrySource):
    """Deterministic cooling-plant sensor stream driven by IT power.

    Parameters
    ----------
    it_power_w:
        Callable mapping an array of times to total IT power (watts).
    """

    name = "facility"

    def __init__(
        self,
        machine: MachineConfig,
        it_power_w: Callable[[np.ndarray], np.ndarray],
        seed: int = 0,
    ) -> None:
        self.machine = machine
        self.it_power_w = it_power_w
        self.seed = int(seed)
        self._catalog = SensorCatalog(
            [
                SensorSpec("supply_temp_c", "degC", SAMPLE_PERIOD_S, "plant",
                           "facility water supply temperature"),
                SensorSpec("return_temp_c", "degC", SAMPLE_PERIOD_S, "plant",
                           "facility water return temperature"),
                SensorSpec("flow_kg_s", "kg/s", SAMPLE_PERIOD_S, "plant",
                           "facility water mass flow"),
                SensorSpec("pump_power_w", "W", SAMPLE_PERIOD_S, "plant",
                           "circulation pump electrical power"),
                SensorSpec("tower_power_w", "W", SAMPLE_PERIOD_S, "plant",
                           "cooling tower fan electrical power"),
                SensorSpec("outdoor_temp_c", "degC", SAMPLE_PERIOD_S, "plant",
                           "outdoor dry-bulb temperature"),
                SensorSpec("it_power_w", "W", SAMPLE_PERIOD_S, "plant",
                           "total IT electrical power (metered)"),
            ]
        )

    @property
    def catalog(self) -> SensorCatalog:
        return self._catalog

    def sample_times(self, t0: float, t1: float) -> np.ndarray:
        p = SAMPLE_PERIOD_S
        k0 = int(np.ceil(t0 / p - 1e-9))
        k1 = int(np.ceil(t1 / p - 1e-9))
        return np.arange(k0, k1, dtype=np.int64) * p

    def outdoor_temp(self, times: np.ndarray) -> np.ndarray:
        """Diurnal outdoor temperature (deterministic, smooth)."""
        day_phase = 2 * np.pi * (np.asarray(times) % 86_400.0) / 86_400.0
        return 18.0 + 8.0 * np.sin(day_phase - np.pi / 2)

    def plant_state(self, times: np.ndarray) -> dict[str, np.ndarray]:
        """All plant channels on a time grid (noise-free physics + noise)."""
        times = np.asarray(times, dtype=np.float64)
        it_w = np.asarray(self.it_power_w(times), dtype=np.float64)
        design_w = self.machine.peak_it_power_w
        design_mw = design_w / 1e6

        # Flow modulates with load between 40% and 100% of design flow.
        load_frac = np.clip(it_w / max(design_w, 1.0), 0.0, 1.2)
        flow = FLOW_KG_S_PER_MW * design_mw * np.clip(0.4 + 0.6 * load_frac, 0.4, 1.0)
        supply = np.full_like(times, self.machine.coolant_supply_c, dtype=np.float64)
        # Energy balance: dT = Q / (m_dot * c_p).
        dt = it_w / np.maximum(flow * WATER_HEAT_CAPACITY, 1e-9)
        ret = supply + dt
        # Pump power follows the cube of relative flow.
        rel_flow = flow / (FLOW_KG_S_PER_MW * design_mw)
        pump = PUMP_FRACTION * design_w * rel_flow**3
        # Tower fans work harder when it is hot outside.
        outdoor = self.outdoor_temp(times)
        approach_penalty = np.clip(1.0 + (outdoor - 18.0) / 25.0, 0.5, 2.0)
        tower = TOWER_FRACTION * it_w * approach_penalty

        k = np.round(times / SAMPLE_PERIOD_S).astype(np.uint64)
        return {
            "supply_temp_c": supply
            + 0.1 * normal_from_index(self.seed, 80, k),
            "return_temp_c": ret + 0.1 * normal_from_index(self.seed, 81, k),
            "flow_kg_s": flow * (1 + 0.01 * normal_from_index(self.seed, 82, k)),
            "pump_power_w": pump
            * (1 + 0.02 * normal_from_index(self.seed, 83, k)),
            "tower_power_w": tower
            * (1 + 0.02 * normal_from_index(self.seed, 84, k)),
            "outdoor_temp_c": outdoor
            + 0.2 * normal_from_index(self.seed, 85, k),
            "it_power_w": it_w * (1 + 0.005 * normal_from_index(self.seed, 86, k)),
        }

    def emit(self, t0: float, t1: float) -> ObservationBatch:
        self._check_window(t0, t1)
        times = self.sample_times(t0, t1)
        if times.size == 0:
            return ObservationBatch.empty()
        state = self.plant_state(times)
        parts = []
        for sensor_name, series in state.items():
            sid = self._catalog.id_of(sensor_name)
            parts.append(
                ObservationBatch(
                    timestamps=times.astype(np.float64),
                    component_ids=np.zeros(times.size, dtype=np.int32),
                    sensor_ids=np.full(times.size, sid, dtype=np.int16),
                    values=series,
                )
            )
        return ObservationBatch.concat(parts).sorted_by_time()

    def nominal_bytes_per_day(self) -> float:
        per_plant = sum(s.sample_rate_hz for s in self._catalog)
        return per_plant * RAW_OBSERVATION_BYTES * 86_400.0

    def fleet_bytes_per_day(self) -> float:
        """Plant streams do not scale with node count."""
        return self.nominal_bytes_per_day()
