"""Parallel-filesystem (Lustre-style) client counters.

The "Storage client" row of Fig. 3: each compute node reports read/write
bandwidth and metadata-operation counters at a 10-second cadence.  Traffic
is driven by the running job's archetype ``io_intensity`` with heavy-tailed
(lognormal) burstiness — checkpoint storms are what make this stream hard
to summarize, which is exactly the Bronze->Silver pressure the paper
describes.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.jobs import AllocationTable
from repro.telemetry.machine import MachineConfig
from repro.telemetry.schema import (
    RAW_OBSERVATION_BYTES,
    ObservationBatch,
    SensorCatalog,
    SensorSpec,
)
from repro.telemetry.grid import assemble_sorted_batch
from repro.telemetry.sources import TelemetrySource
from repro.telemetry.workloads import get_archetype
from repro.util.noise import (
    normal_from_index,
    uniform_from_index,
    uniform_from_index_tags,
)

__all__ = ["StorageIOSource"]

#: Reference client link bandwidth (bytes/s) that io_intensity scales.
CLIENT_LINK_BPS = 10e9
SAMPLE_PERIOD_S = 10.0
#: Lognormal burstiness of I/O bandwidth.
BURST_SIGMA = 1.2
#: Fraction of job I/O that is writes (checkpoint-dominated).
WRITE_FRACTION = 0.7


def _intensity_lookup(allocation: AllocationTable) -> np.ndarray:
    """Dense job_id -> io_intensity array (index -1 unused; 0.0 if idle)."""
    max_id = max((j.job_id for j in allocation.jobs), default=0)
    table = np.zeros(max_id + 1)
    for j in allocation.jobs:
        table[j.job_id] = get_archetype(j.archetype).io_intensity
    return table


class StorageIOSource(TelemetrySource):
    """Deterministic per-node filesystem-client counter stream."""

    name = "storage_io"

    def __init__(
        self,
        machine: MachineConfig,
        allocation: AllocationTable,
        seed: int = 0,
        nodes: np.ndarray | None = None,
        loss_rate: float = 0.005,
    ) -> None:
        self.machine = machine
        self.allocation = allocation
        self.seed = int(seed)
        self.loss_rate = float(loss_rate)
        if nodes is None:
            nodes = np.arange(machine.n_nodes, dtype=np.int32)
        self.nodes = np.asarray(nodes, dtype=np.int32)
        self._intensity = _intensity_lookup(allocation)
        self._catalog = SensorCatalog(
            [
                SensorSpec(
                    "fs_read_bps", "B/s", SAMPLE_PERIOD_S, "node",
                    "filesystem client read bandwidth", loss_rate,
                ),
                SensorSpec(
                    "fs_write_bps", "B/s", SAMPLE_PERIOD_S, "node",
                    "filesystem client write bandwidth", loss_rate,
                ),
                SensorSpec(
                    "fs_metadata_ops", "ops/s", SAMPLE_PERIOD_S, "node",
                    "metadata operations per second", loss_rate,
                ),
            ]
        )

    @property
    def catalog(self) -> SensorCatalog:
        return self._catalog

    def sample_times(self, t0: float, t1: float) -> np.ndarray:
        p = SAMPLE_PERIOD_S
        k0 = int(np.ceil(t0 / p - 1e-9))
        k1 = int(np.ceil(t1 / p - 1e-9))
        return np.arange(k0, k1, dtype=np.int64) * p

    def _channel_grids(
        self, times: np.ndarray
    ) -> tuple[np.ndarray, list[tuple[str, np.ndarray]]]:
        """(noise index, [(channel name, value grid), ...]) for a window."""
        _, _, jid = self.allocation.utilization(self.nodes, times)
        intensity = np.where(jid >= 0, self._intensity[np.maximum(jid, 0)], 0.0)

        k = np.round(times / SAMPLE_PERIOD_S).astype(np.int64)
        idx = (
            self.nodes.astype(np.uint64)[:, None] * np.uint64(1 << 40)
            + k.astype(np.uint64)[None, :]
        )
        burst = np.exp(
            BURST_SIGMA * normal_from_index(self.seed, 60, idx)
            - 0.5 * BURST_SIGMA**2  # mean-one lognormal
        )
        total_bps = intensity * CLIENT_LINK_BPS * burst
        write_bps = total_bps * WRITE_FRACTION
        read_bps = total_bps - write_bps
        # Metadata ops track bandwidth weakly, plus a floor of stat traffic.
        md_ops = 2.0 + total_bps / 50e6
        return idx, [
            ("fs_read_bps", read_bps),
            ("fs_write_bps", write_bps),
            ("fs_metadata_ops", md_ops),
        ]

    def emit(self, t0: float, t1: float) -> ObservationBatch:
        """Batched emission: one loss-mask pass over all channels, no sort."""
        self._check_window(t0, t1)
        times = self.sample_times(t0, t1)
        if times.size == 0 or self.nodes.size == 0:
            return ObservationBatch.empty()
        idx, channels = self._channel_grids(times)
        sids = np.array(
            [self._catalog.id_of(name) for name, _ in channels], dtype=np.int64
        )
        values = np.stack([grid for _, grid in channels])
        keep = (
            uniform_from_index_tags(
                self.seed, (2000 + sids).astype(np.uint64), idx
            )
            >= self.loss_rate
        )
        return assemble_sorted_batch(times, self.nodes, sids, values, keep)

    def emit_reference(self, t0: float, t1: float) -> ObservationBatch:
        self._check_window(t0, t1)
        times = self.sample_times(t0, t1)
        if times.size == 0 or self.nodes.size == 0:
            return ObservationBatch.empty()
        idx, channels = self._channel_grids(times)
        (_, read_bps), (_, write_bps), (_, md_ops) = channels

        ts_grid = np.broadcast_to(times[None, :], idx.shape)
        node_grid = np.broadcast_to(self.nodes[:, None], idx.shape)
        parts: list[ObservationBatch] = []
        for sensor_name, grid in (
            ("fs_read_bps", read_bps),
            ("fs_write_bps", write_bps),
            ("fs_metadata_ops", md_ops),
        ):
            sid = self._catalog.id_of(sensor_name)
            keep = uniform_from_index(self.seed, 2000 + sid, idx) >= self.loss_rate
            n_keep = int(keep.sum())
            if n_keep == 0:
                continue
            parts.append(
                ObservationBatch(
                    timestamps=ts_grid[keep],
                    component_ids=node_grid[keep],
                    sensor_ids=np.full(n_keep, sid, dtype=np.int16),
                    values=grid[keep],
                )
            )
        return ObservationBatch.concat(parts).sorted_by_time()

    def nominal_bytes_per_day(self) -> float:
        per_node = sum(
            s.sample_rate_hz * (1.0 - s.loss_rate) for s in self._catalog
        )
        return per_node * self.nodes.size * RAW_OBSERVATION_BYTES * 86_400.0

    def fleet_bytes_per_day(self) -> float:
        """Raw volume/day extrapolated to the full machine."""
        if self.nodes.size == 0:
            return 0.0
        return self.nominal_bytes_per_day() * (
            self.machine.n_nodes / self.nodes.size
        )
