"""Synthetic HPC telemetry substrate.

This package stands in for the instrumented OLCF data centre described in
the paper (Summit/Frontier, anonymized "Mountain"/"Compass" in Fig. 3).  It
generates the raw multi-terabyte-per-day data streams that feed the ODA
framework:

* per-component power and thermal sensors (:mod:`repro.telemetry.power`),
* job allocation traces (:mod:`repro.telemetry.jobs`),
* syslog/event streams (:mod:`repro.telemetry.syslog`),
* parallel-filesystem client counters (:mod:`repro.telemetry.storage_io`),
* interconnect counters (:mod:`repro.telemetry.interconnect`),
* facility/cooling-plant sensors (:mod:`repro.telemetry.facility`).

All sources are deterministic functions of a root seed and virtual time, so
any window of any stream can be regenerated independently — the property
that makes telemetry *replay* (Fig. 11) possible.

The substitution rationale (DESIGN.md §2): we cannot ship OLCF telemetry,
but the pipeline stresses reproduced here — stream volume ordering, sample
rate heterogeneity, skew, burstiness, and sensor loss — are properties of
the generators, not of the specific machine.
"""

from repro.telemetry.schema import (
    EventBatch,
    ObservationBatch,
    SensorCatalog,
    SensorSpec,
)
from repro.telemetry.machine import (
    COMPASS,
    MINI,
    MOUNTAIN,
    MachineConfig,
)
from repro.telemetry.workloads import (
    ARCHETYPES,
    WorkloadArchetype,
    archetype_names,
    get_archetype,
)
from repro.telemetry.jobs import AllocationTable, JobSpec, synthetic_job_mix
from repro.telemetry.sources import TelemetrySource
from repro.telemetry.collection import (
    CollectionPath,
    CollectionProfile,
    IN_BAND,
    OUT_OF_BAND,
    plan_collection,
)
from repro.telemetry.darshan import DarshanCollector, DarshanRecord
from repro.telemetry.perf import PerfCounterSource
from repro.telemetry.power import PowerThermalSource
from repro.telemetry.syslog import SyslogSource
from repro.telemetry.storage_io import StorageIOSource
from repro.telemetry.interconnect import InterconnectSource
from repro.telemetry.facility import FacilitySource
from repro.telemetry.fleet import FleetTelemetry, StreamVolume

__all__ = [
    "SensorSpec",
    "SensorCatalog",
    "ObservationBatch",
    "EventBatch",
    "MachineConfig",
    "COMPASS",
    "MOUNTAIN",
    "MINI",
    "WorkloadArchetype",
    "ARCHETYPES",
    "archetype_names",
    "get_archetype",
    "JobSpec",
    "AllocationTable",
    "synthetic_job_mix",
    "TelemetrySource",
    "CollectionPath",
    "CollectionProfile",
    "IN_BAND",
    "OUT_OF_BAND",
    "plan_collection",
    "DarshanCollector",
    "DarshanRecord",
    "PowerThermalSource",
    "PerfCounterSource",
    "SyslogSource",
    "StorageIOSource",
    "InterconnectSource",
    "FacilitySource",
    "FleetTelemetry",
    "StreamVolume",
]
