"""Job traces and node-allocation lookup.

The resource-manager stream is the contextualization backbone of the whole
framework: the paper's Silver stage joins every other stream against job
allocation logs ("integrated with additional datasets (such as job
allocation logs) for contextualization", §V-A).  This module provides

* :class:`JobSpec` — one scheduled job (who, where, when, what archetype),
* :class:`AllocationTable` — a vectorized (node, time) -> job/utilization
  oracle used by the power, I/O, and interconnect generators,
* :func:`synthetic_job_mix` — a quick greedy job-mix generator for tests
  and telemetry-only runs (the full discrete-event scheduler lives in
  :mod:`repro.scheduler`).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.telemetry.machine import MachineConfig
from repro.telemetry.workloads import ARCHETYPES, get_archetype

__all__ = [
    "JobSpec",
    "AllocationTable",
    "synthetic_job_mix",
    "utilization_memo_disabled",
]

# Within one ingest window the same (nodes, times) utilization grid is
# requested several times — by each emitting source sharing a sample
# period and by each refinery's Silver join on the same bucket grid.
# The oracle is a pure function of its (immutable) job set, so repeated
# grids are served from a small per-table LRU of read-only arrays.
_util_memo_enabled = True
_util_toggle_lock = threading.Lock()
#: Toggle depth counter: ``_util_memo_enabled`` is maintained from this
#: under ``_util_toggle_lock`` so overlapping toggles cannot restore a
#: stale value (see PerfRegistry.disabled for the pattern).
_util_disable_depth = 0


@contextmanager
def utilization_memo_disabled():
    """Context manager that bypasses the utilization memo (baselines).
    Overlap-safe via a lock-guarded depth counter."""
    global _util_disable_depth, _util_memo_enabled
    with _util_toggle_lock:
        _util_disable_depth += 1
        _util_memo_enabled = False
    try:
        yield
    finally:
        with _util_toggle_lock:
            _util_disable_depth -= 1
            _util_memo_enabled = _util_disable_depth == 0


@dataclass(frozen=True)
class JobSpec:
    """One job as recorded by the resource manager.

    ``nodes`` is the sorted array of node ids allocated for the job's whole
    lifetime (no malleability, matching leadership-class batch jobs).
    """

    job_id: int
    user: str
    project: str
    archetype: str
    nodes: np.ndarray
    start: float
    end: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "nodes", np.unique(np.asarray(self.nodes, dtype=np.int32))
        )
        if self.end <= self.start:
            raise ValueError(f"job {self.job_id}: end must be after start")
        if self.nodes.size == 0:
            raise ValueError(f"job {self.job_id}: empty node list")
        if self.archetype not in ARCHETYPES:
            raise ValueError(f"job {self.job_id}: unknown archetype {self.archetype!r}")

    @property
    def duration(self) -> float:
        """Walltime in seconds."""
        return self.end - self.start

    @property
    def n_nodes(self) -> int:
        """Allocated node count."""
        return int(self.nodes.size)

    @property
    def node_seconds(self) -> float:
        """Node-seconds consumed (the accounting unit behind node-hours)."""
        return self.n_nodes * self.duration

    def overlaps(self, t0: float, t1: float) -> bool:
        """True if the job runs at any point in ``[t0, t1)``."""
        return self.start < t1 and self.end > t0


class AllocationTable:
    """Time-indexed view over a set of jobs with vectorized lookups.

    Jobs on a leadership system never share nodes, and the generators rely
    on that: construction rejects overlapping allocations on the same node.
    """

    def __init__(self, jobs: list[JobSpec]) -> None:
        self._jobs = sorted(jobs, key=lambda j: (j.start, j.job_id))
        self._by_id = {j.job_id: j for j in self._jobs}
        if len(self._by_id) != len(self._jobs):
            raise ValueError("duplicate job ids")
        self._starts = np.array([j.start for j in self._jobs])
        self._ends = np.array([j.end for j in self._jobs])
        self._check_no_node_conflicts()
        self._util_memo: OrderedDict[
            tuple, tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = OrderedDict()
        self._util_memo_max = 16
        # The memo is shared by emitting sources and refine workers which
        # may run on different threads (and, with pipelined windows, by
        # the emit-prefetch thread); all OrderedDict mutation sits under
        # this lock.  The cached arrays themselves are read-only.
        self._util_lock = threading.Lock()

    def _check_no_node_conflicts(self) -> None:
        per_node: dict[int, list[tuple[float, float, int]]] = {}
        for j in self._jobs:
            for node in j.nodes.tolist():
                per_node.setdefault(node, []).append((j.start, j.end, j.job_id))
        for node, ivals in per_node.items():
            ivals.sort()
            for (s0, e0, id0), (s1, e1, id1) in zip(ivals, ivals[1:]):
                if s1 < e0:
                    raise ValueError(
                        f"jobs {id0} and {id1} overlap on node {node}"
                    )

    @property
    def jobs(self) -> list[JobSpec]:
        """All jobs, sorted by start time."""
        return list(self._jobs)

    def __len__(self) -> int:
        return len(self._jobs)

    def job(self, job_id: int) -> JobSpec:
        """Job by id (KeyError if unknown)."""
        return self._by_id[job_id]

    def jobs_overlapping(self, t0: float, t1: float) -> list[JobSpec]:
        """Jobs active at any point within ``[t0, t1)``."""
        mask = (self._starts < t1) & (self._ends > t0)
        return [j for j, m in zip(self._jobs, mask) if m]

    def job_at(self, node_id: int, t: float) -> JobSpec | None:
        """The job occupying ``node_id`` at time ``t``, if any."""
        for j in self.jobs_overlapping(t, np.nextafter(t, np.inf)):
            if node_id in j.nodes:
                return j
        return None

    def utilization(
        self, node_ids: np.ndarray, times: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fleet utilization on a (node x time) grid.

        Returns ``(gpu_util, cpu_util, job_ids)`` each of shape
        ``(len(node_ids), len(times))``; ``job_ids`` is -1 where idle.
        The loop is per *job* (tens), never per sample (millions).
        """
        node_ids = np.asarray(node_ids, dtype=np.int32)
        times = np.asarray(times, dtype=np.float64)
        key = None
        if _util_memo_enabled and node_ids.size and times.size:
            key = (
                hashlib.blake2b(
                    np.ascontiguousarray(node_ids), digest_size=16
                ).digest(),
                hashlib.blake2b(
                    np.ascontiguousarray(times), digest_size=16
                ).digest(),
            )
            with self._util_lock:
                hit = self._util_memo.get(key)
                if hit is not None:
                    self._util_memo.move_to_end(key)
                    return hit
        gpu = np.zeros((node_ids.size, times.size))
        cpu = np.zeros_like(gpu)
        jid = np.full(gpu.shape, -1, dtype=np.int64)
        if times.size == 0 or node_ids.size == 0:
            return gpu, cpu, jid
        node_pos = {int(n): i for i, n in enumerate(node_ids)}
        for job in self.jobs_overlapping(times.min(), float(times.max()) + 1e-9):
            rows = [node_pos[n] for n in job.nodes.tolist() if n in node_pos]
            if not rows:
                continue
            tmask = (times >= job.start) & (times < job.end)
            if not tmask.any():
                continue
            arch = get_archetype(job.archetype)
            t_rel = times[tmask] - job.start
            g = arch.gpu_utilization(t_rel, job.duration)
            c = arch.cpu_utilization(t_rel, job.duration)
            rows = np.asarray(rows)[:, None]
            cols = np.flatnonzero(tmask)[None, :]
            gpu[rows, cols] = g[None, :]
            cpu[rows, cols] = c[None, :]
            jid[rows, cols] = job.job_id
        if key is not None:
            for a in (gpu, cpu, jid):
                a.setflags(write=False)
            with self._util_lock:
                self._util_memo[key] = (gpu, cpu, jid)
                while len(self._util_memo) > self._util_memo_max:
                    self._util_memo.popitem(last=False)
        return gpu, cpu, jid

    def log_records(self) -> list[dict]:
        """Resource-manager log lines (one dict per job) for ingestion."""
        return [
            {
                "job_id": j.job_id,
                "user": j.user,
                "project": j.project,
                "archetype": j.archetype,
                "n_nodes": j.n_nodes,
                "node_list": j.nodes.tolist(),
                "start": j.start,
                "end": j.end,
            }
            for j in self._jobs
        ]


def synthetic_job_mix(
    machine: MachineConfig,
    t_start: float,
    t_end: float,
    rng: np.random.Generator,
    mix: dict[str, float] | None = None,
    utilization_target: float = 0.85,
    users: int = 24,
    projects: int = 8,
    max_job_fraction: float = 0.5,
) -> AllocationTable:
    """Generate a conflict-free job mix filling ``[t_start, t_end)``.

    A greedy packer: each job takes the nodes that free up earliest, so the
    machine stays near ``utilization_target`` without any two jobs sharing
    a node.  Durations/node counts are drawn from each archetype's typical
    ranges, scaled down to fit small test fleets.

    Parameters
    ----------
    mix:
        Archetype -> weight.  Defaults to a leadership-facility-like blend
        dominated by simulation and ML codes.
    """
    if mix is None:
        mix = {
            "climate": 0.28,
            "molecular": 0.22,
            "ml_training": 0.20,
            "io_heavy": 0.12,
            "hpl": 0.04,
            "debug": 0.10,
            "idle": 0.04,
        }
    names = sorted(mix)
    weights = np.array([mix[n] for n in names], dtype=np.float64)
    if (weights < 0).any() or weights.sum() <= 0:
        raise ValueError("mix weights must be non-negative and sum > 0")
    weights = weights / weights.sum()

    horizon = t_end - t_start
    if horizon <= 0:
        raise ValueError("t_end must be after t_start")

    node_free = np.full(machine.n_nodes, t_start)
    jobs: list[JobSpec] = []
    job_id = 1
    # Cap attempts so degenerate parameters terminate.
    for _ in range(machine.n_nodes * 64):
        arch = get_archetype(names[int(rng.choice(len(names), p=weights))])
        lo_n, hi_n = arch.typical_nodes
        # Cap width so one job never books the whole (possibly tiny) fleet.
        cap = max(1, int(np.ceil(machine.n_nodes * max_job_fraction)))
        hi_n = min(hi_n, cap)
        lo_n = min(lo_n, hi_n)
        n_nodes = int(rng.integers(lo_n, hi_n + 1))
        lo_d, hi_d = arch.typical_duration_s
        duration = min(float(rng.uniform(lo_d, hi_d)), horizon)
        # Take the nodes that become free soonest.
        order = np.argsort(node_free, kind="stable")
        chosen = order[:n_nodes]
        start = float(max(node_free[chosen].max(), t_start))
        if start >= t_end:
            # Whole fleet is booked past the horizon; stop.
            if node_free.min() >= t_end:
                break
            continue
        end = min(start + duration, t_end + duration)  # jobs may straddle t_end
        jobs.append(
            JobSpec(
                job_id=job_id,
                user=f"user{int(rng.integers(users)):03d}",
                project=f"PRJ{int(rng.integers(projects)):03d}",
                archetype=arch.name,
                nodes=chosen,
                start=start,
                end=end,
            )
        )
        # Scheduling gap (scheduler/epilogue overhead) keeps steady-state
        # utilization just under the target without delaying first jobs.
        gap = duration * (1.0 - utilization_target) / max(
            utilization_target, 1e-6
        )
        node_free[chosen] = end + gap
        job_id += 1
        if node_free.min() >= t_end:
            break
    return AllocationTable(jobs)
