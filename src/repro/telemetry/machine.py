"""Machine configurations for the simulated data centre.

The paper spans two supercomputer generations, anonymized as "Mountain"
(Summit-class: IBM AC922, 2 CPUs + 6 GPUs per node, water-cooled) and
"Compass" (Frontier-class: HPE Cray EX, 1 CPU + 4 GPUs per node, 100%
direct liquid cooled) in Fig. 3.  A :class:`MachineConfig` carries the
fleet geometry and electrical envelope that the telemetry generators, the
scheduler, and the digital twin all share.

``MINI`` is a deliberately tiny configuration used by tests and examples so
that full end-to-end runs finish in milliseconds; volume benches use the
full-scale configs for *extrapolation only* (per-node rates are measured on
a sampled subset of nodes).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineConfig", "COMPASS", "MOUNTAIN", "MINI"]


@dataclass(frozen=True)
class MachineConfig:
    """Geometry and power envelope of one supercomputer.

    Attributes
    ----------
    name:
        Machine name ("compass" is the Frontier-class system).
    n_cabinets, nodes_per_cabinet:
        Fleet geometry; ``n_nodes = n_cabinets * nodes_per_cabinet``.
    gpus_per_node, cpus_per_node:
        Accelerator/CPU counts per node.
    cpu_tdp_w, gpu_tdp_w:
        Per-device thermal design power (watts).
    node_idle_w:
        Node power at idle (fans, memory, NIC, idle devices).
    node_max_w:
        Electrical ceiling per node.
    power_sample_period_s:
        Native cadence of the per-component power/thermal stream.
    coolant_supply_c:
        Facility coolant supply temperature (deg C) feeding the cabinets.
    """

    name: str
    n_cabinets: int
    nodes_per_cabinet: int
    gpus_per_node: int
    cpus_per_node: int
    cpu_tdp_w: float
    gpu_tdp_w: float
    node_idle_w: float
    node_max_w: float
    power_sample_period_s: float = 1.0
    coolant_supply_c: float = 32.0

    def __post_init__(self) -> None:
        if self.n_cabinets <= 0 or self.nodes_per_cabinet <= 0:
            raise ValueError("fleet geometry must be positive")
        if self.node_max_w <= self.node_idle_w:
            raise ValueError("node_max_w must exceed node_idle_w")

    @property
    def n_nodes(self) -> int:
        """Total compute nodes in the fleet."""
        return self.n_cabinets * self.nodes_per_cabinet

    @property
    def n_gpus(self) -> int:
        """Total GPUs in the fleet."""
        return self.n_nodes * self.gpus_per_node

    @property
    def peak_it_power_w(self) -> float:
        """Upper bound on IT (compute) power draw."""
        return self.n_nodes * self.node_max_w

    def cabinet_of(self, node_id: int) -> int:
        """Cabinet index housing ``node_id``."""
        if not 0 <= node_id < self.n_nodes:
            raise ValueError(f"node_id {node_id} out of range")
        return node_id // self.nodes_per_cabinet

    def scaled(self, n_nodes: int) -> "MachineConfig":
        """A copy of this config shrunk/grown to ``n_nodes`` total nodes.

        Keeps per-node characteristics; adjusts cabinet count (one cabinet
        minimum).  Used to run full-fidelity pipelines on laptop-sized
        fleets while extrapolating volumes to the real machine.
        """
        per_cab = min(self.nodes_per_cabinet, n_nodes)
        n_cab = max(1, -(-n_nodes // per_cab))  # ceil division
        return MachineConfig(
            name=self.name,
            n_cabinets=n_cab,
            nodes_per_cabinet=per_cab,
            gpus_per_node=self.gpus_per_node,
            cpus_per_node=self.cpus_per_node,
            cpu_tdp_w=self.cpu_tdp_w,
            gpu_tdp_w=self.gpu_tdp_w,
            node_idle_w=self.node_idle_w,
            node_max_w=self.node_max_w,
            power_sample_period_s=self.power_sample_period_s,
            coolant_supply_c=self.coolant_supply_c,
        )


#: Frontier-class exascale system ("Compass" in the paper's Fig. 3).
COMPASS = MachineConfig(
    name="compass",
    n_cabinets=74,
    nodes_per_cabinet=128,  # 9472 nodes
    gpus_per_node=4,
    cpus_per_node=1,
    cpu_tdp_w=280.0,
    gpu_tdp_w=560.0,
    node_idle_w=650.0,
    node_max_w=3400.0,
    power_sample_period_s=1.0,
    coolant_supply_c=32.0,
)

#: Summit-class pre-exascale system ("Mountain" in the paper's Fig. 3).
MOUNTAIN = MachineConfig(
    name="mountain",
    n_cabinets=256,
    nodes_per_cabinet=18,  # 4608 nodes
    gpus_per_node=6,
    cpus_per_node=2,
    cpu_tdp_w=190.0,
    gpu_tdp_w=300.0,
    node_idle_w=500.0,
    node_max_w=2700.0,
    power_sample_period_s=1.0,
    coolant_supply_c=21.0,
)

#: Tiny fleet for tests and examples (2 cabinets x 8 nodes = 16 nodes).
MINI = MachineConfig(
    name="mini",
    n_cabinets=2,
    nodes_per_cabinet=8,
    gpus_per_node=4,
    cpus_per_node=1,
    cpu_tdp_w=280.0,
    gpu_tdp_w=560.0,
    node_idle_w=650.0,
    node_max_w=3400.0,
    power_sample_period_s=1.0,
    coolant_supply_c=32.0,
)
