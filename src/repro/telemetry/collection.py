"""Collection-path modelling: in-band vs out-of-band (§IV-B).

"New approaches such as fully leveraging the out-of-band data sources
via the management network ... ha[ve] been successfully employed" to
collect telemetry "too invasive to the system" in-band.

The trade-off modelled here:

* **in-band** — an agent on the compute node samples directly: no rate
  ceiling and low loss, but every sample steals CPU from the
  application (overhead grows with sample rate), which is what makes
  high-rate in-band collection unacceptable on a leadership system;
* **out-of-band** — the BMC samples and ships via the management
  network: zero application overhead, but the path caps the rate
  (BMC/management-network bandwidth) and loses more samples.

:func:`plan_collection` chooses the cheapest path meeting an overhead
budget — the decision §IV-B describes SMEs making per stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "CollectionPath",
    "CollectionProfile",
    "IN_BAND",
    "OUT_OF_BAND",
    "plan_collection",
]


class CollectionPath(enum.Enum):
    """Where the sampling agent runs."""

    IN_BAND = "in-band"
    OUT_OF_BAND = "out-of-band"


@dataclass(frozen=True)
class CollectionProfile:
    """Cost/quality model of one collection path.

    Attributes
    ----------
    path:
        Which side samples.
    overhead_per_hz:
        Fraction of one node's compute stolen per (channel x Hz) of
        sampling — zero for out-of-band.
    max_rate_hz:
        Ceiling on total per-node sample rate (channels x rate); None =
        unbounded.
    loss_rate:
        Expected sample loss on this path.
    """

    path: CollectionPath
    overhead_per_hz: float
    max_rate_hz: float | None
    loss_rate: float

    def app_overhead(self, channels: int, rate_hz: float) -> float:
        """Application slowdown fraction for a sampling plan."""
        if channels < 0 or rate_hz < 0:
            raise ValueError("channels and rate must be non-negative")
        return self.overhead_per_hz * channels * rate_hz

    def feasible(self, channels: int, rate_hz: float) -> bool:
        """True if the path can carry the plan at all."""
        if self.max_rate_hz is None:
            return True
        return channels * rate_hz <= self.max_rate_hz


#: Calibrated to the behaviours §IV-B describes: in-band costs ~0.001%
#: of a node per channel-Hz (interrupts, cache pollution, jitter) — tiny
#: per channel, ruinous at counter-firehose rates; a BMC + management
#: network carries ~50 channel-Hz per node.
IN_BAND = CollectionProfile(
    CollectionPath.IN_BAND,
    overhead_per_hz=1e-5,
    max_rate_hz=None,
    loss_rate=0.002,
)
OUT_OF_BAND = CollectionProfile(
    CollectionPath.OUT_OF_BAND,
    overhead_per_hz=0.0,
    max_rate_hz=50.0,
    loss_rate=0.01,
)


@dataclass(frozen=True)
class CollectionPlan:
    """Outcome of planning one stream's collection."""

    profile: CollectionProfile
    channels: int
    rate_hz: float
    app_overhead: float
    expected_loss: float

    @property
    def acceptable(self) -> bool:
        """Plans that could not meet the budget are marked infeasible."""
        return self.channels >= 0


def plan_collection(
    channels: int,
    rate_hz: float,
    overhead_budget: float = 0.01,
    profiles: tuple[CollectionProfile, ...] = (OUT_OF_BAND, IN_BAND),
) -> CollectionPlan:
    """Pick the collection path for a stream.

    Preference order: a path with zero app overhead that can carry the
    plan wins; otherwise the lowest-overhead feasible path under the
    ``overhead_budget``; raises if nothing fits (the §IV-B situation
    that forces rate reduction or vendor engagement).
    """
    if channels <= 0 or rate_hz <= 0:
        raise ValueError("channels and rate must be positive")
    candidates = []
    for profile in profiles:
        if not profile.feasible(channels, rate_hz):
            continue
        overhead = profile.app_overhead(channels, rate_hz)
        if overhead > overhead_budget:
            continue
        candidates.append((overhead, profile.loss_rate, profile))
    if not candidates:
        raise ValueError(
            f"no collection path carries {channels} channels at "
            f"{rate_hz} Hz within {overhead_budget:.2%} overhead; reduce "
            "the rate or engage the vendor for a better OOB path"
        )
    overhead, loss, profile = min(candidates, key=lambda c: (c[0], c[1]))
    return CollectionPlan(
        profile=profile,
        channels=channels,
        rate_hz=rate_hz,
        app_overhead=overhead,
        expected_loss=loss,
    )
