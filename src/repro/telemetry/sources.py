"""Base interface for telemetry sources.

A source is a deterministic function from a half-open time window
``[t0, t1)`` to a batch of records.  Two contracts matter to everything
downstream and are enforced by the shared test suite:

* **split invariance** — emitting ``[0, 60)`` equals concatenating the
  emissions of ``[0, 15) .. [45, 60)``;
* **volume accounting** — a source can state its nominal raw byte rate so
  the Fig. 4a bench can extrapolate laptop-scale runs to fleet scale.
"""

from __future__ import annotations

import abc

from repro.telemetry.schema import ObservationBatch, SensorCatalog

__all__ = ["TelemetrySource"]


class TelemetrySource(abc.ABC):
    """Abstract deterministic telemetry stream."""

    #: Stream name, unique within a fleet (e.g. ``"power"``).
    name: str

    @property
    @abc.abstractmethod
    def catalog(self) -> SensorCatalog:
        """The data dictionary for this stream's channels."""

    @abc.abstractmethod
    def emit(self, t0: float, t1: float) -> ObservationBatch:
        """All observations with timestamps in ``[t0, t1)``."""

    def emit_reference(self, t0: float, t1: float) -> ObservationBatch:
        """Reference (unoptimized) emission path.

        Sources with a batched fast :meth:`emit` keep their original
        per-channel implementation here; the two must be byte-identical
        (enforced by the telemetry equivalence tests) so ``emit`` stays
        free to be rewritten for speed.  The default is simply ``emit``.
        """
        return self.emit(t0, t1)

    @abc.abstractmethod
    def nominal_bytes_per_day(self) -> float:
        """Expected raw wire volume per day at this source's scale."""

    def _check_window(self, t0: float, t1: float) -> None:
        if t1 < t0:
            raise ValueError(f"invalid window [{t0}, {t1})")
