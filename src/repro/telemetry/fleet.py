"""Fleet-level telemetry assembly and volume accounting.

:class:`FleetTelemetry` wires every source for one machine behind a single
``emit_window`` call and keeps running byte/row accounting per stream —
the measurement behind the paper's "4.2-4.5 TB/day" ingest figure
(Fig. 4a).  Benches run a small node subset at full fidelity and use
:meth:`FleetTelemetry.extrapolated_bytes_per_day` to report machine-scale
volumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.facility import FacilitySource
from repro.telemetry.interconnect import InterconnectSource
from repro.telemetry.jobs import AllocationTable
from repro.telemetry.machine import MachineConfig
from repro.telemetry.perf import PerfCounterSource
from repro.telemetry.power import PowerThermalSource
from repro.telemetry.schema import EventBatch, ObservationBatch
from repro.telemetry.storage_io import StorageIOSource
from repro.telemetry.syslog import SyslogSource

__all__ = ["StreamVolume", "FleetTelemetry"]


@dataclass
class StreamVolume:
    """Running ingest accounting for one stream."""

    stream: str
    rows: int = 0
    raw_bytes: int = 0
    windows: int = 0
    duration_s: float = 0.0

    def record(self, n_rows: int, n_bytes: int, window_s: float) -> None:
        """Add one emitted window's contribution."""
        self.rows += n_rows
        self.raw_bytes += n_bytes
        self.windows += 1
        self.duration_s += window_s

    @property
    def bytes_per_day(self) -> float:
        """Observed raw bytes extrapolated to a day."""
        if self.duration_s <= 0:
            return 0.0
        return self.raw_bytes * 86_400.0 / self.duration_s


class FleetTelemetry:
    """All telemetry sources of one machine behind a single interface.

    Parameters
    ----------
    machine:
        Machine to instrument.
    allocation:
        Job allocation oracle (from :func:`synthetic_job_mix` or the
        :mod:`repro.scheduler` simulator).
    seed:
        Root seed shared by all sources.
    nodes:
        Node subset to emit at full fidelity (default: whole fleet).
    reference_emit:
        When true, ``emit_window`` uses each source's loop-based
        ``emit_reference`` path instead of the batched ``emit``.  The two
        are byte-identical; the flag exists so benchmarks can measure the
        pre-optimization baseline.
    """

    def __init__(
        self,
        machine: MachineConfig,
        allocation: AllocationTable,
        seed: int = 0,
        nodes: np.ndarray | None = None,
        reference_emit: bool = False,
    ) -> None:
        self.machine = machine
        self.allocation = allocation
        self.seed = int(seed)
        self.reference_emit = bool(reference_emit)
        if nodes is None:
            nodes = np.arange(machine.n_nodes, dtype=np.int32)
        self.nodes = np.asarray(nodes, dtype=np.int32)

        self.power = PowerThermalSource(machine, allocation, seed, self.nodes)
        self.perf = PerfCounterSource(machine, allocation, seed, self.nodes)
        self.syslog = SyslogSource(machine, seed, self.nodes)
        self.storage_io = StorageIOSource(machine, allocation, seed, self.nodes)
        self.interconnect = InterconnectSource(machine, allocation, seed, self.nodes)
        self.facility = FacilitySource(machine, self.total_it_power, seed)
        self._sources = (
            self.power,
            self.perf,
            self.syslog,
            self.storage_io,
            self.interconnect,
            self.facility,
        )

        self._volumes: dict[str, StreamVolume] = {
            s.name: StreamVolume(s.name) for s in self._sources
        }

    def total_it_power(self, times: np.ndarray) -> np.ndarray:
        """Fleet IT power (watts) at each time, extrapolated from the
        emitted node subset to the whole machine."""
        times = np.asarray(times, dtype=np.float64)
        if times.size == 0 or self.nodes.size == 0:
            return np.zeros(times.size)
        gpu_u, cpu_u, _ = self.allocation.utilization(self.nodes, times)
        m = self.machine
        node_power = (
            m.node_idle_w
            + gpu_u * (m.gpu_tdp_w - 90.0) * m.gpus_per_node
            + cpu_u * (m.cpu_tdp_w - 60.0) * m.cpus_per_node
        )
        # Sum each time's *contiguous* node column so the float reduction
        # order depends only on the node count, never on how many times
        # share the window — axis-0 reductions over (nodes, times) block
        # their pairwise sums by the trailing shape, which would make
        # plant telemetry vary in the last bits with the window split.
        totals = np.ascontiguousarray(node_power.T).sum(axis=1)
        return totals * (m.n_nodes / node_power.shape[0])

    def emit_window(
        self, t0: float, t1: float
    ) -> dict[str, ObservationBatch | EventBatch]:
        """Emit every stream for ``[t0, t1)`` and record volumes."""
        out: dict[str, ObservationBatch | EventBatch] = {}
        for source in self._sources:
            if self.reference_emit:
                batch = source.emit_reference(t0, t1)
            else:
                batch = source.emit(t0, t1)
            out[source.name] = batch
            self._volumes[source.name].record(
                len(batch), batch.nbytes_raw, t1 - t0
            )
        return out

    @property
    def volumes(self) -> dict[str, StreamVolume]:
        """Per-stream ingest accounting so far."""
        return dict(self._volumes)

    def extrapolated_bytes_per_day(self) -> dict[str, float]:
        """Observed per-stream volume scaled from the node subset to the
        full machine (plant streams are already machine-scale)."""
        scale = self.machine.n_nodes / max(self.nodes.size, 1)
        out = {}
        for name, vol in self._volumes.items():
            factor = 1.0 if name == "facility" else scale
            out[name] = vol.bytes_per_day * factor
        return out

    def nominal_fleet_bytes_per_day(self) -> dict[str, float]:
        """Analytic (no-emission) per-stream volume at machine scale."""
        return {s.name: s.fleet_bytes_per_day() for s in self._sources}
