"""Darshan-style per-job I/O characterization (§IV-B).

"leveraging per-job instrumentation based on technologies such as
Darshan has been successfully employed" — instead of sampling I/O
continuously, a lightweight runtime library summarizes each job's I/O
behaviour into one compact record at job end.  The paper's group
released exactly such datasets publicly ([50], [51]).

:class:`DarshanCollector` synthesizes those records deterministically
from the job's archetype and the same storage model the continuous
counters use, so the two instrumentation paths are consistent — the
cross-check the R&D analyses rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.columnar.table import ColumnTable
from repro.telemetry.jobs import AllocationTable, JobSpec
from repro.telemetry.storage_io import CLIENT_LINK_BPS, WRITE_FRACTION
from repro.telemetry.workloads import get_archetype
from repro.util.noise import normal_from_index, uniform_from_index

__all__ = ["DarshanRecord", "DarshanCollector"]

#: Access-size histogram bucket upper bounds (bytes).
ACCESS_BUCKETS = (4_096, 65_536, 1_048_576, 16_777_216, float("inf"))


@dataclass(frozen=True)
class DarshanRecord:
    """One job's I/O summary (the per-job log record)."""

    job_id: int
    bytes_read: float
    bytes_written: float
    files_opened: int
    write_fraction: float
    access_histogram: tuple[float, ...]  # fraction of accesses per bucket
    peak_bandwidth_bps: float

    @property
    def total_bytes(self) -> float:
        """Total bytes moved by the job."""
        return self.bytes_read + self.bytes_written


class DarshanCollector:
    """Generates per-job I/O summaries for a schedule."""

    def __init__(self, allocation: AllocationTable, seed: int = 0) -> None:
        self.allocation = allocation
        self.seed = int(seed)

    def _record(self, job: JobSpec) -> DarshanRecord:
        arch = get_archetype(job.archetype)
        idx = np.array([job.job_id], dtype=np.uint64)
        jitter = 1.0 + 0.1 * float(normal_from_index(self.seed, 300, idx)[0])
        mean_bps = arch.io_intensity * CLIENT_LINK_BPS * max(jitter, 0.1)
        total = mean_bps * job.duration * job.n_nodes
        written = total * WRITE_FRACTION
        read = total - written
        # Files opened scale with nodes (per-rank logs + shared datasets).
        u = float(uniform_from_index(self.seed, 301, idx)[0])
        files = int(job.n_nodes * (2 + 30 * arch.io_intensity) * (0.5 + u))
        # Access-size mix: I/O-heavy codes do large sequential accesses;
        # everything else skews small.
        if arch.io_intensity > 0.3:
            hist = (0.05, 0.10, 0.15, 0.40, 0.30)
        elif arch.io_intensity > 0.1:
            hist = (0.15, 0.25, 0.30, 0.20, 0.10)
        else:
            hist = (0.50, 0.30, 0.15, 0.04, 0.01)
        burst = 1.0 + 2.0 * float(uniform_from_index(self.seed, 302, idx)[0])
        return DarshanRecord(
            job_id=job.job_id,
            bytes_read=read,
            bytes_written=written,
            files_opened=max(files, 1),
            write_fraction=WRITE_FRACTION,
            access_histogram=hist,
            peak_bandwidth_bps=mean_bps * burst * job.n_nodes,
        )

    def collect(self, t0: float, t1: float) -> list[DarshanRecord]:
        """Records for jobs that *ended* within ``[t0, t1)`` — Darshan
        logs materialize at job completion."""
        return [
            self._record(job)
            for job in self.allocation.jobs
            if t0 <= job.end < t1
        ]

    def collect_all(self) -> list[DarshanRecord]:
        """Records for every job in the schedule."""
        return [self._record(job) for job in self.allocation.jobs]

    def to_table(self, records: list[DarshanRecord]) -> ColumnTable:
        """Records as an analysis-ready table (the released-dataset shape)."""
        if not records:
            return ColumnTable({})
        jobs = {r.job_id: self.allocation.job(r.job_id) for r in records}
        return ColumnTable(
            {
                "job_id": np.array([r.job_id for r in records], dtype=float),
                "timestamp": np.array(
                    [jobs[r.job_id].end for r in records]
                ),
                "archetype": [jobs[r.job_id].archetype for r in records],
                "n_nodes": np.array(
                    [jobs[r.job_id].n_nodes for r in records], dtype=float
                ),
                "bytes_read": np.array([r.bytes_read for r in records]),
                "bytes_written": np.array([r.bytes_written for r in records]),
                "files_opened": np.array(
                    [r.files_opened for r in records], dtype=float
                ),
                "peak_bw_bps": np.array(
                    [r.peak_bandwidth_bps for r in records]
                ),
                "small_access_frac": np.array(
                    [r.access_histogram[0] for r in records]
                ),
            }
        )
