"""Telemetry record schemas.

Two wire shapes cover everything the paper's pipelines ingest:

* :class:`ObservationBatch` — numeric sensor observations in the *long*
  (tall) format that the medallion Bronze stage standardizes on: one row
  per (timestamp, component, sensor, value).
* :class:`EventBatch` — discrete log events (syslog, RAS, security) with a
  severity and a message template code.

Both are columnar (struct-of-arrays) so downstream operators stay
vectorized; a "row" never exists as a Python object on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SensorSpec", "SensorCatalog", "ObservationBatch", "EventBatch"]

#: Assumed wire size of one raw observation (timestamp, ids, value + framing),
#: used for TB/day accounting.  Matches a compact binary encoding; JSON wire
#: formats are 5-10x larger, which the Fig. 4a bench reports separately.
RAW_OBSERVATION_BYTES = 26

#: Assumed average wire size of one raw log event (timestamp, host, tag,
#: rendered text).  Syslog lines average ~100-200 bytes in practice.
RAW_EVENT_BYTES = 150


@dataclass(frozen=True)
class SensorSpec:
    """Static description of one sensor channel — a data-dictionary entry.

    The paper (§VI-A) stresses building a *data dictionary* holding sample
    rate, failure (loss) rate, and physical meaning per sensor; this class
    is exactly that record.
    """

    name: str
    unit: str
    sample_period_s: float
    component: str  # e.g. "node", "cabinet", "cdu", "plant"
    description: str = ""
    loss_rate: float = 0.0  # fraction of samples dropped at the source

    def __post_init__(self) -> None:
        if self.sample_period_s <= 0:
            raise ValueError(f"sample_period_s must be > 0 for {self.name}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1) for {self.name}")

    @property
    def sample_rate_hz(self) -> float:
        """Samples per second for one component instance."""
        return 1.0 / self.sample_period_s


class SensorCatalog:
    """An ordered, id-assigning registry of :class:`SensorSpec`.

    Sensor ids are dense small integers so observation batches can store
    them as ``int16`` columns.
    """

    def __init__(self, specs: list[SensorSpec] | None = None) -> None:
        self._specs: list[SensorSpec] = []
        self._by_name: dict[str, int] = {}
        for spec in specs or []:
            self.add(spec)

    def add(self, spec: SensorSpec) -> int:
        """Register a spec; returns its id.  Names must be unique."""
        if spec.name in self._by_name:
            raise ValueError(f"duplicate sensor name {spec.name!r}")
        sensor_id = len(self._specs)
        self._specs.append(spec)
        self._by_name[spec.name] = sensor_id
        return sensor_id

    def id_of(self, name: str) -> int:
        """Sensor id for ``name`` (KeyError if unknown)."""
        return self._by_name[name]

    def spec(self, sensor_id: int) -> SensorSpec:
        """Spec for a sensor id."""
        return self._specs[sensor_id]

    def names(self) -> list[str]:
        """All sensor names in id order."""
        return [s.name for s in self._specs]

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self._specs)


@dataclass
class ObservationBatch:
    """A columnar batch of long-format sensor observations (Bronze shape).

    Attributes
    ----------
    timestamps:
        float64 seconds since the simulation epoch.
    component_ids:
        int32 index of the emitting component (node, cabinet, ...).
    sensor_ids:
        int16 index into a :class:`SensorCatalog`.
    values:
        float64 sensor readings.
    """

    timestamps: np.ndarray
    component_ids: np.ndarray
    sensor_ids: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.timestamps)
        for name in ("component_ids", "sensor_ids", "values"):
            if len(getattr(self, name)) != n:
                raise ValueError(
                    f"column {name} has length {len(getattr(self, name))}, "
                    f"expected {n}"
                )
        self.timestamps = np.asarray(self.timestamps, dtype=np.float64)
        self.component_ids = np.asarray(self.component_ids, dtype=np.int32)
        self.sensor_ids = np.asarray(self.sensor_ids, dtype=np.int16)
        self.values = np.asarray(self.values, dtype=np.float64)

    def __len__(self) -> int:
        return self.timestamps.size

    @property
    def nbytes_raw(self) -> int:
        """Estimated raw wire size of this batch (for volume accounting)."""
        return len(self) * RAW_OBSERVATION_BYTES

    @classmethod
    def empty(cls) -> "ObservationBatch":
        """A zero-row batch."""
        return cls(
            timestamps=np.empty(0, dtype=np.float64),
            component_ids=np.empty(0, dtype=np.int32),
            sensor_ids=np.empty(0, dtype=np.int16),
            values=np.empty(0, dtype=np.float64),
        )

    @classmethod
    def concat(cls, batches: list["ObservationBatch"]) -> "ObservationBatch":
        """Concatenate batches in order (empty list yields an empty batch)."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls.empty()
        return cls(
            timestamps=np.concatenate([b.timestamps for b in batches]),
            component_ids=np.concatenate([b.component_ids for b in batches]),
            sensor_ids=np.concatenate([b.sensor_ids for b in batches]),
            values=np.concatenate([b.values for b in batches]),
        )

    def sorted_by_time(self) -> "ObservationBatch":
        """A copy sorted by timestamp (stable)."""
        order = np.argsort(self.timestamps, kind="stable")
        return ObservationBatch(
            timestamps=self.timestamps[order],
            component_ids=self.component_ids[order],
            sensor_ids=self.sensor_ids[order],
            values=self.values[order],
        )

    def select_sensor(self, sensor_id: int) -> "ObservationBatch":
        """Rows for a single sensor id (returns views where possible)."""
        mask = self.sensor_ids == sensor_id
        return ObservationBatch(
            timestamps=self.timestamps[mask],
            component_ids=self.component_ids[mask],
            sensor_ids=self.sensor_ids[mask],
            values=self.values[mask],
        )

    def columns(self) -> dict[str, np.ndarray]:
        """The batch as a name -> column mapping (zero-copy)."""
        return {
            "timestamp": self.timestamps,
            "component_id": self.component_ids,
            "sensor_id": self.sensor_ids,
            "value": self.values,
        }


#: Syslog severity levels, RFC 5424 subset used by the generators.
SEVERITIES = ("debug", "info", "warning", "error", "critical")
SEVERITY_IDS = {name: i for i, name in enumerate(SEVERITIES)}


@dataclass
class EventBatch:
    """A columnar batch of discrete log events (syslog / RAS / security).

    ``message_ids`` index a template table owned by the emitting source, so
    the hot path never materializes strings; rendered text is produced
    lazily by :meth:`render`.
    """

    timestamps: np.ndarray
    component_ids: np.ndarray
    severities: np.ndarray  # int8 index into SEVERITIES
    message_ids: np.ndarray  # int16 index into the source's template table

    def __post_init__(self) -> None:
        n = len(self.timestamps)
        for name in ("component_ids", "severities", "message_ids"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name} length mismatch")
        self.timestamps = np.asarray(self.timestamps, dtype=np.float64)
        self.component_ids = np.asarray(self.component_ids, dtype=np.int32)
        self.severities = np.asarray(self.severities, dtype=np.int8)
        self.message_ids = np.asarray(self.message_ids, dtype=np.int16)

    def __len__(self) -> int:
        return self.timestamps.size

    @property
    def nbytes_raw(self) -> int:
        """Estimated raw wire size (rendered text lines)."""
        return len(self) * RAW_EVENT_BYTES

    @classmethod
    def empty(cls) -> "EventBatch":
        return cls(
            timestamps=np.empty(0, dtype=np.float64),
            component_ids=np.empty(0, dtype=np.int32),
            severities=np.empty(0, dtype=np.int8),
            message_ids=np.empty(0, dtype=np.int16),
        )

    @classmethod
    def concat(cls, batches: list["EventBatch"]) -> "EventBatch":
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls.empty()
        return cls(
            timestamps=np.concatenate([b.timestamps for b in batches]),
            component_ids=np.concatenate([b.component_ids for b in batches]),
            severities=np.concatenate([b.severities for b in batches]),
            message_ids=np.concatenate([b.message_ids for b in batches]),
        )

    def sorted_by_time(self) -> "EventBatch":
        order = np.argsort(self.timestamps, kind="stable")
        return EventBatch(
            timestamps=self.timestamps[order],
            component_ids=self.component_ids[order],
            severities=self.severities[order],
            message_ids=self.message_ids[order],
        )

    def at_least(self, severity: str) -> "EventBatch":
        """Rows whose severity is >= the named level."""
        floor = SEVERITY_IDS[severity]
        mask = self.severities >= floor
        return EventBatch(
            timestamps=self.timestamps[mask],
            component_ids=self.component_ids[mask],
            severities=self.severities[mask],
            message_ids=self.message_ids[mask],
        )

    def render(self, templates: list[str], limit: int | None = None) -> list[str]:
        """Render events to human-readable lines using ``templates``."""
        n = len(self) if limit is None else min(limit, len(self))
        out = []
        for i in range(n):
            sev = SEVERITIES[self.severities[i]]
            out.append(
                f"[{self.timestamps[i]:.3f}] comp-{self.component_ids[i]:05d} "
                f"{sev.upper()}: {templates[self.message_ids[i]]}"
            )
        return out
