"""Self-organizing map: the Fig. 10 cell grid.

Fig. 10's right panel is a 2-D grid where "cells are profile shapes and
the color is the observed population" — exactly a trained SOM rendered
with its codebook vectors and hit counts.  Classic online SOM training:
best-matching unit search, Gaussian neighbourhood, exponentially
decaying learning rate and radius.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SelfOrganizingMap"]


class SelfOrganizingMap:
    """A (rows x cols) SOM over d-dimensional inputs."""

    def __init__(
        self,
        rows: int,
        cols: int,
        dim: int,
        seed: int = 0,
    ) -> None:
        if rows <= 0 or cols <= 0 or dim <= 0:
            raise ValueError("rows, cols, dim must be positive")
        self.rows = rows
        self.cols = cols
        self.dim = dim
        rng = np.random.default_rng(seed)
        self.codebook = rng.normal(0.0, 0.1, (rows * cols, dim))
        # Precomputed grid coordinates for neighbourhood kernels.
        rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
        self._coords = np.column_stack([rr.ravel(), cc.ravel()]).astype(float)
        self._seed = seed
        self.trained = False

    @property
    def n_cells(self) -> int:
        """Total grid cells."""
        return self.rows * self.cols

    def bmu(self, x: np.ndarray) -> np.ndarray:
        """Best-matching unit index for each row of ``x``."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        # ||c - x||^2 = ||c||^2 - 2 c.x + ||x||^2; drop the x term.
        d = (
            (self.codebook**2).sum(axis=1)[None, :]
            - 2.0 * x @ self.codebook.T
        )
        return d.argmin(axis=1)

    def fit(
        self,
        x: np.ndarray,
        epochs: int = 30,
        lr0: float = 0.5,
        radius0: float | None = None,
    ) -> "SelfOrganizingMap":
        """Online SOM training with exponential decay schedules."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {x.shape[1]}")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        radius0 = radius0 or max(self.rows, self.cols) / 2.0
        # Initialize codebook from data samples for faster convergence.
        rng = np.random.default_rng(self._seed + 7)
        init_idx = rng.integers(0, x.shape[0], self.n_cells)
        self.codebook = x[init_idx] + rng.normal(0, 0.01, self.codebook.shape)

        n = x.shape[0]
        total_steps = epochs * n
        step = 0
        tau = total_steps / max(np.log(radius0), 1e-9)
        for _ in range(epochs):
            order = rng.permutation(n)
            for i in order:
                lr = lr0 * np.exp(-step / total_steps)
                radius = max(radius0 * np.exp(-step / tau), 0.5)
                winner = int(self.bmu(x[i : i + 1])[0])
                grid_d2 = ((self._coords - self._coords[winner]) ** 2).sum(axis=1)
                influence = np.exp(-grid_d2 / (2.0 * radius * radius))
                self.codebook += (lr * influence)[:, None] * (
                    x[i] - self.codebook
                )
                step += 1
        self.trained = True
        return self

    # -- the Fig. 10 artifacts -------------------------------------------------

    def populations(self, x: np.ndarray) -> np.ndarray:
        """Hit count per cell, shaped (rows, cols) — the grid colouring."""
        hits = np.bincount(self.bmu(x), minlength=self.n_cells)
        return hits.reshape(self.rows, self.cols)

    def cell_prototype(self, row: int, col: int) -> np.ndarray:
        """Codebook vector of one cell — the profile shape drawn in it."""
        if not 0 <= row < self.rows or not 0 <= col < self.cols:
            raise ValueError("cell out of range")
        return self.codebook[row * self.cols + col].copy()

    def quantization_error(self, x: np.ndarray) -> float:
        """Mean distance from samples to their BMU codebook vector."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        winners = self.bmu(x)
        return float(
            np.linalg.norm(x - self.codebook[winners], axis=1).mean()
        )

    def topographic_error(self, x: np.ndarray) -> float:
        """Fraction of samples whose first and second BMUs are not grid
        neighbours — a map-quality metric."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        d = (
            (self.codebook**2).sum(axis=1)[None, :]
            - 2.0 * x @ self.codebook.T
        )
        top2 = np.argsort(d, axis=1)[:, :2]
        c1 = self._coords[top2[:, 0]]
        c2 = self._coords[top2[:, 1]]
        adjacent = (np.abs(c1 - c2).max(axis=1) <= 1.0)
        return float(1.0 - adjacent.mean())
