"""Autoencoder for power-profile embedding.

The Fig. 10 classifier is "a neural network-based classifier [that]
automatically groups power profiles based on their similarities"; an
autoencoder bottleneck learns the shape manifold, and the SOM organizes
the embeddings into the published cell grid.
"""

from __future__ import annotations

import numpy as np

from repro.ml.mlp import MLP

__all__ = ["Autoencoder"]


class Autoencoder:
    """Symmetric tanh autoencoder built from two MLPs sharing training.

    Parameters
    ----------
    input_dim:
        Profile length.
    latent_dim:
        Bottleneck width (the embedding the SOM consumes).
    hidden:
        Width of the single hidden layer on each side.
    """

    def __init__(
        self,
        input_dim: int,
        latent_dim: int = 8,
        hidden: int = 32,
        seed: int = 0,
    ) -> None:
        if latent_dim >= input_dim:
            raise ValueError("latent_dim must compress (be < input_dim)")
        self.input_dim = input_dim
        self.latent_dim = latent_dim
        self.net = MLP(
            [input_dim, hidden, latent_dim, hidden, input_dim],
            activation="tanh",
            loss="mse",
            seed=seed,
        )

    def fit(
        self,
        x: np.ndarray,
        epochs: int = 120,
        batch_size: int = 32,
        lr: float = 5e-3,
    ) -> list[float]:
        """Train to reconstruct ``x``; returns per-epoch loss."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.input_dim:
            raise ValueError(
                f"expected {self.input_dim}-dim profiles, got {x.shape[1]}"
            )
        return self.net.fit(x, x, epochs=epochs, batch_size=batch_size, lr=lr)

    def embed(self, x: np.ndarray) -> np.ndarray:
        """Bottleneck activations for ``x`` (n, latent_dim)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        h = x
        # Forward through encoder half: layers 0 (in->hidden) and 1
        # (hidden->latent), with the hidden activation applied to both
        # as in the full network's forward pass.
        for i in range(2):
            z = h @ self.net.weights[i] + self.net.biases[i]
            h = np.tanh(z)
        return h

    def reconstruct(self, x: np.ndarray) -> np.ndarray:
        """Full round trip through the bottleneck."""
        return self.net.predict(x)

    def reconstruction_error(self, x: np.ndarray) -> float:
        """Mean squared reconstruction error."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return float(np.mean((self.reconstruct(x) - x) ** 2))
