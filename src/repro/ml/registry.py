"""Model registry with stage promotion (the MLflow-registry role).

Downstream inference workloads (Fig. 9's right side) resolve models by
(name, stage); promotion moves a version through NONE -> STAGING ->
PRODUCTION -> ARCHIVED, and at most one version of a name is in
PRODUCTION at a time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["ModelStage", "ModelRegistry"]


class ModelStage(enum.Enum):
    """Deployment stage of a model version."""

    NONE = "none"
    STAGING = "staging"
    PRODUCTION = "production"
    ARCHIVED = "archived"


_ALLOWED = {
    ModelStage.NONE: {ModelStage.STAGING, ModelStage.ARCHIVED},
    ModelStage.STAGING: {ModelStage.PRODUCTION, ModelStage.ARCHIVED},
    ModelStage.PRODUCTION: {ModelStage.ARCHIVED},
    ModelStage.ARCHIVED: set(),
}


@dataclass
class _ModelVersion:
    name: str
    version: int
    blob: bytes
    metrics: dict[str, float] = field(default_factory=dict)
    stage: ModelStage = ModelStage.NONE
    source_run: str | None = None


class ModelRegistry:
    """Versioned model blobs with stage lifecycle."""

    def __init__(self) -> None:
        self._models: dict[str, list[_ModelVersion]] = {}

    def register(
        self,
        name: str,
        blob: bytes,
        metrics: dict[str, float] | None = None,
        source_run: str | None = None,
    ) -> int:
        """Add a new version; returns its version number (1-based)."""
        versions = self._models.setdefault(name, [])
        version = len(versions) + 1
        versions.append(
            _ModelVersion(
                name, version, bytes(blob), dict(metrics or {}),
                source_run=source_run,
            )
        )
        return version

    def _version(self, name: str, version: int) -> _ModelVersion:
        versions = self._models.get(name)
        if not versions or not 1 <= version <= len(versions):
            raise KeyError(f"no model {name!r} version {version}")
        return versions[version - 1]

    def promote(self, name: str, version: int, stage: ModelStage) -> None:
        """Move a version to ``stage`` (valid transitions only).

        Promoting to PRODUCTION archives the previous production version.
        """
        mv = self._version(name, version)
        if stage not in _ALLOWED[mv.stage]:
            raise ValueError(
                f"illegal transition {mv.stage.value} -> {stage.value}"
            )
        if stage is ModelStage.PRODUCTION:
            for other in self._models[name]:
                if other.stage is ModelStage.PRODUCTION:
                    other.stage = ModelStage.ARCHIVED
        mv.stage = stage

    def get(self, name: str, stage: ModelStage = ModelStage.PRODUCTION) -> bytes:
        """Model bytes of the version currently in ``stage``."""
        for mv in self._models.get(name, []):
            if mv.stage is stage:
                return mv.blob
        raise KeyError(f"no {stage.value} version of model {name!r}")

    def get_version(self, name: str, version: int) -> bytes:
        """Model bytes of a specific version."""
        return self._version(name, version).blob

    def metrics(self, name: str, version: int) -> dict[str, float]:
        """Recorded metrics of a version."""
        return dict(self._version(name, version).metrics)

    def stage_of(self, name: str, version: int) -> ModelStage:
        """Current stage of a version."""
        return self._version(name, version).stage

    def versions(self, name: str) -> int:
        """Number of registered versions of ``name`` (0 if unknown)."""
        return len(self._models.get(name, []))

    def names(self) -> list[str]:
        """All model names, sorted."""
        return sorted(self._models)
