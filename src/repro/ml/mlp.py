"""A plain feed-forward neural network on NumPy.

Deliberately small and fully deterministic (seeded init, fixed shuffle
streams): the reproducibility pipeline of Fig. 9 asserts that retraining
with the same seed yields a bit-identical model, and these tests hold
this implementation to that.

Supports regression (MSE) and classification (softmax cross-entropy)
heads, ReLU/tanh hidden activations, and minibatch SGD with momentum.
"""

from __future__ import annotations

import io

import numpy as np

__all__ = ["MLP"]

_ACTIVATIONS = ("relu", "tanh")
_LOSSES = ("mse", "softmax")


def _act(x: np.ndarray, kind: str) -> np.ndarray:
    if kind == "relu":
        return np.maximum(x, 0.0)
    return np.tanh(x)


def _act_grad(pre: np.ndarray, post: np.ndarray, kind: str) -> np.ndarray:
    if kind == "relu":
        return (pre > 0).astype(np.float64)
    return 1.0 - post * post


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class MLP:
    """Feed-forward network: ``layers = [in, hidden..., out]``.

    Parameters
    ----------
    layers:
        Unit counts, at least [in, out].
    activation:
        Hidden activation: ``"relu"`` or ``"tanh"``.
    loss:
        ``"mse"`` (linear output) or ``"softmax"`` (class probabilities).
    seed:
        Weight-init and shuffle seed; identical seeds + data give
        bit-identical models.
    """

    def __init__(
        self,
        layers: list[int],
        activation: str = "relu",
        loss: str = "mse",
        seed: int = 0,
    ) -> None:
        if len(layers) < 2 or any(n <= 0 for n in layers):
            raise ValueError("layers must be >= 2 positive sizes")
        if activation not in _ACTIVATIONS:
            raise ValueError(f"activation must be one of {_ACTIVATIONS}")
        if loss not in _LOSSES:
            raise ValueError(f"loss must be one of {_LOSSES}")
        self.layers = list(layers)
        self.activation = activation
        self.loss = loss
        self.seed = int(seed)
        rng = np.random.default_rng(seed)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for n_in, n_out in zip(layers, layers[1:]):
            scale = np.sqrt(2.0 / n_in)
            self.weights.append(rng.normal(0.0, scale, (n_in, n_out)))
            self.biases.append(np.zeros(n_out))
        self._vel_w = [np.zeros_like(w) for w in self.weights]
        self._vel_b = [np.zeros_like(b) for b in self.biases]

    # -- forward ---------------------------------------------------------------

    def _forward(self, x: np.ndarray) -> tuple[list[np.ndarray], list[np.ndarray]]:
        pres, posts = [], [x]
        h = x
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w + b
            pres.append(z)
            if i < last:
                h = _act(z, self.activation)
            else:
                h = _softmax(z) if self.loss == "softmax" else z
            posts.append(h)
        return pres, posts

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Network output: probabilities (softmax) or values (mse)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return self._forward(x)[1][-1]

    def predict_classes(self, x: np.ndarray) -> np.ndarray:
        """Argmax class labels (softmax loss only)."""
        if self.loss != "softmax":
            raise ValueError("predict_classes requires softmax loss")
        return self.predict(x).argmax(axis=1)

    # -- training -----------------------------------------------------------------

    def loss_value(self, x: np.ndarray, y: np.ndarray) -> float:
        """Current loss on (x, y)."""
        out = self.predict(x)
        y = np.asarray(y)
        if self.loss == "mse":
            return float(np.mean((out - np.atleast_2d(y)) ** 2))
        probs = np.clip(out[np.arange(len(y)), y.astype(int)], 1e-12, 1.0)
        return float(-np.mean(np.log(probs)))

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 50,
        batch_size: int = 32,
        lr: float = 1e-2,
        momentum: float = 0.9,
        verbose: bool = False,
    ) -> list[float]:
        """Minibatch SGD; returns per-epoch training loss."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y)
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y row counts differ")
        n = x.shape[0]
        shuffle_rng = np.random.default_rng(self.seed + 1)
        history = []
        for _ in range(epochs):
            order = shuffle_rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                self._step(x[idx], y[idx], lr, momentum)
            history.append(self.loss_value(x, y))
        return history

    def _step(self, xb: np.ndarray, yb: np.ndarray, lr: float, momentum: float) -> None:
        pres, posts = self._forward(xb)
        m = xb.shape[0]
        out = posts[-1]
        if self.loss == "mse":
            target = np.atleast_2d(yb.astype(np.float64))
            if target.shape != out.shape:
                target = target.reshape(out.shape)
            delta = 2.0 * (out - target) / m
        else:
            onehot = np.zeros_like(out)
            onehot[np.arange(m), yb.astype(int)] = 1.0
            delta = (out - onehot) / m
        for i in range(len(self.weights) - 1, -1, -1):
            grad_w = posts[i].T @ delta
            grad_b = delta.sum(axis=0)
            if i > 0:
                delta = (delta @ self.weights[i].T) * _act_grad(
                    pres[i - 1], posts[i], self.activation
                )
            self._vel_w[i] = momentum * self._vel_w[i] - lr * grad_w
            self._vel_b[i] = momentum * self._vel_b[i] - lr * grad_b
            self.weights[i] += self._vel_w[i]
            self.biases[i] += self._vel_b[i]

    # -- serialization ----------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize architecture + weights (deterministic bytes)."""
        buf = io.BytesIO()
        meta = np.array(
            [len(self.layers), self.seed,
             _ACTIVATIONS.index(self.activation), _LOSSES.index(self.loss)],
            dtype=np.int64,
        )
        np.save(buf, meta)
        np.save(buf, np.array(self.layers, dtype=np.int64))
        for w, b in zip(self.weights, self.biases):
            np.save(buf, w)
            np.save(buf, b)
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "MLP":
        """Invert :meth:`to_bytes`."""
        buf = io.BytesIO(blob)
        meta = np.load(buf)
        layers = np.load(buf).tolist()
        model = cls(
            layers,
            activation=_ACTIVATIONS[int(meta[2])],
            loss=_LOSSES[int(meta[3])],
            seed=int(meta[1]),
        )
        for i in range(len(model.weights)):
            model.weights[i] = np.load(buf)
            model.biases[i] = np.load(buf)
        return model
