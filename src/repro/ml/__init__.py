"""Machine-learning engineering for ODA (§VIII, Figs. 9-10).

Implements the paper's ML stack end to end, from scratch on NumPy:

* :mod:`repro.ml.features` — job power-profile featurization,
* :mod:`repro.ml.mlp` — a plain feed-forward network with SGD/momentum,
* :mod:`repro.ml.autoencoder` — profile embedding,
* :mod:`repro.ml.som` — a self-organizing map: the 2-D cell grid of
  profile shapes with population colouring shown in Fig. 10,
* :mod:`repro.ml.classifier` — the end-to-end job power-profile
  classification pipeline plus a k-means baseline,
* :mod:`repro.ml.feature_store` — content-addressed, versioned feature
  sets (the DVC role in Fig. 9),
* :mod:`repro.ml.tracking` — experiment/run tracking (the MLflow role),
* :mod:`repro.ml.registry` — model registry with stage promotion.
"""

from repro.ml.features import profile_matrix, profile_statistics
from repro.ml.mlp import MLP
from repro.ml.autoencoder import Autoencoder
from repro.ml.som import SelfOrganizingMap
from repro.ml.classifier import (
    JobProfileClassifier,
    cluster_purity,
    kmeans,
)
from repro.ml.anomaly import AnomalyReport, PowerAnomalyDetector, windowize
from repro.ml.forecast import (
    ForecastEvaluation,
    PersistenceForecaster,
    RidgeForecaster,
    backtest,
)
from repro.ml.feature_store import FeatureStore, FeatureVersion
from repro.ml.tracking import ExperimentTracker, Run
from repro.ml.registry import ModelRegistry, ModelStage

__all__ = [
    "profile_matrix",
    "profile_statistics",
    "MLP",
    "Autoencoder",
    "SelfOrganizingMap",
    "JobProfileClassifier",
    "kmeans",
    "cluster_purity",
    "FeatureStore",
    "FeatureVersion",
    "ExperimentTracker",
    "Run",
    "ModelRegistry",
    "ModelStage",
    "PowerAnomalyDetector",
    "AnomalyReport",
    "windowize",
    "PersistenceForecaster",
    "RidgeForecaster",
    "ForecastEvaluation",
    "backtest",
]
