"""End-to-end job power-profile classification (Fig. 10) + baselines.

Pipeline: Gold profile rows -> fixed-length normalized shapes ->
autoencoder embedding -> SOM grid.  The published artifact is the grid
of prototype shapes coloured by population; quality is measured against
the workload-archetype ground truth via cluster purity, with k-means as
the non-neural baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.columnar.table import ColumnTable
from repro.ml.autoencoder import Autoencoder
from repro.ml.features import profile_matrix
from repro.ml.som import SelfOrganizingMap

__all__ = ["JobProfileClassifier", "kmeans", "cluster_purity"]


def kmeans(
    x: np.ndarray, k: int, seed: int = 0, iters: int = 50
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's k-means; returns (labels, centroids).

    The classical baseline against which the AE+SOM pipeline is scored.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    if k <= 0 or k > x.shape[0]:
        raise ValueError("k must be in [1, n_samples]")
    rng = np.random.default_rng(seed)
    centroids = x[rng.choice(x.shape[0], k, replace=False)].copy()
    labels = np.zeros(x.shape[0], dtype=np.int64)
    for _ in range(iters):
        d = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_labels = d.argmin(axis=1)
        if (new_labels == labels).all():
            labels = new_labels
            break
        labels = new_labels
        for j in range(k):
            members = x[labels == j]
            if members.shape[0]:
                centroids[j] = members.mean(axis=0)
    return labels, centroids


def cluster_purity(labels: np.ndarray, truth: list[str]) -> float:
    """Weighted majority-class purity of a clustering against truth."""
    labels = np.asarray(labels)
    truth_arr = np.asarray(truth)
    if labels.size != truth_arr.size:
        raise ValueError("labels and truth length mismatch")
    if labels.size == 0:
        return 0.0
    correct = 0
    for cluster in np.unique(labels):
        members = truth_arr[labels == cluster]
        _, counts = np.unique(members, return_counts=True)
        correct += counts.max()
    return correct / labels.size


@dataclass
class ClassifierReport:
    """Evaluation of one trained classifier."""

    n_jobs: int
    occupied_cells: int
    total_cells: int
    purity: float
    baseline_purity: float
    quantization_error: float
    topographic_error: float


class JobProfileClassifier:
    """AE + SOM pipeline over Gold job power profiles.

    Parameters
    ----------
    profile_length:
        Resampled shape length fed to the autoencoder.
    latent_dim:
        AE bottleneck width.
    grid:
        SOM grid shape (rows, cols) — the Fig. 10 cell grid.
    """

    def __init__(
        self,
        profile_length: int = 64,
        latent_dim: int = 8,
        grid: tuple[int, int] = (6, 6),
        seed: int = 0,
    ) -> None:
        self.profile_length = profile_length
        self.seed = int(seed)
        self.autoencoder = Autoencoder(
            profile_length, latent_dim=latent_dim, seed=seed
        )
        self.som = SelfOrganizingMap(grid[0], grid[1], latent_dim, seed=seed)
        self.job_ids: np.ndarray | None = None
        self._x: np.ndarray | None = None

    def fit(
        self,
        profiles: ColumnTable,
        ae_epochs: int = 120,
        som_epochs: int = 30,
    ) -> "JobProfileClassifier":
        """Train on Gold profile rows (as produced by the medallion)."""
        job_ids, x = profile_matrix(profiles, self.profile_length)
        if x.shape[0] < 4:
            raise ValueError(
                f"need at least 4 usable job profiles, got {x.shape[0]}"
            )
        self.job_ids = job_ids
        self._x = x
        self.autoencoder.fit(x, epochs=ae_epochs)
        z = self.autoencoder.embed(x)
        self.som.fit(z, epochs=som_epochs)
        return self

    def _require_fit(self) -> None:
        if self.job_ids is None:
            raise RuntimeError("classifier not fitted")

    def assign(self, profiles: ColumnTable) -> tuple[np.ndarray, np.ndarray]:
        """(job_ids, cell index per job) for new profiles."""
        self._require_fit()
        job_ids, x = profile_matrix(profiles, self.profile_length)
        z = self.autoencoder.embed(x)
        return job_ids, self.som.bmu(z)

    def grid_populations(self) -> np.ndarray:
        """Training-set hit counts per cell — the Fig. 10 colouring."""
        self._require_fit()
        z = self.autoencoder.embed(self._x)
        return self.som.populations(z)

    def cell_shape(self, row: int, col: int) -> np.ndarray:
        """Representative profile shape of one cell: the mean of training
        profiles mapped there (codebook lives in latent space)."""
        self._require_fit()
        z = self.autoencoder.embed(self._x)
        cells = self.som.bmu(z)
        members = self._x[cells == row * self.som.cols + col]
        if members.shape[0] == 0:
            return np.full(self.profile_length, np.nan)
        return members.mean(axis=0)

    def evaluate(self, truth_by_job: dict[int, str]) -> ClassifierReport:
        """Score against archetype ground truth; k-means on raw shapes is
        the baseline."""
        self._require_fit()
        assert self.job_ids is not None and self._x is not None
        truth = [truth_by_job[int(j)] for j in self.job_ids]
        z = self.autoencoder.embed(self._x)
        som_labels = self.som.bmu(z)
        k = min(self.som.n_cells, self._x.shape[0])
        km_labels, _ = kmeans(self._x, k=max(len(set(truth)), 2), seed=self.seed)
        populations = self.som.populations(z)
        return ClassifierReport(
            n_jobs=int(self._x.shape[0]),
            occupied_cells=int((populations > 0).sum()),
            total_cells=self.som.n_cells,
            purity=cluster_purity(som_labels, truth),
            baseline_purity=cluster_purity(km_labels, truth),
            quantization_error=self.som.quantization_error(z),
            topographic_error=self.som.topographic_error(z),
        )
