"""Short-horizon fleet-power forecasting.

§VIII's predictive/prescriptive analytics role ("act as proxies for the
actual system, enabling predictive ... analytics through forecasting"),
and the facility-side motivation the paper's references develop
(power-aware scheduling, cooling feed-forward).  Two models:

* :class:`PersistenceForecaster` — the last-value baseline every
  forecasting claim must beat,
* :class:`RidgeForecaster` — autoregressive ridge regression on lagged
  samples (closed-form normal equations; no gradient descent needed at
  this scale).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PersistenceForecaster",
    "RidgeForecaster",
    "ForecastEvaluation",
    "backtest",
]


class PersistenceForecaster:
    """Predicts the future equals the present (the honest baseline)."""

    def fit(self, series: np.ndarray) -> "PersistenceForecaster":
        """No parameters; kept for interface symmetry."""
        return self

    def predict(self, history: np.ndarray, horizon: int) -> np.ndarray:
        """Repeat the last observation ``horizon`` steps."""
        history = np.asarray(history, dtype=np.float64)
        if history.size == 0:
            raise ValueError("history must be non-empty")
        return np.full(horizon, history[-1])


class RidgeForecaster:
    """One-step AR(p) ridge model, rolled forward for multi-step.

    Parameters
    ----------
    order:
        Number of lagged samples used as features.
    alpha:
        L2 regularization strength.
    """

    def __init__(self, order: int = 12, alpha: float = 1e-3) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.order = order
        self.alpha = alpha
        self.coef_: np.ndarray | None = None
        self._mean = 0.0
        self._scale = 1.0

    def fit(self, series: np.ndarray) -> "RidgeForecaster":
        """Fit on a training series (must exceed the AR order)."""
        y_all = np.asarray(series, dtype=np.float64)
        if y_all.size <= self.order + 1:
            raise ValueError(
                f"need more than {self.order + 1} samples, got {y_all.size}"
            )
        self._mean = float(y_all.mean())
        self._scale = float(y_all.std()) or 1.0
        z = (y_all - self._mean) / self._scale
        p = self.order
        # Lag matrix: row t -> [z[t-p] .. z[t-1], 1].
        n = z.size - p
        x = np.empty((n, p + 1))
        for lag in range(p):
            x[:, lag] = z[lag : lag + n]
        x[:, p] = 1.0
        y = z[p:]
        gram = x.T @ x + self.alpha * np.eye(p + 1)
        self.coef_ = np.linalg.solve(gram, x.T @ y)
        return self

    def predict(self, history: np.ndarray, horizon: int) -> np.ndarray:
        """Roll the one-step model forward ``horizon`` steps."""
        if self.coef_ is None:
            raise RuntimeError("forecaster not fitted")
        history = np.asarray(history, dtype=np.float64)
        if history.size < self.order:
            raise ValueError(f"history must have >= {self.order} samples")
        z = ((history - self._mean) / self._scale)[-self.order:].copy()
        out = np.empty(horizon)
        for step in range(horizon):
            features = np.concatenate((z, [1.0]))
            nxt = float(features @ self.coef_)
            out[step] = nxt
            z = np.roll(z, -1)
            z[-1] = nxt
        return out * self._scale + self._mean


@dataclass(frozen=True)
class ForecastEvaluation:
    """Backtest outcome."""

    mape: float
    rmse: float
    n_forecasts: int


def backtest(
    model,
    series: np.ndarray,
    train_frac: float = 0.6,
    horizon: int = 8,
    stride: int = 4,
) -> ForecastEvaluation:
    """Rolling-origin evaluation on the held-out tail of ``series``."""
    series = np.asarray(series, dtype=np.float64)
    split = int(series.size * train_frac)
    if split < 2 or series.size - split < horizon + 1:
        raise ValueError("series too short for this split/horizon")
    model.fit(series[:split])
    errors, rel_errors = [], []
    count = 0
    for origin in range(split, series.size - horizon, stride):
        prediction = model.predict(series[:origin], horizon)
        actual = series[origin : origin + horizon]
        errors.append(prediction - actual)
        rel_errors.append(
            np.abs(prediction - actual) / np.maximum(np.abs(actual), 1e-9)
        )
        count += 1
    err = np.concatenate(errors)
    rel = np.concatenate(rel_errors)
    return ForecastEvaluation(
        mape=float(rel.mean()),
        rmse=float(np.sqrt((err**2).mean())),
        n_forecasts=count,
    )
