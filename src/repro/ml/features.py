"""Featurization of job power profiles.

The classifier of Fig. 10 "clusters job power profiles based on their
similarity in consumption patterns"; similarity is over *shape*, not
magnitude, so profiles are resampled to a fixed length and normalized to
[0, 1] per profile before any model sees them.
"""

from __future__ import annotations

import numpy as np

from repro.columnar.table import ColumnTable

__all__ = ["profile_matrix", "profile_statistics"]


def _resample_to_length(values: np.ndarray, length: int) -> np.ndarray:
    """Linear-interpolate a series to exactly ``length`` points."""
    if values.size == 1:
        return np.full(length, values[0])
    x_old = np.linspace(0.0, 1.0, values.size)
    x_new = np.linspace(0.0, 1.0, length)
    return np.interp(x_new, x_old, values)


def profile_matrix(
    profiles: ColumnTable,
    length: int = 64,
    min_samples: int = 4,
    normalize: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Gold profile rows -> (job_ids, X) with X of shape (n_jobs, length).

    Jobs with fewer than ``min_samples`` profile points are skipped (too
    short to have a shape).  With ``normalize`` each row is min-max
    scaled; constant profiles become all-0.5 (flat shape).
    """
    if length < 2:
        raise ValueError("length must be >= 2")
    if profiles.num_rows == 0:
        return np.empty(0, dtype=np.int64), np.empty((0, length))
    job_ids = profiles["job_id"].astype(np.int64)
    order = np.lexsort((profiles["timestamp"], job_ids))
    jid_sorted = job_ids[order]
    power_sorted = profiles["power_w"][order]

    boundaries = np.flatnonzero(
        np.concatenate(([True], jid_sorted[1:] != jid_sorted[:-1]))
    )
    ends = np.concatenate((boundaries[1:], [jid_sorted.size]))

    out_ids, rows = [], []
    for start, end in zip(boundaries, ends):
        if end - start < min_samples:
            continue
        series = _resample_to_length(power_sorted[start:end], length)
        if normalize:
            lo, hi = series.min(), series.max()
            if hi - lo < 1e-9:
                series = np.full(length, 0.5)
            else:
                series = (series - lo) / (hi - lo)
        out_ids.append(int(jid_sorted[start]))
        rows.append(series)
    if not rows:
        return np.empty(0, dtype=np.int64), np.empty((0, length))
    return np.array(out_ids, dtype=np.int64), np.vstack(rows)


def profile_statistics(profiles: ColumnTable) -> ColumnTable:
    """Per-job scalar features (mean/max/std/burstiness) for tabular ML."""
    from repro.pipeline.ops import group_by_agg

    if profiles.num_rows == 0:
        return ColumnTable({})
    stats = group_by_agg(
        profiles,
        ["job_id"],
        {
            "mean_w": ("power_w", "mean"),
            "max_w": ("power_w", "max"),
            "min_w": ("power_w", "min"),
            "std_w": ("power_w", "std"),
            "samples": ("power_w", "count"),
        },
    )
    burstiness = stats["std_w"] / np.maximum(stats["mean_w"], 1e-9)
    dynamic_range = (stats["max_w"] - stats["min_w"]) / np.maximum(
        stats["max_w"], 1e-9
    )
    return stats.with_column("burstiness", burstiness).with_column(
        "dynamic_range", dynamic_range
    )
