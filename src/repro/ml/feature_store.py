"""Versioned, content-addressed feature store (the DVC role, Fig. 9).

"managing featurized data through version-controlled project feature
stores (DVC)" — each ``put`` snapshots a feature table, addresses it by
the SHA-256 of its serialized bytes, and records lineage (parent version
+ parameters).  Identical content always maps to the identical version
id, which is what makes retraining reproducible end to end.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.columnar.file_format import read_table, write_table
from repro.columnar.table import ColumnTable

__all__ = ["FeatureVersion", "FeatureStore"]


@dataclass(frozen=True)
class FeatureVersion:
    """Metadata of one immutable feature snapshot."""

    name: str
    version: str  # content hash (sha256 hex, truncated)
    n_rows: int
    nbytes: int
    params: dict[str, str] = field(default_factory=dict)
    parent: str | None = None


class FeatureStore:
    """Append-only store of named, versioned feature tables."""

    HASH_LEN = 16

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}  # version -> RCF bytes
        self._versions: dict[str, list[FeatureVersion]] = {}  # name -> history

    def put(
        self,
        name: str,
        table: ColumnTable,
        params: dict[str, str] | None = None,
        parent: str | None = None,
    ) -> FeatureVersion:
        """Snapshot a feature table; returns its (possibly reused) version.

        Content-identical tables dedupe to the same version id.
        """
        blob = write_table(table, codec="high")
        version = hashlib.sha256(blob).hexdigest()[: self.HASH_LEN]
        if parent is not None and parent not in self._blobs:
            raise KeyError(f"unknown parent version {parent!r}")
        meta = FeatureVersion(
            name=name,
            version=version,
            n_rows=table.num_rows,
            nbytes=len(blob),
            params=dict(params or {}),
            parent=parent,
        )
        history = self._versions.setdefault(name, [])
        if not any(v.version == version for v in history):
            self._blobs[version] = blob
            history.append(meta)
        return meta

    def get(self, name: str, version: str | None = None) -> ColumnTable:
        """Fetch a snapshot (latest version when unspecified)."""
        meta = self.describe(name, version)
        return read_table(self._blobs[meta.version])

    def describe(self, name: str, version: str | None = None) -> FeatureVersion:
        """Version metadata (latest when unspecified)."""
        history = self._versions.get(name)
        if not history:
            raise KeyError(f"no feature set {name!r}")
        if version is None:
            return history[-1]
        for meta in history:
            if meta.version == version:
                return meta
        raise KeyError(f"no version {version!r} of {name!r}")

    def versions(self, name: str) -> list[str]:
        """Version ids of a feature set, oldest first."""
        return [v.version for v in self._versions.get(name, [])]

    def lineage(self, name: str, version: str) -> list[str]:
        """Chain of version ids from the given one back to its root."""
        chain = []
        meta = self.describe(name, version)
        while True:
            chain.append(meta.version)
            if meta.parent is None:
                return chain
            parent_meta = None
            for hist in self._versions.values():
                for m in hist:
                    if m.version == meta.parent:
                        parent_meta = m
                        break
            if parent_meta is None:
                return chain
            meta = parent_meta

    def names(self) -> list[str]:
        """All feature-set names, sorted."""
        return sorted(self._versions)
