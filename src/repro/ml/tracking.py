"""Experiment tracking (the MLflow role, Fig. 9).

"tracking experiments and distributing models via an ML tracking
service" — experiments own runs; runs record parameters, stepped
metrics, and artifacts; queries find the best run by a metric.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Run", "ExperimentTracker"]


@dataclass
class Run:
    """One training run inside an experiment."""

    run_id: str
    experiment: str
    params: dict[str, str] = field(default_factory=dict)
    metrics: dict[str, list[tuple[int, float]]] = field(default_factory=dict)
    artifacts: dict[str, bytes] = field(default_factory=dict)
    finished: bool = False

    def log_param(self, key: str, value: object) -> None:
        """Record a hyperparameter (stringified)."""
        self._check_open()
        self.params[key] = str(value)

    def log_metric(self, key: str, value: float, step: int = 0) -> None:
        """Append one (step, value) point of a metric series."""
        self._check_open()
        self.metrics.setdefault(key, []).append((step, float(value)))

    def log_artifact(self, name: str, blob: bytes) -> None:
        """Attach an artifact (model bytes, plots, reports)."""
        self._check_open()
        self.artifacts[name] = bytes(blob)

    def latest_metric(self, key: str) -> float:
        """Last recorded value of a metric (KeyError if absent)."""
        series = self.metrics[key]
        return series[-1][1]

    def _check_open(self) -> None:
        if self.finished:
            raise RuntimeError(f"run {self.run_id} is finished (immutable)")


class ExperimentTracker:
    """Multi-experiment run registry."""

    def __init__(self) -> None:
        self._runs: dict[str, Run] = {}
        self._by_experiment: dict[str, list[str]] = {}
        self._counter = 0

    def start_run(self, experiment: str, params: dict[str, object] | None = None
                  ) -> Run:
        """Open a new run under ``experiment``."""
        self._counter += 1
        run_id = hashlib.sha256(
            f"{experiment}:{self._counter}".encode()
        ).hexdigest()[:12]
        run = Run(run_id=run_id, experiment=experiment)
        for k, v in (params or {}).items():
            run.log_param(k, v)
        self._runs[run_id] = run
        self._by_experiment.setdefault(experiment, []).append(run_id)
        return run

    def end_run(self, run_id: str) -> None:
        """Seal a run; it becomes immutable."""
        self.get_run(run_id).finished = True

    def get_run(self, run_id: str) -> Run:
        """Run by id (KeyError if unknown)."""
        try:
            return self._runs[run_id]
        except KeyError:
            raise KeyError(f"unknown run {run_id!r}") from None

    def runs(self, experiment: str) -> list[Run]:
        """All runs of an experiment, in start order."""
        return [self._runs[r] for r in self._by_experiment.get(experiment, [])]

    def best_run(
        self, experiment: str, metric: str, mode: str = "min"
    ) -> Run | None:
        """Finished run with the best final value of ``metric``."""
        if mode not in ("min", "max"):
            raise ValueError("mode must be 'min' or 'max'")
        candidates = [
            r for r in self.runs(experiment)
            if r.finished and metric in r.metrics
        ]
        if not candidates:
            return None
        key = lambda r: r.latest_metric(metric)  # noqa: E731
        return min(candidates, key=key) if mode == "min" else max(
            candidates, key=key
        )

    def experiments(self) -> list[str]:
        """All experiment names, sorted."""
        return sorted(self._by_experiment)
