"""Autoencoder-based anomaly detection on power telemetry.

§VIII positions "descriptive or diagnostic analytics" via dimensionality
reduction as a core ODA ML use (and cites anomaly detection on power
consumption as a driving application).  The detector learns the manifold
of *normal* windowed node-power behaviour; windows whose reconstruction
error exceeds a calibrated quantile threshold are anomalous —
sensor faults, stuck readings, or runaway power excursions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.autoencoder import Autoencoder

__all__ = ["PowerAnomalyDetector", "AnomalyReport", "windowize"]


def windowize(series: np.ndarray, window: int, stride: int | None = None
              ) -> np.ndarray:
    """Slice a 1-D series into overlapping windows, shape (n, window).

    Each window is min-max normalized (shape, not magnitude), matching
    the featurization used throughout the profile models.
    """
    series = np.asarray(series, dtype=np.float64)
    if window <= 1:
        raise ValueError("window must be > 1")
    if stride is None:
        stride = window // 2
    if stride <= 0:
        raise ValueError("stride must be positive")
    if series.size < window:
        return np.empty((0, window))
    starts = np.arange(0, series.size - window + 1, stride)
    out = np.empty((starts.size, window))
    for i, s in enumerate(starts):
        w = series[s : s + window]
        lo, hi = w.min(), w.max()
        out[i] = 0.5 if hi - lo < 1e-9 else (w - lo) / (hi - lo)
    return out


@dataclass(frozen=True)
class AnomalyReport:
    """Detection outcome over a scored series."""

    n_windows: int
    n_anomalous: int
    threshold: float
    scores: np.ndarray

    @property
    def anomaly_fraction(self) -> float:
        """Fraction of windows flagged."""
        return self.n_anomalous / self.n_windows if self.n_windows else 0.0


class PowerAnomalyDetector:
    """Reconstruction-error detector over windowed power series.

    Parameters
    ----------
    window:
        Samples per window.
    latent_dim:
        AE bottleneck width.
    quantile:
        Calibration quantile: the threshold is this quantile of training
        reconstruction errors (controls the false-positive budget).
    """

    def __init__(
        self,
        window: int = 32,
        latent_dim: int = 4,
        quantile: float = 0.995,
        seed: int = 0,
    ) -> None:
        if not 0.5 < quantile < 1.0:
            raise ValueError("quantile must be in (0.5, 1)")
        self.window = window
        self.quantile = quantile
        self.autoencoder = Autoencoder(window, latent_dim=latent_dim, seed=seed)
        self.threshold: float | None = None

    def _errors(self, windows: np.ndarray) -> np.ndarray:
        recon = self.autoencoder.reconstruct(windows)
        return ((recon - windows) ** 2).mean(axis=1)

    def fit(self, normal_series: np.ndarray, epochs: int = 120) -> "PowerAnomalyDetector":
        """Train on known-normal telemetry and calibrate the threshold."""
        windows = windowize(normal_series, self.window)
        if windows.shape[0] < 8:
            raise ValueError("need at least 8 training windows")
        self.autoencoder.fit(windows, epochs=epochs)
        errors = self._errors(windows)
        # Margin above the calibration quantile absorbs sampling noise.
        self.threshold = float(np.quantile(errors, self.quantile)) * 1.5
        return self

    def score(self, series: np.ndarray) -> AnomalyReport:
        """Score a series; windows above threshold are anomalous."""
        if self.threshold is None:
            raise RuntimeError("detector not fitted")
        windows = windowize(series, self.window)
        scores = self._errors(windows) if windows.size else np.empty(0)
        n_anom = int((scores > self.threshold).sum())
        return AnomalyReport(
            n_windows=windows.shape[0],
            n_anomalous=n_anom,
            threshold=self.threshold,
            scores=scores,
        )

    def is_anomalous(self, series: np.ndarray) -> bool:
        """True if any window of the series crosses the threshold."""
        return self.score(series).n_anomalous > 0
