"""Per-unit scan kernels: late materialization over segments and parts.

The part scanner is where the read plane earns its speedup: for each
row group it (1) tests the predicate against the group's min/max stats
— a pruned group costs nothing; (2) evaluates the predicate on *only*
the predicate's own columns, pushing ``Compare``/``IsIn`` down to
dictionary codes so a dict-encoded column is judged on its (tiny)
vocabulary instead of its rows; (3) decodes the remaining projected
columns only for groups with surviving rows.  Decoded columns flow
through the bounded row-group cache, so repeated dashboard queries over
the same parts skip the decode entirely.

Soundness contract: every mask computed here must equal the brute-force
``predicate.mask`` over the fully decoded data — the property tests in
``tests/query`` hold the two paths to byte equality, NaN floats and
null strings included.
"""

from __future__ import annotations

import numpy as np

from repro.columnar.file_format import RcfReader
from repro.columnar.predicate import And, Compare, IsIn, Not, Or, Predicate
from repro.columnar.table import ColumnTable
from repro.perf import PERF
from repro.query.cache import cached_column

__all__ = ["fold_time_predicate", "scan_segment", "scan_part"]


def fold_time_predicate(
    predicate: Predicate | None,
    time_column: str,
    t0: float | None,
    t1: float | None,
) -> Predicate | None:
    """Fold a ``[t0, t1)`` window into the predicate tree.

    The half-open window becomes ordinary ``Compare`` nodes, so time
    pruning rides the same ``might_match`` machinery as every other
    column — one pruning code path instead of two.
    """
    pred = predicate
    if t1 is not None:
        upper = Compare(time_column, "<", float(t1))
        pred = upper if pred is None else And(upper, pred)
    if t0 is not None:
        lower = Compare(time_column, ">=", float(t0))
        pred = lower if pred is None else And(lower, pred)
    return pred


def scan_segment(
    table: ColumnTable,
    time_column: str,
    t0: float | None,
    t1: float | None,
    predicate: Predicate | None,
    columns: list[str] | None,
) -> ColumnTable | None:
    """Scan one in-memory LAKE segment; None when no row survives.

    Segments are already decoded, so "late materialization" reduces to
    mask-then-project; the mask math matches the pre-planner
    ``TimeSeriesLake.query`` loop exactly (NaN timestamps fail the
    always-applied time mask on both paths).
    """
    ts = table[time_column]
    lo = -np.inf if t0 is None else t0
    hi = np.inf if t1 is None else t1
    mask = (ts >= lo) & (ts < hi)
    if predicate is not None:
        mask &= predicate.mask(table)
    if not mask.any():
        return None
    piece = table.filter(mask)
    if columns is not None:
        piece = piece.select(columns)
    return piece


def scan_part(
    blob: bytes,
    time_column: str,
    t0: float | None,
    t1: float | None,
    predicate: Predicate | None,
    columns: list[str] | None,
) -> ColumnTable | None:
    """Late-materializing scan of one OCEAN part; None when empty.

    Arrays in the result may be views of the read-only row-group cache;
    callers that mutate query output must copy first (the same contract
    the zero-copy broker slices established in PR 1).
    """
    reader = RcfReader(blob)
    names = reader.column_names()
    out_cols = list(columns) if columns is not None else names
    unknown = set(out_cols) - set(names)
    if unknown:
        raise KeyError(f"unknown columns {sorted(unknown)}")
    combined = fold_time_predicate(predicate, time_column, t0, t1)
    token = reader.digest()
    pieces: list[ColumnTable] = []
    for g in range(reader.num_row_groups):
        mask: np.ndarray | None = None
        if combined is not None:
            if not combined.might_match(reader.group_stats(g)):
                PERF.count("query.groups_pruned")
                continue
            mask = _group_mask(reader, g, combined, token)
            if not mask.any():
                PERF.count("query.groups_empty")
                continue
            if mask.all():
                mask = None  # keep whole-group columns as cache views
        data = {}
        for n in out_cols:
            arr = cached_column(
                token, g, n, lambda col=n: reader.decode_group_column(g, col)
            )
            data[n] = arr if mask is None else arr[mask]
        PERF.count("query.groups_decoded")
        pieces.append(ColumnTable(data))
    if not pieces:
        return None
    return ColumnTable.concat(pieces) if len(pieces) > 1 else pieces[0]


def _group_mask(
    reader: RcfReader, group: int, pred: Predicate, token: str
) -> np.ndarray:
    """Evaluate ``pred`` over one row group, decoding as little as
    possible: boolean algebra recurses, leaves go through the dictionary
    pushdown when the chunk is dict-encoded."""
    if isinstance(pred, And):
        return _group_mask(reader, group, pred.left, token) & _group_mask(
            reader, group, pred.right, token
        )
    if isinstance(pred, Or):
        return _group_mask(reader, group, pred.left, token) | _group_mask(
            reader, group, pred.right, token
        )
    if isinstance(pred, Not):
        return ~_group_mask(reader, group, pred.inner, token)
    if isinstance(pred, (Compare, IsIn)):
        return _leaf_mask(reader, group, pred, token)
    # Unknown node type: decode its columns and fall back to exact mask.
    data = {
        n: cached_column(
            token, group, n, lambda col=n: reader.decode_group_column(group, col)
        )
        for n in pred.columns()
    }
    return pred.mask(ColumnTable(data))


def _leaf_mask(
    reader: RcfReader, group: int, pred, token: str
) -> np.ndarray:
    """One-column leaf evaluation, dictionary codes first.

    For a dict-encoded chunk the leaf is evaluated on the vocabulary
    (via the same ``mask_array`` that defines exact semantics) and the
    verdicts are gathered through the codes — O(|vocab| + rows) with no
    string materialization.  Null string rows carry code -1; their
    verdict comes from ``mask_array([None])``, which is exactly how a
    decoded null (None) would have been judged.
    """
    name = pred.column
    parts = reader.group_dictionary_parts(group, name)
    if parts is not None:
        values, codes, is_string = parts
        PERF.count("query.dict_pushdowns")
        if is_string:
            none_match = bool(
                pred.mask_array(np.array([None], dtype=object))[0]
            )
            if values.size == 0:
                return np.full(codes.size, none_match, dtype=bool)
            lut = np.asarray(pred.mask_array(values), dtype=bool)
            return np.where(
                codes >= 0, lut[np.maximum(codes, 0)], none_match
            )
        lut = np.asarray(pred.mask_array(values), dtype=bool)
        return lut[codes]
    arr = cached_column(
        token, group, name, lambda: reader.decode_group_column(group, name)
    )
    return np.asarray(pred.mask_array(arr), dtype=bool)
