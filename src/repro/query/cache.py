"""Bounded LRU cache of decoded row-group columns.

Dashboards re-ask near-identical questions of the same recent parts
(Fig. 6's point: the dashboard wins because repeated looks are cheap),
so the expensive step — decompress + decode of one (part, row group,
column) chunk — is cached under the part's *content digest*.  Keys are
content-addressed, so a compaction that rewrites parts can never serve
stale data; explicit invalidation (by token) exists purely to release
memory the moment a part is deleted.

Cached arrays are marked read-only and shared by reference: a masked
scan copies on fancy-indexing anyway, and a full-group projection hands
out the cached view directly (mutating query output was never supported
— now it raises instead of silently corrupting).

Concurrency: one module-level lock guards the OrderedDict and the byte
budget; hit/miss/evict counters go to the process-wide perf registry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable

import numpy as np

from repro.perf import PERF

__all__ = [
    "cached_column",
    "invalidate_token",
    "clear_row_group_cache",
    "row_group_cache_stats",
    "row_group_cache_disabled",
    "set_row_group_cache_limit",
]

_cache_lock = threading.Lock()
_cache: "OrderedDict[tuple[str, int, str], np.ndarray]" = OrderedDict()
_cache_bytes = 0
_cache_max_bytes = 64 << 20
_cache_enabled = True
#: Toggle depth counter: ``_cache_enabled`` is maintained from this
#: under ``_cache_lock`` so overlapping toggles cannot restore a stale
#: value (see PerfRegistry.disabled for the pattern).
_cache_disable_depth = 0


def cached_column(
    token: str, group: int, name: str, loader: Callable[[], np.ndarray]
) -> np.ndarray:
    """The decoded column for ``(token, group, name)``; decodes via
    ``loader`` on a miss and retains the (read-only) result."""
    global _cache_bytes
    if not _cache_enabled:
        return loader()
    key = (token, group, name)
    with _cache_lock:
        arr = _cache.get(key)
        if arr is not None:
            _cache.move_to_end(key)
    if arr is not None:
        PERF.count("query.cache_hits")
        return arr
    PERF.count("query.cache_misses")
    arr = loader()
    arr.setflags(write=False)
    evicted = 0
    with _cache_lock:
        if key not in _cache:
            _cache[key] = arr
            _cache_bytes += arr.nbytes
        _cache.move_to_end(key)
        while _cache_bytes > _cache_max_bytes and len(_cache) > 1:
            _, dropped = _cache.popitem(last=False)
            _cache_bytes -= dropped.nbytes
            evicted += 1
    if evicted:
        PERF.count("query.cache_evictions", evicted)
    return arr


def invalidate_token(token: str) -> int:
    """Drop every cached group of one part (by content digest).

    Returns the number of entries released.  Correctness never depends
    on this — digests are content-addressed — it only returns memory
    held for parts that compaction or retention just deleted.
    """
    global _cache_bytes
    removed = 0
    with _cache_lock:
        stale = [k for k in _cache if k[0] == token]
        for k in stale:
            _cache_bytes -= _cache[k].nbytes
            del _cache[k]
            removed += 1
    return removed


def clear_row_group_cache() -> None:
    """Empty the cache (benchmark isolation)."""
    global _cache_bytes
    with _cache_lock:
        _cache.clear()
        _cache_bytes = 0


def row_group_cache_stats() -> dict:
    """Occupancy of the cache (counters live in the perf registry)."""
    with _cache_lock:
        return {
            "entries": len(_cache),
            "bytes": _cache_bytes,
            "max_bytes": _cache_max_bytes,
        }


@contextmanager
def row_group_cache_disabled():
    """Context manager bypassing the cache (the decode-everything
    baseline must pay full decode cost on every scan).  Overlap-safe
    via a lock-guarded depth counter (see PerfRegistry.disabled)."""
    global _cache_disable_depth, _cache_enabled
    with _cache_lock:
        _cache_disable_depth += 1
        _cache_enabled = False
    try:
        yield
    finally:
        with _cache_lock:
            _cache_disable_depth -= 1
            _cache_enabled = _cache_disable_depth == 0


def set_row_group_cache_limit(max_bytes: int) -> None:
    """Resize the byte budget, evicting LRU entries to fit."""
    global _cache_bytes, _cache_max_bytes
    if max_bytes <= 0:
        raise ValueError("max_bytes must be positive")
    evicted = 0
    with _cache_lock:
        _cache_max_bytes = max_bytes
        while _cache_bytes > _cache_max_bytes and _cache:
            _, dropped = _cache.popitem(last=False)
            _cache_bytes -= dropped.nbytes
            evicted += 1
    if evicted:
        PERF.count("query.cache_evictions", evicted)
