"""The scan planner: request in, :class:`ScanPlan` out.

Planning is pure metadata work — no blob is fetched and no chunk is
decoded here.  Two entry points mirror the two storage shapes:

* :func:`plan_segments` — LAKE segments carry (t_min, t_max) bounds, so
  pruning is a time-interval test.  Segment start times are sorted
  (ingest enforces it), so segments past the window's upper edge are
  cut by binary search before any unit is even considered — identical
  to the pre-planner ``TimeSeriesLake.query`` walk, which keeps the
  lake's scanned/pruned accounting stable.
* :func:`plan_parts` — OCEAN parts carry per-column min/max manifests;
  the time window folds into the predicate
  (:func:`~repro.query.scan.fold_time_predicate`) and
  ``might_match`` decides.  A part planned out here is never fetched
  from the object store.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

from repro.columnar.predicate import Predicate
from repro.columnar.table import ColumnTable
from repro.query.plan import PartUnit, ScanPlan, SegmentUnit
from repro.query.scan import fold_time_predicate

__all__ = ["plan_segments", "plan_parts"]


def plan_segments(
    table: str,
    segments: Sequence[tuple[float, float, ColumnTable]],
    t0: float | None = None,
    t1: float | None = None,
    predicate: Predicate | None = None,
    columns: list[str] | None = None,
    time_column: str = "timestamp",
) -> ScanPlan:
    """Plan a LAKE query over ``(t_min, t_max, table)`` segments
    (ordered by ``t_min``)."""
    plan = ScanPlan(
        table=table,
        source="lake",
        t0=t0,
        t1=t1,
        predicate=predicate,
        columns=columns,
        time_column=time_column,
    )
    lo = t0 if t0 is not None else float("-inf")
    hi = t1 if t1 is not None else float("inf")
    starts = [t_min for t_min, _, _ in segments]
    first = bisect.bisect_right(starts, hi)
    for index, (t_min, t_max, seg_table) in enumerate(segments[:first]):
        pruned = t_max < lo
        plan.units.append(
            SegmentUnit(
                index=index,
                t_min=t_min,
                t_max=t_max,
                table=seg_table,
                pruned=pruned,
                reason="time" if pruned else "",
            )
        )
    return plan


def plan_parts(
    table: str,
    parts: Iterable[tuple[str, int, dict | None]],
    t0: float | None = None,
    t1: float | None = None,
    predicate: Predicate | None = None,
    columns: list[str] | None = None,
    time_column: str = "timestamp",
) -> ScanPlan:
    """Plan an OCEAN query over ``(key, size, manifest_stats)`` parts.

    ``manifest_stats`` is the per-part column -> (min, max[, exact])
    mapping persisted at write time, or None for parts that predate the
    manifest (those are always scanned — pruning must stay sound for
    old data).
    """
    plan = ScanPlan(
        table=table,
        source="ocean",
        t0=t0,
        t1=t1,
        predicate=predicate,
        columns=columns,
        time_column=time_column,
    )
    combined = fold_time_predicate(predicate, time_column, t0, t1)
    for key, size, stats in parts:
        pruned = (
            combined is not None
            and stats is not None
            and not combined.might_match(stats)
        )
        plan.units.append(
            PartUnit(
                key=key,
                size=size,
                stats=stats,
                pruned=pruned,
                reason="stats" if pruned else "",
            )
        )
    return plan
