"""The read plane: scan planning and execution over LAKE and OCEAN.

PR 1 made the write plane batched and parallel; this package is its
read-side counterpart (DESIGN.md §11).  A query — (table, time range,
predicate, columns) — is first *planned* into an explicit
:class:`~repro.query.plan.ScanPlan` naming every segment and part it
could touch, then *executed* with multi-level pruning (part manifests,
row-group stats), late materialization (predicate columns first,
dictionary-code pushdown), a bounded cache of decoded row groups, and
parallel per-unit scans that are byte-identical to serial.

Layering: ``repro.query`` depends only on ``repro.columnar`` (plus the
perf spine); ``repro.storage`` builds plans from its metadata and feeds
fetched bytes in, so the object store stays dumb and the planner stays
storage-agnostic.
"""

from repro.query.cache import (
    cached_column,
    clear_row_group_cache,
    invalidate_token,
    row_group_cache_disabled,
    row_group_cache_stats,
    set_row_group_cache_limit,
)
from repro.query.executor import (
    ScanOptions,
    execute_plan,
    execute_plan_reference,
    scan_reference_active,
    scan_reference_mode,
    shutdown_scan_pool,
)
from repro.query.plan import PartUnit, ScanPlan, SegmentUnit
from repro.query.planner import plan_parts, plan_segments
from repro.query.scan import fold_time_predicate, scan_part, scan_segment

__all__ = [
    "ScanPlan",
    "SegmentUnit",
    "PartUnit",
    "plan_segments",
    "plan_parts",
    "ScanOptions",
    "execute_plan",
    "execute_plan_reference",
    "scan_reference_mode",
    "scan_reference_active",
    "shutdown_scan_pool",
    "fold_time_predicate",
    "scan_segment",
    "scan_part",
    "cached_column",
    "invalidate_token",
    "clear_row_group_cache",
    "row_group_cache_stats",
    "row_group_cache_disabled",
    "set_row_group_cache_limit",
]
