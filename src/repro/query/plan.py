"""Scan plans: the explicit middle step between a query and its I/O.

A :class:`ScanPlan` is the planner's answer to "what would this query
touch?" — every LAKE segment or OCEAN part the request *could* read,
each flagged ``pruned`` when statistics prove no row can match.  Keeping
pruned units in the plan (rather than dropping them) buys two things:

* the reference executor can ignore the flags and scan everything, so a
  fast/reference equality test validates the pruning decisions
  themselves, and
* per-query telemetry (how many units were skipped, and why) falls out
  of the plan instead of being threaded through the scan loops.

Plans hold data by reference (in-memory segment tables, fetched part
blobs); they are cheap to build and single-use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.columnar.predicate import Predicate
from repro.columnar.table import ColumnTable

__all__ = ["SegmentUnit", "PartUnit", "ScanPlan"]


@dataclass
class SegmentUnit:
    """One LAKE segment a query may touch."""

    index: int
    t_min: float
    t_max: float
    table: ColumnTable
    pruned: bool = False
    reason: str = ""


@dataclass
class PartUnit:
    """One OCEAN part file a query may touch.

    ``stats`` are the part-level manifest bounds (JSON-decoded, possibly
    None for pre-manifest objects).  ``blob`` starts None; the caller
    fetches bytes for the units it intends to scan — a unit pruned from
    manifest stats is *never* fetched, which is the whole point.
    """

    key: str
    size: int
    stats: dict | None
    pruned: bool = False
    reason: str = ""
    blob: bytes | None = None


@dataclass
class ScanPlan:
    """What one query will read, unit by unit."""

    table: str
    source: str  # "lake" | "ocean"
    t0: float | None
    t1: float | None
    predicate: Predicate | None
    columns: list[str] | None
    time_column: str
    units: list = field(default_factory=list)

    @property
    def pruned_units(self) -> int:
        """Units statistics excluded from the scan."""
        return sum(1 for u in self.units if u.pruned)

    @property
    def live_units(self) -> int:
        """Units the fast executor will actually scan."""
        return sum(1 for u in self.units if not u.pruned)

    def summary(self) -> dict:
        """JSON-ready description (for benches and the dashboard)."""
        return {
            "table": self.table,
            "source": self.source,
            "t0": self.t0,
            "t1": self.t1,
            "columns": self.columns,
            "units": len(self.units),
            "pruned": self.pruned_units,
            "live": self.live_units,
        }
