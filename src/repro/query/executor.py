"""Plan execution — the fast path and its decode-everything oracle.

:func:`execute_plan` is the production path: pruned units are skipped,
live units run through the late-materializing scan kernels, and
independent units execute concurrently on a shared worker pool (results
are collected in submission order, so serial and threaded execution are
byte-identical — the PR-1 determinism contract).

:func:`execute_plan_reference` is the oracle: every unit is scanned —
pruned flags ignored — by fully decoding the data and applying the
exact masks serially.  Equality between the two paths therefore
validates the planner's pruning decisions, the dictionary pushdown, and
the cache in one assertion.  :func:`scan_reference_mode` routes
:func:`execute_plan` through the oracle (entered, with every other
fast-path toggle, by ``repro.perf.baseline.baseline_mode``).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.columnar.file_format import read_table
from repro.columnar.table import ColumnTable
from repro.obs import TRACER
from repro.perf import PERF
from repro.query.plan import ScanPlan, SegmentUnit
from repro.query.scan import scan_part, scan_segment

__all__ = [
    "ScanOptions",
    "execute_plan",
    "execute_plan_reference",
    "scan_reference_mode",
    "scan_reference_active",
    "shutdown_scan_pool",
]

_scan_reference = False
_mode_lock = threading.Lock()
#: Toggle depth counter: ``_scan_reference`` is maintained from this
#: under ``_mode_lock`` so overlapping toggles cannot restore a stale
#: value (see PerfRegistry.disabled for the pattern).
_scan_reference_depth = 0


@contextmanager
def scan_reference_mode():
    """Route :func:`execute_plan` through the decode-everything oracle.
    Overlap-safe via a lock-guarded depth counter."""
    global _scan_reference_depth, _scan_reference
    with _mode_lock:
        _scan_reference_depth += 1
        _scan_reference = True
    try:
        yield
    finally:
        with _mode_lock:
            _scan_reference_depth -= 1
            _scan_reference = _scan_reference_depth > 0


def scan_reference_active() -> bool:
    """True while :func:`scan_reference_mode` is entered.  Storage uses
    this to fetch *every* part (manifest pruning off) so the oracle has
    bytes to scan."""
    return _scan_reference


@dataclass(frozen=True)
class ScanOptions:
    """How a plan executes (mirrors ``DataPlaneOptions``'s executor
    knobs; defined here because ``repro.query`` sits below the core
    orchestration layer).

    ``"auto"`` picks threads on multi-core hosts and serial otherwise;
    outputs are identical either way.
    """

    executor: str = "auto"
    max_workers: int | None = None

    def __post_init__(self) -> None:
        if self.executor not in ("auto", "serial", "threads"):
            raise ValueError(
                "executor must be 'auto', 'serial' or 'threads', "
                f"got {self.executor!r}"
            )
        if self.max_workers is not None and self.max_workers <= 0:
            raise ValueError("max_workers must be positive")

    def resolve_executor(self) -> str:
        """The concrete executor: ``"auto"`` resolved against the host."""
        if self.executor == "auto":
            return "threads" if (os.cpu_count() or 1) >= 2 else "serial"
        return self.executor


# One process-wide pool for query scans: queries are frequent and short,
# so per-query pool construction would dominate.  Sized like the PR-1
# refinery pool; created lazily under a lock.
_pool_lock = threading.Lock()
_scan_pool: ThreadPoolExecutor | None = None


def _shared_pool() -> ThreadPoolExecutor:
    global _scan_pool
    with _pool_lock:
        if _scan_pool is None:
            _scan_pool = ThreadPoolExecutor(
                max_workers=min(8, os.cpu_count() or 1),
                thread_name_prefix="oda-scan",
            )
        return _scan_pool


def shutdown_scan_pool() -> None:
    """Tear down the shared scan pool (tests / interpreter exit)."""
    global _scan_pool
    with _pool_lock:
        pool, _scan_pool = _scan_pool, None
    if pool is not None:
        pool.shutdown(wait=True)


def execute_plan(
    plan: ScanPlan, options: ScanOptions | None = None
) -> ColumnTable:
    """Execute a plan on the fast path (oracle when the reference
    toggle is active); returns the concatenated surviving rows."""
    with TRACER.span(
        "query.execute", table=plan.table, units=len(plan.units)
    ):
        if _scan_reference:
            return execute_plan_reference(plan)
        opts = options or ScanOptions()
        with PERF.timer("query.scan"):
            return _execute_plan_impl(plan, opts)


def _execute_plan_impl(plan: ScanPlan, opts: ScanOptions) -> ColumnTable:
    tasks = []
    for unit in plan.units:
        if unit.pruned:
            if isinstance(unit, SegmentUnit):
                PERF.count("query.segments_pruned")
            continue
        if isinstance(unit, SegmentUnit):
            PERF.count("query.segments_scanned")
            tasks.append(
                lambda u=unit: scan_segment(
                    u.table,
                    plan.time_column,
                    plan.t0,
                    plan.t1,
                    plan.predicate,
                    plan.columns,
                )
            )
        else:
            PERF.count("query.parts_scanned")
            tasks.append(
                lambda u=unit: scan_part(
                    u.blob,
                    plan.time_column,
                    plan.t0,
                    plan.t1,
                    plan.predicate,
                    plan.columns,
                )
            )
    results = _run_tasks(tasks, opts)
    pieces = [r for r in results if r is not None and r.num_rows]
    if not pieces:
        return _empty_result(plan)
    return ColumnTable.concat(pieces)


def _run_tasks(tasks: list, opts: ScanOptions) -> list:
    """Run thunks, returning results in submission order (the
    determinism invariant shared with the PR-1 refinery executor)."""
    if opts.resolve_executor() == "serial" or len(tasks) <= 1:
        return [t() for t in tasks]
    if opts.max_workers is not None:
        with ThreadPoolExecutor(
            max_workers=opts.max_workers, thread_name_prefix="oda-scan"
        ) as pool:
            futures = [pool.submit(t) for t in tasks]
            return [f.result() for f in futures]
    pool = _shared_pool()
    futures = [pool.submit(t) for t in tasks]
    return [f.result() for f in futures]


def execute_plan_reference(plan: ScanPlan) -> ColumnTable:
    """Scan every unit — pruned flags ignored — with full decode and
    exact masks, serially.  Part units must carry fetched blobs (the
    storage layer fetches everything while the reference toggle is
    active); a missing blob raises rather than silently trusting the
    pruning decision under test.
    """
    pieces: list[ColumnTable] = []
    for unit in plan.units:
        if isinstance(unit, SegmentUnit):
            table = unit.table
            apply_time = True
        else:
            if unit.blob is None:
                raise ValueError(
                    f"reference scan of {unit.key!r} requires its blob; "
                    "pruned parts are not fetched outside reference mode"
                )
            table = read_table(unit.blob)
            apply_time = plan.t0 is not None or plan.t1 is not None
        mask = None
        if apply_time:
            ts = table[plan.time_column]
            lo = -np.inf if plan.t0 is None else plan.t0
            hi = np.inf if plan.t1 is None else plan.t1
            mask = (ts >= lo) & (ts < hi)
        if plan.predicate is not None:
            pm = plan.predicate.mask(table)
            mask = pm if mask is None else mask & pm
        if mask is not None:
            if not mask.any():
                continue
            table = table.filter(mask)
        if plan.columns is not None:
            table = table.select(plan.columns)
        if table.num_rows:
            pieces.append(table)
    if not pieces:
        return _empty_result(plan)
    return ColumnTable.concat(pieces)


def _empty_result(plan: ScanPlan) -> ColumnTable:
    """The canonical zero-row result both executors share: requested
    columns as empty arrays when the projection is known, else an empty
    schema-less table."""
    if plan.columns is not None:
        return ColumnTable({n: np.empty(0) for n in plan.columns})
    return ColumnTable({})
