"""Transient thermo-fluidic cooling model (ExaDigiT module 2).

A lumped-parameter white-box model of the direct-liquid-cooling chain:

* the **secondary loop** (cabinet cold plates + manifolds) absorbs IT
  heat into its water mass,
* a **heat exchanger** couples it to the **primary loop**,
* the primary loop rejects heat to a **cooling tower** whose approach to
  outdoor wet-bulb limits how cold the primary supply can get.

Three thermal states integrated with ``scipy.integrate.solve_ivp``:
secondary return temp, primary supply temp, tower basin temp.  This is
the model whose "complex transient dynamics of the cooling system" the
paper's Fig. 11 (right) shows responding to an HPL ramp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy.integrate import solve_ivp

from repro.telemetry.machine import MachineConfig
from repro.telemetry.power import NODE_THERMAL_R

__all__ = ["CoolingState", "CoolingModel"]


@dataclass
class CoolingState:
    """Trajectory of the cooling system over a simulation."""

    times: np.ndarray
    secondary_return_c: np.ndarray
    primary_supply_c: np.ndarray
    tower_basin_c: np.ndarray
    pump_power_w: np.ndarray
    tower_power_w: np.ndarray

    def steady_state_return_c(self) -> float:
        """Mean secondary return temp over the final 10% of the run."""
        tail = max(1, self.times.size // 10)
        return float(self.secondary_return_c[-tail:].mean())


class CoolingModel:
    """Three-state lumped cooling loop for one machine.

    Parameters
    ----------
    machine:
        Sets the design heat load and coolant supply set point.
    secondary_thermal_mass_j_k / primary_thermal_mass_j_k / tower_thermal_mass_j_k:
        Lumped water+metal heat capacities (J/K) of each loop.
    ua_hx_w_k:
        Heat-exchanger conductance between loops (W/K).
    ua_tower_w_k:
        Tower conductance to ambient (W/K).
    """

    def __init__(
        self,
        machine: MachineConfig,
        secondary_thermal_mass_j_k: float | None = None,
        primary_thermal_mass_j_k: float | None = None,
        tower_thermal_mass_j_k: float | None = None,
        ua_hx_w_k: float | None = None,
        ua_tower_w_k: float | None = None,
        outdoor_temp_c: Callable[[float], float] | float = 18.0,
    ) -> None:
        design_w = machine.peak_it_power_w
        self.machine = machine
        # Defaults scale with machine size: ~30 s secondary time constant,
        # minutes for primary/tower — the separation that produces the
        # transient overshoot Fig. 11 shows.
        self.c_sec = secondary_thermal_mass_j_k or design_w * 3.0
        self.c_pri = primary_thermal_mass_j_k or design_w * 12.0
        self.c_tow = tower_thermal_mass_j_k or design_w * 30.0
        # Design secondary rise above supply matches the node-level
        # thermal resistance the telemetry physics uses, so replays of
        # measured return temps validate against the same steady state.
        dt_design = NODE_THERMAL_R * machine.node_max_w
        self.ua_hx = ua_hx_w_k or design_w / dt_design
        self.ua_tower = ua_tower_w_k or design_w / 6.0
        #: Primary-loop set-point regulation time constant (trim valve /
        #: chiller control holding supply near the facility set point).
        self.control_tau_s = 120.0
        if isinstance(outdoor_temp_c, (int, float)):
            const = float(outdoor_temp_c)
            self.outdoor_temp_c = lambda t: const
        else:
            self.outdoor_temp_c = outdoor_temp_c
        self.supply_setpoint_c = machine.coolant_supply_c

    def simulate(
        self,
        times: np.ndarray,
        it_power_w: Callable[[float], float] | np.ndarray,
        initial: tuple[float, float, float] | None = None,
    ) -> CoolingState:
        """Integrate the loop over ``times`` under an IT heat load.

        ``it_power_w`` may be a callable of time or an array aligned with
        ``times`` (interpolated internally).
        """
        times = np.asarray(times, dtype=np.float64)
        if times.size < 2:
            raise ValueError("need at least two time points")
        if callable(it_power_w):
            q_fn = it_power_w
        else:
            trace = np.asarray(it_power_w, dtype=np.float64)
            if trace.size != times.size:
                raise ValueError("power trace length must match times")
            q_fn = lambda t: float(np.interp(t, times, trace))  # noqa: E731

        t_set = self.supply_setpoint_c
        if initial is None:
            t_out0 = self.outdoor_temp_c(times[0])
            initial = (t_set + 3.0, t_set, max(t_out0 + 3.0, t_set - 5.0))

        def rhs(t: float, y: np.ndarray) -> list[float]:
            t_sec, t_pri, t_tow = y
            q_it = q_fn(t)
            # Secondary loop heats up with IT load, dumps into primary
            # through the heat exchanger.
            q_hx = self.ua_hx * (t_sec - t_pri)
            d_sec = (q_it - q_hx) / self.c_sec
            # Primary loop carries heat to the tower basin; facility
            # controls trim the supply toward the set point.
            q_pri_tow = self.ua_hx * (t_pri - t_tow)
            d_pri = (q_hx - q_pri_tow) / self.c_pri + (
                t_set - t_pri
            ) / self.control_tau_s
            # Tower rejects to ambient.
            q_rej = self.ua_tower * (t_tow - self.outdoor_temp_c(t))
            d_tow = (q_pri_tow - q_rej) / self.c_tow
            return [d_sec, d_pri, d_tow]

        sol = solve_ivp(
            rhs,
            (times[0], times[-1]),
            list(initial),
            t_eval=times,
            method="RK45",
            max_step=float(times[-1] - times[0]) / 50.0,
        )
        if not sol.success:
            raise RuntimeError(f"cooling ODE failed: {sol.message}")

        t_sec, t_pri, t_tow = sol.y
        q_series = np.array([q_fn(t) for t in times])
        design = self.machine.peak_it_power_w
        load = np.clip(q_series / design, 0.0, 1.2)
        pump = 0.015 * design * np.clip(0.4 + 0.6 * load, 0.4, 1.0) ** 3
        outdoor = np.array([self.outdoor_temp_c(t) for t in times])
        tower_fan = 0.01 * q_series * np.clip(
            1.0 + (outdoor - 18.0) / 25.0, 0.5, 2.0
        )
        return CoolingState(
            times=times,
            secondary_return_c=t_sec,
            primary_supply_c=t_pri,
            tower_basin_c=t_tow,
            pump_power_w=pump,
            tower_power_w=tower_fan,
        )

    def pue(self, state: CoolingState, it_power_w: np.ndarray,
            electrical_loss_w: np.ndarray | None = None) -> float:
        """Power usage effectiveness over a simulated trajectory."""
        it = np.asarray(it_power_w, dtype=np.float64)
        overhead = state.pump_power_w + state.tower_power_w
        if electrical_loss_w is not None:
            overhead = overhead + np.asarray(electrical_loss_w)
        it_energy = np.trapezoid(it, state.times)
        if it_energy <= 0:
            raise ValueError("IT energy must be positive for PUE")
        total_energy = np.trapezoid(it + overhead, state.times)
        return float(total_energy / it_energy)
