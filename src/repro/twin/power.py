"""Resource allocator + power simulator (ExaDigiT module 1).

A *white-box* electrical model: given a job schedule (real replayed
telemetry context or a synthetic what-if schedule), predict per-node and
fleet power from first principles — device idle/TDP envelopes and
archetype utilization shapes — with no fitted parameters.  The same
physics as :mod:`repro.telemetry.power` but noiseless and cap-aware, so
replay residuals measure sensor noise + model error, not RNG tricks.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.jobs import AllocationTable
from repro.telemetry.machine import MachineConfig
from repro.telemetry.power import (
    CPU_IDLE_W,
    GPU_IDLE_W,
    MEM_ACTIVE_W,
    MEM_IDLE_W,
    POL_EFFICIENCY,
)

__all__ = ["PowerSimulator"]


class PowerSimulator:
    """Noiseless per-node power prediction for a machine + schedule.

    Parameters
    ----------
    machine:
        Electrical envelope.
    allocation:
        The job schedule to simulate (replayed or synthetic).
    power_cap_w:
        Optional per-node cap; the simulator clips like firmware would.
    """

    def __init__(
        self,
        machine: MachineConfig,
        allocation: AllocationTable,
        power_cap_w: float | None = None,
    ) -> None:
        if power_cap_w is not None and power_cap_w <= 0:
            raise ValueError("power_cap_w must be positive")
        self.machine = machine
        self.allocation = allocation
        self.power_cap_w = power_cap_w

    def node_power(
        self, nodes: np.ndarray, times: np.ndarray
    ) -> np.ndarray:
        """Predicted node input power, shape (n_nodes, n_times)."""
        m = self.machine
        gpu_u, cpu_u, _ = self.allocation.utilization(
            np.asarray(nodes, dtype=np.int32), np.asarray(times, dtype=np.float64)
        )
        cpu_pwr = (CPU_IDLE_W + cpu_u * (m.cpu_tdp_w - CPU_IDLE_W)) * m.cpus_per_node
        gpu_pwr = (GPU_IDLE_W + gpu_u * (m.gpu_tdp_w - GPU_IDLE_W)) * m.gpus_per_node
        mem_pwr = MEM_IDLE_W + MEM_ACTIVE_W * gpu_u
        overhead = max(
            m.node_idle_w
            - (CPU_IDLE_W * m.cpus_per_node + MEM_IDLE_W + GPU_IDLE_W * m.gpus_per_node),
            0.0,
        )
        it = cpu_pwr + gpu_pwr + mem_pwr + overhead
        input_power = it / POL_EFFICIENCY
        cap = self.power_cap_w if self.power_cap_w is not None else m.node_max_w
        return np.minimum(input_power, min(cap, m.node_max_w))

    def fleet_power(self, times: np.ndarray, nodes: np.ndarray | None = None
                    ) -> np.ndarray:
        """Total IT power over time for the whole machine.

        When ``nodes`` is a subset, the subset mean is extrapolated to
        the fleet (how laptop-scale replays model the full system).
        """
        if nodes is None:
            nodes = np.arange(self.machine.n_nodes, dtype=np.int32)
        nodes = np.asarray(nodes, dtype=np.int32)
        if nodes.size == 0:
            return np.zeros(np.asarray(times).size)
        per_node = self.node_power(nodes, times)
        return per_node.mean(axis=0) * self.machine.n_nodes

    def job_power(self, job_id: int, times: np.ndarray) -> np.ndarray:
        """One job's total power over time (0 outside its lifetime)."""
        job = self.allocation.job(job_id)
        per_node = self.node_power(job.nodes, times)
        times = np.asarray(times, dtype=np.float64)
        active = (times >= job.start) & (times < job.end)
        return per_node.sum(axis=0) * active

    def energy_j(self, t0: float, t1: float, dt: float = 15.0) -> float:
        """Fleet IT energy over a window (trapezoidal integral)."""
        if t1 <= t0:
            raise ValueError("t1 must be after t0")
        times = np.arange(t0, t1 + dt, dt)
        power = self.fleet_power(times)
        return float(np.trapezoid(power, times))
