"""ExaDigiT-style digital twin of the supercomputer + energy plant (Fig. 11).

The paper's twin has "(1) a resource allocator and power simulator, (2) a
transient thermo-fluidic cooling model, and (3) a virtual reality model"
and "replays various telemetry data ... for verification and validation
of the power and thermo-fluidic models.  As white-box models based on
thermodynamics, these models overcome the limitations of black-box
data-driven machine learning models."

Modules (the VR front end is out of scope for a Python library — the
physics and replay loop are what the evaluation exercises):

* :mod:`repro.twin.power` — resource allocator + white-box power model,
* :mod:`repro.twin.losses` — rectification and voltage-conversion loss
  models (the energy-loss prediction of Fig. 11 right),
* :mod:`repro.twin.cooling` — lumped-parameter transient thermo-fluidic
  model integrated with SciPy,
* :mod:`repro.twin.replay` — telemetry replay + V&V metrics,
* :mod:`repro.twin.scenarios` — what-if studies (power caps, warmer
  coolant, future-system prototyping).
"""

from repro.twin.power import PowerSimulator
from repro.twin.losses import LossModel, LossBreakdown
from repro.twin.cooling import CoolingModel, CoolingState
from repro.twin.replay import ReplayReport, TelemetryReplay
from repro.twin.scenarios import (
    ScenarioResult,
    prototype_future_system,
    what_if_coolant_temp,
    what_if_power_cap,
)

__all__ = [
    "PowerSimulator",
    "LossModel",
    "LossBreakdown",
    "CoolingModel",
    "CoolingState",
    "TelemetryReplay",
    "ReplayReport",
    "ScenarioResult",
    "what_if_power_cap",
    "what_if_coolant_temp",
    "prototype_future_system",
]
