"""Electrical-loss models: rectification and voltage conversion.

Fig. 11 (right): the twin "predicts energy losses due to rectification
and voltage conversion".  Two loss stages between the utility feed and
the devices:

* **rectification** (AC -> 380 V DC at the rectifier shelves): efficiency
  is load-dependent — poor at light load, peaking near full load — the
  standard 80-PLUS-style curve;
* **point-of-load conversion** (DC -> device rails): modelled at a fixed
  efficiency matching the telemetry generator's constant.

``LossModel.breakdown`` maps an IT power draw to the utility-side power
and per-stage losses, which the Fig. 11 bench sums into energy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.power import POL_EFFICIENCY

__all__ = ["LossBreakdown", "LossModel"]


@dataclass(frozen=True)
class LossBreakdown:
    """Power accounting at one instant (all watts)."""

    it_power_w: float
    conversion_loss_w: float
    rectification_loss_w: float
    utility_power_w: float

    @property
    def total_loss_w(self) -> float:
        """Electrical losses between the utility feed and devices."""
        return self.conversion_loss_w + self.rectification_loss_w

    @property
    def loss_fraction(self) -> float:
        """Losses as a fraction of utility power."""
        return self.total_loss_w / self.utility_power_w if self.utility_power_w else 0.0


class LossModel:
    """Load-dependent rectifier + fixed point-of-load conversion.

    Parameters
    ----------
    rated_power_w:
        Rectifier plant rating (the design IT envelope).
    peak_efficiency:
        Rectifier efficiency at optimal load (~0.975 for modern shelves).
    light_load_efficiency:
        Efficiency at 10% load.
    """

    def __init__(
        self,
        rated_power_w: float,
        peak_efficiency: float = 0.975,
        light_load_efficiency: float = 0.90,
        pol_efficiency: float = POL_EFFICIENCY,
    ) -> None:
        if rated_power_w <= 0:
            raise ValueError("rated_power_w must be positive")
        if not 0 < light_load_efficiency < peak_efficiency < 1:
            raise ValueError(
                "need 0 < light_load_efficiency < peak_efficiency < 1"
            )
        if not 0 < pol_efficiency < 1:
            raise ValueError("pol_efficiency must be in (0, 1)")
        self.rated_power_w = rated_power_w
        self.peak_efficiency = peak_efficiency
        self.light_load_efficiency = light_load_efficiency
        self.pol_efficiency = pol_efficiency

    def rectifier_efficiency(self, load_fraction: np.ndarray | float) -> np.ndarray:
        """Efficiency vs. load fraction: rises steeply, plateaus at peak.

        Saturating-exponential fit through (0.1, light) and ~(0.6+, peak).
        """
        load = np.clip(np.asarray(load_fraction, dtype=np.float64), 1e-4, 1.2)
        # eta(load) = peak - (peak - light) * exp(-k (load - 0.1))
        k = 6.0
        eta = self.peak_efficiency - (
            self.peak_efficiency - self.light_load_efficiency
        ) * np.exp(-k * (load - 0.1))
        return np.clip(eta, self.light_load_efficiency * 0.9, self.peak_efficiency)

    def breakdown(self, it_power_w: float) -> LossBreakdown:
        """Loss accounting for one instant of IT (device-side) power.

        ``it_power_w`` is what devices consume; conversion loss is added
        to get DC bus power, then rectification loss to get utility power.
        """
        if it_power_w < 0:
            raise ValueError("it_power_w must be non-negative")
        dc_bus = it_power_w / self.pol_efficiency
        conversion_loss = dc_bus - it_power_w
        load = dc_bus / self.rated_power_w
        eta = float(self.rectifier_efficiency(load))
        utility = dc_bus / eta
        rectification_loss = utility - dc_bus
        return LossBreakdown(
            it_power_w=it_power_w,
            conversion_loss_w=conversion_loss,
            rectification_loss_w=rectification_loss,
            utility_power_w=utility,
        )

    def loss_series(self, it_power_w: np.ndarray) -> dict[str, np.ndarray]:
        """Vectorized breakdown over a power trace."""
        it = np.asarray(it_power_w, dtype=np.float64)
        if (it < 0).any():
            raise ValueError("negative power in trace")
        dc_bus = it / self.pol_efficiency
        eta = self.rectifier_efficiency(dc_bus / self.rated_power_w)
        utility = dc_bus / eta
        return {
            "it_power_w": it,
            "conversion_loss_w": dc_bus - it,
            "rectification_loss_w": utility - dc_bus,
            "utility_power_w": utility,
        }

    def energy_loss_j(self, times: np.ndarray, it_power_w: np.ndarray) -> dict[str, float]:
        """Integrated losses over a trace (trapezoidal)."""
        series = self.loss_series(it_power_w)
        times = np.asarray(times, dtype=np.float64)
        return {
            "conversion_j": float(np.trapezoid(series["conversion_loss_w"], times)),
            "rectification_j": float(np.trapezoid(series["rectification_loss_w"], times)),
            "it_j": float(np.trapezoid(series["it_power_w"], times)),
            "utility_j": float(np.trapezoid(series["utility_power_w"], times)),
        }
