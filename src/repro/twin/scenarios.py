"""What-if scenario studies on the twin.

"Such a twin can be used to study 'what-if' scenarios, system
optimizations, and virtual prototyping of future systems."  Two stock
studies: per-node power capping and warmer facility water — both
standard energy-efficiency levers whose system-level effects only a
coupled power+cooling model can predict.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.jobs import AllocationTable
from repro.telemetry.machine import MachineConfig
from repro.twin.cooling import CoolingModel
from repro.twin.losses import LossModel
from repro.twin.power import PowerSimulator

__all__ = [
    "ScenarioResult",
    "what_if_power_cap",
    "what_if_coolant_temp",
    "prototype_future_system",
]


@dataclass(frozen=True)
class ScenarioResult:
    """Baseline vs. scenario comparison over one window."""

    name: str
    baseline_energy_j: float
    scenario_energy_j: float
    baseline_pue: float
    scenario_pue: float

    @property
    def energy_saving_fraction(self) -> float:
        """Positive = the scenario saves IT energy."""
        if self.baseline_energy_j <= 0:
            return 0.0
        return 1.0 - self.scenario_energy_j / self.baseline_energy_j


def _run(
    machine: MachineConfig,
    allocation: AllocationTable,
    times: np.ndarray,
    power_cap_w: float | None,
    coolant_supply_c: float | None,
) -> tuple[float, float]:
    simulator = PowerSimulator(machine, allocation, power_cap_w=power_cap_w)
    power = simulator.fleet_power(times)
    cooling = CoolingModel(machine)
    if coolant_supply_c is not None:
        cooling.supply_setpoint_c = coolant_supply_c
    state = cooling.simulate(times, power)
    losses = LossModel(machine.peak_it_power_w).loss_series(power)
    pue = cooling.pue(
        state,
        power,
        electrical_loss_w=losses["conversion_loss_w"]
        + losses["rectification_loss_w"],
    )
    energy = float(np.trapezoid(power, times))
    return energy, pue


def what_if_power_cap(
    machine: MachineConfig,
    allocation: AllocationTable,
    t0: float,
    t1: float,
    cap_fraction: float = 0.8,
    dt: float = 30.0,
) -> ScenarioResult:
    """Cap every node at ``cap_fraction`` of its electrical ceiling."""
    if not 0 < cap_fraction <= 1:
        raise ValueError("cap_fraction must be in (0, 1]")
    times = np.arange(t0, t1, dt)
    base_energy, base_pue = _run(machine, allocation, times, None, None)
    cap = machine.node_max_w * cap_fraction
    cap_energy, cap_pue = _run(machine, allocation, times, cap, None)
    return ScenarioResult(
        name=f"power-cap-{cap_fraction:.0%}",
        baseline_energy_j=base_energy,
        scenario_energy_j=cap_energy,
        baseline_pue=base_pue,
        scenario_pue=cap_pue,
    )


def prototype_future_system(
    machine: MachineConfig,
    allocation: AllocationTable,
    t0: float,
    t1: float,
    gpu_tdp_scale: float = 1.5,
    efficiency_gain: float = 1.8,
    dt: float = 30.0,
) -> dict[str, float]:
    """Virtual prototyping of a next-generation system (Fig. 11's
    "virtual prototyping of future systems").

    Scales the GPU power envelope by ``gpu_tdp_scale`` (denser, hotter
    accelerators) while assuming ``efficiency_gain`` more science per
    watt, then replays the *same* workload on the prototype to answer
    the procurement question: what do power, cooling, and PUE look like?

    Returns a comparison dict with current/future fleet power, future
    PUE, and the science-per-joule ratio.
    """
    if gpu_tdp_scale <= 0 or efficiency_gain <= 0:
        raise ValueError("scales must be positive")
    future = MachineConfig(
        name=f"{machine.name}-next",
        n_cabinets=machine.n_cabinets,
        nodes_per_cabinet=machine.nodes_per_cabinet,
        gpus_per_node=machine.gpus_per_node,
        cpus_per_node=machine.cpus_per_node,
        cpu_tdp_w=machine.cpu_tdp_w,
        gpu_tdp_w=machine.gpu_tdp_w * gpu_tdp_scale,
        node_idle_w=machine.node_idle_w,
        node_max_w=machine.node_max_w * gpu_tdp_scale,
        power_sample_period_s=machine.power_sample_period_s,
        coolant_supply_c=machine.coolant_supply_c,
    )
    times = np.arange(t0, t1, dt)
    cur_energy, cur_pue = _run(machine, allocation, times, None, None)
    fut_energy, fut_pue = _run(future, allocation, times, None, None)
    science_per_joule_ratio = efficiency_gain * cur_energy / fut_energy
    return {
        "current_energy_j": cur_energy,
        "future_energy_j": fut_energy,
        "current_pue": cur_pue,
        "future_pue": fut_pue,
        "power_growth": fut_energy / cur_energy,
        "science_per_joule_ratio": science_per_joule_ratio,
    }


def what_if_coolant_temp(
    machine: MachineConfig,
    allocation: AllocationTable,
    t0: float,
    t1: float,
    supply_c: float = 37.0,
    dt: float = 30.0,
) -> ScenarioResult:
    """Raise the facility supply set point (warm-water cooling study)."""
    times = np.arange(t0, t1, dt)
    base_energy, base_pue = _run(machine, allocation, times, None, None)
    warm_energy, warm_pue = _run(machine, allocation, times, None, supply_c)
    return ScenarioResult(
        name=f"coolant-{supply_c:.0f}C",
        baseline_energy_j=base_energy,
        scenario_energy_j=warm_energy,
        baseline_pue=base_pue,
        scenario_pue=warm_pue,
    )
