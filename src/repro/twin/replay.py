"""Telemetry replay + verification-and-validation (Fig. 11).

"The system replays various telemetry data from the HPC data center for
verification and validation of the power and thermo-fluidic models."

The replay loop: take *measured* telemetry (in this reproduction, the
synthetic substrate standing in for Frontier's streams — DESIGN.md §2),
drive the twin with the same job schedule, and score predicted against
measured signals.  The paper's validation figure shows an HPL run's
power trace tracked by the simulator and the virtual cooling response.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.jobs import AllocationTable
from repro.telemetry.machine import MachineConfig
from repro.telemetry.power import PowerThermalSource
from repro.twin.cooling import CoolingModel
from repro.twin.losses import LossModel
from repro.twin.power import PowerSimulator

__all__ = ["ReplayReport", "TelemetryReplay"]


@dataclass(frozen=True)
class ReplayReport:
    """V&V outcome of one replay."""

    power_mape: float          # mean absolute percentage error, fleet power
    power_bias: float          # signed mean relative error
    return_temp_rmse_c: float  # cooling model vs measured return temps
    pue: float
    loss_fraction: float       # electrical losses / utility energy

    def passes(self, mape_threshold: float = 0.05) -> bool:
        """The acceptance test: predicted power tracks measurement."""
        return self.power_mape < mape_threshold


class TelemetryReplay:
    """Replays measured telemetry through the white-box twin."""

    def __init__(
        self,
        machine: MachineConfig,
        allocation: AllocationTable,
        seed: int = 0,
        nodes: np.ndarray | None = None,
    ) -> None:
        self.machine = machine
        self.allocation = allocation
        if nodes is None:
            nodes = np.arange(machine.n_nodes, dtype=np.int32)
        self.nodes = np.asarray(nodes, dtype=np.int32)
        # "Measured" side: the telemetry substrate (noisy, lossy).
        self.measured = PowerThermalSource(machine, allocation, seed, self.nodes)
        # Twin side: white-box models.
        self.simulator = PowerSimulator(machine, allocation)
        self.losses = LossModel(rated_power_w=machine.peak_it_power_w)
        self.cooling = CoolingModel(machine)

    def run(self, t0: float, t1: float, dt: float = 15.0) -> tuple[ReplayReport, dict]:
        """Replay ``[t0, t1)``; returns (report, traces for plotting)."""
        if t1 <= t0 + dt:
            raise ValueError("window too short for replay")
        times = np.arange(t0, t1, dt)

        # Measured fleet power (mean over emitted nodes x fleet size).
        _, measured_matrix = self.measured.node_power_matrix(t0, t1)
        m_times = self.measured.sample_times(t0, t1)
        measured_fleet = measured_matrix.mean(axis=0) * self.machine.n_nodes
        measured_interp = np.interp(times, m_times, measured_fleet)

        predicted = self.simulator.fleet_power(times, self.nodes)

        err = (predicted - measured_interp) / np.maximum(measured_interp, 1.0)
        power_mape = float(np.abs(err).mean())
        power_bias = float(err.mean())

        # Cooling response to the *predicted* load (the twin's own loop).
        state = self.cooling.simulate(times, predicted)
        # Measured return temperature: coolant_return sensor mean + the
        # machine-level mixing approximation.
        measured_batch = self.measured.emit(t0, t1)
        sid = self.measured.catalog.id_of("coolant_return_temp")
        ret = measured_batch.select_sensor(sid)
        if len(ret):
            from repro.util.timeseries import bucket_mean

            bt, bv = bucket_mean(ret.timestamps, ret.values, dt, t0)
            measured_return = np.interp(times, bt, bv)
        else:
            measured_return = np.full(times.size, np.nan)
        valid = ~np.isnan(measured_return)
        rmse = float(
            np.sqrt(
                np.mean(
                    (state.secondary_return_c[valid] - measured_return[valid]) ** 2
                )
            )
        ) if valid.any() else float("nan")

        loss = self.losses.energy_loss_j(times, predicted)
        pue = self.cooling.pue(
            state,
            predicted,
            electrical_loss_w=(
                self.losses.loss_series(predicted)["conversion_loss_w"]
                + self.losses.loss_series(predicted)["rectification_loss_w"]
            ),
        )
        report = ReplayReport(
            power_mape=power_mape,
            power_bias=power_bias,
            return_temp_rmse_c=rmse,
            pue=pue,
            loss_fraction=(
                (loss["conversion_j"] + loss["rectification_j"])
                / loss["utility_j"]
            ),
        )
        traces = {
            "times": times,
            "measured_power_w": measured_interp,
            "predicted_power_w": predicted,
            "cooling": state,
            "measured_return_c": measured_return,
        }
        return report, traces
