"""Byte-level compression codecs.

Applied after encoding, per column chunk.  Offline constraints (zlib is
the only codec in the standard library) map onto the roles the paper's
stack assigns to codecs:

* ``"none"``  — for chunks where the encoding already removed redundancy,
* ``"fast"``  — zlib level 1, the Snappy/LZ4 role (hot pipeline path),
* ``"high"``  — zlib level 6, the ZSTD-archive role (OCEAN/GLACIER).

``"high"`` sits at zlib's default level rather than 9: on the BRONZE
archive chunks the e2e bench writes, level 9 spends ~8x the CPU of
level 6 to shave ~8% more — a poor trade on the ingest-critical path.
"""

from __future__ import annotations

import hashlib
import threading
import zlib
from collections import OrderedDict
from contextlib import contextmanager

__all__ = [
    "CODECS",
    "compress",
    "decompress",
    "compress_memo_stats",
    "clear_compress_memo",
    "compress_memo_disabled",
]

_NONE = "none"
_FAST = "fast"
_HIGH = "high"

#: Codec name -> codec id used on disk.
CODECS: dict[str, int] = {_NONE: 0, _FAST: 1, _HIGH: 2}
_BY_ID = {v: k for k, v in CODECS.items()}
_LEVELS = {_FAST: 1, _HIGH: 6}


# -- compress memo ------------------------------------------------------------
#
# zlib dominates the ingest wall clock, and the stream carries repeated
# chunks (constant id columns, regular timestamp grids) whose encoded
# bytes recur window after window.  ``compress`` is a pure function of
# (bytes, codec), so memoizing by content digest returns byte-identical
# output.  The cache is bounded by total stored bytes, LRU-evicted.

_memo_lock = threading.Lock()
_memo: "OrderedDict[tuple, bytes]" = OrderedDict()
_memo_bytes = 0
_memo_max_bytes = 32 << 20
_memo_enabled = True
_memo_hits = 0
_memo_misses = 0
#: Toggle depth counter: ``_memo_enabled`` is maintained from this
#: under ``_memo_lock`` so overlapping toggles cannot restore a stale
#: value (see PerfRegistry.disabled for the pattern).
_memo_disable_depth = 0


def compress_memo_stats() -> dict:
    """Occupancy and hit/miss counters of the compress memo."""
    with _memo_lock:
        return {
            "entries": len(_memo),
            "bytes": _memo_bytes,
            "max_bytes": _memo_max_bytes,
            "hits": _memo_hits,
            "misses": _memo_misses,
        }


def clear_compress_memo() -> None:
    """Drop all memoized compressions and reset counters."""
    global _memo_bytes, _memo_hits, _memo_misses
    with _memo_lock:
        _memo.clear()
        _memo_bytes = 0
        _memo_hits = 0
        _memo_misses = 0


@contextmanager
def compress_memo_disabled():
    """Context manager that bypasses the memo (for baseline benches).
    Overlap-safe via a lock-guarded depth counter."""
    global _memo_disable_depth, _memo_enabled
    with _memo_lock:
        _memo_disable_depth += 1
        _memo_enabled = False
    try:
        yield
    finally:
        with _memo_lock:
            _memo_disable_depth -= 1
            _memo_enabled = _memo_disable_depth == 0


def _compress_raw(buf: bytes, codec: str) -> bytes:
    """Codec dispatch with no memo — for callers managing their own cache."""
    if codec == _NONE:
        return buf
    try:
        level = _LEVELS[codec]
    except KeyError:
        raise ValueError(f"unknown codec {codec!r}; know {sorted(CODECS)}") from None
    return zlib.compress(buf, level)


def compress(buf: bytes, codec: str) -> bytes:
    """Compress ``buf`` with the named codec."""
    global _memo_bytes, _memo_hits, _memo_misses
    if codec == _NONE:
        return buf
    try:
        level = _LEVELS[codec]
    except KeyError:
        raise ValueError(f"unknown codec {codec!r}; know {sorted(CODECS)}") from None
    if not _memo_enabled:
        return zlib.compress(buf, level)
    key = (codec, len(buf), hashlib.blake2b(buf, digest_size=16).digest())
    with _memo_lock:
        hit = _memo.get(key)
        if hit is not None:
            _memo_hits += 1
            _memo.move_to_end(key)
            return hit
        _memo_misses += 1
    out = zlib.compress(buf, level)
    with _memo_lock:
        if key not in _memo:
            _memo[key] = out
            _memo_bytes += len(out)
        _memo.move_to_end(key)
        while _memo_bytes > _memo_max_bytes and len(_memo) > 1:
            _, dropped = _memo.popitem(last=False)
            _memo_bytes -= len(dropped)
    return out


def decompress(buf: bytes, codec: str) -> bytes:
    """Invert :func:`compress`."""
    if codec == _NONE:
        return buf
    if codec not in _LEVELS:
        raise ValueError(f"unknown codec {codec!r}; know {sorted(CODECS)}")
    return zlib.decompress(buf)


def codec_name(codec_id: int) -> str:
    """Codec name for an on-disk codec id."""
    return _BY_ID[codec_id]
