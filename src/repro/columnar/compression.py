"""Byte-level compression codecs.

Applied after encoding, per column chunk.  Offline constraints (zlib is
the only codec in the standard library) map onto the roles the paper's
stack assigns to codecs:

* ``"none"``  — for chunks where the encoding already removed redundancy,
* ``"fast"``  — zlib level 1, the Snappy/LZ4 role (hot pipeline path),
* ``"high"``  — zlib level 9, the ZSTD-archive role (OCEAN/GLACIER).
"""

from __future__ import annotations

import zlib

__all__ = ["CODECS", "compress", "decompress"]

_NONE = "none"
_FAST = "fast"
_HIGH = "high"

#: Codec name -> codec id used on disk.
CODECS: dict[str, int] = {_NONE: 0, _FAST: 1, _HIGH: 2}
_BY_ID = {v: k for k, v in CODECS.items()}
_LEVELS = {_FAST: 1, _HIGH: 9}


def compress(buf: bytes, codec: str) -> bytes:
    """Compress ``buf`` with the named codec."""
    if codec == _NONE:
        return buf
    try:
        level = _LEVELS[codec]
    except KeyError:
        raise ValueError(f"unknown codec {codec!r}; know {sorted(CODECS)}") from None
    return zlib.compress(buf, level)


def decompress(buf: bytes, codec: str) -> bytes:
    """Invert :func:`compress`."""
    if codec == _NONE:
        return buf
    if codec not in _LEVELS:
        raise ValueError(f"unknown codec {codec!r}; know {sorted(CODECS)}")
    return zlib.decompress(buf)


def codec_name(codec_id: int) -> str:
    """Codec name for an on-disk codec id."""
    return _BY_ID[codec_id]
